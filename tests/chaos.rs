//! Fault-injection integration tests: the control loop must *degrade*,
//! never lie or fall over. Under scripted and seeded fault plans the run
//! completes without panicking, pod accounting stays conserved across
//! crash/relaunch/give-up transitions, corrupted telemetry is refused at
//! the TSDB door, and the schedulers' stale-series fallbacks leave visible
//! tracks in the decision audit log.

use knots_chaos::{gen, ChaosEngine, CorruptionMode, FaultEvent, FaultKind, FaultPlan, GenConfig};
use knots_core::experiment::{run_mix_with_chaos, scheduler_by_name, ExperimentConfig};
use knots_core::{KubeKnots, OrchestratorConfig};
use knots_sim::cluster::{Cluster, ClusterConfig};
use knots_sim::ids::NodeId;
use knots_sim::time::{SimDuration, SimTime};
use knots_workloads::appmix::AppMix;
use knots_workloads::loadgen::{LoadGenConfig, LoadGenerator};

fn cfg(seed: u64, secs: u64) -> ExperimentConfig {
    ExperimentConfig {
        nodes: 10,
        duration: SimDuration::from_secs(secs),
        seed,
        ..Default::default()
    }
}

/// Every submitted pod must be in exactly one place: completed, abandoned,
/// pending, suspended, waiting out a relaunch backoff, or resident on a
/// node. Faults move pods between these states; they must not lose any.
fn assert_conserved(cluster: &Cluster, submitted: usize) {
    let running: usize = cluster.nodes().iter().map(|n| n.resident_count()).sum();
    let suspended = cluster.suspended_pods().count();
    let accounted = cluster.completed_len()
        + cluster.failed_len()
        + cluster.pending_len()
        + cluster.relaunching_len()
        + suspended
        + running;
    assert_eq!(
        submitted,
        accounted,
        "pod accounting leaked: {submitted} submitted vs {accounted} accounted \
         (completed {}, failed {}, pending {}, relaunching {}, suspended {suspended}, \
         running {running})",
        cluster.completed_len(),
        cluster.failed_len(),
        cluster.pending_len(),
        cluster.relaunching_len(),
    );
}

#[test]
fn pods_are_conserved_under_an_aggressive_fault_plan() {
    let duration = SimDuration::from_secs(60);
    let plan = gen::generate(&GenConfig { seed: 7, nodes: 10, duration, faults_per_minute: 30.0 });
    assert!(!plan.is_empty());
    let schedule = LoadGenerator::generate(AppMix::Mix2, &LoadGenConfig::new(duration, 7));
    let cluster_cfg = ClusterConfig::homogeneous(10, knots_sim::config::TESTBED_GPU);
    let orch =
        OrchestratorConfig { freshness: Some(SimDuration::from_secs(2)), ..Default::default() };
    let mut k = KubeKnots::new(cluster_cfg, scheduler_by_name("CBP+PP").unwrap(), orch)
        .with_chaos(ChaosEngine::new(plan));
    let report = k.run_schedule(&schedule);
    assert_eq!(report.submitted, schedule.len());
    assert!(report.completed > 0, "the cluster must keep making progress under faults");
    assert_conserved(k.cluster(), report.submitted);
}

#[test]
fn generated_plans_never_panic_and_keep_reports_sane() {
    for seed in [1, 2, 3] {
        for fpm in [10.0, 60.0] {
            let c = cfg(seed, 30);
            let plan = gen::generate(&GenConfig {
                seed,
                nodes: c.nodes,
                duration: c.duration,
                faults_per_minute: fpm,
            });
            let mut c = c;
            c.orch.freshness = Some(SimDuration::from_secs(2));
            let r = run_mix_with_chaos(
                scheduler_by_name("CBP+PP").unwrap(),
                AppMix::Mix2,
                &c,
                knots_obs::Obs::disabled(),
                plan,
            );
            let fa = &r.faults;
            let injected = fa.node_failures
                + fa.degradations
                + fa.probe_dropouts
                + fa.corruption_windows
                + fa.heartbeat_delays;
            assert!(injected > 0, "seed {seed} fpm {fpm}: plan must inject something");
            assert!(r.submitted > 0);
            assert!(r.completed <= r.submitted);
        }
    }
}

#[test]
fn corrupted_samples_are_refused_and_counted() {
    // A NaN/Inf corruption window on one node: the TSDB must reject every
    // mangled reading (non-finite values never enter a series) and the
    // report must own up to how many it refused.
    let plan = FaultPlan::from_events(vec![
        FaultEvent {
            at: SimTime::from_secs(5),
            kind: FaultKind::SampleCorruption {
                node: NodeId(0),
                duration: SimDuration::from_secs(5),
                mode: CorruptionMode::Nan,
            },
        },
        FaultEvent {
            at: SimTime::from_secs(12),
            kind: FaultKind::SampleCorruption {
                node: NodeId(1),
                duration: SimDuration::from_secs(5),
                mode: CorruptionMode::Inf,
            },
        },
    ]);
    let r = run_mix_with_chaos(
        scheduler_by_name("Res-Ag").unwrap(),
        AppMix::Mix2,
        &cfg(42, 30),
        knots_obs::Obs::disabled(),
        plan,
    );
    assert_eq!(r.faults.corruption_windows, 2);
    assert!(r.faults.corrupted_samples > 0, "the windows must mangle some readings");
    assert!(r.faults.rejected_samples > 0, "the TSDB must refuse the non-finite ones");
    assert!(r.completed > 0, "corruption must not stall the run");
}

#[test]
fn stale_series_fallbacks_show_up_in_the_audit_log() {
    // Blind the probes on every node for a 20 s stretch: with a 500 ms
    // freshness bound, any scheduling decision inside the window consults
    // stale series, and both CBP (pod co-location veto) and PP (node
    // forecast override) must log their retreat to the Res-Ag baseline.
    let events = (0..10)
        .map(|n| FaultEvent {
            at: SimTime::from_secs(10),
            kind: FaultKind::ProbeDropout { node: NodeId(n), duration: SimDuration::from_secs(20) },
        })
        .collect();
    let plan = FaultPlan::from_events(events);
    let mut c = cfg(42, 40);
    c.orch.freshness = Some(SimDuration::from_millis(500));
    let obs = knots_obs::Obs::with_trace_capacity(1 << 16);
    let r = run_mix_with_chaos(
        scheduler_by_name("CBP+PP").unwrap(),
        AppMix::Mix2,
        &c,
        obs.clone(),
        plan,
    );
    assert_eq!(r.faults.probe_dropouts, 10);
    let trace = obs.recorder.export_jsonl();
    assert!(
        trace.contains("sched.stale_fallback"),
        "stale-series fallbacks must be visible in the decision audit log"
    );
    assert!(r.completed > 0, "the blinded window must not stall the run");
}
