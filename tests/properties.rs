//! Property-based tests over the simulator's core invariants: whatever a
//! (randomized) scheduler does, the cluster must preserve conservation and
//! capacity properties.

use kube_knots::sim::prelude::*;
use proptest::prelude::*;

/// A random but valid pod spec.
fn arb_spec() -> impl Strategy<Value = PodSpec> {
    (
        0.05f64..1.0,        // sm
        64.0f64..12_000.0,   // mem
        0.05f64..5.0,        // work secs
        0.5f64..1.8,         // request factor (under- and over-stated)
        proptest::bool::ANY, // greedy
        proptest::bool::ANY, // latency critical
    )
        .prop_map(|(sm, mem, work, reqf, greedy, lc)| {
            let profile = ResourceProfile::constant(sm, mem, work);
            let base = if lc {
                PodSpec::latency_critical("p", profile)
            } else {
                PodSpec::batch("p", profile)
            };
            base.with_request_mb((mem * reqf).min(16_384.0)).with_greedy_memory(greedy)
        })
}

/// Random action script entry: (pod index, node index, kind).
#[derive(Debug, Clone)]
enum Op {
    Place(usize, usize),
    Resize(usize, f64),
    Preempt(usize),
    Resume(usize, usize),
    Step,
}

fn arb_op(pods: usize, nodes: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0..pods), (0..nodes)).prop_map(|(p, n)| Op::Place(p, n)),
        ((0..pods), 32.0f64..16_384.0).prop_map(|(p, m)| Op::Resize(p, m)),
        (0..pods).prop_map(Op::Preempt),
        ((0..pods), (0..nodes)).prop_map(|(p, n)| Op::Resume(p, n)),
        Just(Op::Step),
        Just(Op::Step),
        Just(Op::Step),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Whatever sequence of (possibly invalid) actions is applied, the
    /// cluster never reports memory above capacity, never loses pods, and
    /// keeps energy monotonically increasing.
    #[test]
    fn cluster_invariants_under_random_drivers(
        specs in proptest::collection::vec(arb_spec(), 1..12),
        ops in proptest::collection::vec(arb_op(12, 3), 1..80),
    ) {
        let mut cluster = Cluster::new(ClusterConfig::homogeneous(3, GpuModel::P100));
        let ids: Vec<PodId> =
            specs.into_iter().map(|s| cluster.submit(s, SimTime::ZERO)).collect();
        let mut prev_energy = 0.0;
        for op in ops {
            // Errors are fine (invalid transitions must be *rejected*, not
            // corrupt state); panics are not.
            match op {
                Op::Place(p, n) => {
                    let _ = cluster.place(*ids.get(p % ids.len()).unwrap(), NodeId(n));
                }
                Op::Resize(p, m) => {
                    let _ = cluster.resize(*ids.get(p % ids.len()).unwrap(), m);
                }
                Op::Preempt(p) => {
                    let _ = cluster.preempt(*ids.get(p % ids.len()).unwrap());
                }
                Op::Resume(p, n) => {
                    let _ = cluster.resume(*ids.get(p % ids.len()).unwrap(), NodeId(n));
                }
                Op::Step => cluster.step(SimDuration::from_millis(10)),
            }
            // Capacity: measured memory never exceeds the device.
            for node in cluster.nodes() {
                prop_assert!(node.last_sample().mem_used_mb <= 16_384.0 + 1e-6);
                prop_assert!(node.last_sample().sm_util <= 1.0 + 1e-9);
            }
            // Energy is monotone.
            let e = cluster.total_energy_joules();
            prop_assert!(e >= prev_energy - 1e-9);
            prev_energy = e;
            // Conservation: every pod is exactly somewhere.
            let mut found = 0usize;
            for id in &ids {
                if cluster.pod(*id).is_some() {
                    found += 1;
                }
            }
            prop_assert_eq!(found, ids.len(), "pods lost or duplicated");
        }
    }

    /// Profiles: quantiles are monotone in q and bounded by the peak.
    #[test]
    fn profile_quantiles_are_monotone(
        phases in proptest::collection::vec(
            (0.01f64..5.0, 0.0f64..1.0, 1.0f64..16_000.0), 1..12),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let profile = ResourceProfile::new(
            phases
                .into_iter()
                .map(|(w, sm, mem)| Phase::new(w, Usage::new(sm, mem, 0.0, 0.0)))
                .collect(),
        );
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(profile.mem_percentile(lo) <= profile.mem_percentile(hi) + 1e-9);
        prop_assert!(profile.mem_percentile(1.0) <= profile.peak_demand().mem_mb + 1e-9);
        prop_assert!(profile.mean_mem_mb() <= profile.peak_demand().mem_mb + 1e-9);
        // demand_at stays within the phase envelope.
        let total = profile.total_work();
        for i in 0..20 {
            let d = profile.demand_at(total * i as f64 / 19.0);
            prop_assert!(d.mem_mb <= profile.peak_demand().mem_mb + 1e-9);
            prop_assert!(d.sm_frac <= profile.peak_demand().sm_frac + 1e-9);
        }
    }

    /// A solo pod's completion time equals its work (no contention, full
    /// speed), up to one tick of quantization.
    #[test]
    fn solo_pod_runs_at_profile_speed(
        sm in 0.05f64..1.0,
        mem in 64.0f64..15_000.0,
        work_ms in 50u64..2_000,
    ) {
        let mut cfg = ClusterConfig::homogeneous(1, GpuModel::P100);
        cfg.overheads.cold_start_pull = SimDuration::ZERO;
        let mut cluster = Cluster::new(cfg);
        let id = cluster.submit(
            PodSpec::batch("solo", ResourceProfile::constant(sm, mem, work_ms as f64 / 1000.0)),
            SimTime::ZERO,
        );
        cluster.place(id, NodeId(0)).unwrap();
        let tick = SimDuration::from_millis(10);
        let mut ticks = 0u64;
        while !cluster.pod(id).unwrap().state().is_completed() {
            cluster.step(tick);
            ticks += 1;
            prop_assert!(ticks < 10_000, "runaway");
        }
        let elapsed_ms = ticks * 10;
        prop_assert!(elapsed_ms >= work_ms, "finished early: {elapsed_ms} < {work_ms}");
        prop_assert!(elapsed_ms <= work_ms + 10, "finished late: {elapsed_ms} vs {work_ms}");
    }
}
