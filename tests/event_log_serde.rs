//! Serde round-trips for the cluster event log. The log is the raw
//! material for every derived metric and for offline analysis of chaos
//! runs, so each [`EventKind`] variant — including the fault-injection
//! ones (`NodeFailed`, `NodeRecovered`, `GpuDegraded`, `GaveUp`, and
//! `CrashReason::NodeFailure`) — must survive JSON and come back equal.

use knots_chaos::{ChaosEngine, FaultEvent, FaultKind, FaultPlan};
use knots_core::{KubeKnots, OrchestratorConfig};
use knots_sim::cluster::ClusterConfig;
use knots_sim::events::{CrashReason, Event, EventKind};
use knots_sim::ids::{NodeId, PodId};
use knots_sim::time::{SimDuration, SimTime};

/// One event per [`EventKind`] variant, exercising both [`CrashReason`]s
/// and both pod-scoped and node-scoped constructors.
fn one_of_each() -> Vec<Event> {
    let t = SimTime::from_millis(1234);
    let p = PodId(7);
    let n = NodeId(3);
    vec![
        Event::pod(t, p, EventKind::Submitted),
        Event::pod(t, p, EventKind::Placed { node: n, cold_start: true }),
        Event::pod(t, p, EventKind::Started { node: n }),
        Event::pod(t, p, EventKind::Completed { node: n }),
        Event::pod(
            t,
            p,
            EventKind::Crashed { node: n, reason: CrashReason::MemoryCapacityViolation },
        ),
        Event::pod(t, p, EventKind::Crashed { node: n, reason: CrashReason::NodeFailure }),
        Event::pod(t, p, EventKind::Requeued),
        Event::pod(t, p, EventKind::Preempted { node: n }),
        Event::pod(t, p, EventKind::Resumed { node: n }),
        Event::pod(t, p, EventKind::Migrated { from: n, to: NodeId(4) }),
        Event::pod(t, p, EventKind::Resized { from_mb: 2048.0, to_mb: 1024.0 }),
        Event::node(t, EventKind::NodeSlept { node: n }),
        Event::node(t, EventKind::NodeWoken { node: n }),
        Event::node(t, EventKind::NodeFailed { node: n }),
        Event::node(t, EventKind::NodeRecovered { node: n }),
        Event::node(t, EventKind::GpuDegraded { node: n, capacity_mb: 8192.5 }),
        Event::pod(t, p, EventKind::GaveUp { node: n, crashes: 5 }),
    ]
}

#[test]
fn every_event_kind_round_trips() {
    for e in one_of_each() {
        let json = serde_json::to_string(&e).expect("serialize");
        let back: Event = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(e, back, "round-trip mangled {json}");
    }
}

#[test]
fn the_log_round_trips_as_a_whole() {
    let log = one_of_each();
    let json = serde_json::to_string(&log).unwrap();
    let back: Vec<Event> = serde_json::from_str(&json).unwrap();
    assert_eq!(log, back);
}

#[test]
fn crash_reasons_serialize_distinctly() {
    // The chaos sweep separates OOM crashes from node-failure casualties by
    // reason; the two must not collapse to the same wire form.
    let oom = serde_json::to_string(&CrashReason::MemoryCapacityViolation).unwrap();
    let nf = serde_json::to_string(&CrashReason::NodeFailure).unwrap();
    assert_ne!(oom, nf);
    assert_eq!(serde_json::from_str::<CrashReason>(&nf).unwrap(), CrashReason::NodeFailure);
}

#[test]
fn a_real_chaos_run_log_round_trips() {
    // Not just hand-built literals: the log of an actual run with a node
    // failure (crash + requeue + recovery traffic included) must survive
    // JSON intact, ready for offline analysis.
    let plan = FaultPlan::from_events(vec![FaultEvent {
        at: SimTime::from_millis(500),
        kind: FaultKind::NodeFail {
            node: NodeId(0),
            recover_after: Some(SimDuration::from_secs(2)),
        },
    }]);
    let spec = knots_sim::pod::PodSpec::batch(
        "bench",
        knots_sim::profile::ResourceProfile::constant(0.4, 1500.0, 4.0),
    );
    let schedule: Vec<knots_workloads::loadgen::ScheduledPod> = (0..4)
        .map(|i| knots_workloads::loadgen::ScheduledPod {
            at: SimTime::from_millis(i * 50),
            spec: spec.clone(),
        })
        .collect();
    let cluster = ClusterConfig::homogeneous(2, knots_sim::config::TESTBED_GPU);
    let sched = knots_core::experiment::scheduler_by_name("Res-Ag").unwrap();
    let mut k = KubeKnots::new(cluster, sched, OrchestratorConfig::default())
        .with_chaos(ChaosEngine::new(plan));
    k.run_schedule(&schedule);
    let log = k.cluster().events().to_vec();
    assert!(log.iter().any(|e| matches!(e.kind, EventKind::NodeFailed { .. })));
    assert!(log.iter().any(|e| matches!(e.kind, EventKind::NodeRecovered { .. })));
    assert!(log
        .iter()
        .any(|e| matches!(e.kind, EventKind::Crashed { reason: CrashReason::NodeFailure, .. })));
    let json = serde_json::to_string(&log).unwrap();
    let back: Vec<Event> = serde_json::from_str(&json).unwrap();
    assert_eq!(log, back);
}
