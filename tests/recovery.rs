//! Controller-crash recovery acceptance.
//!
//! The durable control plane's contract: a run that is killed at scheduled
//! instants and resumed from the latest snapshot + write-ahead log is
//! **bit-identical** to the run that never crashed — same report digest,
//! same retained TSDB sample bits, same energy total — for every DNN
//! scheduler, with and without concurrent infrastructure chaos, and for
//! crashes landing at *any* event boundary (the proptest below draws crash
//! instants uniformly).

use knots_chaos::{gen, ChaosEngine, FaultPlan, GenConfig};
use knots_core::config::OrchestratorConfig;
use knots_core::experiment::{scheduler_by_name, DNN_SCHEDULERS};
use knots_core::orchestrator::KubeKnots;
use knots_recovery::{run_with_recovery, RecoveryConfig, RecoveryError, Snapshot};
use knots_sim::cluster::ClusterConfig;
use knots_sim::ids::NodeId;
use knots_sim::metrics::{GpuSample, Metric};
use knots_sim::time::{SimDuration, SimTime};
use knots_workloads::loadgen::{LoadGenConfig, LoadGenerator, ScheduledPod};
use knots_workloads::AppMix;
use proptest::prelude::*;

const NODES: usize = 4;

/// (report digest, energy bits, per-node `(at, metric bits)` samples).
type LegResult = (u64, u64, Vec<Vec<(u64, [u64; 5])>>);

fn leg_result(k: &KubeKnots, report: &knots_core::RunReport, secs: u64) -> LegResult {
    let now = k.cluster().now();
    let window = SimDuration::from_secs(secs + 3600);
    let samples = (0..NODES)
        .map(|n| {
            k.tsdb()
                .node_window(NodeId(n), now, window)
                .iter()
                .map(|s: &GpuSample| {
                    let mut vals = [0u64; 5];
                    for (i, m) in Metric::ALL.iter().enumerate() {
                        vals[i] = s.get(*m).to_bits();
                    }
                    (s.at.0, vals)
                })
                .collect()
        })
        .collect();
    (knots_analyzer::report_digest(report), report.energy_joules.to_bits(), samples)
}

/// Base infrastructure chaos (`fpm` faults/min) plus `cpm` controller
/// crashes/min, merged into one plan both legs consume identically.
fn plan(seed: u64, duration: SimDuration, fpm: f64, cpm: f64) -> FaultPlan {
    let mut events = if fpm > 0.0 {
        gen::generate(&GenConfig { seed: seed ^ 0x51ab, nodes: NODES, duration, faults_per_minute: fpm })
            .events
    } else {
        Vec::new()
    };
    events.extend(gen::generate_controller_crashes(seed ^ 0x51ab, duration, cpm));
    FaultPlan::from_events(events)
}

fn setup(seed: u64, hb_ms: u64, secs: u64) -> (Vec<ScheduledPod>, ClusterConfig, OrchestratorConfig)
{
    let duration = SimDuration::from_secs(secs);
    let schedule = LoadGenerator::generate(AppMix::Mix2, &LoadGenConfig::new(duration, seed));
    let cluster_cfg = ClusterConfig::homogeneous(NODES, knots_sim::config::TESTBED_GPU);
    let orch = OrchestratorConfig {
        heartbeat: SimDuration::from_millis(hb_ms),
        ..Default::default()
    };
    (schedule, cluster_cfg, orch)
}

/// The uninterrupted oracle: one orchestrator runs the whole schedule,
/// consuming the same plan (controller crashes are counted no-ops there).
fn uninterrupted(name: &str, seed: u64, hb_ms: u64, secs: u64, p: &FaultPlan) -> LegResult {
    let (schedule, cluster_cfg, orch) = setup(seed, hb_ms, secs);
    let mut k = KubeKnots::new(cluster_cfg, scheduler_by_name(name).unwrap(), orch)
        .with_chaos(ChaosEngine::new(p.clone()));
    let report = k.run_schedule(&schedule);
    leg_result(&k, &report, secs)
}

/// The recovery leg: same inputs, but the controller is killed at every
/// scheduled crash and restarted from the latest checkpoint + WAL.
fn recovered(
    name: &str,
    seed: u64,
    hb_ms: u64,
    secs: u64,
    p: &FaultPlan,
    checkpoint_secs: u64,
) -> (LegResult, knots_core::RecoveryStats) {
    let (schedule, cluster_cfg, orch) = setup(seed, hb_ms, secs);
    let rc = RecoveryConfig { checkpoint_every: SimDuration::from_secs(checkpoint_secs) };
    let obs = knots_obs::Obs::disabled();
    let report = run_with_recovery(
        &cluster_cfg,
        &|| scheduler_by_name(name).unwrap(),
        &orch,
        p,
        &schedule,
        &rc,
        &obs,
    )
    .expect("recovery harness must succeed");
    assert_eq!(
        obs.metrics.counter_value("knots_recovery_crashes_total", &[]),
        report.recovery.controller_crashes,
        "obs crash counter disagrees with report"
    );
    // The harness consumes its orchestrator, so this leg compares digest
    // and energy; raw TSDB sample bits are covered by
    // `crash_resume_matches_tsdb_bits`, which drives the pieces by hand.
    (
        (knots_analyzer::report_digest(&report), report.energy_joules.to_bits(), Vec::new()),
        report.recovery,
    )
}

#[test]
fn crash_recovery_is_bit_identical_for_every_dnn_scheduler() {
    let secs = 40;
    let duration = SimDuration::from_secs(secs);
    for name in DNN_SCHEDULERS {
        for fpm in [0.0, 6.0] {
            let p = plan(42, duration, fpm, 3.0);
            assert!(
                !p.controller_crashes().is_empty(),
                "plan must schedule at least one controller crash"
            );
            let oracle = uninterrupted(name, 42, 50, secs, &p);
            let (rec, stats) = recovered(name, 42, 50, secs, &p, 10);
            assert!(stats.controller_crashes > 0, "{name}: no crash was performed");
            assert!(stats.checkpoints >= 2, "{name}: periodic checkpoints missing");
            assert_eq!(oracle.0, rec.0, "{name} fpm={fpm}: report digest diverged");
            assert_eq!(oracle.1, rec.1, "{name} fpm={fpm}: energy total diverged");
        }
    }
}

/// Drive the harness pieces by hand so the recovered orchestrator's TSDB
/// is inspectable: begin → checkpoint → crash (drop) → resume → replay →
/// finish, then compare raw sample bits against the uninterrupted run.
#[test]
fn crash_resume_matches_tsdb_bits() {
    let secs = 30u64;
    let (schedule, cluster_cfg, orch) = setup(42, 50, secs);
    let p = plan(42, SimDuration::from_secs(secs), 6.0, 0.0);

    let oracle = {
        let mut k = KubeKnots::new(cluster_cfg.clone(), scheduler_by_name("CBP+PP").unwrap(), orch)
            .with_chaos(ChaosEngine::new(p.clone()));
        let report = k.run_schedule(&schedule);
        leg_result(&k, &report, secs)
    };

    let mut k = KubeKnots::new(cluster_cfg.clone(), scheduler_by_name("CBP+PP").unwrap(), orch)
        .with_chaos(ChaosEngine::new(p.clone()));
    k.begin(&schedule);
    k.enable_journal();
    assert!(!k.drive(&schedule, Some(SimTime(7_000_000))), "run ended before checkpoint");
    let snap = Snapshot::capture(&k).unwrap();
    k.take_journal();
    let mut wal = knots_recovery::WriteAheadLog::new();
    // Keep driving past the checkpoint, then "crash".
    assert!(!k.drive(&schedule, Some(SimTime(19_000_000))), "run ended before crash");
    wal.append(&k.take_journal());
    drop(k);

    let mut revived = KubeKnots::resume(
        cluster_cfg,
        scheduler_by_name("CBP+PP").unwrap(),
        orch,
        Some(p.clone()),
        snap.state().unwrap(),
    )
    .unwrap();
    revived.enable_journal();
    assert!(!revived.drive(&schedule, Some(SimTime(19_000_000))), "replay overshot the run");
    wal.verify_replay(&revived.take_journal()).expect("replay must match the WAL");
    assert!(revived.drive(&schedule, None), "resumed run must complete");
    let report = revived.report_now(schedule.len());
    let rec = leg_result(&revived, &report, secs);
    assert_eq!(oracle.0, rec.0, "report digest diverged");
    assert_eq!(oracle.1, rec.1, "energy total diverged");
    assert_eq!(oracle.2, rec.2, "TSDB node sample bits diverged");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Crash-at-any-event-boundary: random seeds, off-grid heartbeats,
    /// random crash densities and checkpoint cadences — resume is always
    /// bit-identical in digest and energy.
    #[test]
    fn crash_at_any_event_boundary_resumes_bit_identically(
        seed in 0u64..1_000_000,
        hb_ms in 10u64..200,
        secs in 8u64..20,
        cpm in 1.0f64..12.0,
        checkpoint_secs in 2u64..8,
        faulty in proptest::bool::ANY,
    ) {
        let fpm = if faulty { 6.0 } else { 0.0 };
        let p = plan(seed, SimDuration::from_secs(secs), fpm, cpm);
        for name in ["CBP+PP", "Tiresias"] {
            let oracle = uninterrupted(name, seed, hb_ms, secs, &p);
            let (rec, _) = recovered(name, seed, hb_ms, secs, &p, checkpoint_secs);
            prop_assert_eq!(oracle.0, rec.0, "{} report digest diverged", name);
            prop_assert_eq!(oracle.1, rec.1, "{} energy diverged", name);
        }
    }
}

#[test]
fn corrupted_snapshots_fail_with_typed_errors_not_panics() {
    let (schedule, cluster_cfg, orch) = setup(42, 100, 10);
    let mut k = KubeKnots::new(cluster_cfg, scheduler_by_name("CBP+PP").unwrap(), orch);
    k.begin(&schedule);
    k.drive(&schedule, Some(SimTime(2_000_000)));
    let snap = Snapshot::capture(&k).unwrap();

    // Pristine snapshot decodes.
    snap.state().expect("pristine snapshot must decode");

    // Bit-rot in the payload: digest mismatch, no panic.
    let mut rotten = snap.clone();
    let mid = rotten.payload.len() / 2;
    rotten.payload.replace_range(mid..mid + 1, "X");
    assert!(matches!(rotten.state(), Err(RecoveryError::DigestMismatch { .. })));

    // Version skew — both a future format and the pre-sharding v1 format
    // are rejected with the typed error carrying both versions.
    let mut skewed = snap.clone();
    skewed.version = 999;
    assert!(matches!(skewed.state(), Err(RecoveryError::VersionMismatch { found: 999, .. })));
    skewed.version = 1;
    match skewed.state() {
        Err(RecoveryError::VersionMismatch { found, expected }) => {
            assert_eq!(found, 1);
            assert_eq!(expected, knots_recovery::SNAPSHOT_VERSION);
        }
        other => panic!("v1 snapshot must be version-rejected, got {other:?}"),
    }

    // Truncated payload with a "fixed up" digest: malformed JSON, no panic.
    let mut truncated = snap.clone();
    truncated.payload.truncate(truncated.payload.len() / 3);
    truncated.digest = knots_recovery::fnv1a(truncated.payload.as_bytes());
    assert!(matches!(truncated.state(), Err(RecoveryError::Malformed(_))));

    // Valid JSON, wrong shape: malformed, no panic.
    let mut wrong_shape = snap.clone();
    wrong_shape.payload = "{\"not\": \"an orchestrator state\"}".to_string();
    wrong_shape.digest = knots_recovery::fnv1a(wrong_shape.payload.as_bytes());
    assert!(matches!(wrong_shape.state(), Err(RecoveryError::Malformed(_))));

    // A mangled envelope fails to parse cleanly too.
    assert!(matches!(Snapshot::decode("{nope"), Err(RecoveryError::Malformed(_))));
}

#[test]
fn every_state_struct_round_trips_byte_stably() {
    // Each component of `OrchestratorState` — cluster, TSDB, chaos cursor,
    // scheduler state, calendar entries — must survive serialize → parse →
    // deserialize → re-serialize with identical bytes. Pausing a chaotic
    // mid-run for every DNN scheduler exercises pods in all lifecycle
    // states, occupied TSDB rings and each scheduler's learned state
    // (CBP/PP usage history, Gandiva rotation clocks, Tiresias preemption
    // clocks).
    fn stable<T: serde::Serialize + serde::Deserialize>(v: &T, what: &str) {
        let text = serde_json::to_string(v).unwrap();
        let back: T = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{what}: failed to parse back: {e}"));
        assert_eq!(text, serde_json::to_string(&back).unwrap(), "{what}: bytes drifted");
    }
    for name in DNN_SCHEDULERS {
        let (schedule, cluster_cfg, orch) = setup(42, 50, 30);
        let p = plan(42, SimDuration::from_secs(30), 6.0, 0.0);
        let mut k = KubeKnots::new(cluster_cfg, scheduler_by_name(name).unwrap(), orch)
            .with_chaos(ChaosEngine::new(p.clone()));
        k.begin(&schedule);
        k.drive(&schedule, Some(SimTime(17_000_000)));
        let state = k.pause_state().unwrap();
        stable(&state.cluster, "ClusterState");
        stable(&state.tsdb, "TsdbState");
        stable(state.chaos.as_ref().expect("chaos cursor present"), "ChaosEngineState");
        stable(&state.scheduler, name);
        stable(&state.calendar, "calendar entries");
        stable(&state, "OrchestratorState");
    }
}

/// Crash-mid-sweep with a sharded core (2 shards, 2 worker lanes): the
/// partitioned TSDB and the recorded shard count must survive checkpoint →
/// crash → resume with the same bits as the uninterrupted sharded run —
/// which itself matches the single-shard oracle bit for bit. Resuming the
/// sharded snapshot under a different partitioning fails loudly.
#[test]
fn sharded_crash_resume_is_bit_identical() {
    let secs = 30u64;
    let (schedule, mut cluster_cfg, orch) = setup(42, 50, secs);
    cluster_cfg.shards = Some(2);
    cluster_cfg.workers = Some(2);
    let p = plan(42, SimDuration::from_secs(secs), 6.0, 0.0);

    // Single-shard oracle: the shard count must not change any bit, TSDB
    // samples included.
    let flat = {
        let mut cfg = cluster_cfg.clone();
        cfg.shards = None;
        cfg.workers = None;
        let mut k = KubeKnots::new(cfg, scheduler_by_name("CBP+PP").unwrap(), orch)
            .with_chaos(ChaosEngine::new(p.clone()));
        let report = k.run_schedule(&schedule);
        leg_result(&k, &report, secs)
    };
    let oracle = {
        let mut k = KubeKnots::new(cluster_cfg.clone(), scheduler_by_name("CBP+PP").unwrap(), orch)
            .with_chaos(ChaosEngine::new(p.clone()));
        let report = k.run_schedule(&schedule);
        leg_result(&k, &report, secs)
    };
    assert_eq!(flat, oracle, "sharded run diverged from the single-shard oracle");

    let mut k = KubeKnots::new(cluster_cfg.clone(), scheduler_by_name("CBP+PP").unwrap(), orch)
        .with_chaos(ChaosEngine::new(p.clone()));
    k.begin(&schedule);
    k.enable_journal();
    assert!(!k.drive(&schedule, Some(SimTime(7_000_000))), "run ended before checkpoint");
    let snap = Snapshot::capture(&k).unwrap();
    let state = snap.state().unwrap();
    assert_eq!(state.shards, 2, "snapshot must record the shard count");
    k.take_journal();
    let mut wal = knots_recovery::WriteAheadLog::new();
    assert!(!k.drive(&schedule, Some(SimTime(19_000_000))), "run ended before crash");
    wal.append(&k.take_journal());
    drop(k);

    // Config drift: a resume that would re-partition the cluster is a
    // typed error, not a silent re-shard.
    let mut drifted_cfg = cluster_cfg.clone();
    drifted_cfg.shards = Some(4);
    assert!(
        KubeKnots::resume(
            drifted_cfg,
            scheduler_by_name("CBP+PP").unwrap(),
            orch,
            Some(p.clone()),
            snap.state().unwrap(),
        )
        .is_err(),
        "resume under a different shard count must fail"
    );

    let mut revived = KubeKnots::resume(
        cluster_cfg,
        scheduler_by_name("CBP+PP").unwrap(),
        orch,
        Some(p.clone()),
        state,
    )
    .unwrap();
    revived.enable_journal();
    assert!(!revived.drive(&schedule, Some(SimTime(19_000_000))), "replay overshot the run");
    wal.verify_replay(&revived.take_journal()).expect("replay must match the WAL");
    assert!(revived.drive(&schedule, None), "resumed run must complete");
    let report = revived.report_now(schedule.len());
    let rec = leg_result(&revived, &report, secs);
    assert_eq!(oracle.0, rec.0, "report digest diverged");
    assert_eq!(oracle.1, rec.1, "energy total diverged");
    assert_eq!(oracle.2, rec.2, "TSDB node sample bits diverged");
}

#[test]
fn snapshot_capture_is_byte_stable() {
    // Capture → decode → re-encapsulate must reproduce the payload byte
    // for byte (the acceptance criterion behind "bit-identical resume":
    // state survives the serde boundary without drift).
    let (schedule, cluster_cfg, orch) = setup(7, 70, 12);
    let p = plan(7, SimDuration::from_secs(12), 6.0, 0.0);
    let mut k = KubeKnots::new(cluster_cfg, scheduler_by_name("Gandiva").unwrap(), orch)
        .with_chaos(ChaosEngine::new(p.clone()));
    k.begin(&schedule);
    k.drive(&schedule, Some(SimTime(5_000_000)));
    let snap = Snapshot::capture(&k).unwrap();
    let state = snap.state().unwrap();
    let again = Snapshot::from_state(&state, snap.at).unwrap();
    assert_eq!(snap.payload, again.payload, "payload drifted across a round-trip");
    assert_eq!(snap.digest, again.digest);
    // And the envelope itself round-trips.
    assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
}
