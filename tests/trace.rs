//! Trace determinism: the `experiments trace` study — spans, Chrome-trace
//! bytes, breakdown rows, digest — must be a pure function of
//! `(workload, seed)`, independent of the worker-thread count. Tracing
//! shares the control loop with the scheduler, so any wall-clock or
//! thread-order leak into span content would show up here first.

use knots_bench::figures::trace_study::{digest, TraceStudy};
use knots_sim::time::SimDuration;
use knots_workloads::dnn::DnnWorkloadConfig;

fn tiny() -> DnnWorkloadConfig {
    DnnWorkloadConfig {
        dlt_jobs: 4,
        dli_tasks: 10,
        duration: SimDuration::from_secs(20),
        time_scale: 1.0 / 240.0,
        seed: 7,
    }
}

#[test]
fn trace_study_is_byte_identical_across_thread_counts_and_runs() {
    let serial = TraceStudy::run_threads(&tiny(), 42, 1);
    let threaded = TraceStudy::run_threads(&tiny(), 42, 4);
    assert_eq!(serial.legs.len(), threaded.legs.len());
    for (a, b) in serial.legs.iter().zip(&threaded.legs) {
        assert_eq!((a.scheduler.as_str(), a.faulted), (b.scheduler.as_str(), b.faulted));
        assert_eq!(a.breakdown, b.breakdown, "{} faulted={}", a.scheduler, a.faulted);
        assert_eq!(
            a.chrome_json, b.chrome_json,
            "{} faulted={}: Chrome trace bytes diverged across thread counts",
            a.scheduler, a.faulted
        );
    }
    assert_eq!(digest(&serial), digest(&threaded));

    // And across two same-seed runs at the same thread count.
    let again = TraceStudy::run_threads(&tiny(), 42, 4);
    assert_eq!(digest(&again), digest(&serial), "same-seed trace study diverged");
}
