//! Cross-crate integration tests: full orchestrated runs through every
//! scheduler, checking the invariants every run must satisfy and the
//! qualitative orderings the paper reports.

use kube_knots::core::experiment::{
    run_mix, scheduler_by_name, ExperimentConfig, CLUSTER_SCHEDULERS,
};
use kube_knots::core::metrics::RunReport;
use kube_knots::sim::time::SimDuration;
use kube_knots::workloads::AppMix;

fn short_cfg(secs: u64) -> ExperimentConfig {
    ExperimentConfig { duration: SimDuration::from_secs(secs), seed: 1234, ..Default::default() }
}

fn check_invariants(r: &RunReport) {
    assert!(r.completed <= r.submitted, "{}: completed > submitted", r.scheduler);
    assert!(r.energy_joules > 0.0, "{}: no energy recorded", r.scheduler);
    assert_eq!(r.node_util_series.len(), 10, "{}: ten nodes expected", r.scheduler);
    for s in &r.node_util_series {
        assert!(
            s.iter().all(|&u| (0.0..=100.0).contains(&u)),
            "{}: util out of range",
            r.scheduler
        );
    }
    assert!(
        r.lc_violations <= r.lc_completed + (r.submitted - r.completed),
        "{}: more violations than queries",
        r.scheduler
    );
    // JCT stats are internally consistent.
    for jct in [&r.batch_jct, &r.lc_latency, &r.all_jct] {
        if jct.count > 0 {
            assert!(jct.median <= jct.p99 + 1e-9 && jct.p99 <= jct.max + 1e-9);
            assert!(jct.avg <= jct.max + 1e-9);
        }
    }
}

#[test]
fn every_scheduler_completes_a_light_mix() {
    for name in CLUSTER_SCHEDULERS {
        let r = run_mix(scheduler_by_name(name).unwrap(), AppMix::Mix3, &short_cfg(45));
        check_invariants(&r);
        assert!(r.completed > 0, "{name}: nothing completed");
        assert_eq!(r.scheduler, name);
    }
}

#[test]
fn gpu_aware_schedulers_beat_res_ag_on_qos() {
    // The paper's headline QoS ordering on the loaded mix (Fig. 10a).
    let cfg = short_cfg(90);
    let resag = run_mix(scheduler_by_name("Res-Ag").unwrap(), AppMix::Mix1, &cfg);
    let cbp = run_mix(scheduler_by_name("CBP").unwrap(), AppMix::Mix1, &cfg);
    let pp = run_mix(scheduler_by_name("CBP+PP").unwrap(), AppMix::Mix1, &cfg);
    check_invariants(&resag);
    check_invariants(&cbp);
    check_invariants(&pp);
    assert!(
        resag.violations_per_kilo() > 5.0 * cbp.violations_per_kilo().max(1.0),
        "Res-Ag {} vs CBP {}",
        resag.violations_per_kilo(),
        cbp.violations_per_kilo()
    );
    assert!(
        resag.violations_per_kilo() > 5.0 * pp.violations_per_kilo().max(1.0),
        "Res-Ag {} vs PP {}",
        resag.violations_per_kilo(),
        pp.violations_per_kilo()
    );
    // Res-Ag crashes; the Knots-aware policies must not.
    assert!(resag.crashes > 0, "Res-Ag should exhibit capacity violations");
    assert_eq!(cbp.crashes, 0, "CBP must be crash-free");
    assert_eq!(pp.crashes, 0, "CBP+PP must be crash-free");
}

#[test]
fn consolidation_saves_energy_vs_uniform() {
    // Fig. 11a: CBP+PP draws less energy than the exclusive baseline.
    let cfg = short_cfg(90);
    let uniform = run_mix(scheduler_by_name("Uniform").unwrap(), AppMix::Mix1, &cfg);
    let pp = run_mix(scheduler_by_name("CBP+PP").unwrap(), AppMix::Mix1, &cfg);
    assert!(
        pp.energy_joules < uniform.energy_joules,
        "PP {} J vs Uniform {} J",
        pp.energy_joules,
        uniform.energy_joules
    );
}

#[test]
fn pp_consolidation_raises_active_utilization() {
    // Fig. 9: per-active-GPU utilization under CBP+PP exceeds Uniform's.
    let cfg = short_cfg(90);
    let uniform = run_mix(scheduler_by_name("Uniform").unwrap(), AppMix::Mix1, &cfg);
    let pp = run_mix(scheduler_by_name("CBP+PP").unwrap(), AppMix::Mix1, &cfg);
    assert!(
        pp.mean_active_util() > uniform.mean_active_util(),
        "PP {:.1}% vs Uniform {:.1}%",
        pp.mean_active_util(),
        uniform.mean_active_util()
    );
}

#[test]
fn deterministic_runs_under_a_fixed_seed() {
    let cfg = short_cfg(30);
    let a = run_mix(scheduler_by_name("CBP+PP").unwrap(), AppMix::Mix2, &cfg);
    let b = run_mix(scheduler_by_name("CBP+PP").unwrap(), AppMix::Mix2, &cfg);
    assert_eq!(a.submitted, b.submitted);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.lc_violations, b.lc_violations);
    assert_eq!(a.crashes, b.crashes);
    assert!((a.energy_joules - b.energy_joules).abs() < 1e-6);
    assert!((a.all_jct.avg - b.all_jct.avg).abs() < 1e-9);
}

#[test]
fn different_seeds_differ() {
    let a = run_mix(scheduler_by_name("Res-Ag").unwrap(), AppMix::Mix2, &short_cfg(30));
    let mut cfg2 = short_cfg(30);
    cfg2.seed = 99;
    let b = run_mix(scheduler_by_name("Res-Ag").unwrap(), AppMix::Mix2, &cfg2);
    assert_ne!(a.submitted, b.submitted, "different seeds should draw different workloads");
}
