//! Seed-replay determinism: the whole control loop — load generation,
//! telemetry, forecasting, scheduling, simulation — must be a pure function
//! of the experiment seed. Two runs with the same seed must produce
//! bit-identical reports (wall-clock phase timings excluded).
//!
//! This pins the tie-break fix in the Tiresias/Gandiva placement path:
//! their per-node load maps used to be `HashMap`s, whose per-instance
//! random iteration order silently broke `min_by_key` ties differently
//! on every run. `knots_analyzer::report_digest` hashes every
//! decision-derived field of a `RunReport`, so any relapse shows up as a
//! digest mismatch here (and in `knots-analyzer -- --self-check`).

use knots_core::config::LoopMode;
use knots_core::experiment::{run_mix, scheduler_by_name, ExperimentConfig, DNN_SCHEDULERS};
use knots_sim::time::SimDuration;
use knots_workloads::appmix::AppMix;

fn cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        nodes: 10,
        duration: SimDuration::from_secs(120),
        seed,
        ..Default::default()
    }
}

#[test]
fn same_seed_replays_bit_identically() {
    for name in DNN_SCHEDULERS {
        let a = run_mix(scheduler_by_name(name).unwrap(), AppMix::Mix2, &cfg(42));
        let b = run_mix(scheduler_by_name(name).unwrap(), AppMix::Mix2, &cfg(42));
        assert_eq!(
            knots_analyzer::report_digest(&a),
            knots_analyzer::report_digest(&b),
            "{name}: same-seed replay diverged"
        );
    }
}

#[test]
fn parallel_sweep_matches_serial_sweep() {
    // The figure sweeps fan independent scheduler/mix legs out onto a
    // bounded thread pool; each leg is a pure function of its seed, so the
    // per-leg reports must digest identically no matter how many workers
    // ran them (and no matter which worker ran which leg).
    use knots_bench::figures::fig06_09_cluster::ClusterStudy;
    use knots_bench::figures::fig12_dnn::DnnStudy;
    use knots_workloads::dnn::DnnWorkloadConfig;

    let cfg = ExperimentConfig {
        nodes: 10,
        duration: SimDuration::from_secs(20),
        seed: 42,
        ..Default::default()
    };
    let serial = ClusterStudy::run_with_obs_threads(&cfg, &knots_obs::Obs::disabled(), 1);
    let parallel = ClusterStudy::run_with_obs_threads(&cfg, &knots_obs::Obs::disabled(), 4);
    let digests = |s: &ClusterStudy| -> Vec<u64> {
        s.reports.iter().flatten().map(knots_analyzer::report_digest).collect()
    };
    assert_eq!(digests(&serial), digests(&parallel), "cluster sweep diverged across thread counts");

    let workload = DnnWorkloadConfig::smoke();
    let serial = DnnStudy::run_threads(&workload, 1);
    let parallel = DnnStudy::run_threads(&workload, 4);
    let digests = |s: &DnnStudy| -> Vec<u64> {
        s.reports.iter().map(knots_analyzer::report_digest).collect()
    };
    assert_eq!(digests(&serial), digests(&parallel), "dnn sweep diverged across thread counts");
}

#[test]
fn empty_fault_plan_reproduces_the_pinned_digests() {
    // The analyzer self-check pins these digests (BENCH_3.json). A run
    // carrying an *empty* fault plan must drop its inert chaos engine and
    // take the fault-free code path bit for bit — chaos support may not
    // move a single decision in a run with no faults.
    use knots_chaos::FaultPlan;
    use knots_core::experiment::run_mix_with_chaos;
    const PINNED: [(&str, u64); 3] = [
        ("CBP+PP", 0x3dd6_2b08_c803_b70c),
        ("Tiresias", 0x3f35_b90a_739d_908c),
        ("Gandiva", 0x3528_4ac8_9ffc_37ac),
    ];
    for (name, want) in PINNED {
        let r = run_mix_with_chaos(
            scheduler_by_name(name).unwrap(),
            AppMix::Mix2,
            &cfg(42),
            knots_obs::Obs::disabled(),
            FaultPlan::empty(),
        );
        assert_eq!(
            knots_analyzer::report_digest(&r),
            want,
            "{name}: zero-fault digest moved off the pinned value"
        );
    }
}

#[test]
fn chaos_sweep_is_byte_identical_across_thread_counts() {
    // Fault injection must not loosen the parallel-sweep guarantee: the
    // same (seed, plan) pair replays identically no matter how many
    // workers ran the legs, down to the serialized row bytes.
    use knots_bench::figures::chaos_sweep;
    let cfg = ExperimentConfig {
        nodes: 10,
        duration: SimDuration::from_secs(20),
        seed: 42,
        ..Default::default()
    };
    let intensities = [0.0, 10.0, 30.0];
    let serial = chaos_sweep::run(&cfg, &intensities, 1);
    let parallel = chaos_sweep::run(&cfg, &intensities, 4);
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "chaos sweep diverged across thread counts"
    );
}

#[test]
fn every_loop_mode_matches_naive_ticking() {
    // Heartbeat at 5× the tick: between scheduling rounds the span
    // calendar jumps multi-tick spans and the event queue jumps straight
    // to the next calendar entry. Neither may move a single bit of the
    // report relative to the per-tick oracle, for any scheduler.
    for name in DNN_SCHEDULERS {
        let mut c = cfg(42);
        c.duration = SimDuration::from_secs(60);
        c.orch.heartbeat = SimDuration::from_millis(50);
        c.orch.naive_ticking = true;
        let naive = run_mix(scheduler_by_name(name).unwrap(), AppMix::Mix2, &c);
        c.orch.naive_ticking = false;
        for mode in [LoopMode::Calendar, LoopMode::EventQueue] {
            c.orch.mode = mode;
            let fast = run_mix(scheduler_by_name(name).unwrap(), AppMix::Mix2, &c);
            assert_eq!(
                knots_analyzer::report_digest(&fast),
                knots_analyzer::report_digest(&naive),
                "{name}: {mode:?} diverged from naive ticking"
            );
        }
    }
}

#[test]
fn every_loop_mode_matches_naive_ticking_under_chaos() {
    // Same A/B with a seeded 6-faults/min plan: node failures,
    // degradations, probe dropouts, sample corruption and heartbeat
    // delays all land on the same ticks whether the loop crawls, jumps
    // spans, or runs on the event queue.
    use knots_chaos::{gen, GenConfig};
    use knots_core::experiment::run_mix_with_chaos;
    let duration = SimDuration::from_secs(60);
    let plan =
        || gen::generate(&GenConfig { seed: 9, nodes: 10, duration, faults_per_minute: 6.0 });
    for name in DNN_SCHEDULERS {
        let mut c = cfg(42);
        c.duration = duration;
        c.orch.heartbeat = SimDuration::from_millis(50);
        c.orch.naive_ticking = true;
        let naive = run_mix_with_chaos(
            scheduler_by_name(name).unwrap(),
            AppMix::Mix2,
            &c,
            knots_obs::Obs::disabled(),
            plan(),
        );
        c.orch.naive_ticking = false;
        for mode in [LoopMode::Calendar, LoopMode::EventQueue] {
            c.orch.mode = mode;
            let fast = run_mix_with_chaos(
                scheduler_by_name(name).unwrap(),
                AppMix::Mix2,
                &c,
                knots_obs::Obs::disabled(),
                plan(),
            );
            assert_eq!(
                knots_analyzer::report_digest(&fast),
                knots_analyzer::report_digest(&naive),
                "{name}: {mode:?} diverged from naive ticking under chaos"
            );
        }
    }
}

#[test]
fn gave_up_terminal_path_is_identical_across_all_loop_modes() {
    // The crash-loop cap's terminal `GaveUp` path used to be exercised
    // only under `LoopMode::Naive` in tests; pin it across all three loop
    // modes: with the cap at 1, every pod crashed by a node failure is
    // abandoned, and the abandonment must land on the same tick — same
    // digest, same `gave_up` count — whether the loop crawls, jumps spans,
    // or runs on the event queue.
    use knots_chaos::{gen, ChaosEngine, GenConfig};
    use knots_core::config::OrchestratorConfig;
    use knots_core::orchestrator::KubeKnots;
    use knots_sim::cluster::ClusterConfig;
    use knots_workloads::loadgen::{LoadGenConfig, LoadGenerator};

    let nodes = 4usize;
    let duration = SimDuration::from_secs(60);
    let schedule = LoadGenerator::generate(AppMix::Mix2, &LoadGenConfig::new(duration, 42));
    let plan = || {
        gen::generate(&GenConfig { seed: 9, nodes, duration, faults_per_minute: 30.0 })
    };
    let run = |mode: LoopMode, naive: bool| {
        let mut cluster_cfg = ClusterConfig::homogeneous(nodes, knots_sim::config::TESTBED_GPU);
        cluster_cfg.overheads.crash_loop_cap = 1;
        let orch = OrchestratorConfig {
            heartbeat: SimDuration::from_millis(50),
            mode,
            naive_ticking: naive,
            ..Default::default()
        };
        let mut k = KubeKnots::new(cluster_cfg, Box::new(knots_sched::pp::CbpPp::new()), orch)
            .with_chaos(ChaosEngine::new(plan()));
        let report = k.run_schedule(&schedule);
        (knots_analyzer::report_digest(&report), report.faults.gave_up)
    };
    let naive = run(LoopMode::Naive, true);
    assert!(naive.1 > 0, "scenario must actually abandon crash-looping pods (gave_up = 0)");
    for mode in [LoopMode::Calendar, LoopMode::EventQueue] {
        let fast = run(mode, false);
        assert_eq!(fast, naive, "{mode:?}: GaveUp terminal path diverged from naive ticking");
    }
}

mod event_interleavings {
    //! Property: for *arbitrary* event interleavings — random seeds,
    //! off-grid heartbeat periods, durations and fault intensities — the
    //! event queue replays the oracle bit for bit, all the way down to
    //! the raw telemetry: every retained TSDB node sample and the energy
    //! total must be bitwise identical at the matching end-of-run grid
    //! point, not just the digested report.

    use knots_chaos::{gen, ChaosEngine, GenConfig};
    use knots_core::config::{LoopMode, OrchestratorConfig};
    use knots_core::orchestrator::KubeKnots;
    use knots_sim::cluster::ClusterConfig;
    use knots_sim::ids::NodeId;
    use knots_sim::metrics::{GpuSample, Metric};
    use knots_sim::time::SimDuration;
    use knots_workloads::loadgen::{LoadGenConfig, LoadGenerator};
    use knots_workloads::AppMix;
    use proptest::prelude::*;

    /// (report digest, energy bits, per-node `(at, metric bits)` samples).
    type LegResult = (u64, u64, Vec<Vec<(u64, [u64; 5])>>);

    /// Run one leg and return its [`LegResult`].
    fn run_leg(
        mode: LoopMode,
        naive: bool,
        seed: u64,
        hb_ms: u64,
        secs: u64,
        faults_per_minute: f64,
    ) -> LegResult {
        let nodes = 4usize;
        let duration = SimDuration::from_secs(secs);
        let schedule = LoadGenerator::generate(AppMix::Mix2, &LoadGenConfig::new(duration, seed));
        let cluster_cfg = ClusterConfig::homogeneous(nodes, knots_sim::config::TESTBED_GPU);
        let orch = OrchestratorConfig {
            heartbeat: SimDuration::from_millis(hb_ms),
            mode,
            naive_ticking: naive,
            ..Default::default()
        };
        let mut k = KubeKnots::new(cluster_cfg, Box::new(knots_sched::pp::CbpPp::new()), orch);
        if faults_per_minute > 0.0 {
            let plan = gen::generate(&GenConfig {
                seed: seed ^ 0x51ab,
                nodes,
                duration,
                faults_per_minute,
            });
            k = k.with_chaos(ChaosEngine::new(plan));
        }
        let report = k.run_schedule(&schedule);
        let now = k.cluster().now();
        let window = SimDuration::from_secs(secs + 3600);
        let samples = (0..nodes)
            .map(|n| {
                k.tsdb()
                    .node_window(NodeId(n), now, window)
                    .iter()
                    .map(|s: &GpuSample| {
                        let mut vals = [0u64; 5];
                        for (i, m) in Metric::ALL.iter().enumerate() {
                            vals[i] = s.get(*m).to_bits();
                        }
                        (s.at.0, vals)
                    })
                    .collect()
            })
            .collect();
        (knots_analyzer::report_digest(&report), report.energy_joules.to_bits(), samples)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        #[test]
        fn event_queue_replays_oracle_tsdb_and_energy_bit_identically(
            seed in 0u64..1_000_000,
            hb_ms in 10u64..200,   // deliberately not tick-aligned
            secs in 5u64..15,
            faulty in proptest::bool::ANY,
        ) {
            let fpm = if faulty { 6.0 } else { 0.0 };
            let naive = run_leg(LoopMode::Naive, true, seed, hb_ms, secs, fpm);
            let event = run_leg(LoopMode::EventQueue, false, seed, hb_ms, secs, fpm);
            prop_assert_eq!(naive.0, event.0, "report digest diverged");
            prop_assert_eq!(naive.1, event.1, "energy total diverged");
            prop_assert_eq!(naive.2, event.2, "TSDB node samples diverged");
        }
    }
}

mod shard_invariance {
    //! Property: the shard count and the worker-lane count are pure
    //! performance knobs — for arbitrary seeds, node counts, shard counts
    //! and fault intensities the sharded run reproduces the single-shard
    //! serial run bit for bit: report digest, energy bits and every
    //! retained TSDB node sample.

    use knots_chaos::{gen, ChaosEngine, GenConfig};
    use knots_core::config::OrchestratorConfig;
    use knots_core::orchestrator::KubeKnots;
    use knots_sim::cluster::ClusterConfig;
    use knots_sim::ids::NodeId;
    use knots_sim::metrics::{GpuSample, Metric};
    use knots_sim::time::SimDuration;
    use knots_workloads::loadgen::{LoadGenConfig, LoadGenerator};
    use knots_workloads::AppMix;
    use proptest::prelude::*;

    /// (report digest, energy bits, per-node `(at, metric bits)` samples).
    type LegResult = (u64, u64, Vec<Vec<(u64, [u64; 5])>>);

    /// Run one leg at the given partitioning and return its [`LegResult`].
    fn run_leg(
        shards: usize,
        workers: usize,
        seed: u64,
        nodes: usize,
        secs: u64,
        faults_per_minute: f64,
    ) -> LegResult {
        let duration = SimDuration::from_secs(secs);
        let schedule = LoadGenerator::generate(AppMix::Mix2, &LoadGenConfig::new(duration, seed));
        let mut cluster_cfg = ClusterConfig::homogeneous(nodes, knots_sim::config::TESTBED_GPU);
        cluster_cfg.shards = Some(shards);
        cluster_cfg.workers = Some(workers);
        let orch = OrchestratorConfig::default();
        let mut k = KubeKnots::new(cluster_cfg, Box::new(knots_sched::pp::CbpPp::new()), orch);
        if faults_per_minute > 0.0 {
            let plan = gen::generate(&GenConfig {
                seed: seed ^ 0x51ab,
                nodes,
                duration,
                faults_per_minute,
            });
            k = k.with_chaos(ChaosEngine::new(plan));
        }
        let report = k.run_schedule(&schedule);
        let now = k.cluster().now();
        let window = SimDuration::from_secs(secs + 3600);
        let samples = (0..nodes)
            .map(|n| {
                k.tsdb()
                    .node_window(NodeId(n), now, window)
                    .iter()
                    .map(|s: &GpuSample| {
                        let mut vals = [0u64; 5];
                        for (i, m) in Metric::ALL.iter().enumerate() {
                            vals[i] = s.get(*m).to_bits();
                        }
                        (s.at.0, vals)
                    })
                    .collect()
            })
            .collect();
        (knots_analyzer::report_digest(&report), report.energy_joules.to_bits(), samples)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

        #[test]
        fn sharded_runs_reproduce_the_serial_run_bit_identically(
            seed in 0u64..1_000_000,
            nodes in 3usize..24,
            shard_pow in 1u32..4,   // shards ∈ {2, 4, 8}
            workers in 2usize..5,
            secs in 5u64..12,
            faulty in proptest::bool::ANY,
        ) {
            let fpm = if faulty { 6.0 } else { 0.0 };
            let shards = 1usize << shard_pow;
            let flat = run_leg(1, 1, seed, nodes, secs, fpm);
            let sharded = run_leg(shards, workers, seed, nodes, secs, fpm);
            prop_assert_eq!(flat.0, sharded.0, "report digest diverged");
            prop_assert_eq!(flat.1, sharded.1, "energy total diverged");
            prop_assert_eq!(flat.2, sharded.2, "TSDB node samples diverged");
        }
    }
}

#[test]
fn different_seeds_diverge() {
    // Digest sanity: if report_digest collapsed distinct runs the replay
    // test above would be vacuous.
    let a = run_mix(scheduler_by_name("CBP+PP").unwrap(), AppMix::Mix2, &cfg(42));
    let b = run_mix(scheduler_by_name("CBP+PP").unwrap(), AppMix::Mix2, &cfg(43));
    assert_ne!(
        knots_analyzer::report_digest(&a),
        knots_analyzer::report_digest(&b),
        "different seeds should not collide"
    );
}
