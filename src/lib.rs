//! # kube-knots — a Rust reproduction of *Kube-Knots: Resource Harvesting
//! through Dynamic Container Orchestration in GPU-based Datacenters*
//! (IEEE CLUSTER 2019).
//!
//! This is the facade crate: it re-exports the whole workspace so examples,
//! integration tests and downstream users need a single dependency.
//!
//! * [`sim`] — the discrete-time GPU cluster simulator substrate.
//! * [`telemetry`] — the Knots monitoring layer (pyNVML + InfluxDB stand-in).
//! * [`forecast`] — Spearman (Eq. 1), autocorrelation (Eq. 2), ARIMA (Eq. 3)
//!   and the comparison regressors of Fig. 10b.
//! * [`workloads`] — Alibaba-style traces, Rodinia batch profiles,
//!   Djinn & Tonic inference services, the §V-C DNN workload, Table I mixes.
//! * [`sched`] — Uniform, Res-Ag, CBP, CBP+PP, Gandiva, Tiresias.
//! * [`core`] — the orchestrator, experiment runners and run reports.
//! * [`obs`] — structured trace recorder, metrics registry and the
//!   scheduler decision audit trail.
//!
//! ## Quickstart
//!
//! ```
//! use kube_knots::core::prelude::*;
//!
//! let cfg = ExperimentConfig {
//!     duration: SimDuration::from_secs(20),
//!     ..Default::default()
//! };
//! let report = run_mix(Box::new(CbpPp::new()), AppMix::Mix3, &cfg);
//! assert!(report.completed > 0);
//! ```

pub use knots_core as core;
pub use knots_forecast as forecast;
pub use knots_obs as obs;
pub use knots_sched as sched;
pub use knots_sim as sim;
pub use knots_telemetry as telemetry;
pub use knots_workloads as workloads;
