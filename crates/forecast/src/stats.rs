//! Descriptive statistics used throughout the evaluation: percentiles for
//! the utilization plots (Figs. 6, 8, 9), the coefficient of variation for
//! load classification (Fig. 7, §III-C), and CDFs for the trace analysis
//! (Fig. 2b) and JCT plots (Fig. 12a).

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance. Returns 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Coefficient of variation, `σ / μ` (§III-C). An application mix with
/// COV ≤ 1 has a consistent load that is easy to guarantee; COV > 1 signals
/// a heavy-tailed distribution where naive co-location causes interference.
///
/// Returns 0 when the mean is (near) zero, matching the "no load" reading.
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m.abs() < 1e-12 {
        0.0
    } else {
        stddev(xs) / m
    }
}

/// Percentile with linear interpolation between closest ranks.
/// `q` is in `[0, 1]`; `percentile(xs, 0.5)` is the median.
///
/// Returns 0 for an empty slice. NaN values sort last (IEEE total order),
/// so they can only surface in the top percentiles of polluted input.
///
/// # Panics
/// Panics when `q` is outside `[0, 1]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile must be in [0,1]: {q}");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_of_sorted(&sorted, q)
}

/// Percentile of an already-sorted slice (ascending). Cheaper when many
/// quantiles of the same data are needed.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The standard evaluation quantiles reported in Figs. 6, 8 and 9:
/// (50th, 90th, 99th, max).
pub fn utilization_quartet(xs: &[f64]) -> (f64, f64, f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    (
        percentile_of_sorted(&sorted, 0.50),
        percentile_of_sorted(&sorted, 0.90),
        percentile_of_sorted(&sorted, 0.99),
        sorted.last().copied().unwrap_or(0.0),
    )
}

/// Empirical CDF evaluated at `n` equally-spaced points of the data range.
/// Returns `(value, fraction ≤ value)` pairs — the Fig. 2b / Fig. 12a shape.
pub fn cdf_points(xs: &[f64], n: usize) -> Vec<(f64, f64)> {
    if xs.is_empty() || n == 0 {
        return vec![];
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let lo = sorted[0];
    let hi = sorted.last().copied().unwrap_or(lo);
    (0..n)
        .map(|i| {
            // The top grid point must be exactly the maximum: the linear
            // interpolation can round a hair below `hi`, which would report
            // a CDF that never reaches 1.0.
            let v =
                if n == 1 || i == n - 1 { hi } else { lo + (hi - lo) * i as f64 / (n - 1) as f64 };
            let count = sorted.partition_point(|&x| x <= v);
            (v, count as f64 / sorted.len() as f64)
        })
        .collect()
}

/// Simple centered-free trailing moving average with window `w`.
pub fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "window must be positive");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        acc += x;
        if i >= w {
            acc -= xs[i - w];
        }
        let len = (i + 1).min(w);
        out.push(acc / len as f64);
    }
    out
}

/// Mean absolute percentage error between predictions and actuals, skipping
/// near-zero actuals. Returns `None` when nothing could be compared.
pub fn mape(pred: &[f64], actual: &[f64]) -> Option<f64> {
    assert_eq!(pred.len(), actual.len());
    let mut total = 0.0;
    let mut n = 0usize;
    for (&p, &a) in pred.iter().zip(actual) {
        if a.abs() > 1e-9 {
            total += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(total / n as f64)
    }
}

/// Root-mean-square error.
pub fn rmse(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if pred.is_empty() {
        return 0.0;
    }
    let sq: f64 = pred.iter().zip(actual).map(|(&p, &a)| (p - a) * (p - a)).sum();
    (sq / pred.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn cov_classifies_load_stability() {
        let steady = [0.5, 0.52, 0.48, 0.5, 0.51];
        let bursty = [0.01, 0.02, 0.9, 0.01, 0.02];
        assert!(cov(&steady) < 1.0);
        assert!(cov(&bursty) > 1.0);
        assert_eq!(cov(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn percentile_survives_nan_samples() {
        // A single NaN telemetry sample must not abort the whole run.
        // total_cmp sorts NaN after +inf, so low/mid percentiles of the
        // finite data are unaffected and only the max picks up the NaN.
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!(percentile(&xs, 1.0).is_nan());
        let (p50, _, _, max) = utilization_quartet(&xs);
        assert!(p50.is_finite());
        assert!(max.is_nan());
    }

    #[test]
    fn quartet_is_monotone() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (p50, p90, p99, max) = utilization_quartet(&xs);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= max);
        assert!((p50 - 49.5).abs() < 1e-9);
        assert!((max - 99.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let xs = [1.0, 1.0, 2.0, 3.0, 5.0, 8.0];
        let pts = cdf_points(&xs, 20);
        assert_eq!(pts.len(), 20);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moving_average_warms_up() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ma = moving_average(&xs, 3);
        assert!((ma[0] - 1.0).abs() < 1e-12);
        assert!((ma[1] - 1.5).abs() < 1e-12);
        assert!((ma[4] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn error_metrics() {
        let pred = [1.1, 2.2, 2.7];
        let act = [1.0, 2.0, 3.0];
        let m = mape(&pred, &act).unwrap();
        assert!((m - (0.1 + 0.1 + 0.1) / 3.0).abs() < 1e-12);
        assert!(rmse(&pred, &act) > 0.0);
        assert_eq!(mape(&[1.0], &[0.0]), None);
        assert_eq!(rmse(&[], &[]), 0.0);
    }
}
