//! Spearman's rank correlation — Eq. (1) of the paper.
//!
//! CBP schedules two pods to *different* GPUs when their utilization metrics
//! are positively correlated (they would peak together), and packs
//! uncorrelated/negatively-correlated pods onto the same device (§IV-C).
//! Fig. 2a/2c derive the same statistic across the Alibaba trace's metric
//! pairs.

/// Average ranks (1-based), with ties sharing the mean of their rank span —
/// the standard treatment that keeps Eq. (1) correct in expectation.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (xs[idx[j + 1]] - xs[idx[i]]).abs() < 1e-12 {
            j += 1;
        }
        // Tied block i..=j shares the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

/// Align two series on their common trailing suffix — the freshest samples.
///
/// Telemetry series rarely share a length (pods start at different times,
/// windows truncate differently), and CBP already aligns its reference this
/// way (`reference[len-n..]` in `correlation_ok`), so the library does it
/// uniformly instead of panicking on a mismatch.
fn common_suffix<'a>(a: &'a [f64], b: &'a [f64]) -> (&'a [f64], &'a [f64]) {
    let n = a.len().min(b.len());
    (&a[a.len() - n..], &b[b.len() - n..])
}

/// Spearman's ρ between two series.
///
/// Computed as the Pearson correlation of the rank vectors, which reduces to
/// the paper's Eq. (1) (`ρ = 1 − 6Σd²/n(n²−1)`) when there are no ties and
/// handles ties gracefully otherwise. Returns 0 when either series is
/// constant or the overlap is shorter than 2 (no usable signal — the §IV-D
/// "input time-series data is limited" case).
///
/// Mismatched lengths are not an error: the series are aligned on their
/// common *trailing* suffix (the most recent overlap), matching how CBP
/// aligns an app's reference series against resident-pod telemetry.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let (a, b) = common_suffix(a, b);
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// The textbook Eq. (1) form (no tie correction): `1 − 6Σd²/n(n²−1)`.
/// Kept for exact parity with the paper's formula; prefer [`spearman`].
/// Mismatched lengths align on the common trailing suffix, as [`spearman`].
pub fn spearman_d2(a: &[f64], b: &[f64]) -> f64 {
    let (a, b) = common_suffix(a, b);
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let d2: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - y) * (x - y)).sum();
    1.0 - 6.0 * d2 / (n as f64 * ((n * n - 1) as f64))
}

/// Pearson correlation coefficient; 0 when either input is constant.
/// Mismatched lengths align on the common trailing suffix.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let (a, b) = common_suffix(a, b);
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let xa = a[i] - ma;
        let xb = b[i] - mb;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if da < 1e-18 || db < 1e-18 {
        0.0
    } else {
        (num / (da * db).sqrt()).clamp(-1.0, 1.0)
    }
}

/// Full pairwise Spearman matrix over a set of series (the Fig. 2 heat map).
/// `series[i]` must all share one length.
pub fn correlation_matrix(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = series.len();
    let mut m = vec![vec![0.0; k]; k];
    // Rank once per series, correlate pairs.
    let ranked: Vec<Vec<f64>> = series.iter().map(|s| ranks(s)).collect();
    for i in 0..k {
        m[i][i] = 1.0;
        for j in (i + 1)..k {
            let r = pearson(&ranked[i], &ranked[j]);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn perfect_monotone_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [10.0, 100.0, 1000.0, 10000.0, 100000.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = b.iter().rev().copied().collect();
        assert!((spearman(&a, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_matches_rank_pearson_without_ties() {
        let a = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.0, 6.0];
        let b = [2.0, 7.0, 1.0, 8.0, 2.5, 0.5, 9.0, 4.0];
        assert!((spearman(&a, &b) - spearman_d2(&a, &b)).abs() < 1e-9);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        // Alternating series vs a ramp: rank correlation near zero.
        let a: Vec<f64> = (0..40).map(|i| if i % 2 == 0 { 1.0 } else { 2.0 }).collect();
        let b: Vec<f64> = (0..40).map(|i| i as f64).collect();
        assert!(spearman(&a, &b).abs() < 0.2);
    }

    #[test]
    fn constant_series_yields_zero() {
        let a = [5.0; 10];
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(spearman(&a, &b), 0.0);
        assert_eq!(spearman(&[], &[]), 0.0);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let s = vec![
            (0..30).map(|i| i as f64).collect::<Vec<_>>(),
            (0..30).map(|i| (i * i) as f64).collect(),
            (0..30).map(|i| 30.0 - i as f64).collect(),
        ];
        let m = correlation_matrix(&s);
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            assert!((m[i][i] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((m[i][j] - m[j][i]).abs() < 1e-12);
            }
        }
        assert!(m[0][1] > 0.99); // both increasing
        assert!(m[0][2] < -0.99); // opposite
    }

    #[test]
    fn length_mismatch_aligns_on_trailing_suffix() {
        // The longer series' *oldest* samples are dropped: ρ must equal the
        // explicit suffix computation CBP performs.
        let long: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let short: Vec<f64> = (0..8).map(|i| (i * i) as f64).collect();
        let expected = {
            let n = short.len();
            let ra = ranks(&long[long.len() - n..]);
            let rb = ranks(&short);
            pearson(&ra, &rb)
        };
        assert_eq!(spearman(&long, &short).to_bits(), expected.to_bits());
        assert_eq!(spearman(&short, &long).to_bits(), expected.to_bits());
        assert!((spearman(&long, &short) - 1.0).abs() < 1e-12, "both increasing");
        // Degenerate overlaps yield the "no signal" zero, not a panic.
        assert_eq!(spearman(&[1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(spearman(&[], &[1.0, 2.0]), 0.0);
        assert_eq!(spearman_d2(&[1.0], &[1.0, 2.0, 3.0]), 0.0);
        // Eq. (1) and rank-Pearson still agree on mismatched tie-free input.
        let a = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.0, 6.0];
        let b = [0.0, 2.0, 7.0, 1.0, 8.0, 2.5, 0.5, 9.0, 4.0];
        assert!((spearman(&a, &b) - spearman_d2(&a, &b)).abs() < 1e-9);
    }
}
