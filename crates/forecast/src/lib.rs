//! # knots-forecast — statistics and time-series forecasting for Kube-Knots
//!
//! Implements every analytical building block the paper's schedulers use:
//!
//! * [`stats`] — means, percentiles, CDFs and the coefficient of variation
//!   (COV) used to classify app-mix load (§III-C, Fig. 7).
//! * [`spearman`] — Spearman's rank correlation, Eq. (1), the signal CBP
//!   uses to decide which pods may share a GPU (§IV-C, Fig. 2).
//! * [`autocorr`] — the autocorrelation function, Eq. (2), which PP uses to
//!   detect periodic peak-resource phases (§IV-D).
//! * [`arima`] — the first-order non-seasonal ARIMA (an AR(1) with
//!   intercept), Eq. (3), fitted over the sliding telemetry window.
//! * [`regressors`] — the alternative estimators the paper compares in
//!   Fig. 10b (Theil-Sen, SGD linear regression, a small MLP) behind a
//!   common [`regressors::Regressor`] trait.
//! * [`extra_models`] — the remaining §IV-D comparison models (closed-form
//!   linear regression, automatic relevance determination, random forest).
//! * [`accuracy`] — walk-forward evaluation of forecast accuracy versus
//!   heartbeat interval, regenerating the Fig. 10b methodology.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accuracy;
pub mod arima;
pub mod autocorr;
pub mod extra_models;
pub mod regressors;
pub mod spearman;
pub mod stats;

pub use arima::Ar1;
pub use autocorr::{autocorrelation, dominant_period};
pub use regressors::Regressor;
pub use spearman::spearman;
pub use stats::{cov, mean, percentile, stddev};
