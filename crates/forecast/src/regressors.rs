//! The alternative utilization estimators of Fig. 10b.
//!
//! §IV-D: "We quantitatively analyzed the mean-squared-error and profiling
//! overheads of different regression models such as linear-regression,
//! random forest, SGD, automatic relevance determination, Theil-Sen, and
//! multi-layer perceptron ... a statistical model such as ARIMA works with
//! good accuracy. Other complex models do not improve much due to limited
//! real-time training data." This module implements the three comparators
//! the figure plots — Theil-Sen, SGD linear regression and a small MLP —
//! behind one [`Regressor`] trait so the accuracy harness can sweep them.
//!
//! All models are deterministic: weight initialization uses a fixed
//! xorshift stream, and training order is fixed.

/// A one-series forecaster trained on a sliding window.
pub trait Regressor {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;
    /// Fit on the most recent window (oldest value first).
    fn fit(&mut self, window: &[f64]);
    /// Predict the value `h` steps after the end of the fitted window.
    fn predict_h(&self, h: usize) -> f64;
    /// Convenience: one-step-ahead prediction.
    fn predict_next(&self) -> f64 {
        self.predict_h(1)
    }
}

// ---------------------------------------------------------------------
// Theil-Sen
// ---------------------------------------------------------------------

/// Theil-Sen estimator: slope is the median of all pairwise slopes, the
/// intercept the median of residual offsets. Robust to outliers; linear in
/// its extrapolation, which is exactly why it struggles with the phase-
/// structured GPU traces.
#[derive(Debug, Default, Clone)]
pub struct TheilSen {
    slope: f64,
    intercept: f64,
    n: usize,
}

impl Regressor for TheilSen {
    fn name(&self) -> &'static str {
        "Theil-Sen"
    }

    fn fit(&mut self, window: &[f64]) {
        self.n = window.len();
        if window.len() < 2 {
            self.slope = 0.0;
            self.intercept = window.last().copied().unwrap_or(0.0);
            return;
        }
        let mut slopes = Vec::with_capacity(window.len() * (window.len() - 1) / 2);
        for i in 0..window.len() {
            for j in (i + 1)..window.len() {
                slopes.push((window[j] - window[i]) / (j - i) as f64);
            }
        }
        slopes.sort_by(|a, b| a.total_cmp(b));
        self.slope = median_of_sorted(&slopes);
        let mut offsets: Vec<f64> =
            window.iter().enumerate().map(|(i, &y)| y - self.slope * i as f64).collect();
        offsets.sort_by(|a, b| a.total_cmp(b));
        self.intercept = median_of_sorted(&offsets);
    }

    fn predict_h(&self, h: usize) -> f64 {
        let t = (self.n.saturating_sub(1) + h) as f64;
        self.intercept + self.slope * t
    }
}

fn median_of_sorted(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

// ---------------------------------------------------------------------
// SGD linear regression
// ---------------------------------------------------------------------

/// Linear model `y = a + b·t` trained by stochastic gradient descent with a
/// fixed pass order (deterministic). Time is normalized to `[0, 1]` for
/// stable step sizes.
#[derive(Debug, Clone)]
pub struct SgdLinear {
    a: f64,
    b: f64,
    n: usize,
    /// Learning rate.
    pub lr: f64,
    /// Training epochs per fit.
    pub epochs: usize,
}

impl Default for SgdLinear {
    fn default() -> Self {
        SgdLinear { a: 0.0, b: 0.0, n: 0, lr: 0.05, epochs: 40 }
    }
}

impl Regressor for SgdLinear {
    fn name(&self) -> &'static str {
        "SGD"
    }

    fn fit(&mut self, window: &[f64]) {
        self.n = window.len();
        if window.is_empty() {
            self.a = 0.0;
            self.b = 0.0;
            return;
        }
        let scale = (window.len().max(2) - 1) as f64;
        self.a = window[0];
        self.b = 0.0;
        for _ in 0..self.epochs {
            for (i, &y) in window.iter().enumerate() {
                let t = i as f64 / scale;
                let err = self.a + self.b * t - y;
                self.a -= self.lr * err;
                self.b -= self.lr * err * t;
            }
        }
    }

    fn predict_h(&self, h: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let scale = (self.n.max(2) - 1) as f64;
        let t = (self.n - 1 + h) as f64 / scale;
        self.a + self.b * t
    }
}

// ---------------------------------------------------------------------
// Small MLP
// ---------------------------------------------------------------------

/// A tiny multi-layer perceptron: `LAGS` inputs (the most recent values),
/// one tanh hidden layer, one linear output, trained by full-batch gradient
/// descent for a fixed number of epochs. Deterministic initialization.
///
/// The paper's point — "complex models do not improve much due to limited
/// real-time training data" — shows up as this model's tendency to overfit
/// very short windows.
#[derive(Debug, Clone)]
pub struct Mlp {
    w1: Vec<[f64; Mlp::LAGS]>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    last_inputs: [f64; Mlp::LAGS],
    norm: (f64, f64),
    trained: bool,
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs per fit.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for Mlp {
    fn default() -> Self {
        Mlp::new(8, 60, 0.05)
    }
}

impl Mlp {
    /// Input lag count.
    pub const LAGS: usize = 4;

    /// Construct with explicit hyper-parameters.
    pub fn new(hidden: usize, epochs: usize, lr: f64) -> Self {
        let mut rng = Xorshift(0x9E37_79B9_7F4A_7C15);
        let w1 = (0..hidden)
            .map(|_| {
                let mut row = [0.0; Mlp::LAGS];
                for r in &mut row {
                    *r = rng.unit() - 0.5;
                }
                row
            })
            .collect();
        let b1 = vec![0.0; hidden];
        let w2 = (0..hidden).map(|_| rng.unit() - 0.5).collect();
        Mlp {
            w1,
            b1,
            w2,
            b2: 0.0,
            last_inputs: [0.0; Mlp::LAGS],
            norm: (0.0, 1.0),
            trained: false,
            hidden,
            epochs,
            lr,
        }
    }

    fn forward(&self, x: &[f64; Mlp::LAGS]) -> (Vec<f64>, f64) {
        let h: Vec<f64> = (0..self.hidden)
            .map(|j| {
                let z: f64 =
                    self.w1[j].iter().zip(x.iter()).map(|(w, xi)| w * xi).sum::<f64>() + self.b1[j];
                z.tanh()
            })
            .collect();
        let y = self.w2.iter().zip(&h).map(|(w, hj)| w * hj).sum::<f64>() + self.b2;
        (h, y)
    }
}

impl Regressor for Mlp {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn fit(&mut self, window: &[f64]) {
        self.trained = false;
        if window.len() < Mlp::LAGS + 1 {
            self.last_inputs = [window.last().copied().unwrap_or(0.0); Mlp::LAGS];
            self.norm = (0.0, 1.0);
            return;
        }
        // Normalize to zero-mean unit-ish scale for stable training.
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        let scale = window.iter().map(|y| (y - mean).abs()).fold(0.0f64, f64::max).max(1e-9);
        self.norm = (mean, scale);
        let normed: Vec<f64> = window.iter().map(|y| (y - mean) / scale).collect();

        for _ in 0..self.epochs {
            for t in Mlp::LAGS..normed.len() {
                let mut x = [0.0; Mlp::LAGS];
                x.copy_from_slice(&normed[t - Mlp::LAGS..t]);
                let target = normed[t];
                let (h, y) = self.forward(&x);
                let err = y - target;
                // Output layer gradients.
                #[allow(clippy::needless_range_loop)]
                for j in 0..self.hidden {
                    let g2 = err * h[j];
                    // Hidden layer gradients (before updating w2).
                    let gh = err * self.w2[j] * (1.0 - h[j] * h[j]);
                    for (w, xi) in self.w1[j].iter_mut().zip(x.iter()) {
                        *w -= self.lr * gh * xi;
                    }
                    self.b1[j] -= self.lr * gh;
                    self.w2[j] -= self.lr * g2;
                }
                self.b2 -= self.lr * err;
            }
        }
        let mut last = [0.0; Mlp::LAGS];
        last.copy_from_slice(&normed[normed.len() - Mlp::LAGS..]);
        self.last_inputs = last;
        self.trained = true;
    }

    fn predict_h(&self, h: usize) -> f64 {
        let (mean, scale) = self.norm;
        if !self.trained {
            return self.last_inputs[Mlp::LAGS - 1] * scale + mean;
        }
        let mut x = self.last_inputs;
        let mut y = x[Mlp::LAGS - 1];
        for _ in 0..h {
            y = self.forward(&x).1;
            x.rotate_left(1);
            x[Mlp::LAGS - 1] = y;
        }
        y * scale + mean
    }
}

/// Deterministic xorshift64* stream for weight initialization.
struct Xorshift(u64);

impl Xorshift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| 2.0 + 0.5 * i as f64).collect()
    }

    #[test]
    fn theil_sen_recovers_a_clean_line() {
        let mut ts = TheilSen::default();
        ts.fit(&ramp(20));
        assert!((ts.slope - 0.5).abs() < 1e-9);
        // Next value of the ramp: 2 + 0.5*20 = 12.
        assert!((ts.predict_next() - 12.0).abs() < 1e-9);
        assert!((ts.predict_h(4) - 13.5).abs() < 1e-9);
    }

    #[test]
    fn theil_sen_resists_outliers() {
        let mut ys = ramp(21);
        ys[10] = 1000.0; // one wild outlier
        let mut ts = TheilSen::default();
        ts.fit(&ys);
        assert!((ts.slope - 0.5).abs() < 0.05, "slope {}", ts.slope);
    }

    #[test]
    fn sgd_fits_a_line_approximately() {
        let mut s = SgdLinear::default();
        s.fit(&ramp(30));
        let pred = s.predict_next();
        assert!((pred - 17.0).abs() < 1.0, "pred {pred}");
    }

    #[test]
    fn mlp_learns_short_patterns() {
        // Period-2 oscillation is learnable from 4 lags.
        let ys: Vec<f64> = (0..60).map(|i| if i % 2 == 0 { 10.0 } else { 20.0 }).collect();
        let mut m = Mlp::default();
        m.fit(&ys);
        // Last value is ys[59] = 20 (odd), next should be ~10.
        let p = m.predict_next();
        assert!((p - 10.0).abs() < 4.0, "pred {p}");
    }

    #[test]
    fn mlp_is_deterministic() {
        let ys: Vec<f64> = (0..40).map(|i| (i as f64 * 0.4).sin() * 5.0 + 10.0).collect();
        let mut a = Mlp::default();
        let mut b = Mlp::default();
        a.fit(&ys);
        b.fit(&ys);
        assert_eq!(a.predict_h(3), b.predict_h(3));
    }

    #[test]
    fn degenerate_windows_do_not_panic() {
        for r in [
            &mut TheilSen::default() as &mut dyn Regressor,
            &mut SgdLinear::default(),
            &mut Mlp::default(),
        ] {
            r.fit(&[]);
            let _ = r.predict_next();
            r.fit(&[5.0]);
            let p = r.predict_next();
            assert!(p.is_finite());
        }
    }

    #[test]
    fn median_helper() {
        assert_eq!(median_of_sorted(&[]), 0.0);
        assert_eq!(median_of_sorted(&[3.0]), 3.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 9.0]), 2.0);
    }
}
