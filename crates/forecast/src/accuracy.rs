//! Walk-forward forecast-accuracy evaluation — the Fig. 10b methodology.
//!
//! The paper varies the heartbeat (sampling) interval from 1000 ms down to
//! 0.1 ms and reports the fraction of utilization forecasts that were
//! accurate. Three elements are fixed by §IV-D:
//!
//! * the sliding training window is five *seconds* of telemetry (so the
//!   number of training points grows as the heartbeat shrinks);
//! * the forecast target is the next heartbeat sample (Eq. 3 is the
//!   one-step recurrence `Y_pred = µ + φ·Y_{t−1}`);
//! * the model is refitted each step on the trailing window.

use crate::regressors::Regressor;
use crate::stats;

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyConfig {
    /// Number of samples in the sliding fit window.
    pub window: usize,
    /// Forecast horizon, in samples.
    pub horizon: usize,
    /// A prediction is "accurate" when within this absolute tolerance of
    /// the truth. For utilization-percent series the paper-style choice is
    /// 10 (percentage points).
    pub tolerance_abs: f64,
    /// Evaluate every `stride`-th origin (1 = every step). Larger strides
    /// keep long-series evaluations cheap without biasing the estimate.
    pub stride: usize,
}

impl AccuracyConfig {
    /// The §IV-D setup for a given heartbeat: the model is refitted on the
    /// trailing 5 s window and asked for the *next sample* (Eq. 3 is a
    /// one-step recurrence `Y_pred = µ + φ·Y_{t−1}` applied at the
    /// heartbeat rate).
    pub fn paper(heartbeat_us: u64) -> Self {
        let window = (5_000_000 / heartbeat_us).max(2) as usize;
        AccuracyConfig { window, horizon: 1, tolerance_abs: 10.0, stride: 1 }
    }
}

/// Outcome of a walk-forward evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Fraction of forecasts within tolerance, `[0, 1]`.
    pub accuracy: f64,
    /// Root-mean-square error of all forecasts.
    pub rmse: f64,
    /// Mean absolute percentage error (None if all actuals ~0).
    pub mape: Option<f64>,
    /// Number of forecasts evaluated.
    pub evaluated: usize,
}

/// Walk the series: at each origin `t`, fit on `series[t-window..t]`,
/// forecast `horizon` steps ahead, compare against `series[t+horizon-1]`.
pub fn walk_forward(
    series: &[f64],
    reg: &mut dyn Regressor,
    cfg: &AccuracyConfig,
) -> AccuracyReport {
    let stride = cfg.stride.max(1);
    let mut preds = Vec::new();
    let mut actuals = Vec::new();
    let mut t = cfg.window;
    while t + cfg.horizon <= series.len() {
        reg.fit(&series[t - cfg.window..t]);
        preds.push(reg.predict_h(cfg.horizon));
        actuals.push(series[t + cfg.horizon - 1]);
        t += stride;
    }
    summarize(&preds, &actuals, cfg.tolerance_abs)
}

fn summarize(preds: &[f64], actuals: &[f64], tol: f64) -> AccuracyReport {
    if preds.is_empty() {
        return AccuracyReport { accuracy: 0.0, rmse: 0.0, mape: None, evaluated: 0 };
    }
    let hits = preds.iter().zip(actuals).filter(|(p, a)| (*p - *a).abs() <= tol).count();
    AccuracyReport {
        accuracy: hits as f64 / preds.len() as f64,
        rmse: stats::rmse(preds, actuals),
        mape: stats::mape(preds, actuals),
        evaluated: preds.len(),
    }
}

/// Downsample a fine-grained series by keeping every `k`-th point.
pub fn downsample(series: &[f64], k: usize) -> Vec<f64> {
    assert!(k > 0);
    series.iter().step_by(k).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arima::ArimaRegressor;
    use crate::regressors::TheilSen;

    #[test]
    fn perfect_series_scores_high() {
        // A slowly converging AR(1) path is exactly learnable by ARIMA.
        let mut ys = vec![0.0];
        for _ in 0..300 {
            let last = *ys.last().unwrap();
            ys.push(5.0 + 0.9 * last);
        }
        let cfg = AccuracyConfig { window: 30, horizon: 1, tolerance_abs: 1.0, stride: 1 };
        let rep = walk_forward(&ys, &mut ArimaRegressor::default(), &cfg);
        assert!(rep.accuracy > 0.95, "accuracy {}", rep.accuracy);
        assert!(rep.evaluated > 200);
    }

    #[test]
    fn impossible_series_scores_low() {
        // Large jumps every step, far beyond the tolerance band.
        let ys: Vec<f64> = (0..200).map(|i| if i % 2 == 0 { 0.0 } else { 100.0 }).collect();
        let cfg = AccuracyConfig { window: 10, horizon: 1, tolerance_abs: 5.0, stride: 1 };
        let rep = walk_forward(&ys, &mut TheilSen::default(), &cfg);
        assert!(rep.accuracy < 0.5, "accuracy {}", rep.accuracy);
    }

    #[test]
    fn paper_config_scales_window_with_heartbeat() {
        let at_1000ms = AccuracyConfig::paper(1_000_000);
        assert_eq!(at_1000ms.window, 5);
        assert_eq!(at_1000ms.horizon, 1);
        let at_1ms = AccuracyConfig::paper(1_000);
        assert_eq!(at_1ms.window, 5000);
        assert_eq!(at_1ms.horizon, 1);
        let at_01ms = AccuracyConfig::paper(100);
        assert_eq!(at_01ms.window, 50_000);
    }

    #[test]
    fn stride_reduces_evaluations_not_conclusions() {
        let ys: Vec<f64> = (0..500).map(|i| (i as f64 * 0.05).sin() * 10.0 + 50.0).collect();
        let base = AccuracyConfig { window: 50, horizon: 1, tolerance_abs: 3.0, stride: 1 };
        let strided = AccuracyConfig { stride: 7, ..base };
        let a = walk_forward(&ys, &mut ArimaRegressor::default(), &base);
        let b = walk_forward(&ys, &mut ArimaRegressor::default(), &strided);
        assert!(b.evaluated < a.evaluated);
        assert!((a.accuracy - b.accuracy).abs() < 0.2);
    }

    #[test]
    fn too_short_series_yields_empty_report() {
        let cfg = AccuracyConfig { window: 100, horizon: 10, tolerance_abs: 1.0, stride: 1 };
        let rep = walk_forward(&[1.0, 2.0], &mut ArimaRegressor::default(), &cfg);
        assert_eq!(rep.evaluated, 0);
        assert_eq!(rep.accuracy, 0.0);
    }

    #[test]
    fn downsample_keeps_every_kth() {
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(downsample(&ys, 3), vec![0.0, 3.0, 6.0, 9.0]);
        assert_eq!(downsample(&ys, 1).len(), 10);
    }
}
