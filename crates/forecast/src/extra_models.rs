//! The remaining §IV-D comparison estimators: "linear-regression, random
//! forest, SGD, automatic relevance determination, Theil-Sen, and
//! multi-layer perceptron". SGD/Theil-Sen/MLP live in [`crate::regressors`];
//! this module adds closed-form ordinary least squares, a small
//! deterministic random-forest regressor over lag features, and a pruned
//! automatic-relevance-determination (ARD) linear model.
//!
//! All are deterministic (fixed xorshift streams) and train on whatever
//! window they are given — the paper's point stands: none of them beats the
//! two-parameter ARIMA given ~5 s of real-time data.

use crate::regressors::Regressor;

// ---------------------------------------------------------------------
// Ordinary least squares on the time index.
// ---------------------------------------------------------------------

/// Closed-form linear regression `y = a + b·t` (the "linear-regression"
/// entry of §IV-D). Unlike [`crate::regressors::SgdLinear`] this is exact,
/// at the cost of no incrementality.
#[derive(Debug, Default, Clone)]
pub struct OlsLinear {
    a: f64,
    b: f64,
    n: usize,
}

impl Regressor for OlsLinear {
    fn name(&self) -> &'static str {
        "Linear (OLS)"
    }

    fn fit(&mut self, window: &[f64]) {
        self.n = window.len();
        if window.len() < 2 {
            self.a = window.last().copied().unwrap_or(0.0);
            self.b = 0.0;
            return;
        }
        let n = window.len() as f64;
        let mean_t = (n - 1.0) / 2.0;
        let mean_y = window.iter().sum::<f64>() / n;
        let mut stt = 0.0;
        let mut sty = 0.0;
        for (i, &y) in window.iter().enumerate() {
            let dt = i as f64 - mean_t;
            stt += dt * dt;
            sty += dt * (y - mean_y);
        }
        self.b = if stt < 1e-18 { 0.0 } else { sty / stt };
        self.a = mean_y - self.b * mean_t;
    }

    fn predict_h(&self, h: usize) -> f64 {
        self.a + self.b * (self.n.saturating_sub(1) + h) as f64
    }
}

// ---------------------------------------------------------------------
// Automatic relevance determination (pruned ridge on lag features).
// ---------------------------------------------------------------------

/// A compact ARD-style linear model over the last [`Ard::LAGS`] values:
/// iteratively re-weighted ridge regression where each lag gets its own
/// precision; lags whose precision diverges are pruned (their weight forced
/// to zero) — the "automatic relevance determination" entry of §IV-D.
#[derive(Debug, Clone)]
pub struct Ard {
    weights: [f64; Ard::LAGS],
    bias: f64,
    last: [f64; Ard::LAGS],
    /// Outer re-estimation iterations.
    pub iters: usize,
}

impl Default for Ard {
    fn default() -> Self {
        Ard { weights: [0.0; Ard::LAGS], bias: 0.0, last: [0.0; Ard::LAGS], iters: 6 }
    }
}

impl Ard {
    /// Number of autoregressive lag features.
    pub const LAGS: usize = 4;

    /// Current per-lag weights (after pruning), for inspection/tests.
    pub fn weights(&self) -> &[f64; Ard::LAGS] {
        &self.weights
    }
}

impl Regressor for Ard {
    fn name(&self) -> &'static str {
        "ARD"
    }

    fn fit(&mut self, window: &[f64]) {
        self.weights = [0.0; Ard::LAGS];
        self.bias = window.last().copied().unwrap_or(0.0);
        if window.len() < Ard::LAGS + 2 {
            self.last = [self.bias; Ard::LAGS];
            return;
        }
        // Build the lag design matrix (centered).
        let rows = window.len() - Ard::LAGS;
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        let x: Vec<[f64; Ard::LAGS]> = (0..rows)
            .map(|r| {
                let mut f = [0.0; Ard::LAGS];
                for (k, fk) in f.iter_mut().enumerate() {
                    *fk = window[r + k] - mean;
                }
                f
            })
            .collect();
        let y: Vec<f64> = (0..rows).map(|r| window[r + Ard::LAGS] - mean).collect();

        // Iteratively re-weighted per-feature ridge via coordinate descent.
        let mut alpha = [1.0f64; Ard::LAGS]; // per-weight precision
        let mut w = [0.0f64; Ard::LAGS];
        for _ in 0..self.iters {
            // Coordinate descent pass.
            for j in 0..Ard::LAGS {
                if alpha[j] > 1e6 {
                    w[j] = 0.0; // pruned
                    continue;
                }
                let mut num = 0.0;
                let mut den = alpha[j];
                for (xi, &yi) in x.iter().zip(&y) {
                    let residual_wo_j: f64 =
                        yi - (0..Ard::LAGS).filter(|&k| k != j).map(|k| w[k] * xi[k]).sum::<f64>();
                    num += xi[j] * residual_wo_j;
                    den += xi[j] * xi[j];
                }
                w[j] = if den < 1e-18 { 0.0 } else { num / den };
            }
            // Re-estimate relevances: small weights become irrelevant.
            for j in 0..Ard::LAGS {
                let w2 = w[j] * w[j];
                alpha[j] = if w2 < 1e-12 { 1e9 } else { (1.0 / w2).min(1e9) };
            }
        }
        self.weights = w;
        self.bias = mean * (1.0 - w.iter().sum::<f64>());
        let mut last = [0.0; Ard::LAGS];
        last.copy_from_slice(&window[window.len() - Ard::LAGS..]);
        self.last = last;
    }

    fn predict_h(&self, h: usize) -> f64 {
        let mut state = self.last;
        let mut y = state[Ard::LAGS - 1];
        for _ in 0..h {
            y = self.bias + self.weights.iter().zip(state.iter()).map(|(w, s)| w * s).sum::<f64>();
            state.rotate_left(1);
            state[Ard::LAGS - 1] = y;
        }
        y
    }
}

// ---------------------------------------------------------------------
// Random forest over lag features.
// ---------------------------------------------------------------------

/// A small deterministic random-forest regressor: `trees` depth-limited
/// regression trees over the last [`RandomForest::LAGS`] values, each
/// trained on a deterministic bootstrap of the window (the "random forest"
/// entry of §IV-D). Expensive relative to ARIMA — which is the point.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<Tree>,
    last: [f64; RandomForest::LAGS],
    fallback: f64,
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest {
            trees: Vec::new(),
            last: [0.0; RandomForest::LAGS],
            fallback: 0.0,
            n_trees: 12,
            max_depth: 4,
        }
    }
}

#[derive(Debug, Clone)]
enum Tree {
    Leaf(f64),
    Split { feature: usize, threshold: f64, left: Box<Tree>, right: Box<Tree> },
}

impl Tree {
    fn eval(&self, x: &[f64; RandomForest::LAGS]) -> f64 {
        match self {
            Tree::Leaf(v) => *v,
            Tree::Split { feature, threshold, left, right } => {
                if x[*feature] <= *threshold {
                    left.eval(x)
                } else {
                    right.eval(x)
                }
            }
        }
    }
}

fn build_tree(
    x: &[[f64; RandomForest::LAGS]],
    y: &[f64],
    idx: &[usize],
    depth: usize,
    rng: &mut u64,
) -> Tree {
    let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len().max(1) as f64;
    if depth == 0 || idx.len() < 6 {
        return Tree::Leaf(mean);
    }
    // Try a few random (feature, threshold) candidates; keep the best SSE.
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    for _ in 0..6 {
        *rng = xorshift(*rng);
        let feature = (*rng as usize) % RandomForest::LAGS;
        *rng = xorshift(*rng);
        let pick = idx[(*rng as usize) % idx.len()];
        let threshold = x[pick][feature];
        let (mut ls, mut lc, mut rs, mut rc) = (0.0, 0usize, 0.0, 0usize);
        for &i in idx {
            if x[i][feature] <= threshold {
                ls += y[i];
                lc += 1;
            } else {
                rs += y[i];
                rc += 1;
            }
        }
        if lc == 0 || rc == 0 {
            continue;
        }
        let (lm, rm) = (ls / lc as f64, rs / rc as f64);
        let sse: f64 = idx
            .iter()
            .map(|&i| {
                let m = if x[i][feature] <= threshold { lm } else { rm };
                (y[i] - m) * (y[i] - m)
            })
            .sum();
        if best.as_ref().is_none_or(|(_, _, s)| sse < *s) {
            best = Some((feature, threshold, sse));
        }
    }
    let Some((feature, threshold, _)) = best else {
        return Tree::Leaf(mean);
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        idx.iter().partition(|&&i| x[i][feature] <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return Tree::Leaf(mean);
    }
    Tree::Split {
        feature,
        threshold,
        left: Box::new(build_tree(x, y, &left_idx, depth - 1, rng)),
        right: Box::new(build_tree(x, y, &right_idx, depth - 1, rng)),
    }
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.max(1)
}

impl RandomForest {
    /// Number of autoregressive lag features.
    pub const LAGS: usize = 4;
}

impl Regressor for RandomForest {
    fn name(&self) -> &'static str {
        "Random Forest"
    }

    fn fit(&mut self, window: &[f64]) {
        self.trees.clear();
        self.fallback = window.last().copied().unwrap_or(0.0);
        if window.len() < Self::LAGS + 4 {
            self.last = [self.fallback; Self::LAGS];
            return;
        }
        let rows = window.len() - Self::LAGS;
        let x: Vec<[f64; Self::LAGS]> = (0..rows)
            .map(|r| {
                let mut f = [0.0; Self::LAGS];
                for (k, fk) in f.iter_mut().enumerate() {
                    *fk = window[r + k];
                }
                f
            })
            .collect();
        let y: Vec<f64> = (0..rows).map(|r| window[r + Self::LAGS]).collect();
        let mut rng = 0xA5A5_5A5A_DEAD_BEEFu64;
        for _ in 0..self.n_trees {
            // Deterministic bootstrap.
            let idx: Vec<usize> = (0..rows)
                .map(|_| {
                    rng = xorshift(rng);
                    (rng as usize) % rows
                })
                .collect();
            self.trees.push(build_tree(&x, &y, &idx, self.max_depth, &mut rng));
        }
        let mut last = [0.0; Self::LAGS];
        last.copy_from_slice(&window[window.len() - Self::LAGS..]);
        self.last = last;
    }

    fn predict_h(&self, h: usize) -> f64 {
        if self.trees.is_empty() {
            return self.fallback;
        }
        let mut state = self.last;
        let mut y = state[Self::LAGS - 1];
        for _ in 0..h {
            y = self.trees.iter().map(|t| t.eval(&state)).sum::<f64>() / self.trees.len() as f64;
            state.rotate_left(1);
            state[Self::LAGS - 1] = y;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| 3.0 + 0.5 * i as f64).collect()
    }

    #[test]
    fn ols_is_exact_on_a_line() {
        let mut m = OlsLinear::default();
        m.fit(&ramp(40));
        assert!((m.predict_next() - (3.0 + 0.5 * 40.0)).abs() < 1e-9);
        assert!((m.predict_h(5) - (3.0 + 0.5 * 44.0)).abs() < 1e-9);
    }

    #[test]
    fn ols_degenerate_windows() {
        let mut m = OlsLinear::default();
        m.fit(&[]);
        assert_eq!(m.predict_next(), 0.0);
        m.fit(&[7.0]);
        assert!((m.predict_next() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn ard_learns_an_ar1_process_and_prunes() {
        // y_t = 0.8 y_{t-1} + 2: only lag 4 (the most recent) matters.
        let mut ys = vec![1.0];
        for _ in 0..200 {
            let last = *ys.last().unwrap();
            ys.push(2.0 + 0.8 * last);
        }
        let mut m = Ard::default();
        m.fit(&ys[..60]);
        let pred = m.predict_next();
        let actual = 2.0 + 0.8 * ys[59];
        assert!((pred - actual).abs() < 0.5, "pred {pred} vs {actual}");
        // On a deterministic AR(1) the four lags are perfectly collinear:
        // ARD's job is to *prune* to a sparse solution (any one lag can
        // carry the signal), not to pick a specific one.
        let w = m.weights();
        let active = w.iter().filter(|x| x.abs() > 1e-3).count();
        assert!(active <= 2, "ARD should prune collinear lags: {w:?}");
        assert!(active >= 1, "ARD must keep some signal: {w:?}");
    }

    #[test]
    fn forest_learns_short_patterns() {
        let ys: Vec<f64> = (0..120).map(|i| if i % 2 == 0 { 10.0 } else { 30.0 }).collect();
        let mut m = RandomForest::default();
        m.fit(&ys);
        // Last value 30 (odd index 119) -> next should be ~10.
        let p = m.predict_next();
        assert!((p - 10.0).abs() < 8.0, "pred {p}");
    }

    #[test]
    fn forest_is_deterministic() {
        let ys: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin() * 20.0 + 50.0).collect();
        let mut a = RandomForest::default();
        let mut b = RandomForest::default();
        a.fit(&ys);
        b.fit(&ys);
        assert_eq!(a.predict_h(3), b.predict_h(3));
    }

    #[test]
    fn all_models_survive_degenerate_input() {
        let mut models: Vec<Box<dyn Regressor>> = vec![
            Box::new(OlsLinear::default()),
            Box::new(Ard::default()),
            Box::new(RandomForest::default()),
        ];
        for m in models.iter_mut() {
            m.fit(&[]);
            assert!(m.predict_next().is_finite());
            m.fit(&[5.0, 5.0, 5.0]);
            assert!(m.predict_next().is_finite(), "{}", m.name());
            m.fit(&[1.0; 64]);
            let p = m.predict_next();
            assert!((p - 1.0).abs() < 1.0, "{}: {p}", m.name());
        }
    }
}
