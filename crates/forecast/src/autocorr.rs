//! Autocorrelation — Eq. (2) of the paper.
//!
//! PP uses the autocorrelation of a node's utilization series to decide
//! whether there is a *trend strong enough* to forecast: if the lag-k
//! autocorrelation is zero or negative, either the input series is too
//! limited or there is no periodic peak structure, and PP falls back to the
//! next candidate node (§IV-D, Algorithm 1).

/// Lag-`k` autocorrelation `r_k` per Eq. (2):
///
/// `r_k = Σ_{i=1}^{n−k} (Y_i − Ȳ)(Y_{i+k} − Ȳ) / Σ_{i=1}^{n} (Y_i − Ȳ)²`
///
/// Returns 0 for constant or too-short series (`n ≤ k`).
pub fn autocorrelation(ys: &[f64], k: usize) -> f64 {
    let n = ys.len();
    if n <= k || n < 2 {
        return 0.0;
    }
    let mean = ys.iter().sum::<f64>() / n as f64;
    let denom: f64 = ys.iter().map(|y| (y - mean) * (y - mean)).sum();
    if denom < 1e-18 {
        return 0.0;
    }
    let num: f64 = (0..n - k).map(|i| (ys[i] - mean) * (ys[i + k] - mean)).sum();
    num / denom
}

/// Shared mean/denominator of Eq. (2), computed once for all lags.
///
/// Summation order matches [`autocorrelation`] exactly, so per-lag values
/// derived from these are bit-identical to the naive per-lag recompute.
fn acf_prefix(ys: &[f64]) -> Option<(f64, f64)> {
    let n = ys.len();
    if n < 2 {
        return None;
    }
    let mean = ys.iter().sum::<f64>() / n as f64;
    let denom: f64 = ys.iter().map(|y| (y - mean) * (y - mean)).sum();
    if denom < 1e-18 {
        None
    } else {
        Some((mean, denom))
    }
}

/// The lag-`k` numerator of Eq. (2) given the precomputed mean.
fn acf_lag_num(ys: &[f64], mean: f64, k: usize) -> f64 {
    (0..ys.len() - k).map(|i| (ys[i] - mean) * (ys[i + k] - mean)).sum()
}

/// The full autocorrelation function for lags `1..=max_lag`.
///
/// One-pass: the series mean and the Eq. (2) denominator are hoisted out of
/// the per-lag loop (they do not depend on `k`), turning the naive
/// `O(max_lag · n)` mean/denominator recompute into a single prefix pass.
/// Values are bit-identical to calling [`autocorrelation`] per lag.
pub fn acf(ys: &[f64], max_lag: usize) -> Vec<f64> {
    let n = ys.len();
    let Some((mean, denom)) = acf_prefix(ys) else {
        return vec![0.0; max_lag];
    };
    (1..=max_lag).map(|k| if n <= k { 0.0 } else { acf_lag_num(ys, mean, k) / denom }).collect()
}

/// The dominant period of a series: the lag `k ≥ min_lag` with the highest
/// autocorrelation, when that correlation is positive. PP interprets this as
/// the interval between consecutive resource-consumption peaks (§IV-D: "the
/// interval between two consecutive peak resource consumption ... could be
/// determined by the auto-correlation factor").
///
/// Returns `None` when no positive-correlation lag exists.
pub fn dominant_period(ys: &[f64], min_lag: usize, max_lag: usize) -> Option<usize> {
    if min_lag == 0 || max_lag < min_lag {
        return None;
    }
    let (mean, denom) = acf_prefix(ys)?;
    let mut best: Option<(usize, f64)> = None;
    for k in min_lag..=max_lag.min(ys.len().saturating_sub(1)) {
        let r = acf_lag_num(ys, mean, k) / denom;
        if r > 0.0 {
            match best {
                Some((_, br)) if br >= r => {}
                _ => best = Some((k, r)),
            }
        }
    }
    best.map(|(k, _)| k)
}

/// Whether the series exhibits a positive short-horizon trend — the
/// Algorithm 1 `AutoCorrelation(node.memory)` admission check. `true` when
/// the lag-1 autocorrelation is strictly positive.
pub fn has_forecastable_trend(ys: &[f64]) -> bool {
    autocorrelation(ys, 1) > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_series_has_high_lag1() {
        let ys: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
        assert!(autocorrelation(&ys, 1) > 0.9);
        assert!(has_forecastable_trend(&ys));
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let ys: Vec<f64> = (0..50).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!(autocorrelation(&ys, 1) < -0.9);
        assert!(!has_forecastable_trend(&ys));
        // ... but a strong positive lag-2 correlation.
        assert!(autocorrelation(&ys, 2) > 0.9);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
        assert_eq!(autocorrelation(&[3.0; 20], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
    }

    #[test]
    fn acf_length() {
        let ys: Vec<f64> = (0..30).map(|i| i as f64).collect();
        assert_eq!(acf(&ys, 5).len(), 5);
    }

    #[test]
    fn one_pass_acf_is_bit_identical_to_naive_per_lag() {
        // Seeded-LCG fuzz: the hoisted mean/denominator must reproduce the
        // naive per-lag recompute exactly (same summation order → same
        // bits), including lags past the series length.
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut lcg = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for len in [0usize, 1, 2, 7, 33, 200] {
            let ys: Vec<f64> = (0..len).map(|_| lcg() * 500.0 - 100.0).collect();
            let max_lag = len + 5;
            let fast = acf(&ys, max_lag);
            for (i, k) in (1..=max_lag).enumerate() {
                let naive = autocorrelation(&ys, k);
                assert_eq!(fast[i].to_bits(), naive.to_bits(), "len {len} lag {k}");
            }
        }
        // Constant series: both forms short-circuit to zero.
        assert_eq!(acf(&[3.0; 20], 4), vec![0.0; 4]);
    }

    #[test]
    fn dominant_period_matches_naive_selection() {
        let mut state = 7u64;
        let mut lcg = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for len in [10usize, 50, 120] {
            let ys: Vec<f64> = (0..len).map(|i| (i % 12) as f64 + lcg()).collect();
            let fast = dominant_period(&ys, 2, 40);
            // Naive reference selection over per-lag autocorrelation.
            let mut best: Option<(usize, f64)> = None;
            for k in 2..=40usize.min(len.saturating_sub(1)) {
                let r = autocorrelation(&ys, k);
                if r > 0.0 {
                    match best {
                        Some((_, br)) if br >= r => {}
                        _ => best = Some((k, r)),
                    }
                }
            }
            assert_eq!(fast, best.map(|(k, _)| k), "len {len}");
        }
    }

    #[test]
    fn dominant_period_finds_the_cycle() {
        // Period-10 sawtooth.
        let ys: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let p = dominant_period(&ys, 2, 40).unwrap();
        assert_eq!(p % 10, 0, "dominant lag {p} should be a multiple of the period");
    }

    #[test]
    fn dominant_period_absent_for_white_noiseish_data() {
        // A short strictly-alternating series has no positive lag in range 1..=1.
        let ys: Vec<f64> = (0..20).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert_eq!(dominant_period(&ys, 1, 1), None);
        assert_eq!(dominant_period(&ys, 0, 5), None);
        assert_eq!(dominant_period(&ys, 5, 2), None);
    }
}
