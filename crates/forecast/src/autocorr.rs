//! Autocorrelation — Eq. (2) of the paper.
//!
//! PP uses the autocorrelation of a node's utilization series to decide
//! whether there is a *trend strong enough* to forecast: if the lag-k
//! autocorrelation is zero or negative, either the input series is too
//! limited or there is no periodic peak structure, and PP falls back to the
//! next candidate node (§IV-D, Algorithm 1).

/// Lag-`k` autocorrelation `r_k` per Eq. (2):
///
/// `r_k = Σ_{i=1}^{n−k} (Y_i − Ȳ)(Y_{i+k} − Ȳ) / Σ_{i=1}^{n} (Y_i − Ȳ)²`
///
/// Returns 0 for constant or too-short series (`n ≤ k`).
pub fn autocorrelation(ys: &[f64], k: usize) -> f64 {
    let n = ys.len();
    if n <= k || n < 2 {
        return 0.0;
    }
    let mean = ys.iter().sum::<f64>() / n as f64;
    let denom: f64 = ys.iter().map(|y| (y - mean) * (y - mean)).sum();
    if denom < 1e-18 {
        return 0.0;
    }
    let num: f64 = (0..n - k).map(|i| (ys[i] - mean) * (ys[i + k] - mean)).sum();
    num / denom
}

/// The full autocorrelation function for lags `1..=max_lag`.
pub fn acf(ys: &[f64], max_lag: usize) -> Vec<f64> {
    (1..=max_lag).map(|k| autocorrelation(ys, k)).collect()
}

/// The dominant period of a series: the lag `k ≥ min_lag` with the highest
/// autocorrelation, when that correlation is positive. PP interprets this as
/// the interval between consecutive resource-consumption peaks (§IV-D: "the
/// interval between two consecutive peak resource consumption ... could be
/// determined by the auto-correlation factor").
///
/// Returns `None` when no positive-correlation lag exists.
pub fn dominant_period(ys: &[f64], min_lag: usize, max_lag: usize) -> Option<usize> {
    if min_lag == 0 || max_lag < min_lag {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for k in min_lag..=max_lag.min(ys.len().saturating_sub(1)) {
        let r = autocorrelation(ys, k);
        if r > 0.0 {
            match best {
                Some((_, br)) if br >= r => {}
                _ => best = Some((k, r)),
            }
        }
    }
    best.map(|(k, _)| k)
}

/// Whether the series exhibits a positive short-horizon trend — the
/// Algorithm 1 `AutoCorrelation(node.memory)` admission check. `true` when
/// the lag-1 autocorrelation is strictly positive.
pub fn has_forecastable_trend(ys: &[f64]) -> bool {
    autocorrelation(ys, 1) > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_series_has_high_lag1() {
        let ys: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
        assert!(autocorrelation(&ys, 1) > 0.9);
        assert!(has_forecastable_trend(&ys));
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let ys: Vec<f64> = (0..50).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!(autocorrelation(&ys, 1) < -0.9);
        assert!(!has_forecastable_trend(&ys));
        // ... but a strong positive lag-2 correlation.
        assert!(autocorrelation(&ys, 2) > 0.9);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
        assert_eq!(autocorrelation(&[3.0; 20], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
    }

    #[test]
    fn acf_length() {
        let ys: Vec<f64> = (0..30).map(|i| i as f64).collect();
        assert_eq!(acf(&ys, 5).len(), 5);
    }

    #[test]
    fn dominant_period_finds_the_cycle() {
        // Period-10 sawtooth.
        let ys: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let p = dominant_period(&ys, 2, 40).unwrap();
        assert_eq!(p % 10, 0, "dominant lag {p} should be a multiple of the period");
    }

    #[test]
    fn dominant_period_absent_for_white_noiseish_data() {
        // A short strictly-alternating series has no positive lag in range 1..=1.
        let ys: Vec<f64> = (0..20).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert_eq!(dominant_period(&ys, 1, 1), None);
        assert_eq!(dominant_period(&ys, 0, 5), None);
        assert_eq!(dominant_period(&ys, 5, 2), None);
    }
}
