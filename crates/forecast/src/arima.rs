//! First-order non-seasonal ARIMA — Eq. (3) of the paper.
//!
//! The paper's model is `Y_pred = µ + φ·Y_{t−1}`: a moving-window AR(1) with
//! intercept, refitted over the sliding telemetry window every heartbeat.
//! §IV-D argues this simple statistical model beats fancier regressors here
//! because only ~5 s of real-time training data exist at any moment.

use crate::regressors::Regressor;

/// A fitted AR(1) model: `Y_t = µ + φ·Y_{t−1} + ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ar1 {
    /// Intercept µ.
    pub mu: f64,
    /// Slope φ.
    pub phi: f64,
}

impl Ar1 {
    /// Fit by ordinary least squares on the lag-1 pairs of `ys`.
    ///
    /// Falls back to a persistence model (`µ = last value, φ = 0`) when the
    /// series is too short or constant — the same degenerate-data guard the
    /// paper applies before trusting a forecast.
    pub fn fit(ys: &[f64]) -> Ar1 {
        let n = ys.len();
        if n < 3 {
            return Ar1 { mu: ys.last().copied().unwrap_or(0.0), phi: 0.0 };
        }
        // Regress y[1..] on y[..n-1].
        let x = &ys[..n - 1];
        let y = &ys[1..];
        let m = (n - 1) as f64;
        let mx = x.iter().sum::<f64>() / m;
        let my = y.iter().sum::<f64>() / m;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for i in 0..n - 1 {
            let dx = x[i] - mx;
            sxx += dx * dx;
            sxy += dx * (y[i] - my);
        }
        if sxx < 1e-18 {
            return Ar1 { mu: ys[n - 1], phi: 0.0 };
        }
        // Clamp φ to the stationary region so iterated forecasts stay sane.
        let phi = (sxy / sxx).clamp(-0.999, 0.999);
        let mu = my - phi * mx;
        Ar1 { mu, phi }
    }

    /// One-step-ahead forecast from the last observed value.
    pub fn forecast(&self, last: f64) -> f64 {
        self.mu + self.phi * last
    }

    /// `h`-step-ahead forecast by iterating the recurrence.
    pub fn forecast_h(&self, last: f64, h: usize) -> f64 {
        let mut y = last;
        for _ in 0..h {
            y = self.forecast(y);
        }
        y
    }

    /// The stationary mean `µ / (1 − φ)` the iterated forecast converges to
    /// (when `|φ| < 1`).
    pub fn stationary_mean(&self) -> f64 {
        self.mu / (1.0 - self.phi)
    }
}

/// [`Regressor`] adapter so ARIMA competes in the Fig. 10b accuracy harness.
#[derive(Debug, Default, Clone)]
pub struct ArimaRegressor {
    model: Option<(Ar1, f64)>,
}

impl Regressor for ArimaRegressor {
    fn name(&self) -> &'static str {
        "CBP+PP (ARIMA)"
    }

    fn fit(&mut self, window: &[f64]) {
        let model = Ar1::fit(window);
        self.model = Some((model, window.last().copied().unwrap_or(0.0)));
    }

    fn predict_h(&self, h: usize) -> f64 {
        match &self.model {
            Some((m, last)) => m.forecast_h(*last, h),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_known_ar1_process() {
        // Deterministic AR(1): y_{t+1} = 2 + 0.8 y_t from y_0 = 0.
        let mut ys = vec![0.0];
        for _ in 0..200 {
            let last = *ys.last().unwrap();
            ys.push(2.0 + 0.8 * last);
        }
        // The trajectory converges; fit on the transient part.
        let m = Ar1::fit(&ys[..30]);
        assert!((m.phi - 0.8).abs() < 1e-6, "phi {}", m.phi);
        assert!((m.mu - 2.0).abs() < 1e-5, "mu {}", m.mu);
        assert!((m.stationary_mean() - 10.0).abs() < 1e-4);
    }

    #[test]
    fn one_step_forecast_matches_recurrence() {
        let m = Ar1 { mu: 1.0, phi: 0.5 };
        assert!((m.forecast(4.0) - 3.0).abs() < 1e-12);
        assert!((m.forecast_h(4.0, 2) - 2.5).abs() < 1e-12);
        assert!((m.forecast_h(4.0, 0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_series_fall_back_to_persistence() {
        let m = Ar1::fit(&[5.0]);
        assert_eq!(m.phi, 0.0);
        assert!((m.forecast(5.0) - 5.0).abs() < 1e-12);
        let m = Ar1::fit(&[3.0, 3.0, 3.0, 3.0]);
        assert_eq!(m.phi, 0.0);
        assert!((m.forecast(3.0) - 3.0).abs() < 1e-12);
        let m = Ar1::fit(&[]);
        assert_eq!(m.forecast(0.0), 0.0);
    }

    #[test]
    fn phi_is_clamped_to_stationarity() {
        // An exponentially exploding series would fit phi > 1; the clamp
        // keeps iterated forecasts finite.
        let ys: Vec<f64> = (0..20).map(|i| 2f64.powi(i)).collect();
        let m = Ar1::fit(&ys);
        assert!(m.phi <= 0.999);
        assert!(m.forecast_h(ys[19], 100).is_finite());
    }

    #[test]
    fn regressor_adapter() {
        let mut r = ArimaRegressor::default();
        assert_eq!(r.predict_h(1), 0.0);
        let ys: Vec<f64> = (0..50).map(|i| 10.0 + (i as f64 * 0.3).sin()).collect();
        r.fit(&ys);
        let p = r.predict_h(1);
        assert!((p - 10.0).abs() < 2.0);
        assert_eq!(r.name(), "CBP+PP (ARIMA)");
    }
}
