//! Property-based tests for the statistics and forecasting primitives.

use knots_forecast::accuracy::{walk_forward, AccuracyConfig};
use knots_forecast::arima::{Ar1, ArimaRegressor};
use knots_forecast::autocorr::{autocorrelation, dominant_period};
use knots_forecast::regressors::{Mlp, Regressor, SgdLinear, TheilSen};
use knots_forecast::spearman::{pearson, ranks, spearman};
use knots_forecast::stats::{
    cdf_points, cov, mean, moving_average, percentile, stddev, utilization_quartet,
};
use proptest::prelude::*;

fn finite_series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e4f64..1e4, 2..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn spearman_is_bounded_and_symmetric(xs in finite_series(64), ys in finite_series(64)) {
        let n = xs.len().min(ys.len());
        let (a, b) = (&xs[..n], &ys[..n]);
        let r = spearman(a, b);
        prop_assert!((-1.0..=1.0).contains(&r));
        prop_assert!((r - spearman(b, a)).abs() < 1e-9);
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(xs in finite_series(64), ys in finite_series(64)) {
        let n = xs.len().min(ys.len());
        let (a, b) = (&xs[..n], &ys[..n]);
        // exp is strictly increasing: ranks unchanged.
        let ea: Vec<f64> = a.iter().map(|x| (x / 1e4).exp()).collect();
        prop_assert!((spearman(a, b) - spearman(&ea, b)).abs() < 1e-6);
    }

    #[test]
    fn self_correlation_is_one_for_nonconstant(xs in finite_series(64)) {
        let distinct = xs.iter().any(|x| (x - xs[0]).abs() > 1e-9);
        if distinct {
            prop_assert!((spearman(&xs, &xs) - 1.0).abs() < 1e-9);
            prop_assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ranks_are_a_permutation_mean(xs in finite_series(64)) {
        let r = ranks(&xs);
        // Ranks always sum to n(n+1)/2 regardless of ties.
        let n = xs.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        prop_assert!(r.iter().all(|&x| x >= 1.0 && x <= n));
    }

    #[test]
    fn autocorrelation_is_bounded(xs in finite_series(64), k in 0usize..32) {
        let r = autocorrelation(&xs, k);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r_k = {r}");
    }

    #[test]
    fn dominant_period_is_within_requested_range(xs in finite_series(128)) {
        if let Some(p) = dominant_period(&xs, 2, 20) {
            prop_assert!((2..=20).contains(&p));
        }
    }

    #[test]
    fn percentile_is_monotone_and_bounded(xs in finite_series(128), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let plo = percentile(&xs, lo);
        let phi = percentile(&xs, hi);
        prop_assert!(plo <= phi + 1e-9);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(plo >= min - 1e-9 && phi <= max + 1e-9);
    }

    #[test]
    fn quartet_is_ordered(xs in finite_series(128)) {
        let (p50, p90, p99, max) = utilization_quartet(&xs);
        prop_assert!(p50 <= p90 + 1e-9 && p90 <= p99 + 1e-9 && p99 <= max + 1e-9);
    }

    #[test]
    fn cdf_is_monotone(xs in finite_series(128), n in 2usize..40) {
        let pts = cdf_points(&xs, n);
        for w in pts.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 - 1e-12);
            prop_assert!(w[1].0 >= w[0].0 - 1e-9);
        }
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_relations(xs in finite_series(128)) {
        prop_assert!(stddev(&xs) >= 0.0);
        prop_assert!(cov(&xs).is_finite());
        let m = mean(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
    }

    #[test]
    fn moving_average_is_bounded_by_extremes(xs in finite_series(128), w in 1usize..16) {
        let ma = moving_average(&xs, w);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(ma.len(), xs.len());
        prop_assert!(ma.iter().all(|&v| v >= min - 1e-9 && v <= max + 1e-9));
    }

    #[test]
    fn ar1_forecasts_are_finite(xs in finite_series(128), h in 1usize..64) {
        let m = Ar1::fit(&xs);
        prop_assert!(m.mu.is_finite() && m.phi.is_finite());
        prop_assert!(m.phi.abs() <= 0.999 + 1e-12);
        prop_assert!(m.forecast_h(*xs.last().unwrap(), h).is_finite());
    }

    #[test]
    fn regressors_never_return_nan(xs in finite_series(96)) {
        let mut models: Vec<Box<dyn Regressor>> = vec![
            Box::new(ArimaRegressor::default()),
            Box::new(TheilSen::default()),
            Box::new(SgdLinear::default()),
            Box::new(Mlp::default()),
        ];
        for m in models.iter_mut() {
            m.fit(&xs);
            let p = m.predict_next();
            prop_assert!(p.is_finite(), "{} returned {p}", m.name());
        }
    }

    #[test]
    fn walk_forward_accuracy_is_a_fraction(xs in finite_series(200), w in 4usize..32) {
        let cfg = AccuracyConfig { window: w, horizon: 1, tolerance_abs: 50.0, stride: 1 };
        let rep = walk_forward(&xs, &mut ArimaRegressor::default(), &cfg);
        prop_assert!((0.0..=1.0).contains(&rep.accuracy));
        prop_assert!(rep.rmse >= 0.0);
    }
}
