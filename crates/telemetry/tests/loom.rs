#![cfg(loom)]
//! Loom model tests for the TSDB batched writer.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `loom` CI job); the
//! store's `parking_lot` shim then routes to the loom shim's model-aware
//! `RwLock`, and `loom::model` explores every bounded interleaving of the
//! batched writer against concurrent readers and one-shot writers.
//!
//! The property under test is the one the batched-writer API exists for:
//! a [`knots_telemetry::tsdb::TsdbWriter`] holds the write lock for the
//! whole tick, so *no reader can ever observe a half-applied batch*.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p knots-telemetry --test loom`

use knots_sim::ids::NodeId;
use knots_sim::metrics::GpuSample;
use knots_sim::time::SimTime;
use knots_telemetry::tsdb::TimeSeriesDb;
use loom::sync::Arc;
use loom::thread;

fn sample(ms: u64) -> GpuSample {
    GpuSample { at: SimTime::from_millis(ms), sm_util: 0.5, ..Default::default() }
}

#[test]
fn batched_writes_are_atomic_to_concurrent_readers() {
    loom::model(|| {
        let db = Arc::new(TimeSeriesDb::default());
        let db2 = Arc::clone(&db);
        let reader = thread::spawn(move || db2.node_len(NodeId(0)));
        {
            let mut w = db.writer();
            for i in 0..3u64 {
                w.push_node(NodeId(0), sample(i));
            }
        }
        let seen = reader.join().unwrap();
        assert!(seen == 0 || seen == 3, "reader saw a half-applied batch: {seen}");
        assert_eq!(db.node_len(NodeId(0)), 3);
    });
}

#[test]
fn shard_writers_run_concurrently_without_losing_samples() {
    loom::model(|| {
        use knots_sim::shard::ShardLayout;
        use knots_telemetry::tsdb::TsdbConfig;
        // Two shard lanes over a 4-node / 2-shard partitioned store: each
        // lane batches into its own partition lock, so the writes commute
        // — every interleaving must land all samples, and a reader can
        // never see a half-applied batch within one partition.
        let db = Arc::new(TimeSeriesDb::partitioned(
            TsdbConfig::default(),
            ShardLayout::new(4, 2),
        ));
        let db2 = Arc::clone(&db);
        let lane1 = thread::spawn(move || {
            let mut w = db2.shard_writer(1);
            w.push_node(NodeId(2), sample(0));
            w.push_node(NodeId(3), sample(0));
        });
        {
            let mut w = db.shard_writer(0);
            w.push_node(NodeId(0), sample(0));
            w.push_node(NodeId(1), sample(0));
        }
        lane1.join().unwrap();
        for n in 0..4 {
            assert_eq!(db.node_len(NodeId(n)), 1, "node {n} lost its sample");
        }
    });
}

#[test]
fn full_writer_and_shard_writer_serialize_without_deadlock() {
    loom::model(|| {
        use knots_sim::shard::ShardLayout;
        use knots_telemetry::tsdb::TsdbConfig;
        // The full writer takes every partition guard in index order; a
        // racing shard lane takes exactly one. The index-order discipline
        // (analyzer rule C2) means no interleaving can deadlock, and write
        // exclusivity per partition keeps both batches intact.
        let db = Arc::new(TimeSeriesDb::partitioned(
            TsdbConfig::default(),
            ShardLayout::new(4, 2),
        ));
        let db2 = Arc::clone(&db);
        let lane = thread::spawn(move || {
            let mut w = db2.shard_writer(1);
            w.push_node(NodeId(3), sample(100));
        });
        {
            let mut w = db.writer();
            w.push_node(NodeId(0), sample(0));
            w.push_node(NodeId(2), sample(0));
        }
        lane.join().unwrap();
        assert_eq!(db.node_len(NodeId(0)), 1);
        assert_eq!(db.node_len(NodeId(2)), 1);
        assert_eq!(db.node_len(NodeId(3)), 1);
    });
}

#[test]
fn batched_and_one_shot_writers_serialize() {
    loom::model(|| {
        let db = Arc::new(TimeSeriesDb::default());
        let db2 = Arc::clone(&db);
        // A one-shot push races a two-sample batch; write exclusivity must
        // serialize them so nothing is lost and the one-shot push can
        // never land inside the batch.
        let writer = thread::spawn(move || {
            db2.push_node(NodeId(7), sample(100));
        });
        {
            let mut w = db.writer();
            w.push_node(NodeId(0), sample(0));
            w.push_node(NodeId(0), sample(1));
        }
        writer.join().unwrap();
        assert_eq!(db.node_len(NodeId(0)), 2);
        assert_eq!(db.node_len(NodeId(7)), 1);
    });
}
