//! Property-based tests for the time-series store and snapshots.

use knots_sim::ids::{NodeId, PodId};
use knots_sim::metrics::GpuSample;
use knots_sim::resources::Usage;
use knots_sim::time::{SimDuration, SimTime};
use knots_telemetry::{TimeSeriesDb, TsdbConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Ring buffers respect their capacity and keep the most recent data.
    #[test]
    fn ring_buffer_respects_capacity(
        cap in 8usize..128,
        n in 1usize..512,
    ) {
        let db = TimeSeriesDb::new(TsdbConfig { node_capacity: cap, pod_capacity: cap });
        for t in 0..n as u64 {
            db.push_node(
                NodeId(0),
                GpuSample { at: SimTime::from_millis(t), ..Default::default() },
            );
        }
        prop_assert_eq!(db.node_len(NodeId(0)), n.min(cap));
        if n > 0 {
            let latest = db.latest_node(NodeId(0)).unwrap();
            prop_assert_eq!(latest.at, SimTime::from_millis(n as u64 - 1));
        }
    }

    /// Window queries return samples sorted by time, all inside the window.
    #[test]
    fn window_queries_are_sorted_and_in_range(
        stamps in proptest::collection::vec(0u64..10_000, 1..128),
        now_ms in 0u64..12_000,
        win_ms in 1u64..8_000,
    ) {
        let db = TimeSeriesDb::default();
        let mut sorted_stamps = stamps.clone();
        sorted_stamps.sort_unstable();
        for t in &sorted_stamps {
            db.push_node(
                NodeId(1),
                GpuSample { at: SimTime::from_millis(*t), ..Default::default() },
            );
        }
        let now = SimTime::from_millis(now_ms);
        let win = SimDuration::from_millis(win_ms);
        let got = db.node_window(NodeId(1), now, win);
        let start = SimTime(now.0.saturating_sub(win.0));
        prop_assert!(got.windows(2).all(|w| w[0].at <= w[1].at));
        prop_assert!(got.iter().all(|s| s.at >= start && s.at <= now));
        let expected = sorted_stamps
            .iter()
            .filter(|&&t| {
                let at = SimTime::from_millis(t);
                at >= start && at <= now
            })
            .count();
        prop_assert_eq!(got.len(), expected);
    }

    /// Pod metric series extraction matches what was pushed.
    #[test]
    fn pod_series_values_round_trip(mems in proptest::collection::vec(0.0f64..16_384.0, 1..64)) {
        let db = TimeSeriesDb::default();
        for (t, &m) in mems.iter().enumerate() {
            db.push_pod(PodId(3), SimTime::from_millis(t as u64), Usage::new(0.1, m, 1.0, 2.0));
        }
        let got = db.pod_mem_series(
            PodId(3),
            SimTime::from_millis(mems.len() as u64),
            SimDuration::from_secs(60),
        );
        prop_assert_eq!(got.len(), mems.len());
        for (a, b) in got.iter().zip(&mems) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
