//! The head-node view of the cluster a scheduler acts on.

use knots_sim::ids::{NodeId, PodId};
use knots_sim::metrics::GpuSample;
use knots_sim::pod::QosClass;
use knots_sim::resources::{GpuModel, Usage};
use knots_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Summary of one resident pod as the aggregator sees it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PodView {
    /// Pod id.
    pub id: PodId,
    /// Workload name (for logs).
    pub name: String,
    /// QoS class.
    pub qos: QosClass,
    /// Current memory provision, MB.
    pub limit_mb: f64,
    /// Original user request, MB.
    pub request_mb: f64,
    /// Last measured usage.
    pub usage: Usage,
    /// Whether the pod is still in its cold-start pull.
    pub pulling: bool,
    /// Cumulative GPU service received (SM-share-weighted seconds) — the
    /// "attained service" signal LAS schedulers rank by.
    pub attained_service_secs: f64,
}

/// Summary of one worker node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeView {
    /// Node id.
    pub id: NodeId,
    /// GPU model on this node.
    pub model: GpuModel,
    /// Device memory capacity, MB.
    pub capacity_mb: f64,
    /// Free memory by *measured* usage — the real-time signal Knots adds.
    pub free_measured_mb: f64,
    /// Free memory by sum of provisions — what a request-based scheduler sees.
    pub free_provision_mb: f64,
    /// Latest metrics sample.
    pub sample: GpuSample,
    /// Resident pods.
    pub pods: Vec<PodView>,
    /// Deep sleep?
    pub asleep: bool,
    /// Still paying wake-up latency?
    pub waking: bool,
}

impl NodeView {
    /// Number of resident pods — the queue-length signal from §IV-B.
    pub fn queue_len(&self) -> usize {
        self.pods.len()
    }

    /// True when the node hosts no pods and is awake.
    pub fn is_idle(&self) -> bool {
        !self.asleep && self.pods.is_empty()
    }
}

/// A consistent snapshot of every node, produced once per heartbeat.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Per-node views, in node order.
    pub nodes: Vec<NodeView>,
}

impl ClusterSnapshot {
    /// Active (awake) nodes only — Algorithm 1 considers only active GPUs.
    pub fn active_nodes(&self) -> impl Iterator<Item = &NodeView> {
        self.nodes.iter().filter(|n| !n.asleep)
    }

    /// Active node ids sorted by *measured* free memory, descending — the
    /// `Sort_by_Free_Memory` step of Algorithm 1.
    pub fn nodes_by_free_memory(&self) -> Vec<NodeId> {
        let mut v: Vec<&NodeView> = self.active_nodes().collect();
        v.sort_by(|a, b| b.free_measured_mb.total_cmp(&a.free_measured_mb).then(a.id.cmp(&b.id)));
        v.into_iter().map(|n| n.id).collect()
    }

    /// Active node ids sorted for consolidation: least free memory first,
    /// so pods pack onto already-busy GPUs and idle ones can sleep.
    pub fn nodes_by_packing(&self) -> Vec<NodeId> {
        let mut v: Vec<&NodeView> = self.active_nodes().collect();
        v.sort_by(|a, b| a.free_measured_mb.total_cmp(&b.free_measured_mb).then(a.id.cmp(&b.id)));
        v.into_iter().map(|n| n.id).collect()
    }

    /// Look up a node view.
    pub fn node(&self, id: NodeId) -> Option<&NodeView> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Sleeping node ids.
    pub fn sleeping_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().filter(|n| n.asleep).map(|n| n.id)
    }

    /// Cluster-wide mean SM utilization over awake nodes.
    pub fn mean_active_sm_util(&self) -> f64 {
        let active: Vec<f64> = self.active_nodes().map(|n| n.sample.sm_util).collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: usize, free: f64, asleep: bool, sm: f64) -> NodeView {
        NodeView {
            id: NodeId(id),
            model: GpuModel::P100,
            capacity_mb: 16384.0,
            free_measured_mb: free,
            free_provision_mb: free,
            sample: GpuSample { sm_util: sm, ..Default::default() },
            pods: vec![],
            asleep,
            waking: false,
        }
    }

    fn snap() -> ClusterSnapshot {
        ClusterSnapshot {
            at: SimTime::ZERO,
            nodes: vec![
                node(0, 1000.0, false, 0.9),
                node(1, 9000.0, false, 0.2),
                node(2, 5000.0, true, 0.0),
                node(3, 5000.0, false, 0.5),
            ],
        }
    }

    #[test]
    fn sort_by_free_memory_descending_skips_sleepers() {
        let order = snap().nodes_by_free_memory();
        assert_eq!(order, vec![NodeId(1), NodeId(3), NodeId(0)]);
    }

    #[test]
    fn packing_order_is_ascending() {
        let order = snap().nodes_by_packing();
        assert_eq!(order, vec![NodeId(0), NodeId(3), NodeId(1)]);
    }

    #[test]
    fn sleeping_and_active_sets_partition() {
        let s = snap();
        let sleeping: Vec<_> = s.sleeping_nodes().collect();
        assert_eq!(sleeping, vec![NodeId(2)]);
        assert_eq!(s.active_nodes().count(), 3);
    }

    #[test]
    fn mean_util_ignores_sleepers() {
        let s = snap();
        assert!((s.mean_active_sm_util() - (0.9 + 0.2 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn node_lookup() {
        let s = snap();
        assert!(s.node(NodeId(3)).is_some());
        assert!(s.node(NodeId(9)).is_none());
        assert!(s.node(NodeId(1)).unwrap().is_idle());
    }

    #[test]
    fn tie_break_is_by_node_id() {
        let s = ClusterSnapshot {
            at: SimTime::ZERO,
            nodes: vec![node(1, 100.0, false, 0.0), node(0, 100.0, false, 0.0)],
        };
        assert_eq!(s.nodes_by_free_memory(), vec![NodeId(0), NodeId(1)]);
    }
}
