//! The in-memory time-series store (InfluxDB stand-in).
//!
//! One bounded ring of [`GpuSample`]s per node, plus one bounded ring of
//! per-pod [`Usage`] samples per pod. Retention is capacity-based: with the
//! paper's 1 ms heartbeat and 5 s sliding window (§IV-D), the default
//! capacity of 8192 samples comfortably covers the window the schedulers
//! query.
//!
//! Rings are **run-length encoded**: probe series are dominated by long
//! stretches of bit-identical values (quiet nodes report the same idle
//! sample every tick), so the ring stores runs `(at0, dt, n, value)` —
//! `n` samples at `at0, at0+dt, …, at0+(n-1)·dt` — instead of one slot per
//! sample. Run equality is *bitwise* (`f64::to_bits`), so `-0.0` and `0.0`
//! never merge and every materialized value is exactly the value pushed.
//! Consequences that keep the hot paths cheap:
//!
//! * **A quiet-span backfill is O(1)**: [`TsdbWriter::push_node_span`]
//!   extends the back run by `n` instead of appending `n` samples. The
//!   event-driven loop leans on this — a multi-tick quiet span costs the
//!   same as a single push.
//! * **Pushes only touch the ring**: a push is a finite-value check plus a
//!   run extend-or-append. Summary statistics ([`SeriesStats`]) are
//!   computed on demand by a Welford rescan of the retained samples — they
//!   are diagnostic reads (tests, tools), never on the per-tick or
//!   per-heartbeat path.
//! * **Copy-into-scratch** queries (`*_series_into`) extend a caller-owned
//!   buffer under the read lock one run at a time, so hot callers reuse one
//!   allocation across heartbeats and constant stretches decode as a
//!   repeat-fill rather than a per-sample copy. The allocating `*_series`
//!   forms remain as conveniences built on top and return bit-identical
//!   values.

use knots_sim::ids::{NodeId, PodId};
use knots_sim::metrics::{GpuSample, Metric};
use knots_sim::resources::Usage;
use knots_sim::shard::ShardLayout;
use knots_sim::time::{SimDuration, SimTime};
use parking_lot::RwLock;
use std::collections::VecDeque;

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct TsdbConfig {
    /// Maximum retained samples per node series.
    pub node_capacity: usize,
    /// Maximum retained samples per pod series.
    pub pod_capacity: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig { node_capacity: 8192, pod_capacity: 8192 }
    }
}

/// Count/mean/M2 summary of a series, built with Welford's online update.
///
/// The store computes these on demand by rescanning the retained ring, so
/// the summary always describes exactly the samples currently retained.
/// `push`/`evict` remain available for callers maintaining their own
/// incremental summaries; the inverse update is subject to ordinary
/// floating-point cancellation, so `m2` is clamped at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SeriesStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl SeriesStats {
    /// Number of samples currently summarized.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the retained samples (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance of the retained samples (0 when `count < 2`).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Welford push.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Inverse Welford update: remove one previously-pushed sample.
    pub fn evict(&mut self, x: f64) {
        match self.count {
            0 => {}
            1 => *self = SeriesStats::default(),
            n => {
                self.count = n - 1;
                let old_mean = self.mean;
                self.mean = (n as f64 * old_mean - x) / (n - 1) as f64;
                self.m2 = (self.m2 - (x - self.mean) * (x - old_mean)).max(0.0);
            }
        }
    }
}

/// `n` samples sharing one value, at `at0, at0+dt, …, at0+(n-1)·dt`.
///
/// A fresh single-sample run carries `dt == 0`; the spacing is fixed by the
/// second sample (or by the span push that created it) and never changes
/// afterwards, so every timestamp in the run is reconstructible in closed
/// form.
#[derive(Debug, Clone, Copy)]
struct Run<V> {
    at0: SimTime,
    dt: SimDuration,
    n: u64,
    v: V,
}

impl<V: Copy> Run<V> {
    fn last_at(&self) -> SimTime {
        SimTime(self.at0.0 + self.dt.0 * (self.n - 1))
    }
}

/// A bounded, run-length-encoded sample ring.
///
/// `len` is the *logical* sample count (sum of run lengths); capacity
/// eviction trims whole runs off the front and, when a run straddles the
/// boundary, shortens it in place by advancing `at0` — so retention is
/// sample-exact, identical to a flat ring of the same capacity.
#[derive(Debug)]
struct RleRing<V> {
    runs: VecDeque<Run<V>>,
    len: usize,
}

impl<V> Default for RleRing<V> {
    fn default() -> Self {
        RleRing { runs: VecDeque::new(), len: 0 }
    }
}

impl<V: Copy> RleRing<V> {
    /// Append one sample: extend the back run when the value is bitwise
    /// equal and the timestamp continues the run's spacing, else start a
    /// new run.
    fn push(&mut self, cap: usize, at: SimTime, v: V, eq: impl Fn(&V, &V) -> bool) {
        let extended = match self.runs.back_mut() {
            Some(r) if eq(&r.v, &v) => {
                if r.n == 1 {
                    // Second sample fixes the run's spacing.
                    if at.0 > r.at0.0 {
                        r.dt = SimDuration(at.0 - r.at0.0);
                        r.n = 2;
                        true
                    } else {
                        false
                    }
                } else if r.dt.0 > 0 && at.0 == r.last_at().0 + r.dt.0 {
                    r.n += 1;
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if !extended {
            self.runs.push_back(Run { at0: at, dt: SimDuration(0), n: 1, v });
        }
        self.len += 1;
        self.evict_to(cap);
    }

    /// Append `ticks` samples of one value at `start+dt, …, start+ticks·dt`
    /// in O(1): extend the back run when it already carries the value at
    /// spacing `dt` ending at `start`, else append one new run.
    fn push_span(
        &mut self,
        cap: usize,
        start: SimTime,
        dt: SimDuration,
        ticks: u64,
        v: V,
        eq: impl Fn(&V, &V) -> bool,
    ) {
        if ticks == 0 {
            return;
        }
        let extended = match self.runs.back_mut() {
            Some(r) if dt.0 > 0 && eq(&r.v, &v) => {
                if r.n == 1 && start.0 == r.at0.0 {
                    r.dt = dt;
                    r.n = 1 + ticks;
                    true
                } else if r.n > 1 && r.dt.0 == dt.0 && start.0 == r.last_at().0 {
                    r.n += ticks;
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if !extended {
            self.runs.push_back(Run { at0: SimTime(start.0 + dt.0), dt, n: ticks, v });
        }
        self.len += ticks as usize;
        self.evict_to(cap);
    }

    /// Trim the oldest samples until at most `cap` remain.
    fn evict_to(&mut self, cap: usize) {
        while self.len > cap {
            let excess = self.len - cap;
            let Some(f) = self.runs.front_mut() else { break };
            if (f.n as usize) <= excess {
                self.len -= f.n as usize;
                self.runs.pop_front();
            } else {
                f.at0 = SimTime(f.at0.0 + f.dt.0 * excess as u64);
                f.n -= excess as u64;
                self.len -= excess;
            }
        }
    }

    /// Timestamp and value of the newest sample.
    fn last(&self) -> Option<(SimTime, &V)> {
        self.runs.back().map(|r| (r.last_at(), &r.v))
    }

    /// Every retained value, oldest first, one item per logical sample.
    fn values(&self) -> impl Iterator<Item = &V> {
        self.runs.iter().flat_map(|r| std::iter::repeat_n(&r.v, r.n as usize))
    }

    /// Visit the runs overlapping `start <= at <= now`, oldest first, as
    /// `(first_at, dt, count, value)` — the caller decodes each run with
    /// one value read. Runs are time-monotone (`run[i].last_at <=
    /// run[i+1].at0`), so a backwards scan from the newest run finds the
    /// window in O(overlap), not O(ring).
    fn window_runs(
        &self,
        start: SimTime,
        now: SimTime,
        mut f: impl FnMut(SimTime, SimDuration, u64, &V),
    ) {
        let mut hi = self.runs.len();
        while hi > 0 && self.runs[hi - 1].at0 > now {
            hi -= 1;
        }
        let mut lo = hi;
        while lo > 0 && self.runs[lo - 1].last_at() >= start {
            lo -= 1;
        }
        for r in self.runs.range(lo..hi) {
            // Clamp the in-run index range to the window. `at0 <= now` and
            // `last_at >= start` hold for every run in `lo..hi`.
            let i_lo = if r.at0 >= start || r.dt.0 == 0 {
                0
            } else {
                (start.0 - r.at0.0).div_ceil(r.dt.0)
            };
            let i_hi = if r.last_at() <= now || r.dt.0 == 0 {
                r.n - 1
            } else {
                (now.0 - r.at0.0) / r.dt.0
            };
            if i_lo > i_hi {
                continue; // window narrower than the spacing, between samples
            }
            f(SimTime(r.at0.0 + r.dt.0 * i_lo), r.dt, i_hi - i_lo + 1, &r.v);
        }
    }
}

/// Bitwise equality of the five probe metrics (`at` excluded — timestamps
/// advance within a run by construction). NaN is never stored, and
/// `to_bits` keeps `-0.0` distinct from `0.0`, so merged samples
/// materialize bit-identically.
fn gpu_eq(a: &GpuSample, b: &GpuSample) -> bool {
    Metric::ALL.iter().all(|m| a.get(*m).to_bits() == b.get(*m).to_bits())
}

/// Bitwise equality of the four pod usage fields.
fn usage_eq(a: &Usage, b: &Usage) -> bool {
    a.sm_frac.to_bits() == b.sm_frac.to_bits()
        && a.mem_mb.to_bits() == b.mem_mb.to_bits()
        && a.rx_mbps.to_bits() == b.rx_mbps.to_bits()
        && a.tx_mbps.to_bits() == b.tx_mbps.to_bits()
}

/// One node's ring buffer.
#[derive(Debug, Default)]
struct NodeEntry {
    ring: RleRing<GpuSample>,
    /// Samples skipped because a metric value was NaN/Inf.
    rejected: u64,
}

/// One pod's ring buffer.
#[derive(Debug, Default)]
struct PodEntry {
    ring: RleRing<Usage>,
    /// Samples skipped because a usage value was NaN/Inf.
    rejected: u64,
}

/// Welford rescan over an iterator of values.
fn stats_over(values: impl Iterator<Item = f64>) -> SeriesStats {
    let mut s = SeriesStats::default();
    for v in values {
        s.push(v);
    }
    s
}

/// Grow-on-demand slot table: return the entry at `i`, creating it (and any
/// missing slots before it) as needed. `NodeId` and `PodId` are dense
/// sequential indices handed out by the cluster, so a flat `Vec` of optional
/// entries replaces a hash map: series lookup on the per-tick push path is
/// a bounds check and a pointer add instead of a SipHash round.
fn slot<T: Default>(v: &mut Vec<Option<T>>, i: usize) -> &mut T {
    if v.len() <= i {
        v.resize_with(i + 1, || None);
    }
    v[i].get_or_insert_with(T::default)
}

#[derive(Debug, Default)]
struct Inner {
    /// Running total of rejected samples across every series (node + pod),
    /// maintained on push so surfacing it never iterates the tables.
    rejected_total: u64,
    // Dense slot tables indexed by NodeId / PodId. Slots are only ever
    // addressed by id (never iterated), so table order cannot leak into
    // scheduling decisions.
    nodes: Vec<Option<NodeEntry>>,
    pods: Vec<Option<PodEntry>>,
}

impl Inner {
    fn node(&self, node: NodeId) -> Option<&NodeEntry> {
        self.nodes.get(node.0).and_then(|e| e.as_ref())
    }

    fn pod(&self, pod: PodId) -> Option<&PodEntry> {
        self.pods.get(pod.0 as usize).and_then(|e| e.as_ref())
    }

    /// Shared push logic behind both the one-shot and the batched writers.
    fn push_node(&mut self, cfg: &TsdbConfig, node: NodeId, sample: GpuSample) -> bool {
        if Metric::ALL.iter().any(|m| !sample.get(*m).is_finite()) {
            slot(&mut self.nodes, node.0).rejected += 1;
            self.rejected_total += 1;
            return false;
        }
        slot(&mut self.nodes, node.0).ring.push(cfg.node_capacity, sample.at, sample, gpu_eq);
        true
    }

    /// Shared push logic behind both the one-shot and the batched writers.
    fn push_pod(&mut self, cfg: &TsdbConfig, pod: PodId, at: SimTime, usage: Usage) -> bool {
        if !usage.mem_mb.is_finite()
            || !usage.sm_frac.is_finite()
            || !usage.total_bw_mbps().is_finite()
        {
            slot(&mut self.pods, pod.0 as usize).rejected += 1;
            self.rejected_total += 1;
            return false;
        }
        slot(&mut self.pods, pod.0 as usize).ring.push(cfg.pod_capacity, at, usage, usage_eq);
        true
    }
}

/// A batched write handle holding the write lock of *every* partition.
///
/// Per-tick probing pushes one sample per node and one per running pod;
/// taking the locks once per tick instead of once per push removes the
/// dominant constant cost of the probe phase. Partition guards are always
/// acquired in index order (the workspace-wide lock-order discipline), so
/// a full writer can never deadlock against a [`TsdbShardWriter`]. Values
/// written through the writer are bit-identical to the one-shot
/// [`TimeSeriesDb::push_node`] / [`TimeSeriesDb::push_pod`] calls. Drop
/// the writer to release the locks.
#[derive(Debug)]
pub struct TsdbWriter<'a> {
    cfg: TsdbConfig,
    layout: ShardLayout,
    guards: Vec<parking_lot::RwLockWriteGuard<'a, Inner>>,
}

impl TsdbWriter<'_> {
    fn node_guard(&mut self, node: NodeId) -> &mut Inner {
        let p = self.layout.shard_of(node.0);
        &mut self.guards[p]
    }

    /// Append a node sample; same semantics as [`TimeSeriesDb::push_node`].
    pub fn push_node(&mut self, node: NodeId, sample: GpuSample) -> bool {
        let cfg = self.cfg;
        self.node_guard(node).push_node(&cfg, node, sample)
    }

    /// Append a pod usage sample; same semantics as
    /// [`TimeSeriesDb::push_pod`].
    pub fn push_pod(&mut self, pod: PodId, at: SimTime, usage: Usage) -> bool {
        let cfg = self.cfg;
        let p = (pod.0 as usize) % self.guards.len();
        self.guards[p].push_pod(&cfg, pod, at, usage)
    }

    /// Backfill `ticks` constant samples for a quiet node: the same metric
    /// values at `start + dt`, `start + 2·dt`, …, `start + ticks·dt`.
    /// With run-length-encoded rings this is O(1) — the back run extends by
    /// `ticks` when it already ends at `start` with the same value and
    /// spacing (the steady state for a quiet node), so the series ends up
    /// bit-identical to per-tick probing of an idle node at constant cost
    /// per span. Returns accepted samples.
    pub fn push_node_span(
        &mut self,
        node: NodeId,
        sample: GpuSample,
        start: SimTime,
        dt: SimDuration,
        ticks: u64,
    ) -> u64 {
        let cap = self.cfg.node_capacity;
        let g = self.node_guard(node);
        if Metric::ALL.iter().any(|m| !sample.get(*m).is_finite()) {
            // Every sample in the span carries the same values, so the
            // whole span is rejected exactly as `ticks` one-shot pushes
            // would have been.
            slot(&mut g.nodes, node.0).rejected += ticks;
            g.rejected_total += ticks;
            return 0;
        }
        slot(&mut g.nodes, node.0).ring.push_span(cap, start, dt, ticks, sample, gpu_eq);
        ticks
    }
}

/// A shard-local batched write handle: the write lock of *one* partition.
///
/// This is the per-shard probe lane — writers for distinct shards hold
/// disjoint locks and proceed concurrently, while a reader of any shard
/// blocks only on that shard's writer. Pushes are checked against the
/// layout: a sample routed to a different partition is a programming error
/// and panics rather than silently landing in the wrong ring.
#[derive(Debug)]
pub struct TsdbShardWriter<'a> {
    cfg: TsdbConfig,
    layout: ShardLayout,
    part: usize,
    guard: parking_lot::RwLockWriteGuard<'a, Inner>,
}

impl TsdbShardWriter<'_> {
    /// The partition index this writer owns.
    pub fn part(&self) -> usize {
        self.part
    }

    /// Append a node sample owned by this shard; same semantics as
    /// [`TimeSeriesDb::push_node`].
    pub fn push_node(&mut self, node: NodeId, sample: GpuSample) -> bool {
        assert_eq!(
            self.layout.shard_of(node.0),
            self.part,
            "node routed to a foreign shard writer"
        );
        self.guard.push_node(&self.cfg, node, sample)
    }

    /// Append a pod usage sample owned by this partition; same semantics
    /// as [`TimeSeriesDb::push_pod`].
    pub fn push_pod(&mut self, pod: PodId, at: SimTime, usage: Usage) -> bool {
        assert_eq!(
            (pod.0 as usize) % self.layout.shards(),
            self.part,
            "pod routed to a foreign shard writer"
        );
        self.guard.push_pod(&self.cfg, pod, at, usage)
    }
}

/// The time-series database.
///
/// Thread-safe: writers (node samplers) and readers (the head-node
/// aggregator) take the internal locks independently.
///
/// The store is **partitioned by shard**: node rings live in the partition
/// of the [`ShardLayout`] shard owning their node id, pod rings round-robin
/// across partitions by pod id. A single-partition store (the default) is
/// exactly the old single-lock store; a sharded store lets per-shard probe
/// lanes ([`TimeSeriesDb::shard_writer`]) write concurrently. Partitioning
/// is invisible to every query and to [`TimeSeriesDb::snapshot_state`] —
/// the snapshot is flat and global-ordered, so digests and restores are
/// independent of the partition count.
#[derive(Debug)]
pub struct TimeSeriesDb {
    cfg: TsdbConfig,
    layout: ShardLayout,
    parts: Vec<RwLock<Inner>>,
}

impl Default for TimeSeriesDb {
    fn default() -> Self {
        Self::new(TsdbConfig::default())
    }
}

impl TimeSeriesDb {
    /// Create an empty single-partition store.
    pub fn new(cfg: TsdbConfig) -> Self {
        Self::partitioned(cfg, ShardLayout::new(0, 1))
    }

    /// Create an empty store partitioned along `layout`: one lock-guarded
    /// partition per shard.
    pub fn partitioned(cfg: TsdbConfig, layout: ShardLayout) -> Self {
        let parts = (0..layout.shards()).map(|_| RwLock::new(Inner::default())).collect();
        TimeSeriesDb { cfg, layout, parts }
    }

    /// Number of lock-guarded partitions (= shard count of the layout).
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    fn node_part(&self, node: NodeId) -> &RwLock<Inner> {
        &self.parts[self.layout.shard_of(node.0)]
    }

    fn pod_part(&self, pod: PodId) -> &RwLock<Inner> {
        &self.parts[(pod.0 as usize) % self.parts.len()]
    }

    /// Append a node sample. A sample carrying any non-finite metric value
    /// (NaN/Inf — e.g. a corrupted probe read) is *rejected*, not stored:
    /// storing it would poison every window statistic derived from the
    /// series. Returns whether the sample was accepted; rejections are
    /// counted per series and in total.
    pub fn push_node(&self, node: NodeId, sample: GpuSample) -> bool {
        self.node_part(node).write().push_node(&self.cfg, node, sample)
    }

    /// Append a pod usage sample, with the same non-finite rejection rule
    /// as [`TimeSeriesDb::push_node`].
    pub fn push_pod(&self, pod: PodId, at: SimTime, usage: Usage) -> bool {
        self.pod_part(pod).write().push_pod(&self.cfg, pod, at, usage)
    }

    /// Open a batched write handle that holds every partition's write lock
    /// until dropped. Use for per-tick probe bursts: one lock sweep per
    /// tick instead of one acquisition per sample. Guards are taken in
    /// partition-index order.
    pub fn writer(&self) -> TsdbWriter<'_> {
        TsdbWriter {
            cfg: self.cfg,
            layout: self.layout,
            guards: self.parts.iter().map(|p| p.write()).collect(),
        }
    }

    /// Open a batched write handle for one shard's partition only — the
    /// per-shard probe lane. Writers for distinct shards do not contend.
    pub fn shard_writer(&self, shard: usize) -> TsdbShardWriter<'_> {
        let part = shard.min(self.parts.len() - 1);
        TsdbShardWriter {
            cfg: self.cfg,
            layout: self.layout,
            part,
            guard: self.parts[part].write(),
        }
    }

    /// Rejected (non-finite) samples for one node series.
    pub fn node_rejected(&self, node: NodeId) -> u64 {
        self.node_part(node).read().node(node).map_or(0, |e| e.rejected)
    }

    /// Rejected (non-finite) samples for one pod series.
    pub fn pod_rejected(&self, pod: PodId) -> u64 {
        self.pod_part(pod).read().pod(pod).map_or(0, |e| e.rejected)
    }

    /// Total rejected samples across every series since creation/`clear`.
    pub fn rejected_total(&self) -> u64 {
        self.parts.iter().map(|p| p.read().rejected_total).sum()
    }

    /// Timestamp of the most recent *accepted* sample of a node series —
    /// the freshness signal consumers use to spot probe dropouts.
    pub fn node_last_at(&self, node: NodeId) -> Option<SimTime> {
        self.node_part(node).read().node(node).and_then(|e| e.ring.last().map(|(at, _)| at))
    }

    /// Timestamp of the most recent *accepted* sample of a pod series.
    pub fn pod_last_at(&self, pod: PodId) -> Option<SimTime> {
        self.pod_part(pod).read().pod(pod).and_then(|e| e.ring.last().map(|(at, _)| at))
    }

    /// Drop a pod's series (pod finished; keeps the store bounded over long
    /// experiments).
    pub fn forget_pod(&self, pod: PodId) {
        if let Some(e) = self.pod_part(pod).write().pods.get_mut(pod.0 as usize) {
            *e = None;
        }
    }

    /// Number of samples currently retained for a node.
    pub fn node_len(&self, node: NodeId) -> usize {
        self.node_part(node).read().node(node).map_or(0, |e| e.ring.len)
    }

    /// Number of samples currently retained for a pod.
    pub fn pod_len(&self, pod: PodId) -> usize {
        self.pod_part(pod).read().pod(pod).map_or(0, |e| e.ring.len)
    }

    /// Summary statistics of one node metric over the *retained ring* (not
    /// the query window), computed on demand by a Welford rescan. This is
    /// a diagnostic read — O(ring), never on the per-tick probe path.
    pub fn node_stats(&self, node: NodeId, metric: Metric) -> Option<SeriesStats> {
        self.node_part(node)
            .read()
            .node(node)
            .map(|e| stats_over(e.ring.values().map(|s| s.get(metric))))
    }

    /// Summary statistics of a pod's retained memory series.
    pub fn pod_mem_stats(&self, pod: PodId) -> Option<SeriesStats> {
        self.pod_part(pod).read().pod(pod).map(|e| stats_over(e.ring.values().map(|u| u.mem_mb)))
    }

    /// Summary statistics of a pod's retained SM-share series.
    pub fn pod_sm_stats(&self, pod: PodId) -> Option<SeriesStats> {
        self.pod_part(pod).read().pod(pod).map(|e| stats_over(e.ring.values().map(|u| u.sm_frac)))
    }

    /// The most recent node sample, if any.
    pub fn latest_node(&self, node: NodeId) -> Option<GpuSample> {
        self.node_part(node)
            .read()
            .node(node)
            .and_then(|e| e.ring.last().map(|(at, v)| GpuSample { at, ..*v }))
    }

    /// Node samples within the trailing `window` ending at `now`, oldest
    /// first. This is the §IV-D sliding window (default 5 s) query.
    pub fn node_window(&self, node: NodeId, now: SimTime, window: SimDuration) -> Vec<GpuSample> {
        let start = SimTime(now.0.saturating_sub(window.0));
        let mut out = Vec::new();
        if let Some(e) = self.node_part(node).read().node(node) {
            e.ring.window_runs(start, now, |at0, dt, n, v| {
                for i in 0..n {
                    out.push(GpuSample { at: SimTime(at0.0 + dt.0 * i), ..*v });
                }
            });
        }
        out
    }

    /// One metric of a node over the trailing window, as a plain series.
    pub fn node_series(
        &self,
        node: NodeId,
        metric: Metric,
        now: SimTime,
        window: SimDuration,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.node_series_into(node, metric, now, window, &mut out);
        out
    }

    /// [`TimeSeriesDb::node_series`] into a caller-owned scratch buffer.
    ///
    /// Clears `out` and appends the window's values; returns the sample
    /// count. Reusing one buffer across heartbeats keeps the decision loop
    /// allocation-free once the buffer has grown to the window size, and
    /// each constant run in the window decodes as a single repeat-fill.
    pub fn node_series_into(
        &self,
        node: NodeId,
        metric: Metric,
        now: SimTime,
        window: SimDuration,
        out: &mut Vec<f64>,
    ) -> usize {
        out.clear();
        let start = SimTime(now.0.saturating_sub(window.0));
        if let Some(e) = self.node_part(node).read().node(node) {
            e.ring.window_runs(start, now, |_, _, n, v| {
                out.extend(std::iter::repeat_n(v.get(metric), n as usize));
            });
        }
        out.len()
    }

    /// Pod usage samples within the trailing window, oldest first.
    pub fn pod_window(
        &self,
        pod: PodId,
        now: SimTime,
        window: SimDuration,
    ) -> Vec<(SimTime, Usage)> {
        let start = SimTime(now.0.saturating_sub(window.0));
        let mut out = Vec::new();
        if let Some(e) = self.pod_part(pod).read().pod(pod) {
            e.ring.window_runs(start, now, |at0, dt, n, v| {
                for i in 0..n {
                    out.push((SimTime(at0.0 + dt.0 * i), *v));
                }
            });
        }
        out
    }

    /// A pod's usage-derived series over the trailing window, into a
    /// caller-owned scratch buffer. Clears `out`; returns the sample count.
    fn pod_series_into(
        &self,
        pod: PodId,
        now: SimTime,
        window: SimDuration,
        out: &mut Vec<f64>,
        get: impl Fn(&Usage) -> f64,
    ) -> usize {
        out.clear();
        let start = SimTime(now.0.saturating_sub(window.0));
        if let Some(e) = self.pod_part(pod).read().pod(pod) {
            e.ring.window_runs(start, now, |_, _, n, v| {
                out.extend(std::iter::repeat_n(get(v), n as usize));
            });
        }
        out.len()
    }

    /// A pod's memory series over the trailing window.
    pub fn pod_mem_series(&self, pod: PodId, now: SimTime, window: SimDuration) -> Vec<f64> {
        let mut out = Vec::new();
        self.pod_mem_series_into(pod, now, window, &mut out);
        out
    }

    /// [`TimeSeriesDb::pod_mem_series`] into a caller-owned scratch buffer.
    pub fn pod_mem_series_into(
        &self,
        pod: PodId,
        now: SimTime,
        window: SimDuration,
        out: &mut Vec<f64>,
    ) -> usize {
        self.pod_series_into(pod, now, window, out, |u| u.mem_mb)
    }

    /// A pod's SM-share series over the trailing window.
    pub fn pod_sm_series(&self, pod: PodId, now: SimTime, window: SimDuration) -> Vec<f64> {
        let mut out = Vec::new();
        self.pod_series_into(pod, now, window, &mut out, |u| u.sm_frac);
        out
    }

    /// A pod's total-bandwidth series over the trailing window.
    pub fn pod_bw_series(&self, pod: PodId, now: SimTime, window: SimDuration) -> Vec<f64> {
        let mut out = Vec::new();
        self.pod_series_into(pod, now, window, &mut out, |u| u.total_bw_mbps());
        out
    }

    /// Clear everything (between experiment repetitions).
    pub fn clear(&self) {
        for p in &self.parts {
            let mut g = p.write();
            g.nodes.clear();
            g.pods.clear();
            g.rejected_total = 0;
        }
    }

    // ------------------------------------------------------------------
    // Snapshot / restore (durable control plane; see crates/recovery).
    // ------------------------------------------------------------------

    /// Serializable image of every retained series, run-exact and **flat**:
    /// slot tables are walked in global id order regardless of how the
    /// store is partitioned, so the state (and any digest over it) is
    /// identical across partition counts. Read-only under the read locks
    /// (taken in partition-index order); taking a snapshot never perturbs
    /// the store.
    pub fn snapshot_state(&self) -> TsdbState {
        let guards: Vec<_> = self.parts.iter().map(|p| p.read()).collect();
        let node_len = guards.iter().map(|g| g.nodes.len()).max().unwrap_or(0);
        let pod_len = guards.iter().map(|g| g.pods.len()).max().unwrap_or(0);
        TsdbState {
            rejected_total: guards.iter().map(|g| g.rejected_total).sum(),
            nodes: (0..node_len)
                .map(|i| {
                    let g = &guards[self.layout.shard_of(i)];
                    g.nodes.get(i).and_then(|e| e.as_ref()).map(|e| NodeSeriesState {
                        rejected: e.rejected,
                        runs: e.ring.runs.iter().map(|r| (r.at0, r.dt, r.n, r.v)).collect(),
                    })
                })
                .collect(),
            pods: (0..pod_len)
                .map(|i| {
                    let g = &guards[i % guards.len()];
                    g.pods.get(i).and_then(|e| e.as_ref()).map(|e| PodSeriesState {
                        rejected: e.rejected,
                        runs: e.ring.runs.iter().map(|r| (r.at0, r.dt, r.n, r.v)).collect(),
                    })
                })
                .collect(),
        }
    }

    /// Rebuild a single-partition store from a snapshot plus its original
    /// configuration. See [`TimeSeriesDb::from_state_partitioned`].
    pub fn from_state(cfg: TsdbConfig, state: TsdbState) -> Self {
        Self::from_state_partitioned(cfg, ShardLayout::new(0, 1), state)
    }

    /// Rebuild a store from a snapshot plus its original configuration and
    /// shard layout. The snapshot is flat; series are re-routed into the
    /// partitions of `layout`, so a run captured at one partition count
    /// restores bit-identically at any other. Empty (`None`) slots — pods
    /// forgotten after completion — are preserved, so slot indices keep
    /// their meaning.
    pub fn from_state_partitioned(cfg: TsdbConfig, layout: ShardLayout, state: TsdbState) -> Self {
        fn ring<V: Copy>(runs: Vec<(SimTime, SimDuration, u64, V)>) -> RleRing<V> {
            let len = runs.iter().map(|(_, _, n, _)| *n as usize).sum();
            RleRing {
                runs: runs.into_iter().map(|(at0, dt, n, v)| Run { at0, dt, n, v }).collect(),
                len,
            }
        }
        // Extend the owning partition's slot table to the global index even
        // for `None` slots: trailing forgotten pods must keep the flat
        // table length stable through a snapshot round-trip.
        fn route<T>(table: &mut Vec<Option<T>>, i: usize, e: Option<T>) {
            if table.len() <= i {
                table.resize_with(i + 1, || None);
            }
            table[i] = e;
        }
        let mut inners: Vec<Inner> = (0..layout.shards()).map(|_| Inner::default()).collect();
        // The per-partition split of the running total is not observable
        // (every read sums the partitions), so the whole count lands in
        // partition 0.
        inners[0].rejected_total = state.rejected_total;
        for (i, e) in state.nodes.into_iter().enumerate() {
            let p = layout.shard_of(i);
            let e = e.map(|e| NodeEntry { ring: ring(e.runs), rejected: e.rejected });
            route(&mut inners[p].nodes, i, e);
        }
        let parts_n = inners.len();
        for (i, e) in state.pods.into_iter().enumerate() {
            let p = i % parts_n;
            let e = e.map(|e| PodEntry { ring: ring(e.runs), rejected: e.rejected });
            route(&mut inners[p].pods, i, e);
        }
        TimeSeriesDb { cfg, layout, parts: inners.into_iter().map(RwLock::new).collect() }
    }
}

/// Serializable image of one node series: rejected-sample counter plus the
/// RLE runs as `(at0, dt, n, value)` tuples. The logical sample count is
/// recomputed from the run lengths on restore.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NodeSeriesState {
    /// Samples rejected (non-finite) on this series.
    pub rejected: u64,
    /// The retained runs, oldest first.
    pub runs: Vec<(SimTime, SimDuration, u64, GpuSample)>,
}

/// Serializable image of one pod series; see [`NodeSeriesState`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PodSeriesState {
    /// Samples rejected (non-finite) on this series.
    pub rejected: u64,
    /// The retained runs, oldest first.
    pub runs: Vec<(SimTime, SimDuration, u64, Usage)>,
}

/// Serializable image of the whole store (see [`TimeSeriesDb::snapshot_state`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TsdbState {
    /// Running total of rejected samples across every series.
    pub rejected_total: u64,
    /// Node slot table; `None` slots are preserved.
    pub nodes: Vec<Option<NodeSeriesState>>,
    /// Pod slot table; `None` slots (forgotten pods) are preserved.
    pub pods: Vec<Option<PodSeriesState>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ms: u64, sm: f64) -> GpuSample {
        GpuSample { at: SimTime::from_millis(ms), sm_util: sm, ..Default::default() }
    }

    #[test]
    fn push_and_window_query() {
        let db = TimeSeriesDb::default();
        for i in 0..100 {
            db.push_node(NodeId(0), sample(i * 10, i as f64 / 100.0));
        }
        assert_eq!(db.node_len(NodeId(0)), 100);
        let w = db.node_window(NodeId(0), SimTime::from_millis(990), SimDuration::from_millis(200));
        assert_eq!(w.len(), 21); // samples at 790..=990 inclusive
        assert!(w.first().unwrap().at >= SimTime::from_millis(790));
        assert_eq!(db.latest_node(NodeId(0)).unwrap().at, SimTime::from_millis(990));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let db = TimeSeriesDb::new(TsdbConfig { node_capacity: 10, pod_capacity: 4 });
        for i in 0..25 {
            db.push_node(NodeId(1), sample(i, 0.0));
        }
        assert_eq!(db.node_len(NodeId(1)), 10);
        let w = db.node_window(NodeId(1), SimTime::from_millis(30), SimDuration::from_secs(10));
        assert_eq!(w.first().unwrap().at, SimTime::from_micros(15_000));
    }

    #[test]
    fn metric_series_extraction() {
        let db = TimeSeriesDb::default();
        for i in 0..5 {
            db.push_node(NodeId(0), sample(i, (i as f64) / 10.0));
        }
        let s = db.node_series(
            NodeId(0),
            Metric::SmUtil,
            SimTime::from_millis(10),
            SimDuration::from_secs(1),
        );
        assert_eq!(s, vec![0.0, 0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn series_into_matches_allocating_form_and_reuses_buffer() {
        let db = TimeSeriesDb::default();
        for i in 0..64 {
            db.push_node(NodeId(0), sample(i * 10, (i as f64).sin()));
            db.push_pod(
                PodId(3),
                SimTime::from_millis(i * 10),
                Usage::new(0.1, 50.0 + i as f64, 1.0, 1.0),
            );
        }
        let now = SimTime::from_millis(630);
        let w = SimDuration::from_millis(300);
        let mut buf = vec![99.0; 4]; // stale contents must be cleared
        let n = db.node_series_into(NodeId(0), Metric::SmUtil, now, w, &mut buf);
        assert_eq!(buf, db.node_series(NodeId(0), Metric::SmUtil, now, w));
        assert_eq!(n, buf.len());
        let cap_before = buf.capacity();
        db.node_series_into(NodeId(0), Metric::SmUtil, now, w, &mut buf);
        assert_eq!(buf.capacity(), cap_before, "steady state must not reallocate");
        let mut pbuf = Vec::new();
        db.pod_mem_series_into(PodId(3), now, w, &mut pbuf);
        assert_eq!(pbuf, db.pod_mem_series(PodId(3), now, w));
        // Missing keys leave the buffer cleared.
        assert_eq!(db.node_series_into(NodeId(9), Metric::SmUtil, now, w, &mut buf), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn rolling_stats_track_the_retained_ring() {
        // Capacity 8: pushes 0..50 keep only the last 8; the Welford
        // summary (push + inverse-update eviction) must match a rescan.
        let db = TimeSeriesDb::new(TsdbConfig { node_capacity: 8, pod_capacity: 8 });
        for i in 0..50u64 {
            db.push_node(NodeId(0), sample(i, i as f64 * 0.7));
            db.push_pod(PodId(1), SimTime::from_millis(i), Usage::new(0.2, i as f64, 0.0, 0.0));
        }
        let retained: Vec<f64> = (42..50).map(|i| i as f64 * 0.7).collect();
        let naive_mean = retained.iter().sum::<f64>() / retained.len() as f64;
        let naive_var =
            retained.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / retained.len() as f64;
        let s = db.node_stats(NodeId(0), Metric::SmUtil).unwrap();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - naive_mean).abs() < 1e-9, "{} vs {naive_mean}", s.mean());
        assert!((s.variance() - naive_var).abs() < 1e-9, "{} vs {naive_var}", s.variance());
        let p = db.pod_mem_stats(PodId(1)).unwrap();
        assert_eq!(p.count(), 8);
        assert!((p.mean() - 45.5).abs() < 1e-9);
        assert!(db.pod_sm_stats(PodId(1)).unwrap().count() == 8);
    }

    #[test]
    fn rolling_stats_survive_long_evict_cycles() {
        // Seeded-LCG fuzz: thousands of push/evict cycles with values of
        // mixed magnitude must not drift the incremental summary off a
        // fresh rescan of the retained window.
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        let mut lcg = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 1000.0
        };
        let db = TimeSeriesDb::new(TsdbConfig { node_capacity: 32, pod_capacity: 32 });
        let mut pushed = Vec::new();
        for i in 0..5000u64 {
            let v = lcg();
            pushed.push(v);
            db.push_node(NodeId(0), sample(i, v));
        }
        let tail = &pushed[pushed.len() - 32..];
        let mean = tail.iter().sum::<f64>() / 32.0;
        let var = tail.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 32.0;
        let s = db.node_stats(NodeId(0), Metric::SmUtil).unwrap();
        assert!((s.mean() - mean).abs() / mean.abs() < 1e-6, "{} vs {mean}", s.mean());
        assert!((s.variance() - var).abs() / var < 1e-6, "{} vs {var}", s.variance());
    }

    #[test]
    fn stats_degenerate_cases() {
        let mut s = SeriesStats::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        s.evict(1.0); // evicting from empty is a no-op
        assert_eq!(s.count(), 0);
        s.push(5.0);
        assert_eq!(s.variance(), 0.0);
        s.evict(5.0);
        assert_eq!(s, SeriesStats::default());
        let db = TimeSeriesDb::default();
        assert!(db.node_stats(NodeId(0), Metric::SmUtil).is_none());
        assert!(db.pod_mem_stats(PodId(0)).is_none());
    }

    #[test]
    fn pod_series_round_trip() {
        let db = TimeSeriesDb::default();
        for i in 0..10u64 {
            db.push_pod(
                PodId(7),
                SimTime::from_millis(i),
                Usage::new(0.5, 100.0 + i as f64, 1.0, 2.0),
            );
        }
        assert_eq!(db.pod_len(PodId(7)), 10);
        let mem = db.pod_mem_series(PodId(7), SimTime::from_millis(9), SimDuration::from_secs(1));
        assert_eq!(mem.len(), 10);
        assert_eq!(mem[9], 109.0);
        let bw = db.pod_bw_series(PodId(7), SimTime::from_millis(9), SimDuration::from_secs(1));
        assert!(bw.iter().all(|&b| (b - 3.0).abs() < 1e-12));
        db.forget_pod(PodId(7));
        assert_eq!(db.pod_len(PodId(7)), 0);
        assert!(db.pod_mem_stats(PodId(7)).is_none(), "forget drops the rolling stats too");
    }

    #[test]
    fn non_finite_samples_are_rejected_and_counted() {
        let db = TimeSeriesDb::default();
        assert!(db.push_node(NodeId(0), sample(0, 0.4)));
        assert!(!db.push_node(NodeId(0), sample(1, f64::NAN)));
        assert!(!db.push_node(NodeId(0), sample(2, f64::INFINITY)));
        assert!(db.push_node(NodeId(0), sample(3, 0.6)));
        // Only the two finite samples are retained; stats stay finite.
        assert_eq!(db.node_len(NodeId(0)), 2);
        assert_eq!(db.node_rejected(NodeId(0)), 2);
        let s = db.node_stats(NodeId(0), Metric::SmUtil).unwrap();
        assert!((s.mean() - 0.5).abs() < 1e-12);
        // Freshness reflects the last *accepted* sample.
        assert_eq!(db.node_last_at(NodeId(0)), Some(SimTime::from_millis(3)));

        assert!(!db.push_pod(PodId(1), SimTime::ZERO, Usage::new(0.1, f64::NAN, 0.0, 0.0)));
        assert!(!db.push_pod(
            PodId(1),
            SimTime::ZERO,
            Usage::new(f64::NEG_INFINITY, 1.0, 0.0, 0.0)
        ));
        assert!(db.push_pod(PodId(1), SimTime::from_millis(5), Usage::new(0.1, 10.0, 0.0, 0.0)));
        assert_eq!(db.pod_len(PodId(1)), 1);
        assert_eq!(db.pod_rejected(PodId(1)), 2);
        assert_eq!(db.pod_last_at(PodId(1)), Some(SimTime::from_millis(5)));
        assert_eq!(db.rejected_total(), 4);
        db.clear();
        assert_eq!(db.rejected_total(), 0);
    }

    #[test]
    fn freshness_of_missing_series_is_none() {
        let db = TimeSeriesDb::default();
        assert_eq!(db.node_last_at(NodeId(7)), None);
        assert_eq!(db.pod_last_at(PodId(7)), None);
        assert_eq!(db.node_rejected(NodeId(7)), 0);
        assert_eq!(db.rejected_total(), 0);
    }

    #[test]
    fn empty_queries_are_empty() {
        let db = TimeSeriesDb::default();
        assert!(db
            .node_window(NodeId(3), SimTime::from_secs(1), SimDuration::from_secs(1))
            .is_empty());
        assert!(db.latest_node(NodeId(3)).is_none());
        assert_eq!(db.pod_sm_series(PodId(1), SimTime::ZERO, SimDuration::from_secs(1)).len(), 0);
    }

    #[test]
    fn clear_resets() {
        let db = TimeSeriesDb::default();
        db.push_node(NodeId(0), sample(0, 0.1));
        db.push_pod(PodId(0), SimTime::ZERO, Usage::ZERO);
        db.clear();
        assert_eq!(db.node_len(NodeId(0)), 0);
        assert_eq!(db.pod_len(PodId(0)), 0);
        assert!(db.node_stats(NodeId(0), Metric::SmUtil).is_none());
    }

    #[test]
    fn batched_writer_matches_one_shot_pushes() {
        let a = TimeSeriesDb::new(TsdbConfig { node_capacity: 16, pod_capacity: 16 });
        let b = TimeSeriesDb::new(TsdbConfig { node_capacity: 16, pod_capacity: 16 });
        {
            let mut w = a.writer();
            for i in 0..40u64 {
                w.push_node(NodeId(0), sample(i, (i as f64).cos()));
                w.push_pod(PodId(1), SimTime::from_millis(i), Usage::new(0.3, i as f64, 1.0, 0.0));
            }
            assert!(!w.push_node(NodeId(0), sample(40, f64::NAN)), "rejection rule preserved");
        }
        for i in 0..40u64 {
            b.push_node(NodeId(0), sample(i, (i as f64).cos()));
            b.push_pod(PodId(1), SimTime::from_millis(i), Usage::new(0.3, i as f64, 1.0, 0.0));
        }
        b.push_node(NodeId(0), sample(40, f64::NAN));
        let now = SimTime::from_millis(39);
        let w = SimDuration::from_secs(1);
        assert_eq!(
            a.node_series(NodeId(0), Metric::SmUtil, now, w),
            b.node_series(NodeId(0), Metric::SmUtil, now, w)
        );
        assert_eq!(
            a.node_stats(NodeId(0), Metric::SmUtil),
            b.node_stats(NodeId(0), Metric::SmUtil)
        );
        assert_eq!(a.node_rejected(NodeId(0)), b.node_rejected(NodeId(0)));
        assert_eq!(a.pod_mem_series(PodId(1), now, w), b.pod_mem_series(PodId(1), now, w));
    }

    #[test]
    fn span_backfill_matches_per_tick_pushes() {
        // 12 quiet ticks through push_node_span must equal 12 individual
        // pushes of the same constant sample with advancing timestamps —
        // including ring eviction and retained-sample stats.
        let a = TimeSeriesDb::new(TsdbConfig { node_capacity: 8, pod_capacity: 8 });
        let b = TimeSeriesDb::new(TsdbConfig { node_capacity: 8, pod_capacity: 8 });
        let dt = SimDuration::from_millis(10);
        let start = SimTime::from_millis(100);
        let quiet = GpuSample {
            at: start,
            sm_util: 0.0,
            mem_used_mb: 0.0,
            power_watts: 9.0,
            tx_mbps: 0.0,
            rx_mbps: 0.0,
        };
        let accepted = a.writer().push_node_span(NodeId(3), quiet, start, dt, 12);
        assert_eq!(accepted, 12);
        for i in 1..=12u64 {
            b.push_node(NodeId(3), GpuSample { at: start + dt * i, ..quiet });
        }
        let now = start + dt * 12;
        let w = SimDuration::from_secs(5);
        let wa = a.node_window(NodeId(3), now, w);
        let wb = b.node_window(NodeId(3), now, w);
        assert_eq!(wa.len(), wb.len());
        for (x, y) in wa.iter().zip(wb.iter()) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.power_watts, y.power_watts);
        }
        assert_eq!(
            a.node_stats(NodeId(3), Metric::PowerWatts),
            b.node_stats(NodeId(3), Metric::PowerWatts)
        );
        assert_eq!(a.node_last_at(NodeId(3)), b.node_last_at(NodeId(3)));
    }

    #[test]
    fn runs_merge_only_bit_identical_values_and_spacing() {
        // A constant series collapses into one run; a value change or an
        // off-grid timestamp starts a new run. Either way the materialized
        // window is identical to a flat ring.
        let db = TimeSeriesDb::default();
        for i in 0..6u64 {
            db.push_node(NodeId(0), sample(i * 10, 0.25));
        }
        db.push_node(NodeId(0), sample(60, -0.0)); // -0.0 must not merge with 0.0 later
        db.push_node(NodeId(0), sample(70, 0.0));
        db.push_node(NodeId(0), sample(95, 0.0)); // same value, broken spacing
        let s = db.node_series(
            NodeId(0),
            Metric::SmUtil,
            SimTime::from_millis(95),
            SimDuration::from_secs(1),
        );
        assert_eq!(s.len(), 9);
        assert_eq!(&s[..6], &[0.25; 6]);
        assert_eq!(s[6].to_bits(), (-0.0f64).to_bits());
        assert_eq!(s[7].to_bits(), 0.0f64.to_bits());
        assert_eq!(s[8].to_bits(), 0.0f64.to_bits());
        let w = db.node_window(NodeId(0), SimTime::from_millis(95), SimDuration::from_secs(1));
        let ats: Vec<u64> = w.iter().map(|g| g.at.0).collect();
        let expect: Vec<u64> =
            [0u64, 10, 20, 30, 40, 50, 60, 70, 95].iter().map(|ms| ms * 1000).collect();
        assert_eq!(ats, expect);
    }

    #[test]
    fn partial_eviction_trims_run_fronts_sample_exactly() {
        // Capacity 10 over one long constant run: eviction shortens the
        // run in place, so retention is sample-exact.
        let db = TimeSeriesDb::new(TsdbConfig { node_capacity: 10, pod_capacity: 10 });
        let quiet = sample(0, 0.5);
        db.push_node(NodeId(0), quiet);
        let dt = SimDuration::from_millis(1);
        db.writer().push_node_span(NodeId(0), quiet, SimTime::ZERO, dt, 24);
        assert_eq!(db.node_len(NodeId(0)), 10);
        let w = db.node_window(NodeId(0), SimTime::from_millis(24), SimDuration::from_secs(1));
        assert_eq!(w.len(), 10);
        assert_eq!(w.first().unwrap().at, SimTime::from_millis(15));
        assert_eq!(w.last().unwrap().at, SimTime::from_millis(24));
    }

    #[test]
    fn partitioned_store_matches_single_partition() {
        // The same push sequence against 1-, 2- and 4-partition stores must
        // be indistinguishable through every query and through the flat
        // snapshot — partitioning only moves locks, never data.
        let cfg = TsdbConfig { node_capacity: 32, pod_capacity: 32 };
        let feed = |db: &TimeSeriesDb| {
            for i in 0..200u64 {
                for n in 0..8usize {
                    db.push_node(NodeId(n), sample(i * 10, (i as f64 + n as f64).sin()));
                }
                for p in 0..5u64 {
                    db.push_pod(
                        PodId(p),
                        SimTime::from_millis(i * 10),
                        Usage::new(0.2, i as f64 + p as f64, 1.0, 0.0),
                    );
                }
            }
            db.push_node(NodeId(3), sample(9999, f64::NAN));
            db.forget_pod(PodId(4));
        };
        let flat = TimeSeriesDb::new(cfg);
        feed(&flat);
        let base = flat.snapshot_state();
        for shards in [2usize, 4] {
            let db = TimeSeriesDb::partitioned(cfg, ShardLayout::new(8, shards));
            assert_eq!(db.partitions(), shards);
            feed(&db);
            assert_eq!(db.snapshot_state(), base, "{shards} partitions");
            assert_eq!(db.rejected_total(), flat.rejected_total());
            let now = SimTime::from_millis(1990);
            let w = SimDuration::from_secs(1);
            for n in 0..8usize {
                assert_eq!(
                    db.node_series(NodeId(n), Metric::SmUtil, now, w),
                    flat.node_series(NodeId(n), Metric::SmUtil, now, w)
                );
                assert_eq!(db.node_last_at(NodeId(n)), flat.node_last_at(NodeId(n)));
            }
            for p in 0..5u64 {
                assert_eq!(db.pod_mem_series(PodId(p), now, w), flat.pod_mem_series(PodId(p), now, w));
            }
        }
    }

    #[test]
    fn snapshot_round_trips_across_partition_counts() {
        // Capture at one partition count, restore at another: the restored
        // store must re-snapshot identically and answer queries the same.
        let cfg = TsdbConfig { node_capacity: 16, pod_capacity: 16 };
        let db = TimeSeriesDb::partitioned(cfg, ShardLayout::new(6, 3));
        for i in 0..50u64 {
            for n in 0..6usize {
                db.push_node(NodeId(n), sample(i, (n as f64) * 0.1));
            }
            db.push_pod(PodId(9), SimTime::from_millis(i), Usage::new(0.4, i as f64, 0.0, 0.0));
        }
        db.forget_pod(PodId(9)); // trailing None slot must survive the trip
        let state = db.snapshot_state();
        for shards in [1usize, 2, 6] {
            let re = TimeSeriesDb::from_state_partitioned(cfg, ShardLayout::new(6, shards), state.clone());
            assert_eq!(re.snapshot_state(), state, "{shards} partitions");
            assert_eq!(re.pod_len(PodId(9)), 0);
            assert_eq!(re.node_len(NodeId(5)), db.node_len(NodeId(5)));
        }
    }

    #[test]
    fn shard_writers_cover_the_store_and_check_routing() {
        let layout = ShardLayout::new(8, 4);
        let db = TimeSeriesDb::partitioned(TsdbConfig::default(), layout);
        for s in 0..4usize {
            let mut w = db.shard_writer(s);
            assert_eq!(w.part(), s);
            for n in layout.range(s) {
                assert!(w.push_node(NodeId(n), sample(5, 0.5)));
            }
        }
        for n in 0..8usize {
            assert_eq!(db.node_len(NodeId(n)), 1);
        }
        // Pods route round-robin by id.
        let mut w = db.shard_writer(2);
        assert!(w.push_pod(PodId(6), SimTime::ZERO, Usage::new(0.1, 1.0, 0.0, 0.0)));
        drop(w);
        assert_eq!(db.pod_len(PodId(6)), 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut w = db.shard_writer(0);
            w.push_node(NodeId(7), sample(6, 0.5));
        }));
        assert!(r.is_err(), "foreign-shard push must be rejected");
    }

    #[test]
    fn concurrent_writers_and_reader() {
        let db = std::sync::Arc::new(TimeSeriesDb::default());
        let mut handles = vec![];
        for n in 0..4usize {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    db.push_node(NodeId(n), sample(i, 0.5));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for n in 0..4usize {
            assert_eq!(db.node_len(NodeId(n)), 1000);
        }
    }
}
