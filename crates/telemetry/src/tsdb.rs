//! The in-memory time-series store (InfluxDB stand-in).
//!
//! One bounded ring buffer of [`GpuSample`]s per node, plus one bounded ring
//! buffer of per-pod [`Usage`] samples per pod. Retention is capacity-based:
//! with the paper's 1 ms heartbeat and 5 s sliding window (§IV-D), the
//! default capacity of 8192 samples comfortably covers the window the
//! schedulers query.

use knots_sim::ids::{NodeId, PodId};
use knots_sim::metrics::{GpuSample, Metric};
use knots_sim::resources::Usage;
use knots_sim::time::{SimDuration, SimTime};
use parking_lot::RwLock;
// knots-allow: D2 -- import only; the two maps below are keyed lookups that are never iterated
use std::collections::{HashMap, VecDeque};

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct TsdbConfig {
    /// Maximum retained samples per node series.
    pub node_capacity: usize,
    /// Maximum retained samples per pod series.
    pub pod_capacity: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig { node_capacity: 8192, pod_capacity: 8192 }
    }
}

#[derive(Debug, Default)]
struct Inner {
    // Both maps are accessed exclusively by key (get/entry/remove/clear) —
    // iteration order can never leak into scheduling decisions, so O(1)
    // hashed lookups are safe and worth it on the hot sampling path.
    // knots-allow: D2 -- keyed get/entry/remove only, never iterated
    nodes: HashMap<NodeId, VecDeque<GpuSample>>,
    // knots-allow: D2 -- keyed get/entry/remove only, never iterated
    pods: HashMap<PodId, VecDeque<(SimTime, Usage)>>,
}

/// The time-series database.
///
/// Thread-safe: writers (node samplers) and readers (the head-node
/// aggregator) take the internal lock independently.
#[derive(Debug)]
pub struct TimeSeriesDb {
    cfg: TsdbConfig,
    inner: RwLock<Inner>,
}

impl Default for TimeSeriesDb {
    fn default() -> Self {
        Self::new(TsdbConfig::default())
    }
}

impl TimeSeriesDb {
    /// Create an empty store.
    pub fn new(cfg: TsdbConfig) -> Self {
        TimeSeriesDb { cfg, inner: RwLock::new(Inner::default()) }
    }

    /// Append a node sample.
    pub fn push_node(&self, node: NodeId, sample: GpuSample) {
        let mut g = self.inner.write();
        let q = g.nodes.entry(node).or_default();
        if q.len() == self.cfg.node_capacity {
            q.pop_front();
        }
        q.push_back(sample);
    }

    /// Append a pod usage sample.
    pub fn push_pod(&self, pod: PodId, at: SimTime, usage: Usage) {
        let mut g = self.inner.write();
        let q = g.pods.entry(pod).or_default();
        if q.len() == self.cfg.pod_capacity {
            q.pop_front();
        }
        q.push_back((at, usage));
    }

    /// Drop a pod's series (pod finished; keeps the store bounded over long
    /// experiments).
    pub fn forget_pod(&self, pod: PodId) {
        self.inner.write().pods.remove(&pod);
    }

    /// Number of samples currently retained for a node.
    pub fn node_len(&self, node: NodeId) -> usize {
        self.inner.read().nodes.get(&node).map_or(0, |q| q.len())
    }

    /// Number of samples currently retained for a pod.
    pub fn pod_len(&self, pod: PodId) -> usize {
        self.inner.read().pods.get(&pod).map_or(0, |q| q.len())
    }

    /// The most recent node sample, if any.
    pub fn latest_node(&self, node: NodeId) -> Option<GpuSample> {
        self.inner.read().nodes.get(&node).and_then(|q| q.back().copied())
    }

    /// Node samples within the trailing `window` ending at `now`, oldest
    /// first. This is the §IV-D sliding window (default 5 s) query.
    pub fn node_window(&self, node: NodeId, now: SimTime, window: SimDuration) -> Vec<GpuSample> {
        let start = SimTime(now.0.saturating_sub(window.0));
        self.inner
            .read()
            .nodes
            .get(&node)
            .map(|q| q.iter().filter(|s| s.at >= start && s.at <= now).copied().collect())
            .unwrap_or_default()
    }

    /// One metric of a node over the trailing window, as a plain series.
    pub fn node_series(
        &self,
        node: NodeId,
        metric: Metric,
        now: SimTime,
        window: SimDuration,
    ) -> Vec<f64> {
        self.node_window(node, now, window).iter().map(|s| s.get(metric)).collect()
    }

    /// Pod usage samples within the trailing window, oldest first.
    pub fn pod_window(
        &self,
        pod: PodId,
        now: SimTime,
        window: SimDuration,
    ) -> Vec<(SimTime, Usage)> {
        let start = SimTime(now.0.saturating_sub(window.0));
        self.inner
            .read()
            .pods
            .get(&pod)
            .map(|q| q.iter().filter(|(t, _)| *t >= start && *t <= now).copied().collect())
            .unwrap_or_default()
    }

    /// A pod's memory series over the trailing window.
    pub fn pod_mem_series(&self, pod: PodId, now: SimTime, window: SimDuration) -> Vec<f64> {
        self.pod_window(pod, now, window).iter().map(|(_, u)| u.mem_mb).collect()
    }

    /// A pod's SM-share series over the trailing window.
    pub fn pod_sm_series(&self, pod: PodId, now: SimTime, window: SimDuration) -> Vec<f64> {
        self.pod_window(pod, now, window).iter().map(|(_, u)| u.sm_frac).collect()
    }

    /// A pod's total-bandwidth series over the trailing window.
    pub fn pod_bw_series(&self, pod: PodId, now: SimTime, window: SimDuration) -> Vec<f64> {
        self.pod_window(pod, now, window).iter().map(|(_, u)| u.total_bw_mbps()).collect()
    }

    /// Clear everything (between experiment repetitions).
    pub fn clear(&self) {
        let mut g = self.inner.write();
        g.nodes.clear();
        g.pods.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ms: u64, sm: f64) -> GpuSample {
        GpuSample { at: SimTime::from_millis(ms), sm_util: sm, ..Default::default() }
    }

    #[test]
    fn push_and_window_query() {
        let db = TimeSeriesDb::default();
        for i in 0..100 {
            db.push_node(NodeId(0), sample(i * 10, i as f64 / 100.0));
        }
        assert_eq!(db.node_len(NodeId(0)), 100);
        let w = db.node_window(NodeId(0), SimTime::from_millis(990), SimDuration::from_millis(200));
        assert_eq!(w.len(), 21); // samples at 790..=990 inclusive
        assert!(w.first().unwrap().at >= SimTime::from_millis(790));
        assert_eq!(db.latest_node(NodeId(0)).unwrap().at, SimTime::from_millis(990));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let db = TimeSeriesDb::new(TsdbConfig { node_capacity: 10, pod_capacity: 4 });
        for i in 0..25 {
            db.push_node(NodeId(1), sample(i, 0.0));
        }
        assert_eq!(db.node_len(NodeId(1)), 10);
        let w = db.node_window(NodeId(1), SimTime::from_millis(30), SimDuration::from_secs(10));
        assert_eq!(w.first().unwrap().at, SimTime::from_micros(15_000));
    }

    #[test]
    fn metric_series_extraction() {
        let db = TimeSeriesDb::default();
        for i in 0..5 {
            db.push_node(NodeId(0), sample(i, (i as f64) / 10.0));
        }
        let s = db.node_series(
            NodeId(0),
            Metric::SmUtil,
            SimTime::from_millis(10),
            SimDuration::from_secs(1),
        );
        assert_eq!(s, vec![0.0, 0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn pod_series_round_trip() {
        let db = TimeSeriesDb::default();
        for i in 0..10u64 {
            db.push_pod(
                PodId(7),
                SimTime::from_millis(i),
                Usage::new(0.5, 100.0 + i as f64, 1.0, 2.0),
            );
        }
        assert_eq!(db.pod_len(PodId(7)), 10);
        let mem = db.pod_mem_series(PodId(7), SimTime::from_millis(9), SimDuration::from_secs(1));
        assert_eq!(mem.len(), 10);
        assert_eq!(mem[9], 109.0);
        let bw = db.pod_bw_series(PodId(7), SimTime::from_millis(9), SimDuration::from_secs(1));
        assert!(bw.iter().all(|&b| (b - 3.0).abs() < 1e-12));
        db.forget_pod(PodId(7));
        assert_eq!(db.pod_len(PodId(7)), 0);
    }

    #[test]
    fn empty_queries_are_empty() {
        let db = TimeSeriesDb::default();
        assert!(db
            .node_window(NodeId(3), SimTime::from_secs(1), SimDuration::from_secs(1))
            .is_empty());
        assert!(db.latest_node(NodeId(3)).is_none());
        assert_eq!(db.pod_sm_series(PodId(1), SimTime::ZERO, SimDuration::from_secs(1)).len(), 0);
    }

    #[test]
    fn clear_resets() {
        let db = TimeSeriesDb::default();
        db.push_node(NodeId(0), sample(0, 0.1));
        db.push_pod(PodId(0), SimTime::ZERO, Usage::ZERO);
        db.clear();
        assert_eq!(db.node_len(NodeId(0)), 0);
        assert_eq!(db.pod_len(PodId(0)), 0);
    }

    #[test]
    fn concurrent_writers_and_reader() {
        let db = std::sync::Arc::new(TimeSeriesDb::default());
        let mut handles = vec![];
        for n in 0..4usize {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    db.push_node(NodeId(n), sample(i, 0.5));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for n in 0..4usize {
            assert_eq!(db.node_len(NodeId(n)), 1000);
        }
    }
}
