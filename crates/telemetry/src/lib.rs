//! # knots-telemetry — the Knots monitoring layer
//!
//! Reproduces the telemetry path of Fig. 5 in the paper:
//!
//! * every worker node samples its GPU once per *heartbeat* — the five
//!   pyNVML metrics (SM utilization, memory used, power, tx/rx bandwidth) —
//!   and appends them to a node-local time-series database (InfluxDB in the
//!   paper, an in-memory ring buffer here: [`tsdb::TimeSeriesDb`]);
//! * per-container usage profiles are recorded alongside
//!   ([`tsdb::TimeSeriesDb::push_pod`]);
//! * the head-node **utilization aggregator** queries every node's most
//!   recent window and assembles a [`snapshot::ClusterSnapshot`], the view a
//!   GPU-aware scheduler acts on ([`aggregator::UtilizationAggregator`]).
//!
//! The store is internally synchronized (`parking_lot::RwLock`) so node
//! writers and the head-node reader may run concurrently, mirroring the
//! paper's distributed deployment. At fleet scale both layers shard along
//! the cluster's [`knots_sim::shard::ShardLayout`]: the TSDB partitions its
//! rings per shard (per-shard write lanes via
//! [`tsdb::TimeSeriesDb::shard_writer`]), and the aggregator assembles the
//! snapshot shard by shard plus a federated [`aggregator::ClusterRollup`]
//! of per-shard summaries with bounded staleness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregator;
pub mod probe;
pub mod snapshot;
pub mod tsdb;

pub use aggregator::{ClusterRollup, ShardSummary, UtilizationAggregator};
pub use snapshot::{ClusterSnapshot, NodeView, PodView};
pub use tsdb::{SeriesStats, TimeSeriesDb, TsdbConfig, TsdbShardWriter, TsdbState, TsdbWriter};
