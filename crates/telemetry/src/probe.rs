//! The node-level sampler (pyNVML stand-in).
//!
//! In the paper every worker runs a python agent that queries the GPU via
//! pyNVML each heartbeat and writes into the node's InfluxDB. Here the probe
//! reads each simulated node's latest sample and each resident pod's usage
//! vector, and appends them to the shared [`TimeSeriesDb`].

use crate::tsdb::TimeSeriesDb;
use knots_sim::cluster::Cluster;
use knots_sim::pod::PodState;

/// Sample every node (and resident pod) of the cluster into the store.
///
/// Call once per heartbeat, after `Cluster::step`.
pub fn sample_cluster(cluster: &Cluster, db: &TimeSeriesDb) {
    for node in cluster.nodes() {
        db.push_node(node.id(), node.last_sample());
        for (pod_id, pod) in node.residents() {
            if matches!(pod.state(), PodState::Running) {
                db.push_pod(pod_id, node.last_sample().at, pod.last_usage());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_sim::cluster::ClusterConfig;
    use knots_sim::ids::NodeId;
    use knots_sim::pod::PodSpec;
    use knots_sim::profile::ResourceProfile;
    use knots_sim::resources::GpuModel;
    use knots_sim::time::{SimDuration, SimTime};

    #[test]
    fn probe_records_node_and_pod_series() {
        let mut cfg = ClusterConfig::homogeneous(2, GpuModel::P100);
        cfg.overheads.cold_start_pull = SimDuration::ZERO;
        let mut cluster = Cluster::new(cfg);
        let db = TimeSeriesDb::default();
        let id = cluster.submit(
            PodSpec::batch("x", ResourceProfile::constant(0.5, 2000.0, 10.0)),
            SimTime::ZERO,
        );
        cluster.place(id, NodeId(0)).unwrap();
        for _ in 0..20 {
            cluster.step(SimDuration::from_millis(10));
            sample_cluster(&cluster, &db);
        }
        assert_eq!(db.node_len(NodeId(0)), 20);
        assert_eq!(db.node_len(NodeId(1)), 20);
        assert_eq!(db.pod_len(id), 20);
        let mem = db.pod_mem_series(id, cluster.now(), SimDuration::from_secs(5));
        assert!(mem.iter().all(|&m| (m - 2000.0).abs() < 1e-9));
        // Node 0 shows utilization; node 1 is idle.
        let latest = db.latest_node(NodeId(0)).unwrap();
        assert!((latest.sm_util - 0.5).abs() < 1e-9);
        assert_eq!(db.latest_node(NodeId(1)).unwrap().sm_util, 0.0);
    }
}
