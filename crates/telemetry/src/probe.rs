//! The node-level sampler (pyNVML stand-in).
//!
//! In the paper every worker runs a python agent that queries the GPU via
//! pyNVML each heartbeat and writes into the node's InfluxDB. Here the probe
//! reads each simulated node's latest sample and each resident pod's usage
//! vector, and appends them to the shared [`TimeSeriesDb`].

use crate::tsdb::TimeSeriesDb;
use knots_sim::cluster::Cluster;
use knots_sim::ids::NodeId;
use knots_sim::metrics::GpuSample;
use knots_sim::pod::PodState;

/// Sample every node (and resident pod) of the cluster into the store.
///
/// Call once per heartbeat, after `Cluster::step`. Failed nodes are skipped
/// entirely: a dead agent reports nothing, so its series simply goes stale
/// rather than filling with fabricated zeros.
pub fn sample_cluster(cluster: &Cluster, db: &TimeSeriesDb) {
    sample_cluster_with(cluster, db, |_, s| Some(s));
}

/// [`sample_cluster`] with a per-node interposition hook — the seam the
/// chaos layer uses to model probe dropouts and sample corruption without
/// the telemetry crate knowing about fault plans.
///
/// For each live node the hook receives the would-be sample and returns
/// `Some(sample)` to record it (possibly altered) or `None` to drop this
/// heartbeat's readings for the node (its resident pods are dropped too:
/// a dead probe reports neither). Returns the number of dropped nodes.
pub fn sample_cluster_with(
    cluster: &Cluster,
    db: &TimeSeriesDb,
    mut hook: impl FnMut(NodeId, GpuSample) -> Option<GpuSample>,
) -> u64 {
    // One batched writer per probe round: a single lock acquisition covers
    // every node and pod push of this tick.
    let mut w = db.writer();
    let mut dropped = 0;
    for node in cluster.nodes() {
        if node.is_failed() {
            continue;
        }
        let Some(sample) = hook(node.id(), node.last_sample()) else {
            dropped += 1;
            continue;
        };
        w.push_node(node.id(), sample);
        for (pod_id, pod) in node.residents() {
            if matches!(pod.state(), PodState::Running) {
                w.push_pod(pod_id, sample.at, pod.last_usage());
            }
        }
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_sim::cluster::ClusterConfig;
    use knots_sim::ids::NodeId;
    use knots_sim::pod::PodSpec;
    use knots_sim::profile::ResourceProfile;
    use knots_sim::resources::GpuModel;
    use knots_sim::time::{SimDuration, SimTime};

    #[test]
    fn probe_records_node_and_pod_series() {
        let mut cfg = ClusterConfig::homogeneous(2, GpuModel::P100);
        cfg.overheads.cold_start_pull = SimDuration::ZERO;
        let mut cluster = Cluster::new(cfg);
        let db = TimeSeriesDb::default();
        let id = cluster.submit(
            PodSpec::batch("x", ResourceProfile::constant(0.5, 2000.0, 10.0)),
            SimTime::ZERO,
        );
        cluster.place(id, NodeId(0)).unwrap();
        for _ in 0..20 {
            cluster.step(SimDuration::from_millis(10));
            sample_cluster(&cluster, &db);
        }
        assert_eq!(db.node_len(NodeId(0)), 20);
        assert_eq!(db.node_len(NodeId(1)), 20);
        assert_eq!(db.pod_len(id), 20);
        let mem = db.pod_mem_series(id, cluster.now(), SimDuration::from_secs(5));
        assert!(mem.iter().all(|&m| (m - 2000.0).abs() < 1e-9));
        // Node 0 shows utilization; node 1 is idle.
        let latest = db.latest_node(NodeId(0)).unwrap();
        assert!((latest.sm_util - 0.5).abs() < 1e-9);
        assert_eq!(db.latest_node(NodeId(1)).unwrap().sm_util, 0.0);
    }

    #[test]
    fn hook_can_drop_and_corrupt() {
        let mut cfg = ClusterConfig::homogeneous(2, GpuModel::P100);
        cfg.overheads.cold_start_pull = SimDuration::ZERO;
        let mut cluster = Cluster::new(cfg);
        let db = TimeSeriesDb::default();
        for _ in 0..5 {
            cluster.step(SimDuration::from_millis(10));
            // Drop node 0; corrupt node 1 with NaN (the TSDB rejects it).
            let dropped = sample_cluster_with(&cluster, &db, |id, mut s| {
                if id == NodeId(0) {
                    None
                } else {
                    s.sm_util = f64::NAN;
                    Some(s)
                }
            });
            assert_eq!(dropped, 1);
        }
        assert_eq!(db.node_len(NodeId(0)), 0);
        assert_eq!(db.node_len(NodeId(1)), 0);
        assert_eq!(db.node_rejected(NodeId(1)), 5);
        assert_eq!(db.rejected_total(), 5);
    }

    #[test]
    fn failed_nodes_report_nothing() {
        let mut cfg = ClusterConfig::homogeneous(2, GpuModel::P100);
        cfg.overheads.cold_start_pull = SimDuration::ZERO;
        let mut cluster = Cluster::new(cfg);
        let db = TimeSeriesDb::default();
        cluster.fail_node(NodeId(0)).unwrap();
        for _ in 0..3 {
            cluster.step(SimDuration::from_millis(10));
            sample_cluster(&cluster, &db);
        }
        assert_eq!(db.node_len(NodeId(0)), 0, "dead agents must not fabricate samples");
        assert_eq!(db.node_len(NodeId(1)), 3);
        assert_eq!(db.node_last_at(NodeId(0)), None);
    }
}
