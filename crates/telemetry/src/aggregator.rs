//! The head-node utilization aggregator (Fig. 5).
//!
//! Queries every worker's time-series store once per *heartbeat interval*
//! and assembles the [`ClusterSnapshot`] handed to the scheduler. The
//! heartbeat is the central fidelity knob of the whole system: §VI-D shows
//! prediction accuracy rising from 36% to 84% as the interval shrinks from
//! 1000 ms to 1 ms (and degrading past that).

use crate::snapshot::{ClusterSnapshot, NodeView, PodView};
use knots_sim::cluster::Cluster;
use knots_sim::pod::PodState;
use knots_sim::time::{SimDuration, SimTime};

/// Head-node aggregator with a fixed heartbeat.
#[derive(Debug, Clone)]
pub struct UtilizationAggregator {
    heartbeat: SimDuration,
    window: SimDuration,
    next_due: Option<SimTime>,
}

impl UtilizationAggregator {
    /// The paper's operating point: 1 ms heartbeat, 5 s sliding window.
    pub fn paper_default() -> Self {
        Self::new(SimDuration::from_millis(1), SimDuration::from_secs(5))
    }

    /// Custom heartbeat and window.
    pub fn new(heartbeat: SimDuration, window: SimDuration) -> Self {
        assert!(!heartbeat.is_zero(), "heartbeat must be positive");
        UtilizationAggregator { heartbeat, window, next_due: None }
    }

    /// The configured heartbeat interval.
    pub fn heartbeat(&self) -> SimDuration {
        self.heartbeat
    }

    /// The configured sliding-window length (the `d` of §IV-C).
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Whether a new heartbeat query is due at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        self.next_due.is_none_or(|t| now >= t)
    }

    /// The next scheduled heartbeat instant, if one has been armed by a
    /// previous query. `None` means "due immediately" (before the first
    /// query). Feeds the orchestrator's event calendar.
    pub fn next_due(&self) -> Option<SimTime> {
        self.next_due
    }

    /// Build a snapshot (unconditionally) and schedule the next due time.
    /// The next due time snaps to the heartbeat grid (anchored at t=0)
    /// instead of `now + heartbeat`: when the simulation tick doesn't divide
    /// the heartbeat, measuring from the (late) fire time would stretch
    /// every interval to `ceil(heartbeat / tick) * tick` and the cadence
    /// would drift ever further behind the configured rate.
    pub fn query(&mut self, cluster: &Cluster) -> ClusterSnapshot {
        let now = cluster.now();
        let hb_us = self.heartbeat.as_micros().max(1);
        self.next_due = Some(SimTime::from_micros((now.as_micros() / hb_us + 1) * hb_us));
        snapshot_of(cluster)
    }

    /// Build a snapshot only if the heartbeat has elapsed.
    pub fn query_if_due(&mut self, cluster: &Cluster) -> Option<ClusterSnapshot> {
        if self.due(cluster.now()) {
            Some(self.query(cluster))
        } else {
            None
        }
    }

    /// Push the next heartbeat back by `by` (an injected head-node /
    /// network stall). The scheduler simply decides on an older snapshot
    /// for a while — delayed telemetry degrades decision quality, it must
    /// not corrupt it.
    pub fn postpone(&mut self, now: SimTime, by: SimDuration) {
        let base = self.next_due.unwrap_or(now);
        self.next_due = Some(base + by);
    }

    /// Re-arm the heartbeat from a snapshot (durable control plane; see
    /// crates/recovery). `next_due` is the aggregator's only dynamic state —
    /// heartbeat and window are configuration re-supplied at restore.
    pub fn restore_next_due(&mut self, next_due: Option<SimTime>) {
        self.next_due = next_due;
    }
}

/// Assemble a [`ClusterSnapshot`] from the cluster's current state.
///
/// Failed nodes are omitted entirely — exactly what a real head node sees
/// when a worker stops answering. Schedulers therefore never place onto a
/// dead node without needing any fault awareness of their own.
pub fn snapshot_of(cluster: &Cluster) -> ClusterSnapshot {
    let now = cluster.now();
    let nodes = cluster
        .nodes()
        .iter()
        .filter(|n| !n.is_failed())
        .map(|n| {
            let pods = n
                .residents()
                .map(|(id, p)| PodView {
                    id,
                    name: p.spec().name.clone(),
                    qos: p.spec().qos,
                    limit_mb: p.limit_mb(),
                    request_mb: p.spec().request_mb,
                    usage: p.last_usage(),
                    pulling: matches!(p.state(), PodState::Pulling { .. }),
                    attained_service_secs: p.attained_service(),
                })
                .collect();
            NodeView {
                id: n.id(),
                model: n.gpu().spec().model,
                capacity_mb: n.gpu().capacity_mb(),
                free_measured_mb: n.free_measured_mb(),
                free_provision_mb: n.free_provision_mb(),
                sample: n.last_sample(),
                pods,
                asleep: n.gpu().is_asleep(),
                waking: n.is_waking(now),
            }
        })
        .collect();
    ClusterSnapshot { at: now, nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_sim::cluster::ClusterConfig;
    use knots_sim::ids::NodeId;
    use knots_sim::pod::PodSpec;
    use knots_sim::profile::ResourceProfile;
    use knots_sim::resources::GpuModel;

    fn cluster() -> Cluster {
        let mut cfg = ClusterConfig::homogeneous(3, GpuModel::P100);
        cfg.overheads.cold_start_pull = SimDuration::ZERO;
        Cluster::new(cfg)
    }

    #[test]
    fn heartbeat_gating() {
        let mut c = cluster();
        let mut agg =
            UtilizationAggregator::new(SimDuration::from_millis(100), SimDuration::from_secs(5));
        assert!(agg.due(c.now()));
        assert!(agg.query_if_due(&c).is_some());
        assert!(!agg.due(c.now()));
        c.step(SimDuration::from_millis(50));
        assert!(agg.query_if_due(&c).is_none());
        c.step(SimDuration::from_millis(50));
        assert!(agg.query_if_due(&c).is_some());
    }

    #[test]
    fn heartbeat_does_not_drift_under_non_divisible_tick() {
        // 100 ms heartbeat sampled by a 30 ms tick. Measuring "since last
        // fire" stretches every interval to 120 ms (fires at 0, 120, 240,
        // 360 — a 20% cadence drift). Grid-snapping keeps the long-run
        // average at the configured heartbeat: fires at 0, 120, 210, 300.
        let mut c = cluster();
        let mut agg =
            UtilizationAggregator::new(SimDuration::from_millis(100), SimDuration::from_secs(5));
        let mut fires = Vec::new();
        for _ in 0..101 {
            if agg.query_if_due(&c).is_some() {
                fires.push(c.now().as_micros());
            }
            c.step(SimDuration::from_millis(30));
        }
        assert_eq!(&fires[..4], &[0, 120_000, 210_000, 300_000]);
        // 3.03 s of wall time at a 100 ms heartbeat: ~30 fires, not 25.
        let span_us = fires.last().unwrap() - fires.first().unwrap();
        let mean_gap_us = span_us as f64 / (fires.len() - 1) as f64;
        assert!(
            (mean_gap_us - 100_000.0).abs() < 5_000.0,
            "mean inter-fire gap drifted: {mean_gap_us} µs"
        );
    }

    #[test]
    fn snapshot_reflects_cluster_state() {
        let mut c = cluster();
        let id = c.submit(
            PodSpec::batch("r", ResourceProfile::constant(0.7, 3000.0, 10.0))
                .with_request_mb(8000.0),
            SimTime::ZERO,
        );
        c.place(id, NodeId(1)).unwrap();
        c.step(SimDuration::from_millis(10));
        c.sleep_node(NodeId(2)).unwrap();
        let snap = snapshot_of(&c);
        assert_eq!(snap.nodes.len(), 3);
        let n1 = snap.node(NodeId(1)).unwrap();
        assert_eq!(n1.pods.len(), 1);
        assert_eq!(n1.pods[0].id, id);
        assert!((n1.pods[0].usage.mem_mb - 3000.0).abs() < 1e-9);
        assert!((n1.free_provision_mb - (16384.0 - 8000.0)).abs() < 1e-9);
        assert!((n1.free_measured_mb - (16384.0 - 3000.0)).abs() < 1e-9);
        assert!(snap.node(NodeId(2)).unwrap().asleep);
        assert_eq!(snap.active_nodes().count(), 2);
    }

    #[test]
    fn failed_nodes_vanish_from_snapshots() {
        let mut c = cluster();
        c.fail_node(NodeId(1)).unwrap();
        let snap = snapshot_of(&c);
        assert_eq!(snap.nodes.len(), 2);
        assert!(snap.node(NodeId(1)).is_none());
        c.recover_node(NodeId(1)).unwrap();
        assert_eq!(snapshot_of(&c).nodes.len(), 3);
    }

    #[test]
    fn degraded_capacity_is_visible_to_schedulers() {
        let mut c = cluster();
        c.degrade_node(NodeId(0), 0.5).unwrap();
        let snap = snapshot_of(&c);
        assert!((snap.node(NodeId(0)).unwrap().capacity_mb - 8192.0).abs() < 1e-9);
        assert_eq!(snap.node(NodeId(1)).unwrap().capacity_mb, 16_384.0);
    }

    #[test]
    fn postpone_delays_the_next_heartbeat() {
        let mut c = cluster();
        let mut agg =
            UtilizationAggregator::new(SimDuration::from_millis(100), SimDuration::from_secs(5));
        agg.query(&c); // next due at 100 ms
        agg.postpone(c.now(), SimDuration::from_millis(150));
        for _ in 0..25 {
            c.step(SimDuration::from_millis(10));
            if c.now() < SimTime::from_millis(250) {
                assert!(agg.query_if_due(&c).is_none(), "due too early at {:?}", c.now());
            }
        }
        assert!(agg.query_if_due(&c).is_some());
        // Postponing before the first heartbeat anchors on `now`.
        let mut fresh =
            UtilizationAggregator::new(SimDuration::from_millis(100), SimDuration::from_secs(5));
        fresh.postpone(SimTime::ZERO, SimDuration::from_millis(50));
        assert!(!fresh.due(SimTime::from_millis(40)));
        assert!(fresh.due(SimTime::from_millis(50)));
    }

    #[test]
    fn paper_default_operating_point() {
        let agg = UtilizationAggregator::paper_default();
        assert_eq!(agg.heartbeat(), SimDuration::from_millis(1));
        assert_eq!(agg.window(), SimDuration::from_secs(5));
    }
}
