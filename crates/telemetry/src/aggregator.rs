//! The head-node utilization aggregator (Fig. 5).
//!
//! Queries every worker's time-series store once per *heartbeat interval*
//! and assembles the [`ClusterSnapshot`] handed to the scheduler. The
//! heartbeat is the central fidelity knob of the whole system: §VI-D shows
//! prediction accuracy rising from 36% to 84% as the interval shrinks from
//! 1000 ms to 1 ms (and degrading past that).
//!
//! At scale the aggregator is **two-level**: the snapshot is assembled
//! shard by shard (per-shard node views concatenated in shard order — which
//! *is* node order, because shards are contiguous id ranges), and each
//! heartbeat also folds a [`ShardSummary`] per shard into a
//! [`ClusterRollup`] — the federated head-node view with bounded staleness
//! (every summary is at most one heartbeat old). The rollup's folded sums
//! are a monitoring surface, deliberately kept out of scheduler decision
//! paths: float addition is not associative, so a shard-folded mean would
//! vary with the shard count, while the flat snapshot the schedulers
//! consume is bit-identical at every shard count.

use crate::snapshot::{ClusterSnapshot, NodeView, PodView};
use knots_sim::cluster::Cluster;
use knots_sim::node::Node;
use knots_sim::pod::PodState;
use knots_sim::pool::run_jobs;
use knots_sim::shard::ShardLayout;
use knots_sim::time::{SimDuration, SimTime};

/// Head-node aggregator with a fixed heartbeat.
#[derive(Debug, Clone)]
pub struct UtilizationAggregator {
    heartbeat: SimDuration,
    window: SimDuration,
    next_due: Option<SimTime>,
}

impl UtilizationAggregator {
    /// The paper's operating point: 1 ms heartbeat, 5 s sliding window.
    pub fn paper_default() -> Self {
        Self::new(SimDuration::from_millis(1), SimDuration::from_secs(5))
    }

    /// Custom heartbeat and window.
    pub fn new(heartbeat: SimDuration, window: SimDuration) -> Self {
        assert!(!heartbeat.is_zero(), "heartbeat must be positive");
        UtilizationAggregator { heartbeat, window, next_due: None }
    }

    /// The configured heartbeat interval.
    pub fn heartbeat(&self) -> SimDuration {
        self.heartbeat
    }

    /// The configured sliding-window length (the `d` of §IV-C).
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Whether a new heartbeat query is due at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        self.next_due.is_none_or(|t| now >= t)
    }

    /// The next scheduled heartbeat instant, if one has been armed by a
    /// previous query. `None` means "due immediately" (before the first
    /// query). Feeds the orchestrator's event calendar.
    pub fn next_due(&self) -> Option<SimTime> {
        self.next_due
    }

    /// Build a snapshot (unconditionally) and schedule the next due time.
    /// The next due time snaps to the heartbeat grid (anchored at t=0)
    /// instead of `now + heartbeat`: when the simulation tick doesn't divide
    /// the heartbeat, measuring from the (late) fire time would stretch
    /// every interval to `ceil(heartbeat / tick) * tick` and the cadence
    /// would drift ever further behind the configured rate.
    pub fn query(&mut self, cluster: &Cluster) -> ClusterSnapshot {
        let now = cluster.now();
        let hb_us = self.heartbeat.as_micros().max(1);
        self.next_due = Some(SimTime::from_micros((now.as_micros() / hb_us + 1) * hb_us));
        snapshot_of(cluster)
    }

    /// Build a snapshot only if the heartbeat has elapsed.
    pub fn query_if_due(&mut self, cluster: &Cluster) -> Option<ClusterSnapshot> {
        if self.due(cluster.now()) {
            Some(self.query(cluster))
        } else {
            None
        }
    }

    /// Build a snapshot *and* the two-level shard rollup in one heartbeat
    /// query. The rollup folds each shard's node views into a
    /// [`ShardSummary`]; its staleness is bounded by the heartbeat.
    pub fn query_rollup(&mut self, cluster: &Cluster) -> (ClusterSnapshot, ClusterRollup) {
        let snap = self.query(cluster);
        let rollup = ClusterRollup::from_snapshot(&snap, cluster.shard_layout());
        (snap, rollup)
    }

    /// Push the next heartbeat back by `by` (an injected head-node /
    /// network stall). The scheduler simply decides on an older snapshot
    /// for a while — delayed telemetry degrades decision quality, it must
    /// not corrupt it.
    pub fn postpone(&mut self, now: SimTime, by: SimDuration) {
        let base = self.next_due.unwrap_or(now);
        self.next_due = Some(base + by);
    }

    /// Re-arm the heartbeat from a snapshot (durable control plane; see
    /// crates/recovery). `next_due` is the aggregator's only dynamic state —
    /// heartbeat and window are configuration re-supplied at restore.
    pub fn restore_next_due(&mut self, next_due: Option<SimTime>) {
        self.next_due = next_due;
    }
}

/// Node count at or above which a multi-shard snapshot builds its
/// per-shard view lists on the worker pool instead of inline. View
/// assembly clones pod names and walks resident maps, so at fleet scale
/// the per-heartbeat cost is worth fanning out; small clusters stay serial
/// to avoid thread coordination.
const PARALLEL_SNAPSHOT_NODES: usize = 256;

/// One shard's node views, in node order. Failed nodes are omitted.
fn shard_node_views(nodes: &[Node], now: SimTime) -> Vec<NodeView> {
    nodes
        .iter()
        .filter(|n| !n.is_failed())
        .map(|n| {
            let pods = n
                .residents()
                .map(|(id, p)| PodView {
                    id,
                    name: p.spec().name.clone(),
                    qos: p.spec().qos,
                    limit_mb: p.limit_mb(),
                    request_mb: p.spec().request_mb,
                    usage: p.last_usage(),
                    pulling: matches!(p.state(), PodState::Pulling { .. }),
                    attained_service_secs: p.attained_service(),
                })
                .collect();
            NodeView {
                id: n.id(),
                model: n.gpu().spec().model,
                capacity_mb: n.gpu().capacity_mb(),
                free_measured_mb: n.free_measured_mb(),
                free_provision_mb: n.free_provision_mb(),
                sample: n.last_sample(),
                pods,
                asleep: n.gpu().is_asleep(),
                waking: n.is_waking(now),
            }
        })
        .collect()
}

/// Assemble a [`ClusterSnapshot`] from the cluster's current state.
///
/// Failed nodes are omitted entirely — exactly what a real head node sees
/// when a worker stops answering. Schedulers therefore never place onto a
/// dead node without needing any fault awareness of their own.
///
/// The build is two-level: per-shard view lists concatenated in shard
/// order. Shards are contiguous node-id ranges, so the concatenation *is*
/// node order and the result is bit-identical to a flat scan at any shard
/// count. Large multi-shard clusters build their shard lists in parallel
/// on scoped worker threads, joined by index — same determinism argument.
pub fn snapshot_of(cluster: &Cluster) -> ClusterSnapshot {
    let now = cluster.now();
    let layout = cluster.shard_layout();
    let all = cluster.nodes();
    let nodes: Vec<NodeView> = if layout.shards() > 1
        && cluster.workers() > 1
        && all.len() >= PARALLEL_SNAPSHOT_NODES
    {
        let jobs: Vec<_> = layout
            .ranges()
            .map(|r| {
                let slice = &all[r];
                move || shard_node_views(slice, now)
            })
            .collect();
        run_jobs(jobs, cluster.workers()).into_iter().flatten().collect()
    } else {
        let mut out = Vec::with_capacity(all.len());
        for r in layout.ranges() {
            out.extend(shard_node_views(&all[r], now));
        }
        out
    };
    ClusterSnapshot { at: now, nodes }
}

/// One shard's contribution to the federated head-node view: counts and
/// sums folded from the shard's node views at one heartbeat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSummary {
    /// Shard index within the layout.
    pub shard: usize,
    /// When this shard's views were assembled.
    pub at: SimTime,
    /// Visible (non-failed) nodes in the shard.
    pub nodes: usize,
    /// Awake nodes.
    pub active: usize,
    /// Deep-sleep nodes.
    pub asleep: usize,
    /// Sum of measured free memory over awake nodes, MB.
    pub free_measured_mb: f64,
    /// Sum of provision-based free memory over awake nodes, MB.
    pub free_provision_mb: f64,
    /// Sum of SM utilization over awake nodes.
    pub sm_util_sum: f64,
}

impl ShardSummary {
    /// Mean SM utilization over this shard's awake nodes.
    pub fn mean_active_sm_util(&self) -> f64 {
        if self.active == 0 {
            0.0
        } else {
            self.sm_util_sum / self.active as f64
        }
    }
}

/// The two-level head-node view: per-shard summaries plus their fold.
///
/// Staleness is bounded: every summary is stamped with its assembly time
/// and a rollup built on the heartbeat path is never older than one
/// heartbeat. The folded sums are monitoring data — scheduler decision
/// paths read the flat snapshot instead, because a shard-folded float sum
/// would vary with the shard count (addition is not associative) while
/// the flat snapshot is bit-identical at every shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRollup {
    /// When the underlying snapshot was taken.
    pub at: SimTime,
    /// Per-shard summaries, in shard order.
    pub shards: Vec<ShardSummary>,
}

impl ClusterRollup {
    /// Fold a snapshot into per-shard summaries along `layout`. Views are
    /// routed by node id; the snapshot's node order means each shard's
    /// views form one contiguous stretch.
    pub fn from_snapshot(snap: &ClusterSnapshot, layout: ShardLayout) -> Self {
        let mut shards: Vec<ShardSummary> = (0..layout.shards())
            .map(|s| ShardSummary {
                shard: s,
                at: snap.at,
                nodes: 0,
                active: 0,
                asleep: 0,
                free_measured_mb: 0.0,
                free_provision_mb: 0.0,
                sm_util_sum: 0.0,
            })
            .collect();
        for n in &snap.nodes {
            let s = &mut shards[layout.shard_of(n.id.0)];
            s.nodes += 1;
            if n.asleep {
                s.asleep += 1;
            } else {
                s.active += 1;
                s.free_measured_mb += n.free_measured_mb;
                s.free_provision_mb += n.free_provision_mb;
                s.sm_util_sum += n.sample.sm_util;
            }
        }
        ClusterRollup { at: snap.at, shards }
    }

    /// Fold the per-shard summaries into one global summary (counts exact,
    /// sums in shard order).
    pub fn global(&self) -> ShardSummary {
        let mut g = ShardSummary {
            shard: usize::MAX,
            at: self.at,
            nodes: 0,
            active: 0,
            asleep: 0,
            free_measured_mb: 0.0,
            free_provision_mb: 0.0,
            sm_util_sum: 0.0,
        };
        for s in &self.shards {
            g.at = g.at.min(s.at);
            g.nodes += s.nodes;
            g.active += s.active;
            g.asleep += s.asleep;
            g.free_measured_mb += s.free_measured_mb;
            g.free_provision_mb += s.free_provision_mb;
            g.sm_util_sum += s.sm_util_sum;
        }
        g
    }

    /// Age of the oldest shard summary at `now` — the rollup's staleness
    /// bound. On the heartbeat path this never exceeds one heartbeat.
    pub fn staleness(&self, now: SimTime) -> SimDuration {
        let oldest = self.shards.iter().map(|s| s.at).min().unwrap_or(self.at);
        now.saturating_since(oldest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_sim::cluster::ClusterConfig;
    use knots_sim::ids::NodeId;
    use knots_sim::pod::PodSpec;
    use knots_sim::profile::ResourceProfile;
    use knots_sim::resources::GpuModel;

    fn cluster() -> Cluster {
        let mut cfg = ClusterConfig::homogeneous(3, GpuModel::P100);
        cfg.overheads.cold_start_pull = SimDuration::ZERO;
        Cluster::new(cfg)
    }

    #[test]
    fn heartbeat_gating() {
        let mut c = cluster();
        let mut agg =
            UtilizationAggregator::new(SimDuration::from_millis(100), SimDuration::from_secs(5));
        assert!(agg.due(c.now()));
        assert!(agg.query_if_due(&c).is_some());
        assert!(!agg.due(c.now()));
        c.step(SimDuration::from_millis(50));
        assert!(agg.query_if_due(&c).is_none());
        c.step(SimDuration::from_millis(50));
        assert!(agg.query_if_due(&c).is_some());
    }

    #[test]
    fn heartbeat_does_not_drift_under_non_divisible_tick() {
        // 100 ms heartbeat sampled by a 30 ms tick. Measuring "since last
        // fire" stretches every interval to 120 ms (fires at 0, 120, 240,
        // 360 — a 20% cadence drift). Grid-snapping keeps the long-run
        // average at the configured heartbeat: fires at 0, 120, 210, 300.
        let mut c = cluster();
        let mut agg =
            UtilizationAggregator::new(SimDuration::from_millis(100), SimDuration::from_secs(5));
        let mut fires = Vec::new();
        for _ in 0..101 {
            if agg.query_if_due(&c).is_some() {
                fires.push(c.now().as_micros());
            }
            c.step(SimDuration::from_millis(30));
        }
        assert_eq!(&fires[..4], &[0, 120_000, 210_000, 300_000]);
        // 3.03 s of wall time at a 100 ms heartbeat: ~30 fires, not 25.
        let span_us = fires.last().unwrap() - fires.first().unwrap();
        let mean_gap_us = span_us as f64 / (fires.len() - 1) as f64;
        assert!(
            (mean_gap_us - 100_000.0).abs() < 5_000.0,
            "mean inter-fire gap drifted: {mean_gap_us} µs"
        );
    }

    #[test]
    fn snapshot_reflects_cluster_state() {
        let mut c = cluster();
        let id = c.submit(
            PodSpec::batch("r", ResourceProfile::constant(0.7, 3000.0, 10.0))
                .with_request_mb(8000.0),
            SimTime::ZERO,
        );
        c.place(id, NodeId(1)).unwrap();
        c.step(SimDuration::from_millis(10));
        c.sleep_node(NodeId(2)).unwrap();
        let snap = snapshot_of(&c);
        assert_eq!(snap.nodes.len(), 3);
        let n1 = snap.node(NodeId(1)).unwrap();
        assert_eq!(n1.pods.len(), 1);
        assert_eq!(n1.pods[0].id, id);
        assert!((n1.pods[0].usage.mem_mb - 3000.0).abs() < 1e-9);
        assert!((n1.free_provision_mb - (16384.0 - 8000.0)).abs() < 1e-9);
        assert!((n1.free_measured_mb - (16384.0 - 3000.0)).abs() < 1e-9);
        assert!(snap.node(NodeId(2)).unwrap().asleep);
        assert_eq!(snap.active_nodes().count(), 2);
    }

    #[test]
    fn failed_nodes_vanish_from_snapshots() {
        let mut c = cluster();
        c.fail_node(NodeId(1)).unwrap();
        let snap = snapshot_of(&c);
        assert_eq!(snap.nodes.len(), 2);
        assert!(snap.node(NodeId(1)).is_none());
        c.recover_node(NodeId(1)).unwrap();
        assert_eq!(snapshot_of(&c).nodes.len(), 3);
    }

    #[test]
    fn degraded_capacity_is_visible_to_schedulers() {
        let mut c = cluster();
        c.degrade_node(NodeId(0), 0.5).unwrap();
        let snap = snapshot_of(&c);
        assert!((snap.node(NodeId(0)).unwrap().capacity_mb - 8192.0).abs() < 1e-9);
        assert_eq!(snap.node(NodeId(1)).unwrap().capacity_mb, 16_384.0);
    }

    #[test]
    fn postpone_delays_the_next_heartbeat() {
        let mut c = cluster();
        let mut agg =
            UtilizationAggregator::new(SimDuration::from_millis(100), SimDuration::from_secs(5));
        agg.query(&c); // next due at 100 ms
        agg.postpone(c.now(), SimDuration::from_millis(150));
        for _ in 0..25 {
            c.step(SimDuration::from_millis(10));
            if c.now() < SimTime::from_millis(250) {
                assert!(agg.query_if_due(&c).is_none(), "due too early at {:?}", c.now());
            }
        }
        assert!(agg.query_if_due(&c).is_some());
        // Postponing before the first heartbeat anchors on `now`.
        let mut fresh =
            UtilizationAggregator::new(SimDuration::from_millis(100), SimDuration::from_secs(5));
        fresh.postpone(SimTime::ZERO, SimDuration::from_millis(50));
        assert!(!fresh.due(SimTime::from_millis(40)));
        assert!(fresh.due(SimTime::from_millis(50)));
    }

    #[test]
    fn sharded_snapshot_matches_flat_scan() {
        // A multi-shard cluster (with the parallel build engaged) must
        // produce a snapshot bit-identical to the single-shard flat scan.
        let build = |shards: usize, workers: usize| {
            let mut cfg = ClusterConfig::homogeneous(300, GpuModel::P100);
            cfg.overheads.cold_start_pull = SimDuration::ZERO;
            cfg.shards = Some(shards);
            cfg.workers = Some(workers);
            let mut c = Cluster::new(cfg);
            for i in 0..150 {
                let id = c.submit(
                    PodSpec::batch("w", ResourceProfile::constant(0.4, 900.0, 30.0)),
                    SimTime::ZERO,
                );
                c.place(id, NodeId((i * 2) % 300)).unwrap();
            }
            c.fail_node(NodeId(7)).unwrap();
            c.step(SimDuration::from_millis(10));
            snapshot_of(&c)
        };
        let flat = build(1, 1);
        for shards in [2usize, 4, 8] {
            let s = build(shards, 3);
            assert_eq!(s.nodes.len(), flat.nodes.len(), "{shards} shards");
            for (a, b) in flat.nodes.iter().zip(s.nodes.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.free_measured_mb.to_bits(), b.free_measured_mb.to_bits());
                assert_eq!(a.sample.sm_util.to_bits(), b.sample.sm_util.to_bits());
                assert_eq!(a.pods.len(), b.pods.len());
            }
        }
    }

    #[test]
    fn rollup_folds_per_shard_and_bounds_staleness() {
        let mut cfg = ClusterConfig::homogeneous(8, GpuModel::P100);
        cfg.overheads.cold_start_pull = SimDuration::ZERO;
        cfg.shards = Some(4);
        let mut c = Cluster::new(cfg);
        let id = c.submit(
            PodSpec::batch("r", ResourceProfile::constant(0.7, 3000.0, 10.0)),
            SimTime::ZERO,
        );
        c.place(id, NodeId(5)).unwrap();
        c.sleep_node(NodeId(0)).unwrap();
        c.step(SimDuration::from_millis(10));
        let mut agg =
            UtilizationAggregator::new(SimDuration::from_millis(100), SimDuration::from_secs(5));
        let (snap, rollup) = agg.query_rollup(&c);
        assert_eq!(rollup.shards.len(), 4);
        assert_eq!(rollup.at, snap.at);
        // Shard 0 holds the sleeper, shard 2 (nodes 4..6) the busy node.
        assert_eq!(rollup.shards[0].asleep, 1);
        assert_eq!(rollup.shards[0].active, 1);
        assert!(rollup.shards[2].sm_util_sum > 0.0);
        let g = rollup.global();
        assert_eq!(g.nodes, 8);
        assert_eq!(g.active, 7);
        assert_eq!(g.asleep, 1);
        // Counts are exact, so the global active count matches the flat
        // snapshot view exactly.
        assert_eq!(g.active, snap.active_nodes().count());
        // Staleness is bounded by the heartbeat.
        assert_eq!(rollup.staleness(snap.at), SimDuration::ZERO);
        assert_eq!(
            rollup.staleness(snap.at + SimDuration::from_millis(40)),
            SimDuration::from_millis(40)
        );
    }

    #[test]
    fn paper_default_operating_point() {
        let agg = UtilizationAggregator::paper_default();
        assert_eq!(agg.heartbeat(), SimDuration::from_millis(1));
        assert_eq!(agg.window(), SimDuration::from_secs(5));
    }
}
