//! Semantic audit records for scheduler decisions.
//!
//! Each helper freezes the *inputs* a policy used, not just its output, so
//! a JSONL trace answers "why did CBP co-locate these apps?" directly: the
//! Spearman coefficient it computed, the threshold it compared against,
//! the Algorithm-1 branch peak prediction took, the reason a bin-pack pass
//! rejected a pod.
//!
//! All helpers early-return on a disabled recorder, so call sites can stay
//! unconditional.

use crate::event::{Event, Severity};
use crate::recorder::Recorder;

/// CBP's correlation gate (paper §V-B): co-location of two apps on `node`
/// was admitted or rejected by comparing Spearman's `rho` to `threshold`.
#[allow(clippy::too_many_arguments)]
pub fn correlation_gate(
    rec: &Recorder,
    t_us: u64,
    scheduler: &'static str,
    node: u64,
    app_a: &str,
    app_b: &str,
    rho: f64,
    threshold: f64,
    admitted: bool,
) {
    if !rec.enabled() {
        return;
    }
    rec.record(
        Event::new(scheduler, "sched.correlation")
            .at(t_us)
            .node(node)
            .str("app_a", app_a)
            .str("app_b", app_b)
            .f64("spearman_rho", rho)
            .f64("threshold", threshold)
            .bool("admitted", admitted),
    );
}

/// Which branch of peak prediction's Algorithm 1 fired for `node`:
/// `insufficient_history`, `no_trend`, `forecast_admit` or
/// `forecast_reject`, with the forecasted peak vs. the capacity it was
/// compared against.
#[allow(clippy::too_many_arguments)]
pub fn forecast_branch(
    rec: &Recorder,
    t_us: u64,
    scheduler: &'static str,
    node: u64,
    branch: &'static str,
    forecast_mb: Option<f64>,
    capacity_mb: f64,
    history_len: usize,
    admitted: bool,
) {
    if !rec.enabled() {
        return;
    }
    let mut e = Event::new(scheduler, "sched.forecast")
        .at(t_us)
        .node(node)
        .str("branch", branch)
        .f64("capacity_mb", capacity_mb)
        .u64("history_len", history_len as u64)
        .bool("admitted", admitted);
    if let Some(f) = forecast_mb {
        e = e.f64("forecast_peak_mb", f);
    }
    rec.record(e);
}

/// A bin-pack pass could not place `pod` (`reason`: `no_feasible_bin`,
/// `all_nodes_asleep`, `headroom`, ...).
pub fn binpack_reject(
    rec: &Recorder,
    t_us: u64,
    scheduler: &'static str,
    pod: u64,
    request_mb: f64,
    reason: &'static str,
) {
    if !rec.enabled() {
        return;
    }
    rec.record(
        Event::new(scheduler, "sched.binpack_reject")
            .at(t_us)
            .severity(Severity::Debug)
            .pod(pod)
            .f64("request_mb", request_mb)
            .str("reason", reason),
    );
}

/// A placement decision: `pod` goes to `node`, with the headroom math that
/// justified it.
pub fn placement(
    rec: &Recorder,
    t_us: u64,
    scheduler: &'static str,
    pod: u64,
    node: u64,
    request_mb: f64,
    free_mb: f64,
) {
    if !rec.enabled() {
        return;
    }
    rec.record(
        Event::new(scheduler, "sched.place")
            .at(t_us)
            .pod(pod)
            .node(node)
            .f64("request_mb", request_mb)
            .f64("free_mb", free_mb),
    );
}

/// A policy ignored a telemetry series because its newest sample was older
/// than the configured freshness bound (probe dropout, node failure) and
/// fell back to its baseline behavior instead of deciding on dead data.
/// `series` names what went stale (`pod_mem`, `node_mem`).
pub fn stale_fallback(
    rec: &Recorder,
    t_us: u64,
    scheduler: &'static str,
    series: &'static str,
    pod: Option<u64>,
    node: Option<u64>,
) {
    if !rec.enabled() {
        return;
    }
    let mut e = Event::new(scheduler, "sched.stale_fallback")
        .at(t_us)
        .severity(Severity::Warn)
        .str("series", series);
    if let Some(p) = pod {
        e = e.pod(p);
    }
    if let Some(n) = node {
        e = e.node(n);
    }
    rec.record(e);
}

/// A generic decision record for policies without richer structure
/// (Gandiva packing moves, Tiresias preemptions, Res-Ag wake-ups).
pub fn decision(
    rec: &Recorder,
    t_us: u64,
    scheduler: &'static str,
    kind: &'static str,
    pod: Option<u64>,
    node: Option<u64>,
    detail: &'static str,
) {
    if !rec.enabled() {
        return;
    }
    let mut e = Event::new(scheduler, kind).at(t_us).str("detail", detail);
    if let Some(p) = pod {
        e = e.pod(p);
    }
    if let Some(n) = node {
        e = e.node(n);
    }
    rec.record(e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;

    #[test]
    fn correlation_gate_freezes_inputs() {
        let rec = Recorder::bounded(8);
        correlation_gate(&rec, 5_000_000, "sched.cbp", 1, "app0", "app2", 0.62, 0.5, false);
        let events = rec.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.kind, "sched.correlation");
        assert_eq!(e.field("spearman_rho"), Some(&FieldValue::F64(0.62)));
        assert_eq!(e.field("admitted"), Some(&FieldValue::Bool(false)));
    }

    #[test]
    fn forecast_branch_omits_absent_forecast() {
        let rec = Recorder::bounded(8);
        forecast_branch(&rec, 0, "sched.pp", 0, "insufficient_history", None, 16_384.0, 3, true);
        let e = &rec.events()[0];
        assert_eq!(e.field("forecast_peak_mb"), None);
        assert_eq!(e.field("history_len"), Some(&FieldValue::U64(3)));
    }

    #[test]
    fn helpers_are_inert_when_disabled() {
        let rec = Recorder::disabled();
        placement(&rec, 0, "sched.uniform", 1, 2, 100.0, 200.0);
        binpack_reject(&rec, 0, "sched.resag", 1, 100.0, "no_feasible_bin");
        decision(&rec, 0, "sched.gandiva", "sched.migrate", Some(1), Some(2), "pack");
        stale_fallback(&rec, 0, "CBP", "pod_mem", Some(1), Some(2));
        assert!(rec.is_empty());
    }

    #[test]
    fn stale_fallback_names_the_series() {
        let rec = Recorder::bounded(8);
        stale_fallback(&rec, 7, "CBP+PP", "node_mem", None, Some(3));
        let e = &rec.events()[0];
        assert_eq!(e.kind, "sched.stale_fallback");
        assert_eq!(e.severity, Severity::Warn);
        assert_eq!(e.field("series"), Some(&FieldValue::Str("node_mem".into())));
        assert_eq!(e.node, Some(3));
        assert_eq!(e.pod, None);
    }
}
