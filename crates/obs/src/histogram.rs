//! Fixed-bucket histograms with percentile estimation.

/// A histogram over fixed, ascending upper bounds, plus exact min/max/sum.
///
/// Observation cost is a binary search over the bounds; percentile queries
/// interpolate linearly within the winning bucket, clamped to the observed
/// min/max so small samples do not report impossible values.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// counts[i] pairs with bounds[i]; the final slot is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    ///
    /// # Panics
    /// Panics when `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Exponentially spaced bounds: `start, start*factor, ...` (`n` bounds).
    ///
    /// # Panics
    /// Panics unless `start > 0`, `factor > 1`, `n >= 1`.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n >= 1, "bad exponential bucket spec");
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Self::new(bounds)
    }

    /// Default latency scale: 1 µs to ~8.4 s in powers of two.
    pub fn latency_us() -> Self {
        Self::exponential(1.0, 2.0, 24)
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram's observations into this one. Bucket-wise
    /// addition, so both histograms must share the same bounds — the hot
    /// path accumulates into a private histogram and merges once per run
    /// instead of taking the registry lock per observation.
    ///
    /// # Panics
    /// Panics when the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "can only merge histograms with equal buckets");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`), `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += c;
            if cumulative >= rank {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = if i < self.bounds.len() { self.bounds[i] } else { self.max };
                let frac = (rank - before) as f64 / c as f64;
                let v = lower + (upper - lower) * frac;
                return Some(v.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Iterate `(upper_bound, cumulative_count)` pairs, ending with the
    /// `(+inf, total)` bucket — the shape Prometheus exposition needs.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            let bound = if i < self.bounds.len() { self.bounds[i] } else { f64::INFINITY };
            out.push((bound, cumulative));
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::latency_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_bracket_the_data() {
        let mut h = Histogram::exponential(1.0, 2.0, 16);
        for v in 1..=1000 {
            h.observe(v as f64);
        }
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!((300.0..800.0).contains(&p50), "p50 {p50}");
        assert!(p99 > p50 && p99 <= 1000.0, "p99 {p99}");
        assert_eq!(h.percentile(1.0).unwrap(), 1000.0);
        assert_eq!(h.count(), 1000);
        assert!((h.mean().unwrap() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::latency_us();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_observation_is_every_percentile() {
        let mut h = Histogram::latency_us();
        h.observe(37.0);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.percentile(q).unwrap(), 37.0, "q={q}");
        }
    }

    #[test]
    fn overflow_bucket_catches_values_past_the_last_bound() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(5.0);
        h.observe(1e9);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets, vec![(1.0, 0), (10.0, 1), (f64::INFINITY, 2)]);
        assert_eq!(h.percentile(1.0).unwrap(), 1e9);
    }
}
