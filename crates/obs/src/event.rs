//! Typed, timestamped trace records.

use serde::Value;

/// How loud an event is. Filtering happens at read time — the recorder
/// keeps everything it is given (bounded by capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fine-grained diagnostics.
    Debug,
    /// Normal control-loop activity (the default).
    Info,
    /// Something degraded but handled (skipped action, crash requeue).
    Warn,
    /// A contract violation.
    Error,
}

impl Severity {
    /// Lower-case label used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// A single payload value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Floating-point measurement (utilization, megabytes, coefficient).
    F64(f64),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (ids, counts).
    U64(u64),
    /// Boolean verdict.
    Bool(bool),
    /// Free-form label.
    Str(String),
}

impl FieldValue {
    fn to_value(&self) -> Value {
        match self {
            FieldValue::F64(x) => Value::F64(*x),
            FieldValue::I64(x) => Value::I64(*x),
            FieldValue::U64(x) => Value::U64(*x),
            FieldValue::Bool(x) => Value::Bool(*x),
            FieldValue::Str(x) => Value::Str(x.clone()),
        }
    }
}

/// One structured trace record.
///
/// Timestamps are simulation time in microseconds (`t_us`), matching
/// `SimTime`'s representation, so a trace lines up with report timelines.
#[derive(Debug, Clone)]
pub struct Event {
    /// Simulation time, microseconds.
    pub at_us: u64,
    /// Which subsystem emitted this ("orchestrator", "sched.cbp", ...).
    pub component: &'static str,
    /// Loudness.
    pub severity: Severity,
    /// Dot-separated event name ("sched.correlation", "action.skip", ...).
    pub kind: String,
    /// Pod this event is about, if any.
    pub pod: Option<u64>,
    /// Node this event is about, if any.
    pub node: Option<u64>,
    /// Free-form payload, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Start building an info-level event.
    pub fn new(component: &'static str, kind: impl Into<String>) -> Self {
        Event {
            at_us: 0,
            component,
            severity: Severity::Info,
            kind: kind.into(),
            pod: None,
            node: None,
            fields: Vec::new(),
        }
    }

    /// Set the simulation timestamp (microseconds).
    pub fn at(mut self, t_us: u64) -> Self {
        self.at_us = t_us;
        self
    }

    /// Set the severity.
    pub fn severity(mut self, s: Severity) -> Self {
        self.severity = s;
        self
    }

    /// Attach the pod this event concerns.
    pub fn pod(mut self, id: u64) -> Self {
        self.pod = Some(id);
        self
    }

    /// Attach the node this event concerns.
    pub fn node(mut self, id: u64) -> Self {
        self.node = Some(id);
        self
    }

    /// Attach a float payload field.
    pub fn f64(mut self, key: &'static str, v: f64) -> Self {
        self.fields.push((key, FieldValue::F64(v)));
        self
    }

    /// Attach an unsigned integer payload field.
    pub fn u64(mut self, key: &'static str, v: u64) -> Self {
        self.fields.push((key, FieldValue::U64(v)));
        self
    }

    /// Attach a signed integer payload field.
    pub fn i64(mut self, key: &'static str, v: i64) -> Self {
        self.fields.push((key, FieldValue::I64(v)));
        self
    }

    /// Attach a boolean payload field.
    pub fn bool(mut self, key: &'static str, v: bool) -> Self {
        self.fields.push((key, FieldValue::Bool(v)));
        self
    }

    /// Attach a string payload field.
    pub fn str(mut self, key: &'static str, v: impl Into<String>) -> Self {
        self.fields.push((key, FieldValue::Str(v.into())));
        self
    }

    /// Read back a payload field (test/analysis convenience).
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

impl serde::Serialize for Event {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = vec![
            ("t_us".into(), Value::U64(self.at_us)),
            ("component".into(), Value::Str(self.component.into())),
            ("severity".into(), Value::Str(self.severity.as_str().into())),
            ("kind".into(), Value::Str(self.kind.clone())),
        ];
        if let Some(p) = self.pod {
            entries.push(("pod".into(), Value::U64(p)));
        }
        if let Some(n) = self.node {
            entries.push(("node".into(), Value::U64(n)));
        }
        if !self.fields.is_empty() {
            let fields: Vec<(String, Value)> =
                self.fields.iter().map(|(k, v)| ((*k).into(), v.to_value())).collect();
            entries.push(("fields".into(), Value::Object(fields)));
        }
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_fields_in_order() {
        let e = Event::new("sched.cbp", "sched.correlation")
            .at(1_250_000)
            .severity(Severity::Debug)
            .node(2)
            .f64("rho", 0.41)
            .bool("admitted", true);
        assert_eq!(e.at_us, 1_250_000);
        assert_eq!(e.field("rho"), Some(&FieldValue::F64(0.41)));
        assert_eq!(e.field("admitted"), Some(&FieldValue::Bool(true)));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn serializes_to_flat_json() {
        let e = Event::new("orchestrator", "action.skip")
            .at(42)
            .pod(7)
            .str("kind", "Place")
            .str("error", "NodeAsleep");
        let line = serde_json::to_string(&e).unwrap();
        assert!(line.starts_with("{\"t_us\":42,"), "{line}");
        assert!(line.contains("\"pod\":7"));
        assert!(line.contains("\"fields\":{\"kind\":\"Place\",\"error\":\"NodeAsleep\"}"));
        assert!(!line.contains("\"node\""), "absent ids are omitted: {line}");
    }
}
