//! Labelled metrics registry with JSON and Prometheus text exposition.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::Value;

use crate::histogram::Histogram;

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        Key { name: name.to_string(), labels }
    }

    fn render(&self) -> String {
        if self.labels.is_empty() {
            self.name.clone()
        } else {
            let inner: Vec<String> = self
                .labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
                .collect();
            format!("{}{{{}}}", self.name, inner.join(","))
        }
    }
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double-quote and line feed must be backslash-escaped.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
}

/// Shared, clonable registry of counters, gauges and histograms.
///
/// Metric names follow Prometheus conventions (`knots_..._total` for
/// counters); labels are `(key, value)` pairs and are part of the series
/// identity.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment a counter by one.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)]) {
        self.add(name, labels, 1);
    }

    /// Increment a counter by `delta`.
    pub fn add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self.inner.lock().counters.entry(Key::new(name, labels)).or_insert(0) += delta;
    }

    /// Set a gauge to `v`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.inner.lock().gauges.insert(Key::new(name, labels), v);
    }

    /// Record `v` into a histogram (created with [`Histogram::latency_us`]
    /// buckets on first use).
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.inner
            .lock()
            .histograms
            .entry(Key::new(name, labels))
            .or_insert_with(Histogram::latency_us)
            .observe(v);
    }

    /// Fold a locally-accumulated histogram into the registry series.
    /// One lock + merge instead of a lock per observation; the series is
    /// created with the same [`Histogram::latency_us`] buckets on first
    /// use, and the merged result is identical to observing every value
    /// through [`Registry::observe`].
    pub fn merge_histogram(&self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.inner
            .lock()
            .histograms
            .entry(Key::new(name, labels))
            .or_insert_with(Histogram::latency_us)
            .merge(h);
    }

    /// Record `v` into a histogram, supplying buckets on first use.
    pub fn observe_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        v: f64,
        make: impl FnOnce() -> Histogram,
    ) {
        self.inner.lock().histograms.entry(Key::new(name, labels)).or_insert_with(make).observe(v);
    }

    /// Read a counter (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.inner.lock().counters.get(&Key::new(name, labels)).copied().unwrap_or(0)
    }

    /// Read a gauge.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.inner.lock().gauges.get(&Key::new(name, labels)).copied()
    }

    /// Snapshot a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        self.inner.lock().histograms.get(&Key::new(name, labels)).cloned()
    }

    /// All counters under `name`, as `(label pairs, value)` rows.
    pub fn counters_named(&self, name: &str) -> Vec<(Vec<(String, String)>, u64)> {
        self.inner
            .lock()
            .counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(k, v)| (k.labels.clone(), *v))
            .collect()
    }

    /// Prometheus text exposition (v0.0.4) of every metric.
    pub fn to_prometheus(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        let mut last_name = String::new();
        for (key, v) in &inner.counters {
            if key.name != last_name {
                out.push_str(&format!("# TYPE {} counter\n", key.name));
                last_name.clone_from(&key.name);
            }
            out.push_str(&format!("{} {v}\n", key.render()));
        }
        last_name.clear();
        for (key, v) in &inner.gauges {
            if key.name != last_name {
                out.push_str(&format!("# TYPE {} gauge\n", key.name));
                last_name.clone_from(&key.name);
            }
            out.push_str(&format!("{} {v}\n", key.render()));
        }
        last_name.clear();
        for (key, h) in &inner.histograms {
            if key.name != last_name {
                out.push_str(&format!("# TYPE {} histogram\n", key.name));
                last_name.clone_from(&key.name);
            }
            for (bound, cumulative) in h.cumulative_buckets() {
                let le = if bound.is_infinite() { "+Inf".to_string() } else { format!("{bound}") };
                let mut labels = key.labels.clone();
                labels.push(("le".into(), le));
                let series = Key { name: format!("{}_bucket", key.name), labels };
                out.push_str(&format!("{} {cumulative}\n", series.render()));
            }
            let base = Key { name: format!("{}_sum", key.name), labels: key.labels.clone() };
            out.push_str(&format!("{} {}\n", base.render(), h.sum()));
            let base = Key { name: format!("{}_count", key.name), labels: key.labels.clone() };
            out.push_str(&format!("{} {}\n", base.render(), h.count()));
        }
        out
    }

    /// JSON snapshot: `{"counters": {...}, "gauges": {...}, "histograms":
    /// {name: {count, sum, p50, p95, p99}}}`.
    pub fn to_json(&self) -> Value {
        let inner = self.inner.lock();
        let counters: Vec<(String, Value)> =
            inner.counters.iter().map(|(k, v)| (k.render(), Value::U64(*v))).collect();
        let gauges: Vec<(String, Value)> =
            inner.gauges.iter().map(|(k, v)| (k.render(), Value::F64(*v))).collect();
        let histograms: Vec<(String, Value)> = inner
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.render(),
                    Value::Object(vec![
                        ("count".into(), Value::U64(h.count())),
                        ("sum".into(), Value::F64(h.sum())),
                        ("p50".into(), Value::F64(h.percentile(0.50).unwrap_or(f64::NAN))),
                        ("p95".into(), Value::F64(h.percentile(0.95).unwrap_or(f64::NAN))),
                        ("p99".into(), Value::F64(h.percentile(0.99).unwrap_or(f64::NAN))),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = Registry::new();
        r.inc("knots_actions_applied_total", &[("kind", "Place")]);
        r.inc("knots_actions_applied_total", &[("kind", "Place")]);
        r.inc("knots_actions_applied_total", &[("kind", "Resize")]);
        assert_eq!(r.counter_value("knots_actions_applied_total", &[("kind", "Place")]), 2);
        assert_eq!(r.counter_value("knots_actions_applied_total", &[("kind", "Resize")]), 1);
        assert_eq!(r.counter_value("knots_actions_applied_total", &[("kind", "Wake")]), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        r.inc("x_total", &[("a", "1"), ("b", "2")]);
        assert_eq!(r.counter_value("x_total", &[("b", "2"), ("a", "1")]), 1);
    }

    #[test]
    fn prometheus_exposition_has_types_buckets_and_counts() {
        let r = Registry::new();
        r.inc("knots_crashes_total", &[]);
        r.set_gauge("knots_pending_pods", &[], 4.0);
        r.observe("knots_heartbeat_latency_us", &[], 120.0);
        r.observe("knots_heartbeat_latency_us", &[], 90.0);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE knots_crashes_total counter"));
        assert!(text.contains("knots_crashes_total 1"));
        assert!(text.contains("# TYPE knots_pending_pods gauge"));
        assert!(text.contains("knots_pending_pods 4"));
        assert!(text.contains("# TYPE knots_heartbeat_latency_us histogram"));
        assert!(text.contains("knots_heartbeat_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("knots_heartbeat_latency_us_count 2"));
        assert!(text.contains("knots_heartbeat_latency_us_sum 210"));
    }

    #[test]
    fn json_snapshot_reports_percentiles() {
        let r = Registry::new();
        for v in 1..=100 {
            r.observe("lat_us", &[], v as f64);
        }
        let json = serde_json::to_string(&r.to_json()).unwrap();
        assert!(json.contains("\"lat_us\""));
        assert!(json.contains("\"count\":100"));
    }
}
