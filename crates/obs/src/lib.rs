//! Observability for the Kube-Knots control loop.
//!
//! Three pillars, all zero-external-dependency and cheap when disabled:
//!
//! * **Structured events** ([`Recorder`], [`Event`]): a bounded ring buffer
//!   of typed, timestamped records (component, severity, pod/node ids,
//!   key-value payload) exported as JSONL. A disabled recorder is a `None`
//!   behind an `Option` — recording is a single branch.
//! * **Metrics** ([`Registry`], [`Histogram`]): labelled counters, gauges
//!   and fixed-bucket histograms with JSON and Prometheus text exposition.
//! * **Decision audit** ([`audit`]): semantic constructors for the *why*
//!   of every scheduler decision — the Spearman coefficient a CBP
//!   co-location gate saw, the Algorithm-1 branch peak prediction took,
//!   the reason a bin-pack pass rejected a pod — so a run's JSONL trace
//!   reads as an explanation, not just a log.
//!
//! The [`Obs`] bundle groups one recorder and one registry and is what the
//! orchestrator and experiment binaries thread through the stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod event;
pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod span;

pub use event::{Event, FieldValue, Severity};
pub use histogram::Histogram;
pub use recorder::Recorder;
pub use registry::Registry;
pub use span::{PhaseStat, PhaseTimers};

/// One recorder plus one metrics registry: the handle the control loop
/// threads through orchestrator, schedulers and experiment binaries.
///
/// Cloning is cheap (shared interior); a disabled bundle costs one branch
/// per would-be record.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Structured event/trace sink.
    pub recorder: Recorder,
    /// Counters, gauges and histograms.
    pub metrics: Registry,
}

impl Obs {
    /// A fully disabled bundle: events are dropped, metrics still count
    /// (they are cheap and always useful in reports).
    pub fn disabled() -> Self {
        Obs { recorder: Recorder::disabled(), metrics: Registry::new() }
    }

    /// A bundle with event recording enabled, keeping at most `capacity`
    /// events (oldest evicted first).
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Obs { recorder: Recorder::bounded(capacity), metrics: Registry::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_drops_events_but_counts_metrics() {
        let obs = Obs::disabled();
        obs.recorder.record(Event::new("test", "noop"));
        assert_eq!(obs.recorder.len(), 0);
        obs.metrics.inc("knots_test_total", &[("kind", "x")]);
        assert_eq!(obs.metrics.counter_value("knots_test_total", &[("kind", "x")]), 1);
    }

    #[test]
    fn enabled_bundle_retains_events() {
        let obs = Obs::with_trace_capacity(16);
        obs.recorder.record(Event::new("test", "hello").u64("n", 3));
        assert_eq!(obs.recorder.len(), 1);
        assert!(obs.recorder.export_jsonl().contains("\"hello\""));
    }
}
