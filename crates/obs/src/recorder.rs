//! Bounded ring-buffer event sink with JSONL export.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::Event;

/// Shared, clonable event sink.
///
/// A disabled recorder holds no buffer at all: [`Recorder::record`] is a
/// single `Option` branch, which keeps tracing effectively free when off
/// (the property the telemetry bench asserts). An enabled recorder keeps
/// the most recent `capacity` events and counts what it evicts.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug)]
struct Inner {
    buf: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Recorder {
    /// A recorder that silently drops everything.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A recorder retaining at most `capacity` events (oldest evicted).
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Recorder {
            inner: Some(Arc::new(Inner {
                buf: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
                capacity,
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether events are being kept. Call sites building expensive events
    /// should check this first.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Append an event, evicting the oldest when full.
    pub fn record(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        let mut buf = inner.buf.lock();
        if buf.len() == inner.capacity {
            buf.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.buf.lock().len())
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Snapshot the retained events (oldest first).
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.buf.lock().iter().cloned().collect())
    }

    /// Export retained events as JSON Lines, oldest first.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            // knots-allow: P1 -- Event is a plain struct with string keys; its Serialize impl cannot fail
            out.push_str(&serde_json::to_string(&e).expect("event serializes"));
            out.push('\n');
        }
        out
    }

    /// Write the JSONL export to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.export_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Severity;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        r.record(Event::new("x", "y"));
        assert!(!r.enabled());
        assert!(r.is_empty());
        assert_eq!(r.export_jsonl(), "");
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let r = Recorder::bounded(3);
        for i in 0..5u64 {
            r.record(Event::new("t", "e").at(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.events().iter().map(|e| e.at_us).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_export_is_one_line_per_event() {
        let r = Recorder::bounded(8);
        r.record(Event::new("a", "first").severity(Severity::Warn));
        r.record(Event::new("a", "second").u64("n", 1));
        let out = r.export_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"warn\""));
        assert!(lines[1].contains("\"second\""));
    }

    #[test]
    fn clones_share_the_buffer() {
        let r = Recorder::bounded(8);
        let r2 = r.clone();
        r2.record(Event::new("a", "shared"));
        assert_eq!(r.len(), 1);
    }
}
