//! Lightweight span timers for per-phase wall-clock accounting.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::histogram::Histogram;

/// Aggregated timing for one named phase.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Phase name ("decide", "step", ...).
    pub phase: &'static str,
    /// Number of timed spans.
    pub count: u64,
    /// Median span, microseconds.
    pub p50_us: f64,
    /// 95th percentile span, microseconds.
    pub p95_us: f64,
    /// 99th percentile span, microseconds.
    pub p99_us: f64,
    /// Mean span, microseconds.
    pub mean_us: f64,
}

/// Wall-clock timers for a fixed set of control-loop phases.
///
/// `timers.span("decide")` returns a guard that records its lifetime into
/// the phase's histogram on drop. Cloning shares the underlying store, so
/// the orchestrator can hand the same timers to its report.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimers {
    inner: Arc<Mutex<Vec<(&'static str, Histogram)>>>,
}

impl PhaseTimers {
    /// Empty timer set; phases appear on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start timing `phase`; the returned guard records on drop.
    pub fn span(&self, phase: &'static str) -> SpanGuard<'_> {
        SpanGuard { timers: self, phase, start: Instant::now() }
    }

    /// Record an already-measured duration (microseconds) for `phase`.
    pub fn record_us(&self, phase: &'static str, us: f64) {
        let mut inner = self.inner.lock();
        match inner.iter_mut().find(|(p, _)| *p == phase) {
            Some((_, h)) => h.observe(us),
            None => {
                let mut h = Histogram::latency_us();
                h.observe(us);
                inner.push((phase, h));
            }
        }
    }

    /// Percentile summary per phase, in first-use order.
    pub fn stats(&self) -> Vec<PhaseStat> {
        self.inner
            .lock()
            .iter()
            .map(|(phase, h)| PhaseStat {
                phase,
                count: h.count(),
                p50_us: h.percentile(0.50).unwrap_or(0.0),
                p95_us: h.percentile(0.95).unwrap_or(0.0),
                p99_us: h.percentile(0.99).unwrap_or(0.0),
                mean_us: h.mean().unwrap_or(0.0),
            })
            .collect()
    }
}

/// Records the elapsed time of one phase execution when dropped.
#[must_use = "the span is timed until this guard drops"]
pub struct SpanGuard<'a> {
    timers: &'a PhaseTimers,
    phase: &'static str,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_secs_f64() * 1e6;
        self.timers.record_us(self.phase, us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_per_phase() {
        let t = PhaseTimers::new();
        for _ in 0..10 {
            let _g = t.span("decide");
        }
        t.record_us("apply", 250.0);
        let stats = t.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].phase, "decide");
        assert_eq!(stats[0].count, 10);
        assert!(stats[0].p50_us >= 0.0);
        assert_eq!(stats[1].phase, "apply");
        assert!((stats[1].mean_us - 250.0).abs() < 130.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let t = PhaseTimers::new();
        for us in [10.0, 20.0, 40.0, 80.0, 5000.0] {
            t.record_us("probe", us);
        }
        let s = &t.stats()[0];
        assert!(s.p50_us <= s.p95_us + 1e-9);
        assert!(s.p95_us <= s.p99_us + 1e-9);
    }
}
