//! Conformance test: the Prometheus text exposition (v0.0.4) must match a
//! hand-written golden file byte for byte — `# TYPE` lines once per metric
//! name, cumulative `_bucket{le=...}` rows ending in `+Inf`, `_sum` and
//! `_count` per histogram series, and backslash-escaped label values.

use knots_obs::{Histogram, Registry};

const GOLDEN: &str = include_str!("golden/prometheus.txt");

fn golden_registry() -> Registry {
    let r = Registry::new();
    r.add("knots_actions_applied_total", &[("kind", "Place")], 3);
    r.inc("knots_actions_applied_total", &[("kind", "Resize")]);
    r.add("knots_crashes_total", &[], 2);
    // Label values exercising every escape the format requires.
    r.set_gauge("knots_node_info", &[("path", "a\\b"), ("desc", "say \"hi\"\nnow")], 1.0);
    r.set_gauge("knots_pending_pods", &[], 4.0);
    let buckets = || Histogram::new(vec![1.0, 5.0, 25.0]);
    r.observe_with("knots_probe_latency_us", &[("node", "0")], 0.5, buckets);
    r.observe_with("knots_probe_latency_us", &[("node", "0")], 3.0, buckets);
    r.observe_with("knots_probe_latency_us", &[("node", "1")], 30.0, buckets);
    r
}

#[test]
fn exposition_matches_the_golden_file() {
    let text = golden_registry().to_prometheus();
    assert_eq!(
        text, GOLDEN,
        "exposition drifted from tests/golden/prometheus.txt:\n--- got ---\n{text}"
    );
}

#[test]
fn golden_file_is_well_formed() {
    // Every non-comment line is `series value`; every `# TYPE` names a
    // metric that actually appears below it.
    for line in GOLDEN.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line}");
            assert!(
                GOLDEN.lines().any(|l| !l.starts_with('#') && l.starts_with(name)),
                "dangling TYPE for {name}"
            );
        } else {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty(), "{line}");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
        }
    }
}
