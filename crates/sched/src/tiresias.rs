//! A Tiresias-style baseline (§VI-E, Fig. 12, Table V).
//!
//! Tiresias (NSDI '19) schedules DL training with **discretized
//! Least-Attained-Service (LAS)**: jobs that have consumed little GPU time
//! get priority, implemented as a two-level queue with preemption. Short
//! jobs (and fresh arrivals, including inference) therefore jump ahead of
//! long-running training — good median JCTs and a strong 99th percentile —
//! at the price of preemption churn that still delays latency-critical
//! queries during load surges ("performs job-preemptions to prioritize
//! other short jobs ... Tiresias incurs ... SLO violations when compared to
//! CBP+PP").

use crate::action::Action;
use crate::context::SchedContext;
use crate::traits::Scheduler;
use knots_sim::ids::{NodeId, PodId};
use knots_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Tiresias tunables.
#[derive(Debug, Clone, Copy)]
pub struct TiresiasConfig {
    /// Attained-service boundary between the high- and low-priority queues
    /// (the discretized LAS threshold).
    pub queue_threshold_secs: f64,
    /// Maximum concurrently running pods per node.
    pub slots_per_node: usize,
    /// Minimum spacing between preemptions issued for the same node.
    pub preempt_cooldown: SimDuration,
}

impl Default for TiresiasConfig {
    fn default() -> Self {
        TiresiasConfig {
            queue_threshold_secs: 60.0,
            // One DL job per GPU (Tiresias preempts rather than co-runs).
            slots_per_node: 1,
            preempt_cooldown: SimDuration::from_secs(10),
        }
    }
}

/// The Tiresias-style LAS scheduler.
#[derive(Debug, Default)]
pub struct Tiresias {
    /// Configuration.
    pub cfg: TiresiasConfig,
    last_preempt: BTreeMap<NodeId, SimTime>,
}

impl Tiresias {
    /// Create with default tunables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with explicit tunables.
    pub fn with_config(cfg: TiresiasConfig) -> Self {
        Tiresias { cfg, last_preempt: BTreeMap::new() }
    }
}

/// A unified waiting-work item: pending or suspended.
#[derive(Debug, Clone, Copy)]
struct Waiting {
    pod: PodId,
    attained: f64,
    arrival: SimTime,
    limit_mb: f64,
    suspended: bool,
}

/// Serializable form of Tiresias' decision state (snapshot interchange).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TiresiasState {
    /// Per-node last-preemption instants, sorted by node id.
    pub last_preempt: Vec<(NodeId, SimTime)>,
}

impl Scheduler for Tiresias {
    fn name(&self) -> &'static str {
        "Tiresias"
    }

    fn snapshot_state(&self) -> serde::Value {
        serde::Serialize::to_value(&TiresiasState {
            last_preempt: self.last_preempt.iter().map(|(&n, &t)| (n, t)).collect(),
        })
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let s: TiresiasState = serde::Deserialize::from_value(state)?;
        self.last_preempt = s.last_preempt.into_iter().collect();
        Ok(())
    }

    fn decide(&mut self, ctx: &SchedContext<'_>) -> Vec<Action> {
        let mut actions = Vec::new();

        // LAS order over all waiting work: least attained service first,
        // FIFO tie-break.
        let mut waiting: Vec<Waiting> = ctx
            .pending
            .iter()
            .map(|p| Waiting {
                pod: p.id,
                attained: 0.0,
                arrival: p.arrival,
                limit_mb: p.limit_mb,
                suspended: false,
            })
            .chain(ctx.suspended.iter().map(|s| Waiting {
                pod: s.id,
                attained: s.attained_service_secs,
                arrival: s.arrival,
                limit_mb: s.limit_mb,
                suspended: true,
            }))
            .collect();
        waiting.sort_by(|a, b| a.attained.total_cmp(&b.attained).then(a.arrival.cmp(&b.arrival)));

        let mut load: BTreeMap<NodeId, (usize, f64)> = ctx
            .snapshot
            .active_nodes()
            .map(|n| (n.id, (n.pods.len(), n.free_provision_mb)))
            .collect();

        let mut need_capacity = false;
        for w in &waiting {
            let pick = load
                .iter_mut()
                .filter(|(_, (cnt, free))| *cnt < self.cfg.slots_per_node && *free >= w.limit_mb)
                .min_by_key(|(_, (cnt, _))| *cnt)
                .map(|(n, e)| (*n, e));
            match pick {
                Some((node, entry)) => {
                    actions.push(if w.suspended {
                        Action::Resume { pod: w.pod, node }
                    } else {
                        Action::Place { pod: w.pod, node }
                    });
                    entry.0 += 1;
                    entry.1 -= w.limit_mb;
                }
                None if w.attained < self.cfg.queue_threshold_secs => {
                    need_capacity = true;
                    // High-priority work is starving: preempt the running
                    // pod with the MOST attained service that already sits
                    // in the low-priority band, cooldown permitting.
                    let victim = ctx
                        .snapshot
                        .active_nodes()
                        .filter(|n| {
                            self.last_preempt.get(&n.id).is_none_or(|t| {
                                ctx.now.saturating_since(*t) >= self.cfg.preempt_cooldown
                            })
                        })
                        .flat_map(|n| n.pods.iter().map(move |p| (n.id, p)))
                        .filter(|(_, p)| {
                            !p.pulling && p.attained_service_secs > self.cfg.queue_threshold_secs
                        })
                        .max_by(|(_, a), (_, b)| {
                            a.attained_service_secs.total_cmp(&b.attained_service_secs)
                        });
                    if let Some((node, p)) = victim {
                        if let Some(rec) = ctx.audit() {
                            knots_obs::audit::decision(
                                rec,
                                ctx.now.as_micros(),
                                "Tiresias",
                                "sched.preempt",
                                Some(p.id.0),
                                Some(node.0 as u64),
                                "las_low_band_victim",
                            );
                        }
                        actions.push(Action::Preempt { pod: p.id });
                        self.last_preempt.insert(node, ctx.now);
                    }
                }
                None => need_capacity = true,
            }
        }

        if need_capacity {
            if let Some(node) = ctx.snapshot.sleeping_nodes().next() {
                actions.push(Action::Wake { node });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SuspendedPodView;
    use crate::testutil::{ctx, node_view, pending, snap};
    use knots_sim::pod::QosClass;
    use knots_telemetry::TimeSeriesDb;

    fn susp(id: u64, attained: f64) -> SuspendedPodView {
        SuspendedPodView {
            id: PodId(id),
            app: "dlt".into(),
            qos: QosClass::Batch,
            limit_mb: 1_000.0,
            attained_service_secs: attained,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn least_attained_service_goes_first() {
        // One free slot; a fresh pending pod (attained 0) must beat a
        // suspended pod with attained service.
        let s0 = snap(vec![node_view(0, 1, false)]);
        let pend = vec![pending(1, "dli-5", 500.0)];
        let suspended = vec![susp(2, 500.0)];
        let db = TimeSeriesDb::default();
        let mut t =
            Tiresias::with_config(TiresiasConfig { slots_per_node: 2, ..Default::default() });
        let acts = t.decide(&ctx(&s0, &pend, &suspended, &db));
        assert_eq!(acts.first(), Some(&Action::Place { pod: PodId(1), node: NodeId(0) }));
    }

    #[test]
    fn equally_loaded_tie_break_is_lowest_node_id() {
        // Regression: the load map used to be a HashMap, whose per-instance
        // random iteration order picked an arbitrary node among min_by_key
        // ties. With a BTreeMap the tie-break is the lowest NodeId, every
        // time, for every scheduler instance.
        let s0 = snap(vec![
            node_view(2, 0, false),
            node_view(0, 0, false),
            node_view(3, 0, false),
            node_view(1, 0, false),
        ]);
        let pend = vec![pending(1, "dli-5", 500.0)];
        let db = TimeSeriesDb::default();
        for _ in 0..32 {
            let mut t = Tiresias::new();
            let acts = t.decide(&ctx(&s0, &pend, &[], &db));
            assert_eq!(
                acts.first(),
                Some(&Action::Place { pod: PodId(1), node: NodeId(0) }),
                "tie-break must be deterministic across scheduler instances"
            );
        }
    }

    #[test]
    fn preempts_long_running_job_for_fresh_arrival() {
        let mut nv = node_view(0, 2, false);
        nv.pods[0].attained_service_secs = 500.0;
        nv.pods[1].attained_service_secs = 2_000.0;
        let s0 = snap(vec![nv.clone()]);
        let pend = vec![pending(1, "dli-9", 500.0)];
        let db = TimeSeriesDb::default();
        let mut t = Tiresias::new();
        let acts = t.decide(&ctx(&s0, &pend, &[], &db));
        // The 2000 s job (most attained) is the victim.
        assert!(acts.contains(&Action::Preempt { pod: nv.pods[1].id }), "acts: {acts:?}");
    }

    #[test]
    fn preemption_respects_cooldown() {
        let mut nv = node_view(0, 2, false);
        nv.pods[0].attained_service_secs = 500.0;
        nv.pods[1].attained_service_secs = 2_000.0;
        let s0 = snap(vec![nv]);
        let pend = vec![pending(1, "dli-9", 500.0)];
        let db = TimeSeriesDb::default();
        let mut t = Tiresias::new();
        let first = t.decide(&ctx(&s0, &pend, &[], &db));
        assert!(first.iter().any(|a| matches!(a, Action::Preempt { .. })));
        let second = t.decide(&ctx(&s0, &pend, &[], &db));
        assert!(
            !second.iter().any(|a| matches!(a, Action::Preempt { .. })),
            "cooldown must suppress immediate re-preemption"
        );
    }

    #[test]
    fn short_jobs_never_preempted() {
        // All running pods are still in the high-priority band: no victim.
        let mut nv = node_view(0, 2, false);
        nv.pods[0].attained_service_secs = 5.0;
        nv.pods[1].attained_service_secs = 10.0;
        let s0 = snap(vec![nv]);
        let pend = vec![pending(1, "dli-9", 500.0)];
        let db = TimeSeriesDb::default();
        let mut t = Tiresias::new();
        let acts = t.decide(&ctx(&s0, &pend, &[], &db));
        assert!(!acts.iter().any(|a| matches!(a, Action::Preempt { .. })));
    }

    #[test]
    fn wakes_sleepers_under_pressure() {
        let s0 = snap(vec![node_view(0, 2, false), node_view(1, 0, true)]);
        let pend = vec![pending(1, "dlt-1", 500.0)];
        let db = TimeSeriesDb::default();
        let mut t = Tiresias::new();
        let acts = t.decide(&ctx(&s0, &pend, &[], &db));
        assert!(acts.contains(&Action::Wake { node: NodeId(1) }));
    }
}
