//! A Gandiva-style baseline (§VI-E, Fig. 12, Table V).
//!
//! Gandiva (OSDI '18) is an introspective DL-cluster scheduler built on
//! three mechanisms this model reproduces: aggressive packing, *time-
//! slicing* via suspend-and-resume when a GPU is oversubscribed, and
//! *trial-and-error migration* between unevenly loaded nodes. It is
//! application-aware for DLT jobs but has no utilization telemetry and no
//! notion of latency-critical queries, so inference tasks wait in the same
//! FCFS queue behind training jobs — the head-of-line blocking and
//! migration stalls that cost it QoS violations and JCT in the paper's
//! comparison ("trial-and-error task placement leading to severe HOL
//! blocking of small tasks").

use crate::action::Action;
use crate::context::SchedContext;
use crate::traits::Scheduler;
use knots_sim::ids::NodeId;
use knots_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Gandiva tunables.
#[derive(Debug, Clone, Copy)]
pub struct GandivaConfig {
    /// Maximum concurrently *running* pods per node; extras are suspended
    /// and rotated in.
    pub slots_per_node: usize,
    /// Time-slice rotation period.
    pub quantum: SimDuration,
    /// Interval between migration attempts.
    pub migration_interval: SimDuration,
}

impl Default for GandivaConfig {
    fn default() -> Self {
        GandivaConfig {
            // Gandiva runs one DL job per GPU and time-slices via
            // suspend-and-resume (it does not co-execute on SMs).
            slots_per_node: 1,
            quantum: SimDuration::from_secs(30),
            migration_interval: SimDuration::from_secs(60),
        }
    }
}

/// The Gandiva-style scheduler.
#[derive(Debug, Default)]
pub struct Gandiva {
    /// Configuration.
    pub cfg: GandivaConfig,
    last_rotation: Option<SimTime>,
    last_migration: Option<SimTime>,
}

impl Gandiva {
    /// Create with default tunables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with explicit tunables.
    pub fn with_config(cfg: GandivaConfig) -> Self {
        Gandiva { cfg, last_rotation: None, last_migration: None }
    }
}

/// Serializable form of Gandiva's decision state (snapshot interchange).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GandivaState {
    /// When the last time-slice rotation happened.
    pub last_rotation: Option<SimTime>,
    /// When the last packing migration happened.
    pub last_migration: Option<SimTime>,
}

impl Scheduler for Gandiva {
    fn name(&self) -> &'static str {
        "Gandiva"
    }

    fn snapshot_state(&self) -> serde::Value {
        serde::Serialize::to_value(&GandivaState {
            last_rotation: self.last_rotation,
            last_migration: self.last_migration,
        })
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let s: GandivaState = serde::Deserialize::from_value(state)?;
        self.last_rotation = s.last_rotation;
        self.last_migration = s.last_migration;
        Ok(())
    }

    fn decide(&mut self, ctx: &SchedContext<'_>) -> Vec<Action> {
        let mut actions = Vec::new();

        // Local bookkeeping: (running pods, free provisioned memory).
        let mut load: BTreeMap<NodeId, (usize, f64)> = ctx
            .snapshot
            .active_nodes()
            .map(|n| (n.id, (n.pods.len(), n.free_provision_mb)))
            .collect();

        // 1. Resume suspended pods (longest-suspended first approximated by
        //    FIFO order) wherever a slot is free.
        for s in ctx.suspended {
            if let Some((&node, entry)) = load
                .iter_mut()
                .filter(|(_, (cnt, free))| *cnt < self.cfg.slots_per_node && *free >= s.limit_mb)
                .min_by_key(|(_, (cnt, _))| *cnt)
            {
                actions.push(Action::Resume { pod: s.id, node });
                entry.0 += 1;
                entry.1 -= s.limit_mb;
            }
        }

        // 2. FCFS placement of pending pods: least-loaded node with a free
        //    slot and enough provisioned memory. No QoS awareness: a big
        //    training job at the head blocks everything behind it.
        let mut blocked = false;
        for pod in ctx.pending {
            if blocked {
                break;
            }
            let pick = load
                .iter_mut()
                .filter(|(_, (cnt, free))| *cnt < self.cfg.slots_per_node && *free >= pod.limit_mb)
                .min_by_key(|(_, (cnt, _))| *cnt)
                .map(|(n, e)| (*n, e));
            match pick {
                Some((node, entry)) => {
                    actions.push(Action::Place { pod: pod.id, node });
                    entry.0 += 1;
                    entry.1 -= pod.limit_mb;
                }
                None => blocked = true,
            }
        }
        if blocked {
            if let Some(node) = ctx.snapshot.sleeping_nodes().next() {
                actions.push(Action::Wake { node });
            }
        }

        // 3. Time-slicing: every quantum, rotate one running pod out of
        //    each oversubscribed node (the suspend half; the pod re-enters
        //    via step 1 on a later heartbeat).
        let waiting = ctx.pending.len() + ctx.suspended.len()
            - actions
                .iter()
                .filter(|a| matches!(a, Action::Resume { .. } | Action::Place { .. }))
                .count()
                .min(ctx.pending.len() + ctx.suspended.len());
        let rotate_due =
            self.last_rotation.is_none_or(|t| ctx.now.saturating_since(t) >= self.cfg.quantum);
        if rotate_due && waiting > 0 {
            self.last_rotation = Some(ctx.now);
            // Rotate only as many GPUs as there is waiting work: suspend
            // the longest-served resident on each chosen node.
            let mut full: Vec<_> = ctx
                .snapshot
                .active_nodes()
                .filter(|n| n.pods.len() >= self.cfg.slots_per_node)
                .collect();
            full.sort_by(|a, b| {
                let am = a.pods.iter().map(|p| p.attained_service_secs).fold(0.0, f64::max);
                let bm = b.pods.iter().map(|p| p.attained_service_secs).fold(0.0, f64::max);
                bm.total_cmp(&am)
            });
            for n in full.into_iter().take(waiting) {
                if let Some(victim) = n
                    .pods
                    .iter()
                    .filter(|p| !p.pulling)
                    .max_by(|a, b| a.attained_service_secs.total_cmp(&b.attained_service_secs))
                {
                    if let Some(rec) = ctx.audit() {
                        knots_obs::audit::decision(
                            rec,
                            ctx.now.as_micros(),
                            "Gandiva",
                            "sched.preempt",
                            Some(victim.id.0),
                            Some(n.id.0 as u64),
                            "time_slice_rotation",
                        );
                    }
                    actions.push(Action::Preempt { pod: victim.id });
                }
            }
        }

        // 4. Trial-and-error migration: move one pod from the most- to the
        //    least-loaded node when the imbalance is ≥ 2 pods.
        let migrate_due = self
            .last_migration
            .is_none_or(|t| ctx.now.saturating_since(t) >= self.cfg.migration_interval);
        if migrate_due {
            self.last_migration = Some(ctx.now);
            let mut actives: Vec<_> = ctx.snapshot.active_nodes().collect();
            actives.sort_by_key(|n| n.pods.len());
            if let (Some(lo), Some(hi)) = (actives.first(), actives.last()) {
                if hi.pods.len() >= lo.pods.len() + 2 {
                    if let Some(mover) = hi.pods.iter().find(|p| !p.pulling) {
                        if let Some(rec) = ctx.audit() {
                            knots_obs::audit::decision(
                                rec,
                                ctx.now.as_micros(),
                                "Gandiva",
                                "sched.migrate",
                                Some(mover.id.0),
                                Some(lo.id.0 as u64),
                                "trial_and_error_rebalance",
                            );
                        }
                        actions.push(Action::Migrate { pod: mover.id, to: lo.id });
                    }
                }
            }
        }

        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SuspendedPodView;
    use crate::testutil::{ctx, node_view, pending, snap};
    use knots_sim::ids::PodId;
    use knots_sim::pod::QosClass;
    use knots_telemetry::TimeSeriesDb;

    #[test]
    fn fcfs_blocks_behind_unplaceable_head() {
        // Both slots taken on the only node.
        let s0 = snap(vec![node_view(0, 2, false)]);
        let pend = vec![pending(1, "dlt-0", 4_000.0), pending(2, "dli-1", 500.0)];
        let db = TimeSeriesDb::default();
        let mut g = Gandiva::new();
        let acts = g.decide(&ctx(&s0, &pend, &[], &db));
        assert!(
            !acts.iter().any(|a| matches!(a, Action::Place { .. })),
            "no placements when slots are full: {acts:?}"
        );
        // ... and time-slicing kicks in instead.
        assert!(acts.iter().any(|a| matches!(a, Action::Preempt { .. })));
    }

    #[test]
    fn equally_loaded_tie_break_is_lowest_node_id() {
        // Regression twin of the Tiresias test: min_by_key over the old
        // HashMap load map broke ties by random iteration order.
        let s0 = snap(vec![
            node_view(3, 0, false),
            node_view(1, 0, false),
            node_view(0, 0, false),
            node_view(2, 0, false),
        ]);
        let pend = vec![pending(1, "dli-5", 500.0)];
        let db = TimeSeriesDb::default();
        for _ in 0..32 {
            let mut g = Gandiva::new();
            let acts = g.decide(&ctx(&s0, &pend, &[], &db));
            assert_eq!(
                acts.first(),
                Some(&Action::Place { pod: PodId(1), node: NodeId(0) }),
                "tie-break must be deterministic across scheduler instances"
            );
        }
    }

    #[test]
    fn places_on_least_loaded_node() {
        let s0 = snap(vec![node_view(0, 1, false), node_view(1, 0, false)]);
        let pend = vec![pending(1, "dlt-0", 4_000.0)];
        let db = TimeSeriesDb::default();
        let mut g = Gandiva::new();
        let acts = g.decide(&ctx(&s0, &pend, &[], &db));
        assert!(acts.contains(&Action::Place { pod: PodId(1), node: NodeId(1) }));
    }

    #[test]
    fn resumes_suspended_pods_first() {
        let s0 = snap(vec![node_view(0, 0, false)]);
        let susp = vec![SuspendedPodView {
            id: PodId(9),
            app: "dlt".into(),
            qos: QosClass::Batch,
            limit_mb: 3_000.0,
            attained_service_secs: 50.0,
            arrival: knots_sim::time::SimTime::ZERO,
        }];
        let pend = vec![pending(1, "dlt-1", 3_000.0)];
        let db = TimeSeriesDb::default();
        let mut g = Gandiva::with_config(GandivaConfig { slots_per_node: 2, ..Default::default() });
        let acts = g.decide(&ctx(&s0, &pend, &susp, &db));
        let first_resume = acts.iter().position(|a| matches!(a, Action::Resume { .. }));
        let first_place = acts.iter().position(|a| matches!(a, Action::Place { .. }));
        assert!(first_resume.is_some());
        assert!(first_resume < first_place, "resume before place: {acts:?}");
    }

    #[test]
    fn migrates_from_hot_to_cold_node() {
        let s0 = snap(vec![node_view(0, 3, false), node_view(1, 0, false)]);
        let db = TimeSeriesDb::default();
        let mut g = Gandiva::new();
        let acts = g.decide(&ctx(&s0, &[], &[], &db));
        assert!(
            acts.iter().any(|a| matches!(a, Action::Migrate { to: NodeId(1), .. })),
            "acts: {acts:?}"
        );
    }

    #[test]
    fn rotation_respects_quantum() {
        let s0 = snap(vec![node_view(0, 2, false)]);
        let pend = vec![pending(1, "dlt-0", 4_000.0)];
        let db = TimeSeriesDb::default();
        let mut g = Gandiva::new();
        // First decide rotates (quantum never fired before)...
        let first = g.decide(&ctx(&s0, &pend, &[], &db));
        assert!(first.iter().any(|a| matches!(a, Action::Preempt { .. })));
        // ... immediately after, within the same quantum, it must not.
        let second = g.decide(&ctx(&s0, &pend, &[], &db));
        assert!(!second.iter().any(|a| matches!(a, Action::Preempt { .. })));
    }
}
