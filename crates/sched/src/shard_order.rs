//! Shard-local candidate ordering with a deterministic k-way merge.
//!
//! At fleet scale the head node no longer sorts one global node table per
//! round: each shard of the cluster sorts its own slice of the snapshot
//! and the scheduler merges the per-shard runs. The merge is
//! bit-deterministic by construction — both orderings tie-break on
//! `NodeId`, so the comparator is a strict total order with **no equal
//! elements**, and a k-way merge of sorted runs of *any* partition of the
//! node table reproduces exactly the global sort
//! ([`ClusterSnapshot::nodes_by_free_memory`] /
//! [`ClusterSnapshot::nodes_by_packing`]). Shard-count invariance is
//! asserted here against the flat reference and fuzzed end-to-end in
//! `tests/determinism.rs`.

use knots_sim::ids::NodeId;
use knots_sim::shard::ShardLayout;
use knots_telemetry::{ClusterSnapshot, NodeView};
use std::cmp::Ordering;

/// `Sort_by_Free_Memory` (Algorithm 1) built shard-locally: most measured
/// free memory first, ties by node id. Bit-identical to
/// [`ClusterSnapshot::nodes_by_free_memory`] at every shard count.
pub fn shard_free_memory_order(snapshot: &ClusterSnapshot, shards: usize) -> Vec<NodeId> {
    merge_shard_orders(snapshot, shards, |a, b| {
        b.free_measured_mb.total_cmp(&a.free_measured_mb).then(a.id.cmp(&b.id))
    })
}

/// Consolidation order built shard-locally: least free memory first, ties
/// by node id. Bit-identical to [`ClusterSnapshot::nodes_by_packing`] at
/// every shard count.
pub fn shard_packing_order(snapshot: &ClusterSnapshot, shards: usize) -> Vec<NodeId> {
    merge_shard_orders(snapshot, shards, |a, b| {
        a.free_measured_mb.total_cmp(&b.free_measured_mb).then(a.id.cmp(&b.id))
    })
}

/// Sort each shard's active slice of the node table, then k-way merge the
/// sorted runs under `cmp`. `cmp` must be a strict total order — the id
/// tie-break guarantees no two distinct nodes compare equal — which is
/// what makes the merged order independent of the partition. A tie, were
/// one possible, would resolve to the lowest shard index: merges are
/// stable two-way merges (a tie keeps the left run) over adjacent run
/// pairs, and the left run always holds the lower shard indices.
///
/// Tournament rounds of pairwise merges cost `n·⌈log2 k⌉` comparisons in
/// tight two-way loops, against `n·k` for a linear scan over all run
/// heads — at 1,024 nodes × 8 shards the difference is the decide phase's
/// whole sharding overhead.
fn merge_shard_orders(
    snapshot: &ClusterSnapshot,
    shards: usize,
    cmp: impl Fn(&NodeView, &NodeView) -> Ordering,
) -> Vec<NodeId> {
    let layout = ShardLayout::new(snapshot.nodes.len(), shards);
    let mut runs: Vec<Vec<&NodeView>> = Vec::with_capacity(layout.shards());
    for r in layout.ranges() {
        let mut run: Vec<&NodeView> = snapshot.nodes[r].iter().filter(|n| !n.asleep).collect();
        run.sort_by(|a, b| cmp(a, b));
        runs.push(run);
    }
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(left) = it.next() {
            match it.next() {
                Some(right) => next.push(merge_two(left, right, &cmp)),
                None => next.push(left),
            }
        }
        runs = next;
    }
    runs.pop().map(|run| run.into_iter().map(|n| n.id).collect()).unwrap_or_default()
}

/// Stable two-way merge: a tie takes the left element, so lower shard
/// indices win ties at every tournament round.
fn merge_two<'a>(
    left: Vec<&'a NodeView>,
    right: Vec<&'a NodeView>,
    cmp: &impl Fn(&NodeView, &NodeView) -> Ordering,
) -> Vec<&'a NodeView> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        if cmp(left[i], right[j]) != Ordering::Greater {
            out.push(left[i]);
            i += 1;
        } else {
            out.push(right[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_sim::metrics::GpuSample;
    use knots_sim::resources::GpuModel;
    use knots_sim::time::SimTime;
    use knots_telemetry::NodeView;

    fn node(id: usize, free: f64, asleep: bool) -> NodeView {
        NodeView {
            id: NodeId(id),
            model: GpuModel::P100,
            capacity_mb: 16_384.0,
            free_measured_mb: free,
            free_provision_mb: free,
            sample: GpuSample::default(),
            pods: vec![],
            asleep,
            waking: false,
        }
    }

    /// Snapshot with duplicated free values (tie-break coverage), sleepers,
    /// and an irregular length so chunked ranges are uneven.
    fn snap(n: usize) -> ClusterSnapshot {
        let nodes = (0..n)
            .map(|i| {
                let free = ((i as f64 * 37.0) % 11.0) * 500.0; // many ties
                node(i, free, i % 7 == 3)
            })
            .collect();
        ClusterSnapshot { at: SimTime::ZERO, nodes }
    }

    #[test]
    fn merge_matches_flat_sort_for_every_shard_count() {
        for n in [0usize, 1, 2, 9, 10, 40, 101] {
            let s = snap(n);
            let flat_free = s.nodes_by_free_memory();
            let flat_pack = s.nodes_by_packing();
            for shards in [1usize, 2, 3, 4, 8, 16, 1000] {
                assert_eq!(
                    shard_free_memory_order(&s, shards),
                    flat_free,
                    "free order diverged at n={n} shards={shards}"
                );
                assert_eq!(
                    shard_packing_order(&s, shards),
                    flat_pack,
                    "packing order diverged at n={n} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn nan_free_memory_merges_deterministically() {
        // total_cmp gives NaN a fixed place in the order, so a poisoned
        // reading must not break shard invariance either.
        let mut s = snap(12);
        s.nodes[5].free_measured_mb = f64::NAN;
        let flat = s.nodes_by_free_memory();
        for shards in [1usize, 2, 4, 8] {
            assert_eq!(shard_free_memory_order(&s, shards), flat);
        }
    }
}
