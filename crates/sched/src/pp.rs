//! CBP + Peak Prediction (PP) — §IV-D, Algorithm 1.
//!
//! PP keeps everything CBP does (growth configuration, 80th-percentile
//! harvesting, correlation checks) and adds:
//!
//! * **Temporal peak prediction** — two *positively correlated* pods may
//!   still share a GPU if their peaks are predicted not to coincide. The
//!   admission test follows Algorithm 1: if the node's memory series has a
//!   positive autocorrelation trend, a first-order ARIMA (Eq. 3) forecasts
//!   the node's utilization one second ahead; the pod is admitted when the
//!   predicted free memory still covers its provision.
//! * **Consolidation** — candidate nodes are tried in packing order (least
//!   free memory first among actives), so low-load mixes collapse onto a
//!   minimal set of active GPUs (Fig. 8c) and the orchestrator can put the
//!   rest into deep sleep (`p_state 12`) for the §VI-C energy savings.
//! * **QoS protection** — latency-critical queries are served first and
//!   steered away from compute-saturated nodes so co-location cannot
//!   stretch them past their deadline.

use crate::action::Action;
use crate::cbp::{
    correlation_ok, effective_limit, growth_actions, learn, resize_actions, service_order,
    CbpConfig,
};
use crate::context::SchedContext;
use crate::history::{AppHistoryState, AppUsageHistory};
use crate::traits::Scheduler;
use knots_forecast::arima::Ar1;
use knots_forecast::autocorr::has_forecastable_trend;
use knots_sim::ids::NodeId;
use knots_sim::pod::QosClass;
use std::collections::BTreeMap;

/// PP-specific tunables.
#[derive(Debug, Clone, Copy)]
pub struct PpConfig {
    /// Shared CBP machinery configuration.
    pub cbp: CbpConfig,
    /// Forecast horizon in seconds (Eq. 3 forecasts "the next one second").
    pub horizon_secs: f64,
    /// Safety margin on the predicted free memory.
    pub forecast_margin: f64,
    /// SM utilization above which a node is considered unsafe for a new
    /// latency-critical query.
    pub lc_sm_ceiling: f64,
    /// Keep this many idle nodes awake as warm spares before sleeping the
    /// rest.
    pub warm_spares: usize,
}

impl Default for PpConfig {
    fn default() -> Self {
        PpConfig {
            cbp: CbpConfig::default(),
            horizon_secs: 1.0,
            forecast_margin: 1.05,
            lc_sm_ceiling: 0.85,
            warm_spares: 1,
        }
    }
}

/// The CBP+PP scheduler (the full Kube-Knots policy).
#[derive(Debug, Default)]
pub struct CbpPp {
    /// Configuration.
    pub cfg: PpConfig,
    history: AppUsageHistory,
}

impl CbpPp {
    /// Create with the paper's configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with explicit tunables.
    pub fn with_config(cfg: PpConfig) -> Self {
        CbpPp { cfg, history: AppUsageHistory::default() }
    }

    /// Peak-prediction admission (the `AutoCorrelation`/`ARIMA` branch of
    /// Algorithm 1): forecast the node's used memory one horizon ahead and
    /// check the pod still fits.
    fn forecast_admits(
        &self,
        ctx: &SchedContext<'_>,
        node: NodeId,
        capacity_mb: f64,
        limit: f64,
    ) -> bool {
        if !ctx.node_series_fresh(node) {
            // The node's series stopped advancing: Algorithm 1's forecast
            // would extrapolate dead data, so PP degrades to plain CBP —
            // no forecast override for correlated pods on this node.
            if let Some(rec) = ctx.audit() {
                knots_obs::audit::stale_fallback(
                    rec,
                    ctx.now.as_micros(),
                    "CBP+PP",
                    "node_mem",
                    None,
                    Some(node.0 as u64),
                );
            }
            return false;
        }
        let series = ctx.cache.node_mem_series(ctx.tsdb, node, ctx.now, ctx.window);
        if series.len() < 8 {
            // "input time-series data is limited"
            self.audit_branch(
                ctx,
                node,
                "insufficient_history",
                None,
                capacity_mb,
                series.len(),
                false,
            );
            return false;
        }
        if !has_forecastable_trend(&series) {
            // "the trend is not strong enough"
            self.audit_branch(ctx, node, "no_trend", None, capacity_mb, series.len(), false);
            return false;
        }
        let model = Ar1::fit(&series);
        // Horizon in samples: infer the sampling interval from the window.
        let span = ctx.window.as_secs_f64();
        let dt = span / series.len() as f64;
        let steps = (self.cfg.horizon_secs / dt.max(1e-6)).round().max(1.0) as usize;
        let pred_used = model.forecast_h(series.last().copied().unwrap_or(0.0), steps.min(10_000));
        let pred_free = capacity_mb - pred_used.clamp(0.0, capacity_mb);
        let admitted = pred_free >= limit * self.cfg.forecast_margin;
        let branch = if admitted { "forecast_admit" } else { "forecast_reject" };
        self.audit_branch(ctx, node, branch, Some(pred_used), capacity_mb, series.len(), admitted);
        admitted
    }

    /// Log which Algorithm-1 branch fired, when an audit recorder is on.
    #[allow(clippy::too_many_arguments)]
    fn audit_branch(
        &self,
        ctx: &SchedContext<'_>,
        node: NodeId,
        branch: &'static str,
        forecast_mb: Option<f64>,
        capacity_mb: f64,
        history_len: usize,
        admitted: bool,
    ) {
        if let Some(rec) = ctx.audit() {
            knots_obs::audit::forecast_branch(
                rec,
                ctx.now.as_micros(),
                "CBP+PP",
                node.0 as u64,
                branch,
                forecast_mb,
                capacity_mb,
                history_len,
                admitted,
            );
        }
    }
}

impl Scheduler for CbpPp {
    fn name(&self) -> &'static str {
        "CBP+PP"
    }

    fn consolidates(&self) -> bool {
        true
    }

    fn wants_cluster_auto_sleep(&self) -> bool {
        false // PP issues its own Sleep/Wake actions (Algorithm 1 + §VI-C)
    }

    fn snapshot_state(&self) -> serde::Value {
        serde::Serialize::to_value(&self.history.snapshot_state())
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let hs: AppHistoryState = serde::Deserialize::from_value(state)?;
        self.history = AppUsageHistory::from_state(hs);
        Ok(())
    }

    fn decide(&mut self, ctx: &SchedContext<'_>) -> Vec<Action> {
        learn(&mut self.history, ctx);
        let mut actions = growth_actions(ctx);
        actions.extend(resize_actions(&self.history, &self.cfg.cbp, ctx));

        // Placement order adapts to load (§VI-B: "PP performs efficient
        // load balancing ... in high-load scenarios along with
        // consolidation in ... low-load scenarios"): pack onto busy nodes
        // while the active fleet is lightly used, balance by free memory
        // once it saturates.
        let order = if ctx.snapshot.mean_active_sm_util() > 0.6 {
            ctx.free_memory_order()
        } else {
            ctx.packing_order()
        };
        let mut free: BTreeMap<NodeId, (f64, f64)> = ctx
            .snapshot
            .active_nodes()
            .map(|n| (n.id, (n.free_provision_mb, n.free_measured_mb)))
            .collect();
        let mut placed_on: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut unplaced = false;

        for i in service_order(ctx) {
            let pod = &ctx.pending[i];
            let limit = effective_limit(&actions, pod.id, pod.limit_mb);
            let is_lc = matches!(pod.qos, QosClass::LatencyCritical { .. });
            // Latency-critical queries are steered to the least compute-
            // loaded admissible node; batch pods follow the packing order.
            let lc_order: Vec<NodeId>;
            let candidates: &[NodeId] = if is_lc {
                let mut v: Vec<&knots_telemetry::NodeView> = ctx.snapshot.active_nodes().collect();
                v.sort_by(|a, b| {
                    a.sample.sm_util.total_cmp(&b.sample.sm_util).then(a.id.cmp(&b.id))
                });
                lc_order = v.into_iter().map(|n| n.id).collect();
                &lc_order
            } else {
                &order
            };
            let mut placed = false;
            for node_id in candidates {
                let Some(node) = ctx.snapshot.node(*node_id) else { continue };
                let (prov, meas) = free[node_id];
                if limit > prov + 1e-9 || limit > meas + 1e-9 {
                    continue;
                }
                // QoS guard: don't drop a latency-critical query onto a
                // compute-saturated GPU.
                if is_lc && node.sample.sm_util > self.cfg.lc_sm_ceiling {
                    continue;
                }
                // Compute-headroom guard for batch pods: memory is
                // harvested, SMs are not oversubscribed.
                if !is_lc
                    && !node.pods.is_empty()
                    && !crate::cbp::sm_headroom_ok(&self.history, &pod.app, node)
                {
                    continue;
                }
                let corr_ok =
                    correlation_ok(&self.history, &self.cfg.cbp, ctx, "CBP+PP", &pod.app, node);
                // Algorithm 1: correlated pods may still co-locate when the
                // forecast says their peaks won't coincide.
                let admitted =
                    corr_ok || self.forecast_admits(ctx, *node_id, node.capacity_mb, limit);
                if !admitted {
                    continue;
                }
                if let Some(rec) = ctx.audit() {
                    knots_obs::audit::placement(
                        rec,
                        ctx.now.as_micros(),
                        "CBP+PP",
                        pod.id.0,
                        node_id.0 as u64,
                        limit,
                        meas,
                    );
                }
                actions.push(Action::Place { pod: pod.id, node: *node_id });
                free.insert(*node_id, (prov - limit, meas - limit));
                *placed_on.entry(*node_id).or_insert(0) += 1;
                placed = true;
                break;
            }
            if !placed {
                unplaced = true;
            }
        }

        if unplaced {
            // Explicitly-slept nodes (ablations) are brought back when the
            // active set cannot absorb the queue; with hardware-automatic
            // p-states this is a no-op.
            if let Some(node) = ctx.snapshot.sleeping_nodes().next() {
                actions.push(Action::Wake { node });
            }
        }
        let _ = placed_on; // retained for future balance diagnostics
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, node_view, pending, pending_lc, snap};
    use knots_sim::ids::PodId;
    use knots_sim::metrics::GpuSample;
    use knots_sim::time::{SimDuration, SimTime};
    use knots_telemetry::TimeSeriesDb;

    #[test]
    fn packs_for_consolidation() {
        // Two active nodes: node 1 busier (less free). PP must pick node 1.
        let mut n0 = node_view(0, 0, false);
        n0.free_measured_mb = 16_000.0;
        n0.free_provision_mb = 16_000.0;
        let mut n1 = node_view(1, 1, false);
        n1.free_measured_mb = 10_000.0;
        n1.free_provision_mb = 10_000.0;
        let s0 = snap(vec![n0, n1]);
        let pend = vec![pending(1, "x", 1_000.0)];
        let db = TimeSeriesDb::default();
        let mut s = CbpPp::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        assert!(acts.contains(&Action::Place { pod: PodId(1), node: NodeId(1) }), "acts: {acts:?}");
    }

    #[test]
    fn never_issues_explicit_sleeps() {
        // Empty GPUs drop to p_state 12 automatically in the hardware
        // model; PP must not fight the driver with explicit Sleep actions.
        let s0 = snap(vec![node_view(0, 1, false), node_view(1, 0, false), node_view(2, 0, false)]);
        let db = TimeSeriesDb::default();
        let mut s = CbpPp::new();
        let acts = s.decide(&ctx(&s0, &[], &[], &db));
        assert!(!acts.iter().any(|a| matches!(a, Action::Sleep { .. })), "{acts:?}");
        assert!(s.consolidates());
        assert!(!s.wants_cluster_auto_sleep());
    }

    #[test]
    fn wakes_instead_of_sleeping_when_blocked() {
        let mut full = node_view(0, 1, false);
        full.free_measured_mb = 100.0;
        full.free_provision_mb = 100.0;
        let s0 = snap(vec![full, node_view(1, 0, true)]);
        let pend = vec![pending(1, "x", 5_000.0)];
        let db = TimeSeriesDb::default();
        let mut s = CbpPp::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        assert!(acts.contains(&Action::Wake { node: NodeId(1) }), "acts: {acts:?}");
        assert!(!acts.iter().any(|a| matches!(a, Action::Sleep { .. })));
    }

    #[test]
    fn lc_queries_avoid_saturated_nodes() {
        let mut busy = node_view(0, 1, false);
        busy.sample = GpuSample { sm_util: 0.97, ..Default::default() };
        busy.free_measured_mb = 14_000.0;
        busy.free_provision_mb = 14_000.0;
        let mut calm = node_view(1, 1, false);
        calm.sample = GpuSample { sm_util: 0.2, ..Default::default() };
        calm.free_measured_mb = 15_000.0;
        calm.free_provision_mb = 15_000.0;
        let s0 = snap(vec![busy, calm]);
        let pend = vec![pending_lc(1, "face", 1_200.0, false)];
        let db = TimeSeriesDb::default();
        let mut s = CbpPp::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        assert!(
            acts.contains(&Action::Place { pod: PodId(1), node: NodeId(1) }),
            "LC must land on the calm node: {acts:?}"
        );
    }

    #[test]
    fn forecast_admits_when_memory_is_draining() {
        // Node memory is ramping DOWN: AR(1) predicts plenty of free memory
        // one second ahead, so even a correlated pod is admitted.
        let db = TimeSeriesDb::default();
        for i in 0..50u64 {
            db.push_node(
                NodeId(0),
                GpuSample {
                    at: SimTime::from_millis(i * 100),
                    mem_used_mb: 15_000.0 - 250.0 * i as f64,
                    ..Default::default()
                },
            );
        }
        let s = CbpPp::new();
        let mut snapshot = snap(vec![node_view(0, 0, false)]);
        snapshot.at = SimTime::from_secs(5);
        let pend = [pending(1, "x", 2_000.0)];
        let rec = knots_obs::Recorder::bounded(16);
        let c = SchedContext {
            now: snapshot.at,
            snapshot: &snapshot,
            pending: &pend,
            suspended: &[],
            tsdb: &db,
            window: SimDuration::from_secs(5),
            recorder: Some(&rec),
            cache: Default::default(),
            freshness: None,
            shards: 1,
        };
        assert!(s.forecast_admits(&c, NodeId(0), 16_384.0, 2_000.0));
        // Algorithm-1 branch taken must be in the audit trail.
        let trace = rec.export_jsonl();
        assert!(trace.contains("forecast_admit"), "trace: {trace}");
        assert!(trace.contains("forecast_peak_mb"), "trace: {trace}");
    }

    #[test]
    fn stale_node_series_withholds_the_forecast_override() {
        // The same draining node the admit test uses, but the series stopped
        // 3.1 s before the round and a 1 s freshness bound is set: PP must
        // refuse the override (degrading to plain CBP) and audit why.
        let db = TimeSeriesDb::default();
        for i in 0..50u64 {
            db.push_node(
                NodeId(0),
                GpuSample {
                    at: SimTime::from_millis(i * 100),
                    mem_used_mb: 15_000.0 - 250.0 * i as f64,
                    ..Default::default()
                },
            );
        }
        let s = CbpPp::new();
        let mut snapshot = snap(vec![node_view(0, 0, false)]);
        snapshot.at = SimTime::from_secs(8);
        let pend = [pending(1, "x", 2_000.0)];
        let rec = knots_obs::Recorder::bounded(16);
        let c = SchedContext {
            now: snapshot.at,
            snapshot: &snapshot,
            pending: &pend,
            suspended: &[],
            tsdb: &db,
            window: SimDuration::from_secs(5),
            recorder: Some(&rec),
            cache: Default::default(),
            freshness: Some(SimDuration::from_secs(1)),
            shards: 1,
        };
        assert!(!s.forecast_admits(&c, NodeId(0), 16_384.0, 2_000.0));
        let trace = rec.export_jsonl();
        assert!(trace.contains("sched.stale_fallback"), "trace: {trace}");
        assert!(trace.contains("node_mem"), "trace: {trace}");
    }

    #[test]
    fn forecast_rejects_rising_memory() {
        let db = TimeSeriesDb::default();
        for i in 0..50u64 {
            db.push_node(
                NodeId(0),
                GpuSample {
                    at: SimTime::from_millis(i * 100),
                    mem_used_mb: 4_000.0 + 240.0 * i as f64,
                    ..Default::default()
                },
            );
        }
        let s = CbpPp::new();
        let snapshot = {
            let mut s0 = snap(vec![node_view(0, 0, false)]);
            s0.at = SimTime::from_secs(5);
            s0
        };
        let pend = [pending(1, "x", 2_000.0)];
        let db_ref = &db;
        let c = SchedContext {
            now: snapshot.at,
            snapshot: &snapshot,
            pending: &pend,
            suspended: &[],
            tsdb: db_ref,
            window: SimDuration::from_secs(5),
            recorder: None,
            cache: Default::default(),
            freshness: None,
            shards: 1,
        };
        // Used is ~15.8 GB now and rising: a 2 GB pod must be refused.
        assert!(!s.forecast_admits(&c, NodeId(0), 16_384.0, 2_000.0));
    }

    #[test]
    fn forecast_requires_history_and_trend() {
        let db = TimeSeriesDb::default();
        let s = CbpPp::new();
        let snapshot = snap(vec![node_view(0, 0, false)]);
        let pend = [pending(1, "x", 100.0)];
        let rec = knots_obs::Recorder::bounded(16);
        let c = SchedContext {
            now: snapshot.at,
            snapshot: &snapshot,
            pending: &pend,
            suspended: &[],
            tsdb: &db,
            window: SimDuration::from_secs(5),
            recorder: Some(&rec),
            cache: Default::default(),
            freshness: None,
            shards: 1,
        };
        assert!(!s.forecast_admits(&c, NodeId(0), 16_384.0, 100.0), "no data: reject");
        assert!(rec.export_jsonl().contains("insufficient_history"));
    }
}
