//! The Resource-Agnostic sharing scheduler — the paper's GPU-sharing
//! baseline (§III-B, §IV-B).
//!
//! GPU sharing is enabled (compute time-shared, memory space-shared) and
//! pods are packed with first-fit-decreasing bin packing **on requested
//! memory**. Crucially, Res-Ag "fails to consider the GPU metrics such as
//! free memory and queue length": it believes request math, not the
//! measured reality. With TensorFlow pods earmarking ~99% of whatever is
//! actually free, and a tail of under-requesting batch jobs, this produces
//! the capacity violations and crash/relaunch cycles of §IV-B.

use crate::action::Action;
use crate::binpack::{decreasing_order, pick_bin, PackStrategy};
use crate::context::SchedContext;
use crate::traits::Scheduler;
use knots_sim::ids::NodeId;

/// Utilization-agnostic GPU-sharing scheduler.
#[derive(Debug)]
pub struct ResAg {
    strategy: PackStrategy,
}

impl Default for ResAg {
    fn default() -> Self {
        // §IV-B: "first fit decreasing order bin-packing algorithm to pack
        // the pods on the GPU". Packing without utilization awareness is
        // exactly what produces the crash/violation pathology of Fig. 10a;
        // a least-requested spreading variant (worst-fit) is available as
        // an ablation and behaves far more benignly at short horizons.
        ResAg { strategy: PackStrategy::FirstFit }
    }
}

impl ResAg {
    /// The paper's configuration (first-fit over decreasing requests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ablation constructor with an alternative packing strategy.
    pub fn with_strategy(strategy: PackStrategy) -> Self {
        ResAg { strategy }
    }
}

impl Scheduler for ResAg {
    fn name(&self) -> &'static str {
        "Res-Ag"
    }

    fn decide(&mut self, ctx: &SchedContext<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        // Bins: awake nodes with *provision-based* free memory (the only
        // signal a GPU-agnostic scheduler has), in node-id order.
        let mut bins: Vec<(NodeId, f64)> = ctx
            .snapshot
            .nodes
            .iter()
            .filter(|n| !n.asleep)
            .map(|n| (n.id, n.free_provision_mb))
            .collect();

        // Decreasing request order: biggest requests place first.
        let sizes: Vec<f64> = ctx.pending.iter().map(|p| p.limit_mb).collect();
        let mut unplaced_any = false;
        for i in decreasing_order(&sizes) {
            let pod = &ctx.pending[i];
            match pick_bin(&bins, pod.limit_mb, self.strategy) {
                Some(b) => {
                    if let Some(rec) = ctx.audit() {
                        knots_obs::audit::placement(
                            rec,
                            ctx.now.as_micros(),
                            "Res-Ag",
                            pod.id.0,
                            bins[b].0 .0 as u64,
                            pod.limit_mb,
                            bins[b].1,
                        );
                    }
                    actions.push(Action::Place { pod: pod.id, node: bins[b].0 });
                    bins[b].1 -= pod.limit_mb;
                }
                None => {
                    if let Some(rec) = ctx.audit() {
                        knots_obs::audit::binpack_reject(
                            rec,
                            ctx.now.as_micros(),
                            "Res-Ag",
                            pod.id.0,
                            pod.limit_mb,
                            "no_feasible_bin",
                        );
                    }
                    unplaced_any = true;
                }
            }
        }
        // Wake one sleeping node when demand overflowed the active set.
        if unplaced_any {
            if let Some(node) = ctx.snapshot.sleeping_nodes().next() {
                actions.push(Action::Wake { node });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, node_view, pending, pending_lc, snap};
    use knots_sim::ids::PodId;
    use knots_telemetry::TimeSeriesDb;

    #[test]
    fn packs_multiple_pods_per_node_by_request() {
        let s0 = snap(vec![node_view(0, 0, false)]);
        let pend =
            vec![pending(1, "a", 6_000.0), pending(2, "b", 6_000.0), pending(3, "c", 4_000.0)];
        let db = TimeSeriesDb::default();
        let mut s = ResAg::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        // All three fit by provision math (6+6+4 = 16 GB ≤ 16.38 GB).
        assert_eq!(acts.iter().filter(|a| matches!(a, Action::Place { .. })).count(), 3);
    }

    #[test]
    fn decreasing_order_places_large_first() {
        let s0 = snap(vec![node_view(0, 0, false)]);
        let pend = vec![pending(1, "small", 2_000.0), pending(2, "large", 15_000.0)];
        let db = TimeSeriesDb::default();
        let mut s = ResAg::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        // Large (15 GB) goes first and fills the node; small (2 GB) no
        // longer fits by provision.
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0], Action::Place { pod: PodId(2), node: NodeId(0) });
    }

    #[test]
    fn worst_fit_ablation_spreads_like_kubernetes() {
        // Two empty nodes: consecutive pods land on different nodes under
        // the least-requested (worst-fit) ablation variant.
        let s0 = snap(vec![node_view(0, 0, false), node_view(1, 0, false)]);
        let pend = vec![pending(1, "a", 4_000.0), pending(2, "b", 4_000.0)];
        let db = TimeSeriesDb::default();
        let mut s = ResAg::with_strategy(PackStrategy::WorstFit);
        let places: Vec<NodeId> = s
            .decide(&ctx(&s0, &pend, &[], &db))
            .into_iter()
            .filter_map(|a| match a {
                Action::Place { node, .. } => Some(node),
                _ => None,
            })
            .collect();
        assert_eq!(places.len(), 2);
        assert_ne!(places[0], places[1], "least-requested must spread");
    }

    #[test]
    fn ignores_measured_usage_entirely() {
        // Node whose provisioned free memory is large but whose *measured*
        // free memory is tiny (a greedy TF pod hogs it). Res-Ag places
        // anyway — this is the §IV-B failure mode.
        let mut nv = node_view(0, 1, false);
        nv.free_provision_mb = 12_000.0;
        nv.free_measured_mb = 200.0;
        let s0 = snap(vec![nv]);
        let pend = vec![pending_lc(1, "face", 1_500.0, true)];
        let db = TimeSeriesDb::default();
        let mut s = ResAg::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        assert_eq!(acts, vec![Action::Place { pod: PodId(1), node: NodeId(0) }]);
    }

    #[test]
    fn wakes_a_sleeper_on_overflow() {
        let mut full = node_view(0, 0, false);
        full.free_provision_mb = 100.0;
        let s0 = snap(vec![full, node_view(1, 0, true)]);
        let pend = vec![pending(1, "a", 5_000.0)];
        let db = TimeSeriesDb::default();
        let mut s = ResAg::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        assert_eq!(acts, vec![Action::Wake { node: NodeId(1) }]);
    }

    #[test]
    fn never_resizes_or_configures_growth() {
        let s0 = snap(vec![node_view(0, 0, false)]);
        let pend = vec![pending_lc(1, "face", 1_500.0, true), pending(2, "lud", 3_000.0)];
        let db = TimeSeriesDb::default();
        let mut s = ResAg::new();
        for a in s.decide(&ctx(&s0, &pend, &[], &db)) {
            assert!(
                matches!(a, Action::Place { .. } | Action::Wake { .. }),
                "unexpected action {a:?}"
            );
        }
    }
}
