//! The scheduler trait.

use crate::action::Action;
use crate::context::SchedContext;

/// A cluster scheduling policy.
///
/// Called once per heartbeat with a fresh [`SchedContext`]; returns the
/// actions to apply this round. Policies keep their own state (learned
/// per-app statistics, time-slicing rotations, ...) across calls.
pub trait Scheduler {
    /// Display name used in experiment tables (matches the paper's labels).
    fn name(&self) -> &'static str;

    /// Decide this heartbeat's actions.
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Vec<Action>;

    /// Whether this policy wants idle nodes put to deep sleep when it has
    /// consolidated load away from them. The orchestrator only auto-sleeps
    /// for policies that opt in (PP does; the baselines rely on the
    /// cluster-level idle timer).
    fn consolidates(&self) -> bool {
        false
    }

    /// Whether the cluster-level idle auto-sleep timer should run under
    /// this policy. GPU-aware policies that manage p-states themselves
    /// (PP) or deliberately keep the fleet warm for latency (CBP) return
    /// `false`; GPU-agnostic baselines leave the infrastructure default.
    fn wants_cluster_auto_sleep(&self) -> bool {
        true
    }

    /// Export the policy's learned state for a control-plane snapshot
    /// (see crates/recovery). Stateless policies return
    /// [`serde::Value::Null`]; stateful policies must export everything
    /// that influences future decisions, or a restored controller diverges
    /// from an uninterrupted run.
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restore state previously exported by
    /// [`snapshot_state`](Self::snapshot_state). Errors mean the snapshot
    /// does not match this policy (wrong scheduler or corrupted state).
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let _ = state;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Scheduler for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn decide(&mut self, _ctx: &SchedContext<'_>) -> Vec<Action> {
            vec![]
        }
    }

    #[test]
    fn default_consolidation_is_off() {
        assert!(!Nop.consolidates());
        assert_eq!(Nop.name(), "nop");
    }
}
