//! The Kubernetes-default "uniform" scheduler.
//!
//! GPU sharing is disabled in stock Kubernetes (§III-B): each pod gets
//! exclusive access to one GPU until completion, and the pending queue is
//! served strictly FCFS. The result — reproduced here — is the paper's
//! baseline pathology: long batch jobs at the head of the queue block
//! latency-critical queries behind them (head-of-line blocking, §VI-B),
//! utilization stays low, and every node must stay powered.

use crate::action::Action;
use crate::context::SchedContext;
use crate::traits::Scheduler;
use knots_sim::ids::NodeId;

/// Exclusive-GPU FCFS scheduler.
#[derive(Debug, Default)]
pub struct Uniform {
    _priv: (),
}

impl Uniform {
    /// Create the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for Uniform {
    fn name(&self) -> &'static str {
        "Uniform"
    }

    fn decide(&mut self, ctx: &SchedContext<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        // Free = awake, not mid-wake, hosting nothing.
        let mut free: Vec<NodeId> = ctx
            .snapshot
            .nodes
            .iter()
            .filter(|n| !n.asleep && !n.waking && n.pods.is_empty())
            .map(|n| n.id)
            .collect();
        let mut sleeping: Vec<NodeId> = ctx.snapshot.sleeping_nodes().collect();

        // Strict FCFS: stop at the first pod that cannot be placed.
        for pod in ctx.pending {
            if let Some(node) = free.pop() {
                if let Some(rec) = ctx.audit() {
                    knots_obs::audit::decision(
                        rec,
                        ctx.now.as_micros(),
                        "Uniform",
                        "sched.place",
                        Some(pod.id.0),
                        Some(node.0 as u64),
                        "fcfs_exclusive_gpu",
                    );
                }
                actions.push(Action::Place { pod: pod.id, node });
            } else if let Some(node) = sleeping.pop() {
                // Wake a node for the blocked head; it becomes placeable on
                // a later heartbeat.
                if let Some(rec) = ctx.audit() {
                    knots_obs::audit::decision(
                        rec,
                        ctx.now.as_micros(),
                        "Uniform",
                        "sched.wake",
                        Some(pod.id.0),
                        Some(node.0 as u64),
                        "hol_blocked_head",
                    );
                }
                actions.push(Action::Wake { node });
                break;
            } else {
                break; // head-of-line blocking
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, node_view, pending, snap};
    use knots_sim::ids::PodId;
    use knots_telemetry::TimeSeriesDb;

    #[test]
    fn places_on_free_nodes_only() {
        let s0 = snap(vec![node_view(0, 1, false), node_view(1, 0, false)]);
        let pend = vec![pending(1, "a", 100.0), pending(2, "b", 100.0)];
        let db = TimeSeriesDb::default();
        let mut s = Uniform::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        // Only one free node: pod 1 placed, pod 2 blocked (no sleepers).
        assert_eq!(acts, vec![Action::Place { pod: PodId(1), node: NodeId(1) }]);
    }

    #[test]
    fn hol_blocking_wakes_a_sleeper() {
        let s0 = snap(vec![node_view(0, 1, false), node_view(1, 0, true)]);
        let pend = vec![pending(1, "a", 100.0)];
        let db = TimeSeriesDb::default();
        let mut s = Uniform::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        assert_eq!(acts, vec![Action::Wake { node: NodeId(1) }]);
    }

    #[test]
    fn strict_fcfs_never_skips_the_head() {
        // Head can't be placed (no free node); a tiny pod behind it must
        // NOT jump the queue.
        let s0 = snap(vec![node_view(0, 1, false)]);
        let pend = vec![pending(1, "big", 10_000.0), pending(2, "small", 10.0)];
        let db = TimeSeriesDb::default();
        let mut s = Uniform::new();
        assert!(s.decide(&ctx(&s0, &pend, &[], &db)).is_empty());
    }

    #[test]
    fn no_pending_no_actions() {
        let s0 = snap(vec![node_view(0, 0, false)]);
        let db = TimeSeriesDb::default();
        let mut s = Uniform::new();
        assert!(s.decide(&ctx(&s0, &[], &[], &db)).is_empty());
        assert!(!s.consolidates());
    }
}
