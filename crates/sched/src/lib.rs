//! # knots-sched — GPU cluster schedulers
//!
//! The policies evaluated in the paper, all behind one [`Scheduler`] trait:
//!
//! | Scheduler | Paper role | Module |
//! |-----------|------------|--------|
//! | [`uniform::Uniform`] | Kubernetes' default: exclusive GPU per pod, strict FCFS | [`uniform`] |
//! | [`resag::ResAg`] | GPU sharing, utilization-agnostic FFD bin packing (§IV-B) | [`resag`] |
//! | [`cbp::Cbp`] | Correlation-Based Provisioning: 80th-percentile resizing + Spearman anti-co-location (§IV-C) | [`cbp`] |
//! | [`pp::CbpPp`] | CBP + Peak Prediction: autocorrelation + AR(1) forecasts, consolidation, Algorithm 1 (§IV-D) | [`pp`] |
//! | [`gandiva::Gandiva`] | Time-slicing / migration DL scheduler baseline (§VI-E) | [`gandiva`] |
//! | [`tiresias::Tiresias`] | Least-Attained-Service preemptive baseline (§VI-E) | [`tiresias`] |
//!
//! Schedulers are *pure policies*: they read a [`SchedContext`] (cluster
//! snapshot + pending queue + telemetry) and emit [`Action`]s; the
//! orchestrator in `knots-core` applies them to the simulator. Nothing in
//! this crate peeks at ground-truth profiles — GPU-aware policies learn
//! per-application behaviour online from telemetry, exactly like the real
//! system ("without a priori knowledge of incoming applications").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod action;
pub mod binpack;
pub mod cache;
pub mod cbp;
pub mod context;
pub mod gandiva;
pub mod history;
pub mod pp;
pub mod resag;
pub mod shard_order;
#[cfg(test)]
pub(crate) mod testutil;
pub mod tiresias;
pub mod traits;
pub mod uniform;

pub use action::Action;
pub use cache::{CacheStats, StatsCache};
pub use context::{PendingPodView, SchedContext, SuspendedPodView};
pub use traits::Scheduler;
