//! Correlation-Based Provisioning (CBP) — §IV-C.
//!
//! CBP adds three things on top of Res-Ag's sharing:
//!
//! 1. **Framework configuration** — pending greedy (TF-default) pods get
//!    `allow_growth` set through the exposed framework API, eliminating the
//!    99%-earmark fragmentation of Fig. 4 (Observation 5).
//! 2. **Harvesting by resizing** — containers of *known* applications are
//!    provisioned for the common case: the 80th percentile of the app's
//!    observed memory, not the worst case ("CBP scheduler bin packs the
//!    uncorrelated applications together by resizing their respective pods
//!    for a common case (80th percentile consumption)"). Running pods whose
//!    usage outgrows their provision are resized *up* while capacity exists
//!    (crash-free growth).
//! 3. **Correlation-aware placement** — before co-locating, CBP computes the
//!    Spearman correlation (Eq. 1) between the candidate app's recent memory
//!    series and each resident pod's series over the sliding window;
//!    positively-correlated pods (ρ > 0.5) go to *different* GPUs because
//!    they would peak together.
//!
//! Everything is learned online from telemetry ([`AppUsageHistory`]); no
//! a-priori profiles.

use crate::action::Action;
use crate::binpack::decreasing_order;
use crate::context::{app_key, SchedContext};
use crate::history::{AppHistoryState, AppUsageHistory};
use crate::traits::Scheduler;
use knots_sim::ids::{NodeId, PodId};
use knots_sim::pod::QosClass;
use knots_telemetry::NodeView;
use std::collections::BTreeMap;

/// Tunables (ablated in `knots-bench`).
#[derive(Debug, Clone, Copy)]
pub struct CbpConfig {
    /// The provisioning percentile (paper: 0.80; 0.5/0.6 cause "constant
    /// resizing which affects the docker performance at scale").
    pub resize_percentile: f64,
    /// Multiplicative headroom over the percentile.
    pub resize_headroom: f64,
    /// Spearman threshold above which two pods must not share a GPU
    /// (Algorithm 1 uses 0.5).
    pub correlation_threshold: f64,
    /// Minimum overlapping samples required before a correlation is
    /// trusted.
    pub min_corr_samples: usize,
}

impl Default for CbpConfig {
    fn default() -> Self {
        CbpConfig {
            resize_percentile: 0.80,
            resize_headroom: 1.10,
            correlation_threshold: 0.5,
            min_corr_samples: 16,
        }
    }
}

/// The CBP scheduler.
#[derive(Debug, Default)]
pub struct Cbp {
    /// Configuration.
    pub cfg: CbpConfig,
    history: AppUsageHistory,
}

impl Cbp {
    /// Create with the paper's configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with explicit tunables.
    pub fn with_config(cfg: CbpConfig) -> Self {
        Cbp { cfg, history: AppUsageHistory::default() }
    }

    /// Read access to the learned history (used by PP and tests).
    pub fn history(&self) -> &AppUsageHistory {
        &self.history
    }
}

// ---------------------------------------------------------------------
// Shared machinery (also driven by the PP scheduler).
// ---------------------------------------------------------------------

/// Update per-app statistics from the current snapshot + telemetry.
pub(crate) fn learn(history: &mut AppUsageHistory, ctx: &SchedContext<'_>) {
    for node in &ctx.snapshot.nodes {
        for pod in &node.pods {
            if pod.pulling {
                continue;
            }
            let app = app_key(&pod.name);
            history.observe_mem(&app, pod.usage.mem_mb);
            history.observe_sm(&app, pod.usage.sm_frac.clamp(0.0, 1.0));
        }
    }
    // Refresh one reference series per app from the longest-running pod we
    // can see. The fetch goes through the round cache, so the correlation
    // gate below reuses the same buffer instead of re-querying the TSDB.
    let mut best: BTreeMap<String, (usize, PodId)> = BTreeMap::new();
    for node in &ctx.snapshot.nodes {
        for pod in &node.pods {
            let app = app_key(&pod.name);
            let len = ctx.tsdb.pod_len(pod.id);
            let e = best.entry(app).or_insert((0, pod.id));
            if len > e.0 {
                *e = (len, pod.id);
            }
        }
    }
    for (app, (len, pod)) in best {
        if len >= 8 {
            let series = ctx.cache.pod_mem_series(ctx.tsdb, pod, ctx.now, ctx.window);
            history.set_reference(&app, series.as_ref().clone());
        }
    }
}

/// `ConfigureGrowth` for every pending TF-greedy pod.
pub(crate) fn growth_actions(ctx: &SchedContext<'_>) -> Vec<Action> {
    ctx.pending
        .iter()
        .filter(|p| p.greedy_memory && !p.allow_growth)
        .map(|p| Action::ConfigureGrowth { pod: p.id, allow: true })
        .collect()
}

/// Resize pending pods of known apps to the common-case provision, and
/// grow running pods that have outgrown their provision.
pub(crate) fn resize_actions(
    history: &AppUsageHistory,
    cfg: &CbpConfig,
    ctx: &SchedContext<'_>,
) -> Vec<Action> {
    let mut actions = Vec::new();
    // Pending: provision for the observed common case.
    for p in ctx.pending {
        if !history.is_known(&p.app) {
            continue;
        }
        if let Some(q) = history.mem_quantile(&p.app, cfg.resize_percentile) {
            // Harvesting shrinks an over-stated request toward the app's
            // common-case footprint; it never inflates a small job to the
            // app-wide quantile (per-job growth is handled at runtime by
            // the crash-free grow-back below).
            let target = (q * cfg.resize_headroom).min(p.request_mb).clamp(64.0, 16_384.0);
            if target < p.limit_mb * 0.95 {
                actions.push(Action::Resize { pod: p.id, limit_mb: target });
            }
        }
    }
    // Running: crash-free grow-back during peaks (the provision chases real
    // usage so that co-location accounting stays honest).
    for node in &ctx.snapshot.nodes {
        for pod in &node.pods {
            if pod.usage.mem_mb > pod.limit_mb * 1.02 {
                let target = (pod.usage.mem_mb * 1.05).min(16_384.0);
                actions.push(Action::Resize { pod: pod.id, limit_mb: target });
            }
        }
    }
    actions
}

/// Expected steady SM demand of an app (its observed 80th percentile), or
/// a conservative default when unknown.
pub(crate) fn expected_sm(history: &AppUsageHistory, app: &str) -> f64 {
    history.sm_quantile(app, 0.8).unwrap_or(0.5)
}

/// Compute-headroom guard for *batch* co-location: Knots harvests memory,
/// it does not oversubscribe SMs — stacking two compute-bound jobs would
/// halve both (the interference §II's Observation 2 warns about). The
/// node's load is the sum of its residents' *steady* (80th-percentile)
/// demands, not the instantaneous sample — otherwise a compute-bound job
/// sampled during its input phase looks co-locatable. A small overshoot is
/// tolerated because phases rarely align.
pub(crate) fn sm_headroom_ok(history: &AppUsageHistory, app: &str, node: &NodeView) -> bool {
    let resident_load: f64 = node
        .pods
        .iter()
        .map(|p| history.sm_quantile(&app_key(&p.name), 0.8).unwrap_or(p.usage.sm_frac))
        .sum();
    resident_load + expected_sm(history, app) <= 1.05
}

/// Can `app` co-locate with everything resident on `node`?
///
/// Rejects when the app's reference memory series is positively correlated
/// (Spearman ρ > threshold) with any resident pod's recent series. When the
/// context carries an audit recorder, the gate logs the worst coefficient
/// it compared (`scheduler` labels the policy driving the shared gate).
///
/// Series fetches, rank vectors, and pairwise ρ all go through the round's
/// [`crate::StatsCache`], so a resident pod compared against many candidate
/// apps (or one app probing many nodes) costs one TSDB query and one ranking
/// per overlap length instead of one per comparison.
pub(crate) fn correlation_ok(
    history: &AppUsageHistory,
    cfg: &CbpConfig,
    ctx: &SchedContext<'_>,
    scheduler: &'static str,
    app: &str,
    node: &NodeView,
) -> bool {
    let Some(reference) = history.reference(app) else {
        return true; // nothing known yet: co-locate optimistically
    };
    // Worst (highest) coefficient seen, with the resident app it belongs to.
    let mut max_rho: Option<(f64, String)> = None;
    for pod in &node.pods {
        if !ctx.pod_series_fresh(pod.id) {
            // The resident's series stopped advancing (probe dropout, node
            // churn): a correlation against it would compare the candidate
            // with the past. Degrade to Res-Ag's optimistic co-location for
            // this resident rather than veto on dead data.
            if let Some(rec) = ctx.audit() {
                knots_obs::audit::stale_fallback(
                    rec,
                    ctx.now.as_micros(),
                    scheduler,
                    "pod_mem",
                    Some(pod.id.0),
                    Some(node.id.0 as u64),
                );
            }
            continue;
        }
        let series = ctx.cache.pod_mem_series(ctx.tsdb, pod.id, ctx.now, ctx.window);
        let n = reference.len().min(series.len());
        if n < cfg.min_corr_samples {
            continue;
        }
        let rho = ctx.cache.spearman_suffix(app, reference, pod.id, &series);
        if max_rho.as_ref().is_none_or(|(best, _)| rho > *best) {
            max_rho = Some((rho, app_key(&pod.name)));
        }
        if rho > cfg.correlation_threshold {
            if let Some(rec) = ctx.audit() {
                knots_obs::audit::correlation_gate(
                    rec,
                    ctx.now.as_micros(),
                    scheduler,
                    node.id.0 as u64,
                    app,
                    &app_key(&pod.name),
                    rho,
                    cfg.correlation_threshold,
                    false,
                );
            }
            return false;
        }
    }
    if let (Some(rec), Some((rho, other))) = (ctx.audit(), max_rho) {
        knots_obs::audit::correlation_gate(
            rec,
            ctx.now.as_micros(),
            scheduler,
            node.id.0 as u64,
            app,
            &other,
            rho,
            cfg.correlation_threshold,
            true,
        );
    }
    true
}

/// The provision a pending pod will occupy, accounting for a resize emitted
/// earlier in the same action batch.
pub(crate) fn effective_limit(actions: &[Action], pod: PodId, fallback: f64) -> f64 {
    actions
        .iter()
        .rev()
        .find_map(|a| match a {
            Action::Resize { pod: p, limit_mb } if *p == pod => Some(*limit_mb),
            _ => None,
        })
        .unwrap_or(fallback)
}

/// Pending order: latency-critical pods first (FCFS among them), then batch
/// pods largest-first (the FFD order of §IV-D's `Sort_Apps_by_Memory_Size`).
pub(crate) fn service_order(ctx: &SchedContext<'_>) -> Vec<usize> {
    let mut lc: Vec<usize> = Vec::new();
    let mut batch: Vec<usize> = Vec::new();
    for (i, p) in ctx.pending.iter().enumerate() {
        if matches!(p.qos, QosClass::LatencyCritical { .. }) {
            lc.push(i);
        } else {
            batch.push(i);
        }
    }
    let sizes: Vec<f64> = batch.iter().map(|&i| ctx.pending[i].limit_mb).collect();
    let batch_sorted: Vec<usize> = decreasing_order(&sizes).into_iter().map(|k| batch[k]).collect();
    lc.into_iter().chain(batch_sorted).collect()
}

impl Scheduler for Cbp {
    fn name(&self) -> &'static str {
        "CBP"
    }

    fn wants_cluster_auto_sleep(&self) -> bool {
        // CBP spreads correlated pods across GPUs and keeps the fleet warm
        // for latency; the paper measures its power 15-25% above PP/Res-Ag
        // (Fig. 11a) for exactly this reason.
        false
    }

    fn snapshot_state(&self) -> serde::Value {
        serde::Serialize::to_value(&self.history.snapshot_state())
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let hs: AppHistoryState = serde::Deserialize::from_value(state)?;
        self.history = AppUsageHistory::from_state(hs);
        Ok(())
    }

    fn decide(&mut self, ctx: &SchedContext<'_>) -> Vec<Action> {
        learn(&mut self.history, ctx);
        let mut actions = growth_actions(ctx);
        actions.extend(resize_actions(&self.history, &self.cfg, ctx));

        // Candidate nodes ordered by *measured* free memory, most free
        // first (the real-time signal Knots adds over Res-Ag), merged
        // from per-shard sorted runs.
        let order = ctx.free_memory_order();
        let mut free: BTreeMap<NodeId, (f64, f64)> = ctx
            .snapshot
            .active_nodes()
            .map(|n| (n.id, (n.free_provision_mb, n.free_measured_mb)))
            .collect();
        let mut unplaced = false;

        for i in service_order(ctx) {
            let pod = &ctx.pending[i];
            let limit = effective_limit(&actions, pod.id, pod.limit_mb);
            let mut placed = false;
            for node_id in order.iter() {
                let Some(node) = ctx.snapshot.node(*node_id) else { continue };
                let (prov, meas) = free[node_id];
                if limit > prov + 1e-9 || limit > meas + 1e-9 {
                    continue;
                }
                if !node.pods.is_empty() && !sm_headroom_ok(&self.history, &pod.app, node) {
                    continue;
                }
                if !correlation_ok(&self.history, &self.cfg, ctx, "CBP", &pod.app, node) {
                    continue;
                }
                if let Some(rec) = ctx.audit() {
                    knots_obs::audit::placement(
                        rec,
                        ctx.now.as_micros(),
                        "CBP",
                        pod.id.0,
                        node_id.0 as u64,
                        limit,
                        meas,
                    );
                }
                actions.push(Action::Place { pod: pod.id, node: *node_id });
                free.insert(*node_id, (prov - limit, meas - limit));
                placed = true;
                break;
            }
            if !placed {
                unplaced = true;
            }
        }
        if unplaced {
            if let Some(node) = ctx.snapshot.sleeping_nodes().next() {
                if let Some(rec) = ctx.audit() {
                    knots_obs::audit::decision(
                        rec,
                        ctx.now.as_micros(),
                        "CBP",
                        "sched.wake",
                        None,
                        Some(node.0 as u64),
                        "queue_overflowed_active_set",
                    );
                }
                actions.push(Action::Wake { node });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, node_view, pending, pending_lc, snap};
    use knots_sim::resources::Usage;
    use knots_sim::time::{SimDuration, SimTime};
    use knots_telemetry::TimeSeriesDb;

    /// Feed the scheduler enough same-app telemetry that the app is known.
    fn teach(s: &mut Cbp, app: &str, samples: &[f64]) {
        for &m in samples {
            s.history.observe_mem(app, m);
        }
        s.history.set_reference(app, samples.to_vec());
    }

    #[test]
    fn configures_growth_for_greedy_pods() {
        let s0 = snap(vec![node_view(0, 0, false)]);
        let pend = vec![pending_lc(1, "face", 1500.0, true)];
        let db = TimeSeriesDb::default();
        let mut s = Cbp::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        assert!(
            acts.contains(&Action::ConfigureGrowth { pod: knots_sim::ids::PodId(1), allow: true })
        );
    }

    #[test]
    fn resizes_known_apps_to_p80() {
        let s0 = snap(vec![node_view(0, 0, false)]);
        // App "lud" observed at 100..=199 MB; request was 8000 MB.
        let pend = vec![pending(1, "lud-7", 8000.0)];
        let db = TimeSeriesDb::default();
        let mut s = Cbp::new();
        let samples: Vec<f64> = (0..100).map(|i| 100.0 + i as f64).collect();
        teach(&mut s, "lud", &samples);
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        let resize = acts.iter().find_map(|a| match a {
            Action::Resize { limit_mb, .. } => Some(*limit_mb),
            _ => None,
        });
        let target = resize.expect("resize emitted");
        // p80 of 100..199 ≈ 179.2, ×1.1 headroom ≈ 197.
        assert!((target - 197.0).abs() < 5.0, "target {target}");
        // And the pod is placed using the *resized* provision.
        assert!(acts.iter().any(|a| matches!(a, Action::Place { .. })));
    }

    #[test]
    fn unknown_apps_keep_their_request() {
        let s0 = snap(vec![node_view(0, 0, false)]);
        let pend = vec![pending(1, "mystery-1", 8000.0)];
        let db = TimeSeriesDb::default();
        let mut s = Cbp::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        assert!(!acts.iter().any(|a| matches!(a, Action::Resize { .. })));
    }

    #[test]
    fn positively_correlated_apps_split_across_nodes() {
        // Node 0 hosts a resident pod whose memory series ramps up; the
        // candidate app's reference ramps identically (ρ = 1). CBP must
        // place the candidate on node 1 instead.
        let mut nv0 = node_view(0, 1, false);
        let resident_id = nv0.pods[0].id;
        nv0.pods[0].name = "rampA-1".into();
        // Make node 0 the most-free candidate so the correlation gate (not
        // the free-memory order) is what steers the pod to node 1.
        nv0.free_measured_mb = 16_000.0;
        nv0.free_provision_mb = 16_000.0;
        let mut nv1 = node_view(1, 0, false);
        nv1.free_measured_mb = 14_000.0;
        nv1.free_provision_mb = 14_000.0;
        let s0 = snap(vec![nv0, nv1]);
        let db = TimeSeriesDb::default();
        let ramp: Vec<f64> = (0..40).map(|i| 100.0 + 10.0 * i as f64).collect();
        for (i, &m) in ramp.iter().enumerate() {
            db.push_pod(
                resident_id,
                SimTime::from_millis(i as u64 * 10),
                Usage::new(0.2, m, 0.0, 0.0),
            );
        }
        let mut s = Cbp::new();
        teach(&mut s, "rampB", &ramp);
        // Make sure timestamps fall inside the query window.
        let mut snapshot = s0;
        snapshot.at = SimTime::from_millis(400);
        let pend = vec![pending(1, "rampB-1", 500.0)];
        let rec = knots_obs::Recorder::bounded(64);
        let c = SchedContext {
            now: snapshot.at,
            snapshot: &snapshot,
            pending: &pend,
            suspended: &[],
            tsdb: &db,
            window: SimDuration::from_secs(5),
            recorder: Some(&rec),
            cache: Default::default(),
            freshness: None,
            shards: 1,
        };
        let acts = s.decide(&c);
        // The audit trail must carry the rejecting Spearman coefficient.
        let trace = rec.export_jsonl();
        assert!(trace.contains("sched.correlation"), "trace: {trace}");
        assert!(trace.contains("spearman_rho"), "trace: {trace}");
        assert!(trace.contains("\"admitted\":false"), "trace: {trace}");
        let place = acts.iter().find_map(|a| match a {
            Action::Place { node, .. } => Some(*node),
            _ => None,
        });
        assert_eq!(place, Some(knots_sim::ids::NodeId(1)), "acts: {acts:?}");
    }

    #[test]
    fn stale_resident_series_falls_back_to_co_location() {
        // Same perfectly-correlated pair as above, but the resident's series
        // stopped 1.6 s before the round and a 1 s freshness bound is set:
        // the gate must skip the dead series (audited as a stale fallback)
        // and co-locate on the most-free node 0 like Res-Ag would.
        let mut nv0 = node_view(0, 1, false);
        let resident_id = nv0.pods[0].id;
        nv0.pods[0].name = "rampA-1".into();
        nv0.free_measured_mb = 16_000.0;
        nv0.free_provision_mb = 16_000.0;
        let mut nv1 = node_view(1, 0, false);
        nv1.free_measured_mb = 14_000.0;
        nv1.free_provision_mb = 14_000.0;
        let s0 = snap(vec![nv0, nv1]);
        let db = TimeSeriesDb::default();
        let ramp: Vec<f64> = (0..40).map(|i| 100.0 + 10.0 * i as f64).collect();
        for (i, &m) in ramp.iter().enumerate() {
            db.push_pod(
                resident_id,
                SimTime::from_millis(i as u64 * 10),
                Usage::new(0.2, m, 0.0, 0.0),
            );
        }
        let mut s = Cbp::new();
        teach(&mut s, "rampB", &ramp);
        let mut snapshot = s0;
        snapshot.at = SimTime::from_secs(2);
        let pend = vec![pending(1, "rampB-1", 500.0)];
        let rec = knots_obs::Recorder::bounded(64);
        let c = SchedContext {
            now: snapshot.at,
            snapshot: &snapshot,
            pending: &pend,
            suspended: &[],
            tsdb: &db,
            window: SimDuration::from_secs(5),
            recorder: Some(&rec),
            cache: Default::default(),
            freshness: Some(SimDuration::from_secs(1)),
            shards: 1,
        };
        let acts = s.decide(&c);
        let trace = rec.export_jsonl();
        assert!(trace.contains("sched.stale_fallback"), "trace: {trace}");
        assert!(trace.contains("pod_mem"), "trace: {trace}");
        let place = acts.iter().find_map(|a| match a {
            Action::Place { node, .. } => Some(*node),
            _ => None,
        });
        assert_eq!(place, Some(NodeId(0)), "stale veto must not block node 0: {acts:?}");
    }

    #[test]
    fn uncorrelated_apps_co_locate() {
        let mut nv0 = node_view(0, 1, false);
        let resident_id = nv0.pods[0].id;
        // Make node 0 the most-free node so co-location is preferred.
        nv0.free_measured_mb = 15_000.0;
        nv0.free_provision_mb = 15_000.0;
        let s0 = snap(vec![nv0]);
        let db = TimeSeriesDb::default();
        let ramp_up: Vec<f64> = (0..40).map(|i| 100.0 + 10.0 * i as f64).collect();
        let ramp_down: Vec<f64> = ramp_up.iter().rev().copied().collect();
        for (i, &m) in ramp_up.iter().enumerate() {
            db.push_pod(
                resident_id,
                SimTime::from_millis(i as u64 * 10),
                Usage::new(0.2, m, 0.0, 0.0),
            );
        }
        let mut s = Cbp::new();
        teach(&mut s, "anti", &ramp_down);
        let mut snapshot = s0;
        snapshot.at = SimTime::from_millis(400);
        let pend = vec![pending(1, "anti-1", 500.0)];
        let c = SchedContext {
            now: snapshot.at,
            snapshot: &snapshot,
            pending: &pend,
            suspended: &[],
            tsdb: &db,
            window: SimDuration::from_secs(5),
            recorder: None,
            cache: Default::default(),
            freshness: None,
            shards: 1,
        };
        let acts = s.decide(&c);
        assert!(
            acts.iter().any(|a| matches!(a, Action::Place { .. })),
            "negatively-correlated pods should co-locate: {acts:?}"
        );
    }

    #[test]
    fn capacity_check_uses_measured_memory_too() {
        // Free by provision but hogged by measurement: CBP must refuse
        // (unlike Res-Ag).
        let mut nv = node_view(0, 1, false);
        nv.free_provision_mb = 12_000.0;
        nv.free_measured_mb = 200.0;
        let s0 = snap(vec![nv]);
        let pend = vec![pending(1, "x", 1_500.0)];
        let db = TimeSeriesDb::default();
        let mut s = Cbp::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        assert!(!acts.iter().any(|a| matches!(a, Action::Place { .. })));
    }

    #[test]
    fn lc_pods_are_served_before_batch() {
        let s0 = snap(vec![node_view(0, 0, false)]);
        let pend = vec![pending(1, "big-batch", 9_000.0), pending_lc(2, "face", 1_000.0, false)];
        let db = TimeSeriesDb::default();
        let mut s = Cbp::new();
        let acts = s.decide(&ctx(&s0, &pend, &[], &db));
        let places: Vec<PodId> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Place { pod, .. } => Some(*pod),
                _ => None,
            })
            .collect();
        assert_eq!(places.first(), Some(&PodId(2)), "LC first: {places:?}");
    }

    #[test]
    fn grows_running_pod_past_its_provision() {
        let mut nv = node_view(0, 1, false);
        nv.pods[0].limit_mb = 500.0;
        nv.pods[0].usage = Usage::new(0.3, 900.0, 0.0, 0.0);
        let s0 = snap(vec![nv]);
        let db = TimeSeriesDb::default();
        let mut s = Cbp::new();
        let acts = s.decide(&ctx(&s0, &[], &[], &db));
        let resize = acts.iter().find_map(|a| match a {
            Action::Resize { limit_mb, .. } => Some(*limit_mb),
            _ => None,
        });
        assert!((resize.unwrap() - 945.0).abs() < 1.0);
    }
}
