//! The actions a scheduler can request from the orchestrator.

use knots_sim::ids::{NodeId, PodId};
use serde::{Deserialize, Serialize};

/// One scheduling decision. The orchestrator applies actions in order;
/// an action that fails validation (e.g. a race with a crash in the same
/// tick) is skipped and counted, never fatal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Bind a pending pod to a node.
    Place {
        /// The pod.
        pod: PodId,
        /// Target node.
        node: NodeId,
    },
    /// Change a pod's memory provision (harvest or grow-back).
    Resize {
        /// The pod.
        pod: PodId,
        /// New provision, MB.
        limit_mb: f64,
    },
    /// Flip the framework `allow_growth` knob on a pending pod
    /// (Observation 5: the TF API exposed to the scheduler).
    ConfigureGrowth {
        /// The pod.
        pod: PodId,
        /// New setting.
        allow: bool,
    },
    /// Suspend a running pod (suspend-and-resume schedulers).
    Preempt {
        /// The pod.
        pod: PodId,
    },
    /// Resume a suspended pod on a node.
    Resume {
        /// The pod.
        pod: PodId,
        /// Target node.
        node: NodeId,
    },
    /// Move a running pod to another node (checkpoint + restore).
    Migrate {
        /// The pod.
        pod: PodId,
        /// Destination node.
        to: NodeId,
    },
    /// Wake a deep-sleeping node.
    Wake {
        /// The node.
        node: NodeId,
    },
    /// Put an idle node into deep sleep.
    Sleep {
        /// The node.
        node: NodeId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_are_comparable() {
        let a = Action::Place { pod: PodId(1), node: NodeId(2) };
        assert_eq!(a, Action::Place { pod: PodId(1), node: NodeId(2) });
        assert_ne!(a, Action::Wake { node: NodeId(2) });
    }
}
