//! Online per-application usage history.
//!
//! Kube-Knots performs "QoS-aware container co-locations ... without a
//! priori knowledge of incoming applications" (§I): nothing is profiled
//! offline. Instead, the GPU-aware schedulers learn each application's
//! memory behaviour from the telemetry of pods that already ran — the
//! "Container Resource Usage Profiles" box of Fig. 5. This module is that
//! memory: bounded per-app sample reservoirs supporting the two queries CBP
//! needs (the 80th-percentile footprint to resize to, and a recent usage
//! series to correlate against).

use knots_forecast::stats::percentile;
use std::collections::{BTreeMap, VecDeque};

/// Bounded history for one application.
#[derive(Debug, Default, Clone)]
struct AppStats {
    /// Recent memory observations across all pods of this app, MB.
    mem_samples: VecDeque<f64>,
    /// Recent SM-share observations across all pods of this app.
    sm_samples: VecDeque<f64>,
    /// The most recent contiguous memory series of a single pod (for
    /// correlation checks).
    reference: Vec<f64>,
    /// Largest memory observation ever seen, MB.
    peak_mb: f64,
    /// Total observations.
    count: u64,
}

/// Per-application usage history learned online from telemetry.
#[derive(Debug)]
pub struct AppUsageHistory {
    cap: usize,
    apps: BTreeMap<String, AppStats>,
}

impl Default for AppUsageHistory {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl AppUsageHistory {
    /// Create with a per-app sample cap.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 8);
        AppUsageHistory { cap, apps: BTreeMap::new() }
    }

    /// Record one memory observation for an app.
    pub fn observe_mem(&mut self, app: &str, mem_mb: f64) {
        if !mem_mb.is_finite() || mem_mb < 0.0 {
            return;
        }
        let s = self.apps.entry(app.to_string()).or_default();
        if s.mem_samples.len() == self.cap {
            s.mem_samples.pop_front();
        }
        s.mem_samples.push_back(mem_mb);
        s.peak_mb = s.peak_mb.max(mem_mb);
        s.count += 1;
    }

    /// Record one SM-share observation for an app.
    pub fn observe_sm(&mut self, app: &str, sm_frac: f64) {
        if !sm_frac.is_finite() || !(0.0..=1.0).contains(&sm_frac) {
            return;
        }
        let s = self.apps.entry(app.to_string()).or_default();
        if s.sm_samples.len() == self.cap {
            s.sm_samples.pop_front();
        }
        s.sm_samples.push_back(sm_frac);
    }

    /// The q-quantile of the app's observed SM share.
    pub fn sm_quantile(&self, app: &str, q: f64) -> Option<f64> {
        let s = self.apps.get(app)?;
        if s.sm_samples.is_empty() {
            return None;
        }
        let v: Vec<f64> = s.sm_samples.iter().copied().collect();
        Some(percentile(&v, q))
    }

    /// Replace the app's reference series (one pod's recent memory series).
    pub fn set_reference(&mut self, app: &str, series: Vec<f64>) {
        if series.is_empty() {
            return;
        }
        self.apps.entry(app.to_string()).or_default().reference = series;
    }

    /// Whether enough history exists to trust a resize decision. The
    /// threshold guards against resizing on a handful of startup samples.
    pub fn is_known(&self, app: &str) -> bool {
        self.apps.get(app).is_some_and(|s| s.count >= 32)
    }

    /// The q-quantile of the app's observed memory, MB.
    pub fn mem_quantile(&self, app: &str, q: f64) -> Option<f64> {
        let s = self.apps.get(app)?;
        if s.mem_samples.is_empty() {
            return None;
        }
        let v: Vec<f64> = s.mem_samples.iter().copied().collect();
        Some(percentile(&v, q))
    }

    /// Largest memory observation, MB.
    pub fn mem_peak(&self, app: &str) -> Option<f64> {
        self.apps.get(app).map(|s| s.peak_mb)
    }

    /// The app's reference memory series for correlation checks.
    pub fn reference(&self, app: &str) -> Option<&[f64]> {
        let s = self.apps.get(app)?;
        if s.reference.is_empty() {
            None
        } else {
            Some(&s.reference)
        }
    }

    /// Number of tracked applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when no app has been observed.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Export the learned statistics for a control-plane snapshot
    /// (see crates/recovery). Apps are emitted in BTreeMap (name) order so
    /// the serialized form is deterministic.
    pub fn snapshot_state(&self) -> AppHistoryState {
        AppHistoryState {
            cap: self.cap as u64,
            apps: self
                .apps
                .iter()
                .map(|(name, s)| AppStatsState {
                    name: name.clone(),
                    mem_samples: s.mem_samples.iter().copied().collect(),
                    sm_samples: s.sm_samples.iter().copied().collect(),
                    reference: s.reference.clone(),
                    peak_mb: s.peak_mb,
                    count: s.count,
                })
                .collect(),
        }
    }

    /// Rebuild a history from exported statistics. Inverse of
    /// [`snapshot_state`](Self::snapshot_state).
    pub fn from_state(state: AppHistoryState) -> Self {
        let cap = (state.cap as usize).max(8);
        let apps = state
            .apps
            .into_iter()
            .map(|a| {
                let stats = AppStats {
                    mem_samples: a.mem_samples.into_iter().collect(),
                    sm_samples: a.sm_samples.into_iter().collect(),
                    reference: a.reference,
                    peak_mb: a.peak_mb,
                    count: a.count,
                };
                (a.name, stats)
            })
            .collect();
        AppUsageHistory { cap, apps }
    }
}

/// Serializable form of one app's [`AppStats`] (snapshot interchange).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AppStatsState {
    /// Application name (the map key in the live structure).
    pub name: String,
    /// Recent memory observations, oldest first, MB.
    pub mem_samples: Vec<f64>,
    /// Recent SM-share observations, oldest first.
    pub sm_samples: Vec<f64>,
    /// Reference memory series for correlation checks.
    pub reference: Vec<f64>,
    /// Largest memory observation ever seen, MB.
    pub peak_mb: f64,
    /// Total observations.
    pub count: u64,
}

/// Serializable form of a whole [`AppUsageHistory`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AppHistoryState {
    /// Per-app sample cap the history was created with.
    pub cap: u64,
    /// Per-app statistics, sorted by app name.
    pub apps: Vec<AppStatsState>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_from_observations() {
        let mut h = AppUsageHistory::new(64);
        for i in 0..100 {
            h.observe_mem("lud", 100.0 + i as f64);
        }
        // Cap keeps the most recent 64: values 136..=199.
        let p50 = h.mem_quantile("lud", 0.5).unwrap();
        assert!((p50 - 167.5).abs() < 1.0, "p50 {p50}");
        assert_eq!(h.mem_peak("lud"), Some(199.0));
        assert!(h.is_known("lud"));
        assert!(!h.is_known("unknown"));
    }

    #[test]
    fn few_samples_are_not_trusted() {
        let mut h = AppUsageHistory::default();
        for _ in 0..10 {
            h.observe_mem("x", 50.0);
        }
        assert!(!h.is_known("x"));
        assert!(h.mem_quantile("x", 0.8).is_some());
    }

    #[test]
    fn reference_series_round_trip() {
        let mut h = AppUsageHistory::default();
        assert!(h.reference("a").is_none());
        h.set_reference("a", vec![1.0, 2.0, 3.0]);
        assert_eq!(h.reference("a").unwrap(), &[1.0, 2.0, 3.0]);
        h.set_reference("a", vec![]);
        assert_eq!(h.reference("a").unwrap().len(), 3, "empty update ignored");
    }

    #[test]
    fn invalid_observations_ignored() {
        let mut h = AppUsageHistory::default();
        h.observe_mem("a", f64::NAN);
        h.observe_mem("a", -5.0);
        assert!(h.mem_quantile("a", 0.5).is_none() || h.is_empty() || h.len() <= 1);
        assert!(!h.is_known("a"));
    }

    #[test]
    fn len_counts_apps() {
        let mut h = AppUsageHistory::default();
        assert!(h.is_empty());
        h.observe_mem("a", 1.0);
        h.observe_mem("b", 2.0);
        assert_eq!(h.len(), 2);
    }
}
