//! Per-round memoization for the decision loop's telemetry statistics.
//!
//! Every heartbeat the GPU-aware schedulers re-derive the same quantities
//! many times over: CBP's correlation gate fetches each resident pod's
//! memory series once per *candidate pod × node* pair, ranks the same
//! series repeatedly, and PP re-fetches a node's memory series for every
//! pending pod probing that node. [`StatsCache`] memoizes all of it for
//! exactly one scheduling round:
//!
//! * fetched pod/node series (shared via `Rc`, filled through the TSDB's
//!   copy-into-scratch path),
//! * Spearman rank vectors per (series, overlap-length),
//! * pairwise Spearman ρ keyed by (app, resident pod, overlap-length).
//!
//! **Invalidation rule:** there is none, by construction. The orchestrator
//! builds a fresh `SchedContext` — and with it a fresh cache — for every
//! round, and the TSDB is only written *between* rounds (probe step), so
//! within a round every memoized value is trivially current. Nothing may
//! hold a cache across heartbeats.
//!
//! **Determinism:** every cached value is computed by the exact reference
//! code path (`TimeSeriesDb::*_series_into`, `ranks`, `pearson`), so a
//! cache hit returns the same bits as a recompute. `tests/statscache.rs`
//! fuzzes this bit-identity with seeded-LCG series.

use crate::shard_order::{shard_free_memory_order, shard_packing_order};
use knots_forecast::spearman::{pearson, ranks};
use knots_sim::ids::{NodeId, PodId};
use knots_sim::metrics::Metric;
use knots_sim::time::{SimDuration, SimTime};
use knots_telemetry::{ClusterSnapshot, TimeSeriesDb};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Hit/miss counters of one cache, surfaced to the metrics registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo tables.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

/// Memo table mapping a key to a shared series / rank vector.
type SeriesMemo<K> = RefCell<BTreeMap<K, Rc<Vec<f64>>>>;

/// One scheduling round's memo tables (see module docs).
///
/// Interior-mutable so the read-only [`crate::SchedContext`] can carry it;
/// single-threaded by design (`Rc`), matching the one-context-per-round,
/// one-round-per-thread control loop.
#[derive(Debug, Default)]
pub struct StatsCache {
    pod_mem: SeriesMemo<PodId>,
    node_mem: SeriesMemo<NodeId>,
    /// Rank vector of a pod series' trailing `n` samples, keyed (pod, n).
    pod_ranks: SeriesMemo<(PodId, usize)>,
    /// Rank vector of an app reference's trailing `n` samples.
    ref_ranks: SeriesMemo<(String, usize)>,
    /// Pairwise Spearman ρ keyed (app, resident pod, overlap n).
    rho: RefCell<BTreeMap<(String, PodId, usize), f64>>,
    /// This round's free-memory candidate order (Algorithm 1), built via
    /// the shard-local merge and shared by every placement pass.
    free_memory_order: RefCell<Option<Rc<Vec<NodeId>>>>,
    /// This round's consolidation (packing) candidate order.
    packing_order: RefCell<Option<Rc<Vec<NodeId>>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl StatsCache {
    /// Fresh, empty cache (one per scheduling round).
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit/miss counters accumulated so far this round.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits.get(), misses: self.misses.get() }
    }

    fn hit(&self) {
        self.hits.set(self.hits.get() + 1);
    }

    fn miss(&self) {
        self.misses.set(self.misses.get() + 1);
    }

    /// A pod's memory series over the trailing window, fetched at most once
    /// per round. Bit-identical to [`TimeSeriesDb::pod_mem_series`].
    pub fn pod_mem_series(
        &self,
        tsdb: &TimeSeriesDb,
        pod: PodId,
        now: SimTime,
        window: SimDuration,
    ) -> Rc<Vec<f64>> {
        if let Some(s) = self.pod_mem.borrow().get(&pod) {
            self.hit();
            return Rc::clone(s);
        }
        self.miss();
        let mut buf = Vec::new();
        tsdb.pod_mem_series_into(pod, now, window, &mut buf);
        let rc = Rc::new(buf);
        self.pod_mem.borrow_mut().insert(pod, Rc::clone(&rc));
        rc
    }

    /// A node's used-memory series over the trailing window, fetched at
    /// most once per round. Bit-identical to [`TimeSeriesDb::node_series`]
    /// with [`Metric::MemUsedMb`].
    pub fn node_mem_series(
        &self,
        tsdb: &TimeSeriesDb,
        node: NodeId,
        now: SimTime,
        window: SimDuration,
    ) -> Rc<Vec<f64>> {
        if let Some(s) = self.node_mem.borrow().get(&node) {
            self.hit();
            return Rc::clone(s);
        }
        self.miss();
        let mut buf = Vec::new();
        tsdb.node_series_into(node, Metric::MemUsedMb, now, window, &mut buf);
        let rc = Rc::new(buf);
        self.node_mem.borrow_mut().insert(node, Rc::clone(&rc));
        rc
    }

    /// The round's free-memory placement order, built shard-locally and
    /// k-way merged ([`crate::shard_order::shard_free_memory_order`]),
    /// computed at most once per round. Bit-identical to
    /// [`ClusterSnapshot::nodes_by_free_memory`] for every shard count.
    pub fn free_memory_order(
        &self,
        snapshot: &ClusterSnapshot,
        shards: usize,
    ) -> Rc<Vec<NodeId>> {
        if let Some(o) = self.free_memory_order.borrow().as_ref() {
            self.hit();
            return Rc::clone(o);
        }
        self.miss();
        let rc = Rc::new(shard_free_memory_order(snapshot, shards));
        *self.free_memory_order.borrow_mut() = Some(Rc::clone(&rc));
        rc
    }

    /// Packing counterpart of [`Self::free_memory_order`]; bit-identical
    /// to [`ClusterSnapshot::nodes_by_packing`] for every shard count.
    pub fn packing_order(&self, snapshot: &ClusterSnapshot, shards: usize) -> Rc<Vec<NodeId>> {
        if let Some(o) = self.packing_order.borrow().as_ref() {
            self.hit();
            return Rc::clone(o);
        }
        self.miss();
        let rc = Rc::new(shard_packing_order(snapshot, shards));
        *self.packing_order.borrow_mut() = Some(Rc::clone(&rc));
        rc
    }

    /// Memoized rank vector of `series`' trailing `n` samples for a pod.
    fn pod_rank_suffix(&self, pod: PodId, series: &[f64], n: usize) -> Rc<Vec<f64>> {
        if let Some(r) = self.pod_ranks.borrow().get(&(pod, n)) {
            self.hit();
            return Rc::clone(r);
        }
        self.miss();
        let rc = Rc::new(ranks(&series[series.len() - n..]));
        self.pod_ranks.borrow_mut().insert((pod, n), Rc::clone(&rc));
        rc
    }

    /// Memoized rank vector of an app reference's trailing `n` samples.
    fn ref_rank_suffix(&self, app: &str, reference: &[f64], n: usize) -> Rc<Vec<f64>> {
        if let Some(r) = self.ref_ranks.borrow().get(&(app.to_string(), n)) {
            self.hit();
            return Rc::clone(r);
        }
        self.miss();
        let rc = Rc::new(ranks(&reference[reference.len() - n..]));
        self.ref_ranks.borrow_mut().insert((app.to_string(), n), Rc::clone(&rc));
        rc
    }

    /// Spearman ρ between an app's reference series and a resident pod's
    /// series, aligned on the common trailing suffix and memoized per
    /// (app, pod, overlap). Bit-identical to
    /// `knots_forecast::spearman::spearman(&reference[..], &series[..])`
    /// on the aligned suffixes: the rank vectors are computed by the same
    /// `ranks` and correlated by the same `pearson`.
    pub fn spearman_suffix(&self, app: &str, reference: &[f64], pod: PodId, series: &[f64]) -> f64 {
        let n = reference.len().min(series.len());
        if n < 2 {
            return 0.0;
        }
        let key = (app.to_string(), pod, n);
        if let Some(rho) = self.rho.borrow().get(&key) {
            self.hit();
            return *rho;
        }
        self.miss();
        let ra = self.ref_rank_suffix(app, reference, n);
        let rb = self.pod_rank_suffix(pod, series, n);
        let rho = pearson(&ra, &rb);
        self.rho.borrow_mut().insert(key, rho);
        rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_forecast::spearman::spearman;
    use knots_sim::metrics::GpuSample;
    use knots_sim::resources::Usage;

    fn seeded_db() -> TimeSeriesDb {
        let db = TimeSeriesDb::default();
        for i in 0..40u64 {
            db.push_node(
                NodeId(0),
                GpuSample {
                    at: SimTime::from_millis(i * 10),
                    mem_used_mb: 1000.0 + (i as f64 * 0.7).sin() * 300.0,
                    ..Default::default()
                },
            );
            db.push_pod(
                PodId(1),
                SimTime::from_millis(i * 10),
                Usage::new(0.2, 100.0 + i as f64, 0.0, 0.0),
            );
        }
        db
    }

    #[test]
    fn series_fetches_are_memoized_and_identical() {
        let db = seeded_db();
        let c = StatsCache::new();
        let now = SimTime::from_millis(400);
        let w = SimDuration::from_secs(5);
        let a = c.pod_mem_series(&db, PodId(1), now, w);
        let b = c.pod_mem_series(&db, PodId(1), now, w);
        assert!(Rc::ptr_eq(&a, &b), "second fetch must be a cache hit");
        assert_eq!(*a, db.pod_mem_series(PodId(1), now, w));
        let n1 = c.node_mem_series(&db, NodeId(0), now, w);
        let n2 = c.node_mem_series(&db, NodeId(0), now, w);
        assert!(Rc::ptr_eq(&n1, &n2));
        assert_eq!(*n1, db.node_series(NodeId(0), Metric::MemUsedMb, now, w));
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn spearman_suffix_matches_reference_implementation() {
        let c = StatsCache::new();
        let reference: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).cos() * 50.0).collect();
        let series: Vec<f64> = (0..22).map(|i| i as f64 * 2.0).collect();
        let n = series.len();
        let expected = spearman(&reference[reference.len() - n..], &series);
        let got = c.spearman_suffix("app", &reference, PodId(9), &series);
        assert_eq!(got.to_bits(), expected.to_bits());
        // Memo hit returns the same value without recomputation.
        let again = c.spearman_suffix("app", &reference, PodId(9), &series);
        assert_eq!(again.to_bits(), expected.to_bits());
        assert!(c.stats().hits >= 1);
        // Degenerate overlap.
        assert_eq!(c.spearman_suffix("app", &[1.0], PodId(9), &series), 0.0);
    }
}
