//! Bin-packing strategies for pod placement.
//!
//! Res-Ag and CBP both use first-fit-*decreasing* packing (§IV-B: "We used
//! first fit decreasing order bin-packing algorithm to pack the pods on the
//! GPU"); best-fit and worst-fit are provided as ablation alternatives.

use serde::{Deserialize, Serialize};

/// Packing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackStrategy {
    /// First bin (in the given order) with enough room — the paper's choice
    /// when items are pre-sorted descending.
    FirstFit,
    /// Bin that leaves the least slack.
    BestFit,
    /// Bin that leaves the most slack.
    WorstFit,
}

/// Pick a bin for an item of the given size.
///
/// `bins` is a slice of `(key, free_capacity)` pairs in the preference
/// order the caller built (e.g. sorted by free memory). Returns the index
/// of the chosen bin, or `None` when nothing fits.
pub fn pick_bin<K>(bins: &[(K, f64)], size: f64, strategy: PackStrategy) -> Option<usize> {
    let fits = |free: f64| size <= free + 1e-9;
    match strategy {
        PackStrategy::FirstFit => bins.iter().position(|(_, free)| fits(*free)),
        PackStrategy::BestFit => bins
            .iter()
            .enumerate()
            .filter(|(_, (_, free))| fits(*free))
            .min_by(|a, b| (a.1 .1 - size).total_cmp(&(b.1 .1 - size)))
            .map(|(i, _)| i),
        PackStrategy::WorstFit => bins
            .iter()
            .enumerate()
            .filter(|(_, (_, free))| fits(*free))
            .max_by(|a, b| (a.1 .1 - size).total_cmp(&(b.1 .1 - size)))
            .map(|(i, _)| i),
    }
}

/// Sort item indices by size descending (the "decreasing" part of FFD).
pub fn decreasing_order(sizes: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..sizes.len()).collect();
    idx.sort_by(|&a, &b| sizes[b].total_cmp(&sizes[a]).then(a.cmp(&b)));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_takes_first_feasible() {
        let bins = [("a", 2.0), ("b", 10.0), ("c", 6.0)];
        assert_eq!(pick_bin(&bins, 5.0, PackStrategy::FirstFit), Some(1));
        assert_eq!(pick_bin(&bins, 1.0, PackStrategy::FirstFit), Some(0));
        assert_eq!(pick_bin(&bins, 11.0, PackStrategy::FirstFit), None);
    }

    #[test]
    fn best_fit_minimizes_slack() {
        let bins = [("a", 9.0), ("b", 10.0), ("c", 6.0)];
        assert_eq!(pick_bin(&bins, 5.0, PackStrategy::BestFit), Some(2));
    }

    #[test]
    fn worst_fit_maximizes_slack() {
        let bins = [("a", 9.0), ("b", 10.0), ("c", 6.0)];
        assert_eq!(pick_bin(&bins, 5.0, PackStrategy::WorstFit), Some(1));
    }

    #[test]
    fn exact_fit_is_accepted() {
        let bins = [("a", 5.0)];
        assert_eq!(pick_bin(&bins, 5.0, PackStrategy::BestFit), Some(0));
    }

    #[test]
    fn decreasing_order_is_stable_for_ties() {
        assert_eq!(decreasing_order(&[3.0, 9.0, 3.0, 12.0]), vec![3, 1, 0, 2]);
        assert!(decreasing_order(&[]).is_empty());
    }

    #[test]
    fn nan_sizes_do_not_panic() {
        // A NaN utilization estimate must degrade, not abort the run.
        // In descending total order NaN ranks above +inf, so NaN items
        // surface first — and then never pass any bin's fit check.
        let order = decreasing_order(&[3.0, f64::NAN, 12.0]);
        assert_eq!(order, vec![1, 2, 0]);

        // A NaN free-capacity bin never satisfies the fit check, so it is
        // skipped rather than chosen or panicked on.
        let bins = [("a", 9.0), ("b", f64::NAN), ("c", 6.0)];
        assert_eq!(pick_bin(&bins, 5.0, PackStrategy::BestFit), Some(2));
        assert_eq!(pick_bin(&bins, 5.0, PackStrategy::WorstFit), Some(0));
    }
}
