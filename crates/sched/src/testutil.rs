//! Shared helpers for scheduler unit tests (compiled only under `cfg(test)`).

use crate::context::{app_key, PendingPodView, SchedContext, SuspendedPodView};
use knots_sim::ids::{NodeId, PodId};
use knots_sim::metrics::GpuSample;
use knots_sim::pod::QosClass;
use knots_sim::resources::{GpuModel, Usage};
use knots_sim::time::{SimDuration, SimTime};
use knots_telemetry::{ClusterSnapshot, NodeView, PodView, TimeSeriesDb};

/// A node view with `pods` generic resident batch pods.
pub fn node_view(id: usize, pods: usize, asleep: bool) -> NodeView {
    let pod_views: Vec<PodView> = (0..pods)
        .map(|i| PodView {
            id: PodId(1000 + id as u64 * 100 + i as u64),
            name: format!("r-{i}"),
            qos: QosClass::Batch,
            limit_mb: 1000.0,
            request_mb: 1000.0,
            usage: Usage::new(0.3, 1000.0, 0.0, 0.0),
            pulling: false,
            attained_service_secs: 0.0,
        })
        .collect();
    let used: f64 = pod_views.iter().map(|p| p.usage.mem_mb).sum();
    let provisioned: f64 = pod_views.iter().map(|p| p.limit_mb).sum();
    NodeView {
        id: NodeId(id),
        model: GpuModel::P100,
        capacity_mb: 16_384.0,
        free_measured_mb: 16_384.0 - used,
        free_provision_mb: 16_384.0 - provisioned,
        sample: GpuSample { mem_used_mb: used, ..Default::default() },
        pods: pod_views,
        asleep,
        waking: false,
    }
}

/// A pending batch pod view.
pub fn pending(id: u64, name: &str, request: f64) -> PendingPodView {
    PendingPodView {
        id: PodId(id),
        name: name.to_string(),
        app: app_key(name),
        qos: QosClass::Batch,
        request_mb: request,
        limit_mb: request,
        greedy_memory: false,
        allow_growth: false,
        arrival: SimTime::ZERO,
        crashes: 0,
    }
}

/// A pending latency-critical pod view.
pub fn pending_lc(id: u64, name: &str, request: f64, greedy: bool) -> PendingPodView {
    PendingPodView {
        qos: QosClass::latency_critical(),
        greedy_memory: greedy,
        ..pending(id, name, request)
    }
}

/// Assemble a context.
pub fn ctx<'a>(
    snapshot: &'a ClusterSnapshot,
    pending: &'a [PendingPodView],
    suspended: &'a [SuspendedPodView],
    tsdb: &'a TimeSeriesDb,
) -> SchedContext<'a> {
    SchedContext {
        now: snapshot.at,
        snapshot,
        pending,
        suspended,
        tsdb,
        window: SimDuration::from_secs(5),
        recorder: None,
        cache: Default::default(),
        freshness: None,
        shards: 1,
    }
}

/// A snapshot from node views.
pub fn snap(nodes: Vec<NodeView>) -> ClusterSnapshot {
    ClusterSnapshot { at: SimTime::ZERO, nodes }
}
