//! The read-only context handed to a scheduler on every heartbeat.

use crate::cache::StatsCache;
use knots_obs::Recorder;
use knots_sim::ids::{NodeId, PodId};
use knots_sim::pod::QosClass;
use knots_sim::time::{SimDuration, SimTime};
use knots_telemetry::{ClusterSnapshot, TimeSeriesDb};
use std::rc::Rc;

/// What the scheduler knows about one pending pod.
///
/// Deliberately *excludes* the ground-truth resource profile: a scheduler
/// only sees the user's request, the QoS class, and whatever telemetry
/// history exists for the same application (no a-priori profiling, §I).
#[derive(Debug, Clone)]
pub struct PendingPodView {
    /// Pod id.
    pub id: PodId,
    /// Full pod name (e.g. `"lud-42"`).
    pub name: String,
    /// Application key — the name with any trailing instance counter
    /// stripped (`"lud"`), used for per-app telemetry history.
    pub app: String,
    /// QoS class.
    pub qos: QosClass,
    /// User-stated memory request, MB.
    pub request_mb: f64,
    /// Current provision, MB (equals the request unless already resized).
    pub limit_mb: f64,
    /// Whether the pod's framework defaults to greedy memory earmarking.
    pub greedy_memory: bool,
    /// Whether `allow_growth` has been set.
    pub allow_growth: bool,
    /// Submission time.
    pub arrival: SimTime,
    /// Crashes suffered so far (relaunched pods carry their history).
    pub crashes: u32,
}

/// What the scheduler knows about one suspended pod.
#[derive(Debug, Clone)]
pub struct SuspendedPodView {
    /// Pod id.
    pub id: PodId,
    /// Application key.
    pub app: String,
    /// QoS class.
    pub qos: QosClass,
    /// Current provision, MB.
    pub limit_mb: f64,
    /// Attained service (for LAS ordering).
    pub attained_service_secs: f64,
    /// Submission time.
    pub arrival: SimTime,
}

/// Everything a scheduler sees each heartbeat.
pub struct SchedContext<'a> {
    /// Current time.
    pub now: SimTime,
    /// The aggregator's cluster snapshot.
    pub snapshot: &'a ClusterSnapshot,
    /// Pending pods in queue order (FCFS order; policies may reorder).
    pub pending: &'a [PendingPodView],
    /// Suspended pods (for suspend-and-resume policies).
    pub suspended: &'a [SuspendedPodView],
    /// The telemetry store, for per-node and per-pod history queries.
    pub tsdb: &'a TimeSeriesDb,
    /// The sliding-window length `d` (§IV-C; default 5 s).
    pub window: SimDuration,
    /// Optional decision-audit recorder. `None` (or a disabled recorder)
    /// keeps policies silent; when enabled, policies log *why* each
    /// decision happened (Spearman gate outcomes, Algorithm-1 branches,
    /// bin-pack rejections) via [`knots_obs::audit`].
    pub recorder: Option<&'a Recorder>,
    /// Per-round memo tables for series fetches, rank vectors, and pairwise
    /// Spearman ρ. Rebuilt with the context every heartbeat, so nothing in
    /// it can go stale (the TSDB is only written between rounds).
    pub cache: StatsCache,
    /// Maximum telemetry age before a series is treated as stale. `None`
    /// (the default) trusts every series — the behavior of a fault-free
    /// cluster. With a bound set, policies that consume history (CBP's
    /// correlation gate, PP's forecast) fall back to their Res-Ag-like
    /// baseline instead of deciding on dead data after a probe dropout or
    /// node failure.
    pub freshness: Option<SimDuration>,
    /// Shard count of the cluster this snapshot came from. Candidate node
    /// orderings are built shard-locally and k-way merged
    /// ([`crate::shard_order`]); the merged order is bit-identical for
    /// every shard count, so this only controls how the sort is chunked,
    /// never what the scheduler decides.
    pub shards: usize,
}

impl SchedContext<'_> {
    /// The audit recorder, when one is attached and enabled.
    pub fn audit(&self) -> Option<&Recorder> {
        self.recorder.filter(|r| r.enabled())
    }

    /// Whether `pod`'s telemetry series is fresh enough to trust. Always
    /// true when no freshness bound is set; otherwise the series must
    /// exist and its newest sample must be at most `freshness` old.
    pub fn pod_series_fresh(&self, pod: PodId) -> bool {
        let Some(max_age) = self.freshness else { return true };
        self.tsdb.pod_last_at(pod).is_some_and(|at| self.now.saturating_since(at) <= max_age)
    }

    /// Node-series counterpart of [`Self::pod_series_fresh`].
    pub fn node_series_fresh(&self, node: NodeId) -> bool {
        let Some(max_age) = self.freshness else { return true };
        self.tsdb.node_last_at(node).is_some_and(|at| self.now.saturating_since(at) <= max_age)
    }

    /// Active nodes by measured free memory, most free first — the
    /// `Sort_by_Free_Memory` order of Algorithm 1, assembled from
    /// per-shard sorted runs and memoized for the round.
    pub fn free_memory_order(&self) -> Rc<Vec<NodeId>> {
        self.cache.free_memory_order(self.snapshot, self.shards)
    }

    /// Active nodes by packing (least free memory first), assembled from
    /// per-shard sorted runs and memoized for the round.
    pub fn packing_order(&self) -> Rc<Vec<NodeId>> {
        self.cache.packing_order(self.snapshot, self.shards)
    }
}

/// Derive the application key from a pod name: strips one trailing
/// `-<digits>` instance suffix (`"lud-42"` → `"lud"`, `"face"` → `"face"`,
/// `"dli-3-face"` → `"dli-3-face"` is *not* stripped to keep dli ids — use
/// explicit naming for those).
pub fn app_key(name: &str) -> String {
    match name.rsplit_once('-') {
        Some((head, tail)) if !head.is_empty() && tail.chars().all(|c| c.is_ascii_digit()) => {
            head.to_string()
        }
        _ => name.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freshness_gates_series_trust() {
        use crate::testutil::{ctx, snap};
        use knots_sim::metrics::GpuSample;
        use knots_telemetry::TimeSeriesDb;
        let db = TimeSeriesDb::default();
        db.push_node(NodeId(0), GpuSample { at: SimTime::from_secs(1), ..Default::default() });
        let mut snapshot = snap(vec![]);
        snapshot.at = SimTime::from_secs(3);
        let mut c = ctx(&snapshot, &[], &[], &db);
        // No bound: everything is trusted, even a series that never existed.
        assert!(c.node_series_fresh(NodeId(0)));
        assert!(c.pod_series_fresh(PodId(9)));
        // 1 s bound: the 2 s-old node series and the absent pod series fail.
        c.freshness = Some(SimDuration::from_secs(1));
        assert!(!c.node_series_fresh(NodeId(0)));
        assert!(!c.pod_series_fresh(PodId(9)));
        // A 5 s bound readmits the node series.
        c.freshness = Some(SimDuration::from_secs(5));
        assert!(c.node_series_fresh(NodeId(0)));
    }

    #[test]
    fn app_key_strips_instance_suffix() {
        assert_eq!(app_key("lud-42"), "lud");
        assert_eq!(app_key("face"), "face");
        assert_eq!(app_key("streamcluster-0"), "streamcluster");
        assert_eq!(app_key("dlt-17"), "dlt");
        assert_eq!(app_key("a-b"), "a-b");
        assert_eq!(app_key("-3"), "-3");
    }
}
