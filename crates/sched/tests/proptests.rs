//! Property-based tests for scheduler policies: whatever the cluster looks
//! like, every action a policy emits must reference entities that exist
//! and respect the policy's own contracts.

use knots_sched::binpack::{decreasing_order, pick_bin, PackStrategy};
use knots_sched::context::{app_key, PendingPodView, SchedContext};
use knots_sched::history::AppUsageHistory;
use knots_sched::{cbp::Cbp, pp::CbpPp, resag::ResAg, uniform::Uniform, Action, Scheduler};
use knots_sim::ids::{NodeId, PodId};
use knots_sim::metrics::GpuSample;
use knots_sim::pod::QosClass;
use knots_sim::resources::{GpuModel, Usage};
use knots_sim::time::{SimDuration, SimTime};
use knots_telemetry::{ClusterSnapshot, NodeView, PodView, TimeSeriesDb};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

fn arb_node(id: usize) -> impl Strategy<Value = NodeView> {
    (0usize..4, 0.0f64..1.0, proptest::bool::ANY).prop_map(move |(pods, sm, asleep)| {
        let pod_views: Vec<PodView> = (0..pods)
            .map(|j| PodView {
                id: PodId((id * 64 + j) as u64),
                name: format!("app{}-{j}", j % 3),
                qos: QosClass::Batch,
                limit_mb: 1_500.0,
                request_mb: 2_000.0,
                usage: Usage::new(sm / pods.max(1) as f64, 1_400.0, 0.0, 0.0),
                pulling: false,
                attained_service_secs: j as f64 * 30.0,
            })
            .collect();
        let used: f64 = pod_views.iter().map(|p| p.usage.mem_mb).sum();
        NodeView {
            id: NodeId(id),
            model: GpuModel::P100,
            capacity_mb: 16_384.0,
            free_measured_mb: (16_384.0 - used).max(0.0),
            free_provision_mb: (16_384.0 - pod_views.len() as f64 * 1_500.0).max(0.0),
            sample: GpuSample { sm_util: sm, mem_used_mb: used, ..Default::default() },
            pods: pod_views,
            asleep,
            waking: false,
        }
    })
}

fn arb_pending(i: u64) -> impl Strategy<Value = PendingPodView> {
    (64.0f64..18_000.0, proptest::bool::ANY, proptest::bool::ANY).prop_map(
        move |(req, lc, greedy)| PendingPodView {
            id: PodId(100_000 + i),
            name: format!("pend{}-{i}", i % 5),
            app: app_key(&format!("pend{}-{i}", i % 5)),
            qos: if lc { QosClass::latency_critical() } else { QosClass::Batch },
            request_mb: req,
            limit_mb: req,
            greedy_memory: greedy,
            allow_growth: false,
            arrival: SimTime::ZERO,
            crashes: 0,
        },
    )
}

fn check_actions(
    actions: &[Action],
    snapshot: &ClusterSnapshot,
    pending: &[PendingPodView],
    name: &str,
) -> Result<(), TestCaseError> {
    let pending_ids: Vec<PodId> = pending.iter().map(|p| p.id).collect();
    let mut placed: Vec<PodId> = Vec::new();
    for a in actions {
        match a {
            Action::Place { pod, node } => {
                prop_assert!(pending_ids.contains(pod), "{name}: placed unknown pod {pod:?}");
                let nv = snapshot.node(*node);
                prop_assert!(nv.is_some(), "{name}: placed on unknown node {node:?}");
                prop_assert!(!nv.unwrap().asleep, "{name}: placed on sleeping node");
                prop_assert!(!placed.contains(pod), "{name}: pod placed twice");
                placed.push(*pod);
            }
            Action::Resize { pod, limit_mb } => {
                prop_assert!(limit_mb.is_finite() && *limit_mb >= 0.0, "{name}: bad resize");
                let known = pending_ids.contains(pod)
                    || snapshot.nodes.iter().any(|n| n.pods.iter().any(|p| p.id == *pod));
                prop_assert!(known, "{name}: resized unknown pod");
            }
            Action::ConfigureGrowth { pod, .. } => {
                prop_assert!(pending_ids.contains(pod), "{name}: configured non-pending pod");
            }
            Action::Wake { node } | Action::Sleep { node } => {
                prop_assert!(snapshot.node(*node).is_some(), "{name}: unknown node");
            }
            Action::Preempt { pod } => {
                let resident = snapshot.nodes.iter().any(|n| n.pods.iter().any(|p| p.id == *pod));
                prop_assert!(resident, "{name}: preempted non-resident pod");
            }
            Action::Resume { .. } | Action::Migrate { .. } => {}
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every policy only ever emits well-formed actions, regardless of the
    /// cluster state it is shown.
    #[test]
    fn policies_emit_only_valid_actions(
        nodes in proptest::collection::vec(any::<u8>(), 1..6),
        pending_seeds in proptest::collection::vec(any::<u8>(), 0..10),
    ) {
        // Materialize deterministic-but-arbitrary views from the seeds.
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let node_views: Vec<NodeView> = nodes
            .iter()
            .enumerate()
            .map(|(i, _)| arb_node(i).new_tree(&mut runner).unwrap().current())
            .collect();
        let pending: Vec<PendingPodView> = pending_seeds
            .iter()
            .enumerate()
            .map(|(i, _)| arb_pending(i as u64).new_tree(&mut runner).unwrap().current())
            .collect();
        let snapshot = ClusterSnapshot { at: SimTime::from_secs(3), nodes: node_views };
        let db = TimeSeriesDb::default();
        let ctx = SchedContext {
            now: snapshot.at,
            snapshot: &snapshot,
            pending: &pending,
            suspended: &[],
            tsdb: &db,
            window: SimDuration::from_secs(5),
            recorder: None,
            cache: Default::default(),
            freshness: None,
            shards: 1,
        };
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Uniform::new()),
            Box::new(ResAg::new()),
            Box::new(Cbp::new()),
            Box::new(CbpPp::new()),
        ];
        for s in schedulers.iter_mut() {
            let actions = s.decide(&ctx);
            check_actions(&actions, &snapshot, &pending, s.name())?;
        }
    }

    /// Bin packing always picks a feasible bin when one exists.
    #[test]
    fn pick_bin_is_feasible_and_complete(
        bins in proptest::collection::vec(0.0f64..10_000.0, 1..32),
        size in 0.0f64..12_000.0,
    ) {
        let keyed: Vec<(usize, f64)> = bins.iter().copied().enumerate().collect();
        for strat in [PackStrategy::FirstFit, PackStrategy::BestFit, PackStrategy::WorstFit] {
            let feasible_exists = bins.iter().any(|&b| size <= b + 1e-9);
            match pick_bin(&keyed, size, strat) {
                Some(i) => prop_assert!(size <= bins[i] + 1e-9, "{strat:?} chose too-small bin"),
                None => prop_assert!(!feasible_exists, "{strat:?} missed a feasible bin"),
            }
        }
    }

    /// Decreasing order is a permutation sorted by size.
    #[test]
    fn decreasing_order_is_sorted_permutation(sizes in proptest::collection::vec(0.0f64..1e6, 0..64)) {
        let order = decreasing_order(&sizes);
        prop_assert_eq!(order.len(), sizes.len());
        let mut seen = vec![false; sizes.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        for w in order.windows(2) {
            prop_assert!(sizes[w[0]] >= sizes[w[1]]);
        }
    }

    /// History quantiles stay within observed bounds.
    #[test]
    fn history_quantiles_bounded(obs in proptest::collection::vec(0.0f64..16_384.0, 1..128), q in 0.0f64..1.0) {
        let mut h = AppUsageHistory::default();
        for &m in &obs {
            h.observe_mem("a", m);
        }
        let v = h.mem_quantile("a", q).unwrap();
        let min = obs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = obs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        prop_assert!(h.mem_peak("a").unwrap() >= max - 1e-9);
    }
}
