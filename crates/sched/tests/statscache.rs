//! Seeded-LCG fuzz: everything the round cache memoizes must be
//! bit-identical to the uncached reference computation, or the PR's
//! "same decisions, less work" claim is void.

use knots_forecast::spearman::spearman;
use knots_sched::StatsCache;
use knots_sim::ids::{NodeId, PodId};
use knots_sim::metrics::{GpuSample, Metric};
use knots_sim::resources::Usage;
use knots_sim::time::{SimDuration, SimTime};
use knots_telemetry::TimeSeriesDb;

struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_usize(&mut self, bound: usize) -> usize {
        (self.next_f64() * bound as f64) as usize % bound.max(1)
    }
}

/// Build a TSDB with `pods` pod series and `nodes` node series of random
/// (seeded) lengths and values.
fn fuzz_db(rng: &mut Lcg, pods: usize, nodes: usize) -> TimeSeriesDb {
    let db = TimeSeriesDb::default();
    for p in 0..pods {
        let len = 4 + rng.next_usize(60);
        for i in 0..len {
            db.push_pod(
                PodId(p as u64),
                SimTime::from_millis(i as u64 * 50),
                Usage::new(rng.next_f64(), rng.next_f64() * 4_000.0, 0.0, 0.0),
            );
        }
    }
    for n in 0..nodes {
        let len = 4 + rng.next_usize(60);
        for i in 0..len {
            db.push_node(
                NodeId(n),
                GpuSample {
                    at: SimTime::from_millis(i as u64 * 50),
                    mem_used_mb: rng.next_f64() * 16_000.0,
                    ..Default::default()
                },
            );
        }
    }
    db
}

#[test]
fn cached_series_and_spearman_are_bit_identical_to_reference() {
    let mut rng = Lcg(0x6b6e_6f74_735f_7033); // "knots_p3"
    for round in 0..20 {
        let pods = 1 + rng.next_usize(6);
        let nodes = 1 + rng.next_usize(4);
        let db = fuzz_db(&mut rng, pods, nodes);
        let now = SimTime::from_millis(3_000);
        let window = SimDuration::from_secs(5);
        let cache = StatsCache::new();

        // A reference series per "app", as CBP's history would hold.
        let ref_len = 8 + rng.next_usize(40);
        let reference: Vec<f64> = (0..ref_len).map(|_| rng.next_f64() * 2_000.0).collect();

        // Interleave repeated queries so hits and misses both happen.
        for q in 0..40 {
            let pod = PodId(rng.next_usize(pods) as u64);
            let node = NodeId(rng.next_usize(nodes));

            let cached_pod = cache.pod_mem_series(&db, pod, now, window);
            let direct_pod = db.pod_mem_series(pod, now, window);
            assert_eq!(*cached_pod, direct_pod, "round {round} q {q} pod series diverged");

            let cached_node = cache.node_mem_series(&db, node, now, window);
            let direct_node = db.node_series(node, Metric::MemUsedMb, now, window);
            assert_eq!(*cached_node, direct_node, "round {round} q {q} node series diverged");

            // ρ through the memo tables vs the plain library call on the
            // aligned suffixes (exactly what correlation_ok used to do).
            let rho_cached = cache.spearman_suffix("app", &reference, pod, &cached_pod);
            let n = reference.len().min(cached_pod.len());
            let rho_direct = if n < 2 {
                0.0
            } else {
                spearman(&reference[reference.len() - n..], &cached_pod[cached_pod.len() - n..])
            };
            assert_eq!(
                rho_cached.to_bits(),
                rho_direct.to_bits(),
                "round {round} q {q} rho diverged: cached {rho_cached} direct {rho_direct}"
            );
        }
        let cs = cache.stats();
        assert!(cs.hits > 0, "round {round}: repeated queries must hit");
        assert!(cs.misses > 0, "round {round}: first queries must miss");
    }
}
