//! Scope-aware concurrency rules: the guard-lifetime tracker behind C1,
//! the lock-acquisition recorder behind C2, and the token passes for C3
//! (undocumented `unsafe`) and C4 (nondeterministic channel draining).
//!
//! The tracker is deliberately syntactic. A *guard binding* is a statement
//! of the shape
//!
//! ```text
//! let [mut] NAME = <expr> . (lock|read|write|writer) ( … ) [adapter]* ;
//! ```
//!
//! where `adapter` is one of `.unwrap()`, `.expect(..)`,
//! `.unwrap_or_else(..)` — the poison-handling idioms this workspace uses.
//! Any further method call after the adapter chain means the binding holds
//! a *derived* value (`.len()`, `.get(..)`, …) and the guard was a
//! temporary that died at the `;`, so it is not tracked. A guard is live
//! from its binding to `drop(NAME)` in the same block, or to the block's
//! closing brace. That over-approximates NLL (rustc may end the borrow
//! earlier) which is the right direction for a lint about *lock* lifetimes:
//! lock guards release on `Drop`, exactly at `drop()` or end of scope.

use crate::diag::Diagnostic;
use crate::engine::FileContext;
use crate::lexer::{LineComment, Tok, TokKind};
use crate::parser::ScopeTree;
use crate::rules::{self, DECISION_CRATES};

/// One lock-acquisition edge: while `held` was live, `acquired` was taken.
/// Lock identity is `crate::receiver-tail` — coarse, but deterministic and
/// workspace-comparable (see [`crate::lockgraph`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock already held at the acquisition site.
    pub held: String,
    /// Lock being acquired.
    pub acquired: String,
    /// Repo-relative path of the acquisition site.
    pub path: String,
    /// 1-based line of the acquisition site.
    pub line: u32,
    /// 1-based column of the acquisition site.
    pub col: u32,
}

/// A tracked guard binding.
struct Guard {
    /// Bound name (`g` in `let g = m.lock()…;`).
    name: String,
    /// Lock identity (`crate::receiver-tail`).
    lock: String,
    /// Token index of the binding's `let`.
    start: usize,
    /// Exclusive token index where liveness ends (drop site or block close).
    end: usize,
    /// 1-based line of the acquisition, for messages.
    line: u32,
}

/// Methods that produce a lock guard.
fn is_acquire(name: &str) -> bool {
    matches!(name, "lock" | "read" | "write" | "writer")
}

/// Post-acquisition adapters that still yield the guard itself.
fn is_adapter(name: &str) -> bool {
    matches!(name, "unwrap" | "expect" | "unwrap_or_else")
}

/// Run the concurrency rules over one file. Emits C1/C3/C4 diagnostics
/// into `out` and returns the lock-acquisition edges for the workspace
/// graph (C2 is judged globally in [`crate::lockgraph`]).
pub fn scan(
    toks: &[Tok],
    tree: &ScopeTree,
    comments: &[LineComment],
    ctx: &FileContext,
    test_lines: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
) -> Vec<LockEdge> {
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);
    let lib = ctx.is_library();

    c3_unsafe_needs_safety_comment(toks, comments, ctx, out);
    if lib {
        c4_nondeterministic_drain(toks, ctx, test_lines, out);
    }
    if !lib {
        return Vec::new();
    }

    let guards = collect_guards(toks, tree, ctx);
    let mut edges = Vec::new();

    // C2 edges: any acquisition inside a guard's live range. Test-region
    // sites are skipped — test-only lock nesting must not inject edges
    // into the production ordering graph.
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !is_acquire(name) || !prev_is(toks, i, '.') || !next_is(toks, i, '(') || in_test(t.line)
        {
            continue;
        }
        let acquired = lock_identity(toks, i, ctx);
        for g in &guards {
            // Skip the guard's own acquisition token.
            if i > g.start && i < g.end && !(t.line == g.line && acquired == g.lock) {
                edges.push(LockEdge {
                    held: g.lock.clone(),
                    acquired: acquired.clone(),
                    path: ctx.path.clone(),
                    line: t.line,
                    col: t.col,
                });
            }
        }
    }
    edges.sort();
    edges.dedup();

    // C1: blocking fan-out / wait calls inside a guard's live range.
    for (i, t) in toks.iter().enumerate() {
        let Some(kind) = blocking_call(toks, i) else { continue };
        if in_test(t.line) {
            continue;
        }
        // Guards *consumed by* a condvar wait are the normal idiom:
        // `cv.wait(g)` moves `g` in. Collect depth-1 argument idents so
        // those guards are exempt for this call.
        let consumed: Vec<String> =
            if kind.is_wait() { call_arg_idents(toks, i) } else { Vec::new() };
        for g in &guards {
            if i > g.start && i < g.end && !consumed.contains(&g.name) {
                let r = rules::C1;
                out.push(Diagnostic {
                    rule: r.id,
                    severity: r.severity,
                    path: ctx.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "guard `{}` on `{}` (acquired line {}) is live across this {} \
                         call; a worker that touches the same lock deadlocks",
                        g.name,
                        g.lock,
                        g.line,
                        kind.label()
                    ),
                    hint: r.hint,
                });
            }
        }
    }
    edges
}

/// What kind of blocking call a token starts, if any.
#[derive(Debug, Clone, Copy)]
enum Blocking {
    RunJobs,
    PoolRun,
    ThreadScope,
    CondvarWait,
}

impl Blocking {
    fn is_wait(self) -> bool {
        matches!(self, Blocking::CondvarWait)
    }

    fn label(self) -> &'static str {
        match self {
            Blocking::RunJobs => "`run_jobs` fan-out",
            Blocking::PoolRun => "`WorkerPool::run` fan-out",
            Blocking::ThreadScope => "`thread::scope` fan-out",
            Blocking::CondvarWait => "condvar wait",
        }
    }
}

/// Classify token `i` as the head of a blocking call (C1's set). `recv` is
/// deliberately *not* in the set: holding the receiver mutex across
/// `recv()` is the worker-pool idiom (the lock protects the receiver
/// itself and nothing else).
fn blocking_call(toks: &[Tok], i: usize) -> Option<Blocking> {
    let t = &toks[i];
    let name = t.ident()?;
    if !next_is(toks, i, '(') {
        return None;
    }
    match name {
        "run_jobs" => Some(Blocking::RunJobs),
        "scope" if path_prefix_is(toks, i, "thread") => Some(Blocking::ThreadScope),
        "run" => {
            // `pool.run(..)` method call or `WorkerPool::run(..)` path call.
            if prev_is(toks, i, '.') {
                let recv = toks[..i.saturating_sub(1)].last().and_then(|t| t.ident()).unwrap_or("");
                if recv.to_ascii_lowercase().contains("pool") {
                    return Some(Blocking::PoolRun);
                }
                None
            } else if path_prefix_is(toks, i, "WorkerPool") {
                Some(Blocking::PoolRun)
            } else {
                None
            }
        }
        "wait" | "wait_timeout" | "wait_while" | "wait_timeout_while" if prev_is(toks, i, '.') => {
            Some(Blocking::CondvarWait)
        }
        _ => None,
    }
}

/// True when tokens before `i` are `PREFIX ::`.
fn path_prefix_is(toks: &[Tok], i: usize, prefix: &str) -> bool {
    i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].ident() == Some(prefix)
}

fn next_is(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i + 1).is_some_and(|n| n.is_punct(c))
}

fn prev_is(toks: &[Tok], i: usize, c: char) -> bool {
    i > 0 && toks[i - 1].is_punct(c)
}

/// Depth-1 identifier arguments of the call whose name is at `i`.
fn call_arg_idents(toks: &[Tok], i: usize) -> Vec<String> {
    let Some(close) = matching_paren(toks, i + 1) else { return Vec::new() };
    let mut depth = 0usize;
    let mut out = Vec::new();
    for t in &toks[i + 1..=close] {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
        } else if depth == 1 {
            if let TokKind::Ident(s) = &t.kind {
                out.push(s.clone());
            }
        }
    }
    out
}

/// Index of the `)` matching the `(` at `open`, or `None` when unbalanced.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Find every guard binding in the file (see module docs for the shape).
fn collect_guards(toks: &[Tok], tree: &ScopeTree, ctx: &FileContext) -> Vec<Guard> {
    let mut guards = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].ident() != Some("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).and_then(|t| t.ident()) == Some("mut") {
            j += 1;
        }
        let Some(name) = toks.get(j).and_then(|t| t.ident()) else {
            i += 1;
            continue;
        };
        if !next_is(toks, j, '=') {
            i += 1;
            continue;
        }
        // Statement end: the `;` at this statement's own bracket depth.
        let Some(semi) = statement_end(toks, j + 2) else {
            i += 1;
            continue;
        };
        // Is the initializer a bare guard acquisition? Find the acquire
        // call, then require nothing but adapters between its `)` and `;`.
        if let Some((acq_idx, lock)) = guard_acquisition(toks, j + 2, semi, ctx) {
            let end = liveness_end(toks, tree, semi, name);
            guards.push(Guard {
                name: name.to_string(),
                lock,
                start: i,
                end,
                line: toks[acq_idx].line,
            });
        }
        i = j + 1;
    }
    guards
}

/// Token index of the `;` ending the statement starting at `from`, at the
/// statement's own paren/bracket/brace depth.
fn statement_end(toks: &[Tok], from: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(from) {
        match &t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return None; // statement ran off the enclosing block
                }
            }
            TokKind::Punct(';') if depth == 0 => return Some(j),
            _ => {}
        }
    }
    None
}

/// If `toks[from..semi]` is `expr.(lock|read|write|writer)(..)` followed
/// only by adapters, return the acquire token index and the lock identity.
fn guard_acquisition(
    toks: &[Tok],
    from: usize,
    semi: usize,
    ctx: &FileContext,
) -> Option<(usize, String)> {
    // Find the *first* acquire method call at chain depth 0.
    let mut depth = 0i64;
    for j in from..semi {
        match &toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
            TokKind::Ident(name)
                if depth == 0
                    && is_acquire(name)
                    && prev_is(toks, j, '.')
                    && next_is(toks, j, '(') =>
            {
                let close = matching_paren(toks, j + 1)?;
                // Walk the adapter chain after the acquire call.
                let mut k = close + 1;
                loop {
                    if k == semi {
                        return Some((j, lock_identity(toks, j, ctx)));
                    }
                    if !toks[k].is_punct('.') {
                        return None; // e.g. `?` or arithmetic — not a bare guard
                    }
                    let ad = toks.get(k + 1).and_then(|t| t.ident())?;
                    if !is_adapter(ad) || !next_is(toks, k + 1, '(') {
                        return None; // derived value (`.len()`, `.get(..)`)
                    }
                    k = matching_paren(toks, k + 2)? + 1;
                }
            }
            _ => {}
        }
    }
    None
}

/// Exclusive token index where a guard bound at statement-`;` `semi` dies:
/// `drop(NAME)` later in the file before the block closes, else the
/// enclosing block's `}` (or EOF).
fn liveness_end(toks: &[Tok], tree: &ScopeTree, semi: usize, name: &str) -> usize {
    let block_close =
        tree.enclosing_block(semi).map(|bi| tree.blocks[bi].close).unwrap_or(toks.len());
    for j in semi..block_close.min(toks.len()) {
        if toks[j].ident() == Some("drop")
            && next_is(toks, j, '(')
            && toks.get(j + 2).and_then(|t| t.ident()) == Some(name)
            && toks.get(j + 3).is_some_and(|t| t.is_punct(')'))
        {
            return j;
        }
    }
    block_close
}

/// Lock identity for the acquire call at token `i`: `crate::tail`, where
/// `tail` is the last path/field segment of the receiver expression
/// (`self.tsdb.write()` → `tsdb`, `slots[i].lock()` → `slots`,
/// `self.inner().lock()` → `inner`).
fn lock_identity(toks: &[Tok], i: usize, ctx: &FileContext) -> String {
    let mut j = i.checked_sub(2); // skip the `.` before the method
                                  // Skip back over one `[..]` index or `(..)` call group.
    if let Some(mut k) = j {
        if toks[k].is_punct(']') || toks[k].is_punct(')') {
            let (close, open) = if toks[k].is_punct(']') { (']', '[') } else { (')', '(') };
            let mut depth = 0i64;
            loop {
                if toks[k].is_punct(close) {
                    depth += 1;
                } else if toks[k].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        j = k.checked_sub(1);
                        break;
                    }
                }
                match k.checked_sub(1) {
                    Some(p) => k = p,
                    None => {
                        j = None;
                        break;
                    }
                }
            }
        }
    }
    let tail = j.and_then(|k| toks[k].ident()).unwrap_or("?");
    format!("{}::{}", ctx.crate_name, tail)
}

/// C3: every `unsafe` token, `static mut`, and `UnsafeCell` use needs an
/// adjacent `// SAFETY:` comment (same line, or the contiguous comment run
/// directly above). Applies to every file kind — tests included: an
/// undocumented escape hatch is a review hazard wherever it sits.
fn c3_unsafe_needs_safety_comment(
    toks: &[Tok],
    comments: &[LineComment],
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
) {
    let comment_on = |line: u32| comments.iter().find(|c| c.line == line);
    let has_safety = |line: u32| -> bool {
        let is_safety = |c: &LineComment| {
            c.text
                .trim_start_matches('/')
                .trim_start_matches(['!', '/'])
                .trim_start()
                .starts_with("SAFETY:")
        };
        if comment_on(line).is_some_and(is_safety) {
            return true;
        }
        // Walk the contiguous comment run directly above.
        let mut l = line.saturating_sub(1);
        while l > 0 {
            match comment_on(l) {
                Some(c) if is_safety(c) => return true,
                Some(_) => l -= 1,
                None => return false,
            }
        }
        false
    };
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        let flagged = match name {
            "unsafe" => true,
            "static" => toks.get(i + 1).and_then(|n| n.ident()) == Some("mut"),
            "UnsafeCell" => true,
            _ => false,
        };
        if flagged && !has_safety(t.line) {
            let r = rules::C3;
            out.push(Diagnostic {
                rule: r.id,
                severity: r.severity,
                path: ctx.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{name}` without an adjacent `// SAFETY:` comment documenting why the \
                     invariants hold"
                ),
                hint: r.hint,
            });
        }
    }
}

/// C4: `try_recv` / `recv_timeout` / `try_iter` in decision-crate library
/// code. Draining a channel with a select-shaped loop makes message order
/// depend on thread timing — the exact nondeterminism the digests forbid.
fn c4_nondeterministic_drain(
    toks: &[Tok],
    ctx: &FileContext,
    test_lines: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
) {
    if !DECISION_CRATES.iter().any(|c| ctx.crate_name == *c) {
        return;
    }
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if matches!(name, "try_recv" | "recv_timeout" | "try_iter")
            && prev_is(toks, i, '.')
            && next_is(toks, i, '(')
            && !in_test(t.line)
        {
            let r = rules::C4;
            out.push(Diagnostic {
                rule: r.id,
                severity: r.severity,
                path: ctx.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{name}` drains a channel in timing-dependent order inside a decision \
                     crate; results depend on the OS scheduler"
                ),
                hint: r.hint,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FileKind;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn ctx(path: &str, crate_name: &str, kind: FileKind) -> FileContext {
        FileContext { path: path.into(), crate_name: crate_name.into(), kind }
    }

    fn run(src: &str) -> (Vec<Diagnostic>, Vec<LockEdge>) {
        let lexed = lex(src);
        let tree = parse(&lexed.toks);
        let c = ctx("crates/sim/src/x.rs", "sim", FileKind::Library);
        let mut out = Vec::new();
        let edges = scan(&lexed.toks, &tree, &lexed.comments, &c, &[], &mut out);
        (out, edges)
    }

    #[test]
    fn c1_guard_across_run_jobs() {
        let src =
            "fn f(m: &Mutex<u32>) {\n  let g = m.lock().unwrap();\n  run_jobs(4, &xs, |x| x);\n}\n";
        let (out, _) = run(src);
        assert_eq!(out.iter().filter(|d| d.rule == "C1").count(), 1, "{out:?}");
        assert!(out[0].message.contains("`g`"), "{out:?}");
    }

    #[test]
    fn c1_respects_drop_and_scope() {
        let src = "fn f(m: &Mutex<u32>) {\n  let g = m.lock().unwrap();\n  drop(g);\n  run_jobs(4, &xs, |x| x);\n}\n";
        assert!(run(src).0.is_empty());
        let src =
            "fn f(m: &Mutex<u32>) {\n  { let g = m.lock().unwrap(); }\n  pool.run(jobs, w);\n}\n";
        assert!(run(src).0.is_empty());
    }

    #[test]
    fn c1_condvar_wait_consumes_its_own_guard() {
        // Waiting with the guard the condvar protects is the idiom…
        let src = "fn f(cv: &Condvar, m: &Mutex<u32>) {\n  let g = m.lock().unwrap();\n  let g = cv.wait(g).unwrap();\n}\n";
        assert!(run(src).0.is_empty(), "{:?}", run(src).0);
        // …but waiting while holding a *different* guard is C1.
        let src = "fn f(cv: &Condvar, a: &Mutex<u32>, b: &Mutex<u32>) {\n  let ga = a.lock().unwrap();\n  let gb = b.lock().unwrap();\n  let gb = cv.wait(gb).unwrap();\n}\n";
        let (out, _) = run(src);
        assert_eq!(out.iter().filter(|d| d.rule == "C1").count(), 1, "{out:?}");
        assert!(out[0].message.contains("`ga`"));
    }

    #[test]
    fn c1_ignores_derived_temporaries_and_recv() {
        // `.len()` after the adapter chain: not a guard binding.
        let src = "fn f(m: &Mutex<Vec<u32>>) {\n  let n = m.lock().unwrap().len();\n  run_jobs(4, &xs, |x| x);\n}\n";
        assert!(run(src).0.is_empty());
        // The worker-pool recv idiom must stay clean.
        let src = "fn f(rx: &Mutex<Receiver<u32>>) {\n  while let Ok(j) = rx.lock().unwrap().recv() { j(); }\n}\n";
        assert!(run(src).0.is_empty());
    }

    #[test]
    fn c1_thread_scope_and_pool_run() {
        let src = "fn f(m: &RwLock<u32>) {\n  let g = m.write();\n  thread::scope(|s| { s.spawn(|| {}); });\n}\n";
        let (out, _) = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        let src = "fn f(m: &RwLock<u32>) {\n  let g = m.read();\n  self.pool.run(jobs, w);\n}\n";
        assert_eq!(run(src).0.len(), 1);
        // Plain `scope(..)` without the `thread::` path is not in the set.
        let src = "fn f(m: &RwLock<u32>) {\n  let g = m.read();\n  scope(|s| {});\n}\n";
        assert!(run(src).0.is_empty());
    }

    #[test]
    fn c2_edges_record_nesting_order() {
        let src = "fn f(&self) {\n  let a = self.alpha.lock().unwrap();\n  let b = self.beta.lock().unwrap();\n}\n";
        let (_, edges) = run(src);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].held, "sim::alpha");
        assert_eq!(edges[0].acquired, "sim::beta");
        // Temporary acquisitions while holding a guard also edge.
        let src = "fn f(&self) {\n  let a = self.alpha.lock().unwrap();\n  self.slots[i].lock().unwrap().push(1);\n}\n";
        let (_, edges) = run(src);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].acquired, "sim::slots");
    }

    #[test]
    fn c3_unsafe_needs_safety() {
        let (out, _) = run("fn f() { unsafe { go(); } }");
        assert_eq!(out.iter().filter(|d| d.rule == "C3").count(), 1, "{out:?}");
        let (out, _) = run("// SAFETY: the pointer outlives the call\nfn f() { unsafe { go(); } }");
        assert!(out.is_empty(), "{out:?}");
        // Comment run with the SAFETY line on top still counts.
        let src =
            "// SAFETY: single-threaded init\n// (checked by the ctor)\nstatic mut X: u32 = 0;\n";
        assert!(run(src).0.is_empty());
        let (out, _) = run("static mut X: u32 = 0;\n");
        assert_eq!(out.len(), 1);
        let (out, _) = run("use core::cell::UnsafeCell;\n");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn c4_flags_select_shaped_drains_in_decision_crates_only() {
        let src = "fn f(rx: &Receiver<u32>) { while let Ok(v) = rx.try_recv() { use_(v); } }";
        let (out, _) = run(src);
        assert_eq!(out.iter().filter(|d| d.rule == "C4").count(), 1, "{out:?}");
        // Same shape outside a decision crate: silent.
        let lexed = lex(src);
        let tree = parse(&lexed.toks);
        let c = ctx("crates/obs/src/x.rs", "obs", FileKind::Library);
        let mut out = Vec::new();
        scan(&lexed.toks, &tree, &lexed.comments, &c, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
