//! `--self-check`: the dynamic half of the determinism story.
//!
//! The static rules (D1–D3) argue that nothing *can* leak wall-clock or
//! entropy into a run; this harness demonstrates that nothing *does*: it
//! runs a pinned experiment twice with the same seed and fails on any
//! digest mismatch, then re-runs with observability attached to prove the
//! obs layer is read-only with respect to simulation state.
//!
//! The digest deliberately covers only the deterministic fields of
//! [`RunReport`] — `phase_timings` holds wall-clock phase percentiles
//! (observability data, not simulation state) and is excluded.

use knots_core::experiment::{run_mix, run_mix_with_obs, scheduler_by_name, ExperimentConfig};
use knots_core::metrics::RunReport;
use knots_sim::time::SimDuration;
use knots_workloads::AppMix;

/// FNV-1a 64-bit — tiny, dependency-free, and stable across platforms.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Fold raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        // to_bits gives every float (NaN payloads included) a stable image.
        self.u64(v.to_bits());
    }

    /// Final digest value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

/// Digest every deterministic field of a report (everything except
/// `phase_timings`, which measures host wall-clock).
pub fn report_digest(r: &RunReport) -> u64 {
    let mut h = Fnv::new();
    h.write(r.scheduler.as_bytes());
    h.u64(r.duration.as_micros());
    h.u64(r.node_util_series.len() as u64);
    for series in &r.node_util_series {
        h.u64(series.len() as u64);
        for &v in series {
            h.f64(v);
        }
    }
    h.u64(r.active_util_samples.len() as u64);
    for &v in &r.active_util_samples {
        h.f64(v);
    }
    h.u64(r.submitted as u64);
    h.u64(r.completed as u64);
    h.u64(r.lc_completed as u64);
    h.u64(r.lc_violations as u64);
    for jct in [&r.batch_jct, &r.lc_latency, &r.all_jct] {
        h.u64(jct.count as u64);
        h.f64(jct.avg);
        h.f64(jct.median);
        h.f64(jct.p99);
        h.f64(jct.max);
    }
    h.f64(r.energy_joules);
    h.u64(r.crashes as u64);
    h.u64(r.preemptions as u64);
    h.u64(r.migrations as u64);
    h.u64(r.skipped_actions as u64);
    for s in &r.skipped_breakdown {
        h.write(s.kind.as_bytes());
        h.write(s.error.as_bytes());
        h.u64(s.count);
    }
    h.finish()
}

/// Outcome of one self-check scheduler leg.
#[derive(Debug)]
pub struct LegResult {
    /// Scheduler label.
    pub scheduler: &'static str,
    /// Digest of the first run.
    pub digest_a: u64,
    /// Digest of the identically-seeded second run.
    pub digest_b: u64,
    /// Digest of the run with observability attached.
    pub digest_obs: u64,
}

impl LegResult {
    /// Did every run of this leg agree?
    pub fn ok(&self) -> bool {
        self.digest_a == self.digest_b && self.digest_a == self.digest_obs
    }
}

/// The pinned configuration: small enough to finish in seconds, large
/// enough to exercise placement ties, preemption and harvesting.
fn pinned_config() -> ExperimentConfig {
    ExperimentConfig {
        nodes: 10,
        duration: SimDuration::from_secs(120),
        seed: 42,
        ..Default::default()
    }
}

/// Run the self-check across the schedulers whose decision paths differ
/// most (queue-driven, packing-driven, and load-driven placement).
pub fn run() -> Vec<LegResult> {
    const LEGS: [&str; 3] = ["CBP+PP", "Tiresias", "Gandiva"];
    let cfg = pinned_config();
    let mut out = Vec::new();
    for name in LEGS {
        let Some(s1) = scheduler_by_name(name) else { continue };
        let Some(s2) = scheduler_by_name(name) else { continue };
        let Some(s3) = scheduler_by_name(name) else { continue };
        let a = run_mix(s1, AppMix::Mix2, &cfg);
        let b = run_mix(s2, AppMix::Mix2, &cfg);
        let o = run_mix_with_obs(s3, AppMix::Mix2, &cfg, knots_obs::Obs::with_trace_capacity(4096));
        out.push(LegResult {
            scheduler: name,
            digest_a: report_digest(&a),
            digest_b: report_digest(&b),
            digest_obs: report_digest(&o),
        });
    }
    out
}

/// Digests of the two output formats, each rendered twice over the same
/// embedded fixture corpus. `--format json` has a byte-stability contract
/// with CI (scripts diff consecutive runs) and SARIF inherits it; this leg
/// turns that contract into a checked invariant.
#[derive(Debug)]
pub struct FormatDigests {
    /// First JSON render.
    pub json_a: u64,
    /// Second JSON render.
    pub json_b: u64,
    /// First SARIF render.
    pub sarif_a: u64,
    /// Second SARIF render.
    pub sarif_b: u64,
}

impl FormatDigests {
    /// Did both formats render byte-identically?
    pub fn ok(&self) -> bool {
        self.json_a == self.json_b && self.sarif_a == self.sarif_b
    }
}

/// The embedded corpus: every per-rule fixture, checked as decision-crate
/// library code so each rule contributes diagnostics to the rendered set.
fn fixture_corpus() -> Vec<crate::diag::Diagnostic> {
    const FIXTURES: [(&str, &str); 16] = [
        ("d1", include_str!("../tests/fixtures/d1_wall_clock.rs")),
        ("d2", include_str!("../tests/fixtures/d2_hash_collections.rs")),
        ("d3", include_str!("../tests/fixtures/d3_ambient_entropy.rs")),
        ("p1", include_str!("../tests/fixtures/p1_panics.rs")),
        ("p2", include_str!("../tests/fixtures/p2_partial_cmp.rs")),
        ("h1", include_str!("../tests/fixtures/h1_prints.rs")),
        ("m1", include_str!("../tests/fixtures/m1_names.rs")),
        ("c1", include_str!("../tests/fixtures/c1_guard_across_fanout.rs")),
        ("c2", include_str!("../tests/fixtures/c2_lock_order.rs")),
        ("c3", include_str!("../tests/fixtures/c3_unsafe_hygiene.rs")),
        ("c4", include_str!("../tests/fixtures/c4_channel_drain.rs")),
        ("e1", include_str!("../tests/fixtures/e1_event_handlers.rs")),
        ("r1", include_str!("../tests/fixtures/r1_snapshot_reach.rs")),
        ("s1", include_str!("../tests/fixtures/s1_shard_merge.rs")),
        ("pragmas", include_str!("../tests/fixtures/pragmas.rs")),
        ("tricky", include_str!("../tests/fixtures/tricky.rs")),
    ];
    let cfg = crate::config::Config::default();
    let mut diags = Vec::new();
    for (name, src) in FIXTURES {
        let rel = format!("crates/sim/src/{name}.rs");
        diags.extend(crate::engine::check_source(&rel, src, &cfg));
    }
    crate::diag::sort(&mut diags);
    diags
}

/// Render the fixture corpus twice in both formats and digest each render.
pub fn format_digests() -> FormatDigests {
    let digest = |s: &str| {
        let mut h = Fnv::new();
        h.write(s.as_bytes());
        h.finish()
    };
    let diags_a = fixture_corpus();
    let diags_b = fixture_corpus();
    FormatDigests {
        json_a: digest(&crate::diag::to_json(&diags_a)),
        json_b: digest(&crate::diag::to_json(&diags_b)),
        sarif_a: digest(&crate::diag::to_sarif(&diags_a)),
        sarif_b: digest(&crate::diag::to_sarif(&diags_b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_digests_are_stable_within_a_run() {
        let d = format_digests();
        assert!(d.ok(), "{d:?}");
        // The corpus is non-trivial: both formats hash differently.
        assert_ne!(d.json_a, d.sarif_a);
    }

    #[test]
    fn fnv_distinguishes_and_repeats() {
        let mut a = Fnv::new();
        a.write(b"hello");
        let mut b = Fnv::new();
        b.write(b"hello");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.write(b"hellp");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn digest_covers_decisions_but_not_phase_timings() {
        let base = RunReport {
            scheduler: "X".into(),
            duration: SimDuration::from_secs(1),
            node_util_series: vec![vec![1.0, 2.0]],
            active_util_samples: vec![0.5],
            submitted: 3,
            completed: 2,
            lc_completed: 1,
            lc_violations: 0,
            batch_jct: knots_core::JctStats::from_secs(vec![1.0]),
            lc_latency: knots_core::JctStats::from_secs(vec![]),
            all_jct: knots_core::JctStats::from_secs(vec![1.0]),
            energy_joules: 9.0,
            crashes: 0,
            preemptions: 1,
            migrations: 0,
            skipped_actions: 0,
            skipped_breakdown: vec![],
            phase_timings: vec![],
            faults: knots_core::FaultStats::default(),
            events_processed: 0,
            events_per_sim_second: 0.0,
            recovery: knots_core::RecoveryStats::default(),
        };
        let d0 = report_digest(&base);

        let mut timed = base.clone();
        timed.phase_timings = vec![knots_core::metrics::PhaseTiming {
            phase: "tick".into(),
            count: 10,
            p50_us: 1.0,
            p95_us: 2.0,
            p99_us: 3.0,
            mean_us: 1.5,
        }];
        assert_eq!(report_digest(&timed), d0, "wall-clock timings must not affect the digest");

        let mut evented = base.clone();
        evented.events_processed = 1234;
        evented.events_per_sim_second = 9.75;
        assert_eq!(report_digest(&evented), d0, "engine throughput must not affect the digest");

        let mut recovered = base.clone();
        recovered.recovery = knots_core::RecoveryStats {
            controller_crashes: 3,
            checkpoints: 7,
            replayed_events: 41,
            recovery_wall_us: 812.5,
        };
        assert_eq!(report_digest(&recovered), d0, "recovery stats must not affect the digest");

        let mut decided = base;
        decided.preemptions = 2;
        assert_ne!(report_digest(&decided), d0);
    }
}
