//! Rule S1: shard-merge code paths join results by index, in order.
//!
//! The sharded core (DESIGN.md §16) promises that per-shard results are
//! always folded back in a deterministic order: candidate orders are
//! k-way merges of per-shard sorted runs, rollups fold shard summaries in
//! shard order, and parallel lanes join by index. A `HashMap`/`HashSet`
//! inside such a function reintroduces per-instance iteration order; a
//! channel receive (even the blocking `recv` that C4 permits elsewhere)
//! joins results in arrival order, which depends on thread scheduling.
//! Both are denied at the source in any function whose name marks it as a
//! shard/merge/rollup path.
//!
//! Like E1, S1 is scope-aware: it consults the [`crate::parser::ScopeTree`]
//! to resolve which `fn` owns a token, and only tokens inside a
//! merge-path-named body of a decision crate can fire.

use crate::diag::Diagnostic;
use crate::engine::FileContext;
use crate::lexer::Tok;
use crate::parser::ScopeTree;
use crate::rules::{DECISION_CRATES, S1};

/// True when `name` marks a shard-merge code path: any `_`-separated
/// segment is a shard/merge/rollup word. Substrings inside other words
/// (`submerged`) do not bind.
fn is_merge_path_name(name: &str) -> bool {
    name.split('_').any(|seg| {
        matches!(
            seg,
            "shard" | "shards" | "sharded" | "merge" | "merges" | "merged" | "rollup" | "rollups"
        )
    })
}

/// Run rule S1 over one file's token stream.
pub fn scan(
    toks: &[Tok],
    tree: &ScopeTree,
    ctx: &FileContext,
    test_lines: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
) {
    if !(ctx.is_library() && DECISION_CRATES.iter().any(|c| ctx.crate_name == *c)) {
        return;
    }
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);
    let diag = |t: &Tok, msg: String| Diagnostic {
        rule: S1.id,
        severity: S1.severity,
        path: ctx.path.clone(),
        line: t.line,
        col: t.col,
        message: msg,
        hint: S1.hint,
    };
    for (i, t) in toks.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        let Some(f) = tree.enclosing_fn(i).filter(|f| is_merge_path_name(&f.name)) else {
            continue;
        };
        let Some(name) = t.ident() else { continue };
        match name {
            "HashMap" | "HashSet" => {
                out.push(diag(
                    t,
                    format!(
                        "`{name}` inside shard-merge path `{}`: iteration order is random \
                         per instance, so the merged result depends on the partition",
                        f.name
                    ),
                ));
            }
            "recv" | "try_recv" | "recv_timeout" | "try_iter"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                out.push(diag(
                    t,
                    format!(
                        "`{name}` inside shard-merge path `{}` joins results in arrival \
                         order; join per-shard results by index instead",
                        f.name
                    ),
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FileKind;
    use crate::lexer::lex;

    fn run_in(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileContext {
            path: format!("crates/{crate_name}/src/x.rs"),
            crate_name: crate_name.into(),
            kind: FileKind::Library,
        };
        let lexed = lex(src);
        let tree = crate::parser::parse(&lexed.toks);
        let mut out = Vec::new();
        scan(&lexed.toks, &tree, &ctx, &[], &mut out);
        out
    }

    #[test]
    fn merge_path_naming_convention() {
        assert!(is_merge_path_name("merge_shard_orders"));
        assert!(is_merge_path_name("shard_free_memory_order"));
        assert!(is_merge_path_name("query_rollup"));
        assert!(is_merge_path_name("sharded_step"));
        // Substrings inside other words do not bind.
        assert!(!is_merge_path_name("submerged"));
        assert!(!is_merge_path_name("free_memory_order"));
        assert!(!is_merge_path_name("mergesort"));
    }

    #[test]
    fn hash_collections_fire_only_inside_merge_paths_of_decision_crates() {
        let bad = "fn merge_shard_results(xs: &[u32]) { let m: HashMap<u32, u32> = make(); }";
        assert_eq!(run_in("sched", bad).len(), 1);
        assert_eq!(run_in("telemetry", bad).len(), 1);
        // Same collection outside a merge path: S1 silent (D2 covers it).
        let ok = "fn fold_results(xs: &[u32]) { let m: HashMap<u32, u32> = make(); }";
        assert!(run_in("sched", ok).is_empty());
        // Outside the decision crates: silent.
        assert!(run_in("workloads", bad).is_empty());
    }

    #[test]
    fn blocking_recv_fires_inside_merge_paths() {
        // Plain `recv()` is fine under C4 but not in a merge path: arrival
        // order is a scheduler-dependent join.
        let bad = "fn merge_lanes(rx: &Receiver<u32>) { while let Ok(v) = rx.recv() { f(v); } }";
        let hits = run_in("sim", bad);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("arrival"));
        // By-index joins don't use channels at all.
        let ok = "fn merge_lanes(slots: &mut [u32]) { for (i, s) in slots.iter().enumerate() { f(i, s); } }";
        assert!(run_in("sim", ok).is_empty());
        // A bare ident `recv` that is not a method call does not bind.
        let ok2 = "fn merge_lanes(recv: u32) { let x = recv + 1; }";
        assert!(run_in("sim", ok2).is_empty());
    }
}
