//! Rule E1: event handlers run in continuous time.
//!
//! The event-queue loop (DESIGN.md §14) promises that handlers — `fn
//! on_*` / `fn handle_*` in `knots-sim` and `knots-core` — advance
//! bookkeeping in closed form. Due times are snapped to the tick grid
//! exactly once, at enqueue (`grid_at_or_after`); a handler that divides
//! by the tick re-derives grid indices and quietly reintroduces the tick
//! loop the calendar exists to skip, and one that reads the wall clock
//! (`Instant`/`SystemTime`) breaks seed replay. Both are denied at the
//! source.
//!
//! Like the C rules, E1 is scope-aware: it consults the
//! [`crate::parser::ScopeTree`] to resolve which `fn` owns a token, and
//! only tokens inside a handler-named body can fire.

use crate::diag::Diagnostic;
use crate::engine::FileContext;
use crate::lexer::{Tok, TokKind};
use crate::parser::ScopeTree;
use crate::rules::E1;

/// Crates whose `on_*`/`handle_*` fns are event handlers under the
/// continuous-time contract. Deliberately narrower than
/// [`crate::rules::DECISION_CRATES`]: `sched` and `telemetry` never see
/// calendar events.
pub const HANDLER_CRATES: [&str; 2] = ["sim", "core"];

/// True when `name` follows the event-handler naming convention.
fn is_handler_name(name: &str) -> bool {
    name.strip_prefix("on_").or_else(|| name.strip_prefix("handle_")).is_some_and(|r| !r.is_empty())
}

/// True when `name` names the simulation tick (`tick`, `tick_us`, ...).
fn is_tick_ident(name: &str) -> bool {
    name == "tick" || name.starts_with("tick_") || name.ends_with("_tick")
}

/// Does the divisor expression starting after the `/` at `slash` reach a
/// tick identifier? The divisor is read as a dotted path — idents, `.`,
/// and numeric field accesses (`cfg.tick.0`) — and the scan stops at the
/// first token that cannot extend one.
fn divides_by_tick(toks: &[Tok], slash: usize) -> bool {
    for t in toks.iter().skip(slash + 1).take(8) {
        match &t.kind {
            TokKind::Ident(name) if is_tick_ident(name) => return true,
            TokKind::Ident(_) | TokKind::Num | TokKind::Punct('.') => {}
            _ => return false,
        }
    }
    false
}

/// Does the `div_ceil` call at `i` involve the tick — either in its
/// argument list or in its receiver path (`cfg.tick.0.div_ceil(n)`)?
fn div_ceil_touches_tick(toks: &[Tok], i: usize) -> bool {
    // Receiver: walk the dotted path backwards from the `.` before the call.
    for t in toks[..i].iter().rev().take(8) {
        match &t.kind {
            TokKind::Ident(name) if is_tick_ident(name) => return true,
            TokKind::Ident(_) | TokKind::Num | TokKind::Punct('.') => {}
            _ => break,
        }
    }
    // Arguments: any tick identifier inside the matching parens.
    if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        let mut depth = 0usize;
        for t in &toks[i + 1..] {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if let TokKind::Ident(name) = &t.kind {
                if is_tick_ident(name) {
                    return true;
                }
            }
        }
    }
    false
}

/// Run rule E1 over one file's token stream.
pub fn scan(
    toks: &[Tok],
    tree: &ScopeTree,
    ctx: &FileContext,
    test_lines: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
) {
    if !(ctx.is_library() && HANDLER_CRATES.iter().any(|c| ctx.crate_name == *c)) {
        return;
    }
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);
    let diag = |t: &Tok, msg: String| Diagnostic {
        rule: E1.id,
        severity: E1.severity,
        path: ctx.path.clone(),
        line: t.line,
        col: t.col,
        message: msg,
        hint: E1.hint,
    };
    for (i, t) in toks.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        let Some(f) = tree.enclosing_fn(i).filter(|f| is_handler_name(&f.name)) else { continue };
        match &t.kind {
            TokKind::Ident(name) if matches!(name.as_str(), "Instant" | "SystemTime") => {
                out.push(diag(
                    t,
                    format!(
                        "`{name}` inside event handler `{}`: handlers must be pure functions \
                         of (simulation state, event time)",
                        f.name
                    ),
                ));
            }
            TokKind::Ident(name) if name == "div_ceil" && div_ceil_touches_tick(toks, i) => {
                out.push(diag(
                    t,
                    format!(
                        "`div_ceil` by the tick inside event handler `{}` re-quantizes \
                         continuous time onto the tick grid",
                        f.name
                    ),
                ));
            }
            TokKind::Punct('/') if divides_by_tick(toks, i) => {
                out.push(diag(
                    t,
                    format!(
                        "division by the tick inside event handler `{}` re-quantizes \
                         continuous time onto the tick grid",
                        f.name
                    ),
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FileKind;
    use crate::lexer::lex;

    fn run_in(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileContext {
            path: format!("crates/{crate_name}/src/x.rs"),
            crate_name: crate_name.into(),
            kind: FileKind::Library,
        };
        let lexed = lex(src);
        let tree = crate::parser::parse(&lexed.toks);
        let mut out = Vec::new();
        scan(&lexed.toks, &tree, &ctx, &[], &mut out);
        out
    }

    #[test]
    fn handler_naming_convention() {
        assert!(is_handler_name("on_heartbeat"));
        assert!(is_handler_name("handle_event"));
        // Bare prefixes and near-misses do not bind.
        assert!(!is_handler_name("on_"));
        assert!(!is_handler_name("handle_"));
        assert!(!is_handler_name("once"));
        assert!(!is_handler_name("handler"));
    }

    #[test]
    fn fires_only_inside_handlers_of_event_crates() {
        let bad = "fn handle_due(&mut self, at: u64) -> u64 { at / self.cfg.tick }";
        assert_eq!(run_in("core", bad).len(), 1);
        assert_eq!(run_in("sim", bad).len(), 1);
        // Same division outside a handler, or outside the event crates.
        assert!(run_in("core", "fn quantize(at: u64, tick: u64) -> u64 { at / tick }").is_empty());
        assert!(run_in("sched", bad).is_empty());
    }

    #[test]
    fn div_ceil_matches_receiver_and_argument_forms() {
        let hits =
            run_in("core", "fn on_due(at: u64, tick_us: u64) -> u64 { at.div_ceil(tick_us) }");
        assert_eq!(hits.len(), 1, "{hits:?}");
        let hits = run_in("core", "fn on_due(&self, n: u64) -> u64 { self.tick_us.div_ceil(n) }");
        assert_eq!(hits.len(), 1, "{hits:?}");
        // div_ceil with no tick involvement is ordinary arithmetic.
        assert!(run_in("core", "fn on_due(a: u64, b: u64) -> u64 { a.div_ceil(b) }").is_empty());
    }

    #[test]
    fn divisor_scan_stops_at_expression_boundaries() {
        // The tick appears after the divisor expression ends: no hit.
        let src = "fn on_due(&self, a: u64, b: u64) -> u64 { let x = a / b; self.tick }";
        assert!(run_in("core", src).is_empty());
    }
}
