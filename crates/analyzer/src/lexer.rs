//! A hand-rolled Rust tokenizer — just enough lexical fidelity for the
//! analyzer's rules.
//!
//! The lexer understands exactly the constructs that would otherwise cause
//! false positives in a grep-based checker: line and (nested) block
//! comments, string/char/byte/raw-string literals, raw identifiers, and
//! lifetimes. Everything else is emitted as identifier, number, or
//! single-character punctuation tokens carrying `line:col` positions.
//!
//! `// knots-allow:` suppression pragmas live in line comments, so the
//! lexer also returns every line comment it skipped.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are unescaped: `r#fn` → `fn`).
    Ident(String),
    /// Any string-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    /// Carries the inner text between the quotes, escapes left raw — enough
    /// for rules that pattern-match literal metric/span names (M1).
    Str(String),
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`) — distinct from `Char` so `'a'` vs `'a` never confuses
    /// downstream pattern matching.
    Lifetime,
    /// A single punctuation character.
    Punct(char),
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind (and payload for identifiers).
    pub kind: TokKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in bytes).
    pub col: u32,
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A line comment the lexer skipped (pragmas are mined from these).
#[derive(Debug, Clone)]
pub struct LineComment {
    /// Comment text including the leading `//`.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct LexOut {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

/// Tokenize Rust source. Never fails: unterminated literals simply consume
/// to end-of-file (the compiler is the arbiter of validity, not us).
pub fn lex(src: &str) -> LexOut {
    Lexer { b: src.as_bytes(), i: 0, line: 1, col: 1, out: LexOut::default() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    out: LexOut,
}

impl Lexer<'_> {
    fn run(mut self) -> LexOut {
        while self.i < self.b.len() {
            let (line, col) = (self.line, self.col);
            let c = self.b[self.i];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    let s = self.string();
                    self.push(TokKind::Str(s), line, col);
                }
                b'\'' => self.quote(line, col),
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokKind::Num, line, col);
                }
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident_or_prefixed(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c as char), line, col);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn bump(&mut self) {
        if self.b[self.i] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.i += 1;
    }

    fn push(&mut self, kind: TokKind, line: u32, col: u32) {
        self.out.toks.push(Tok { kind, line, col });
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.out.comments.push(LineComment { text, line });
    }

    fn block_comment(&mut self) {
        // `/*` consumed below; bodies nest, per the Rust reference.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
    }

    /// A plain `"…"` string with escape handling; cursor on the opening
    /// `"`. Returns the inner text (escapes left raw).
    fn string(&mut self) -> String {
        self.bump();
        let start = self.i;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    self.bump();
                    if self.i < self.b.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    let inner = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
                    self.bump();
                    return inner;
                }
                _ => self.bump(),
            }
        }
        String::from_utf8_lossy(&self.b[start..self.i]).into_owned()
    }

    /// A raw string `r"…"` / `r#"…"#` with `hashes` leading `#`s; cursor on
    /// the opening quote. Returns the inner text.
    fn raw_string(&mut self, hashes: usize) -> String {
        self.bump(); // opening quote
        let start = self.i;
        while self.i < self.b.len() {
            if self.b[self.i] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let inner = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    return inner;
                }
            }
            self.bump();
        }
        String::from_utf8_lossy(&self.b[start..self.i]).into_owned()
    }

    /// `'` starts either a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\n'`, `'\u{1F600}'`).
    fn quote(&mut self, line: u32, col: u32) {
        // Lifetime: `'` + ident-start + no closing quote right after.
        if let Some(c1) = self.peek(1) {
            if (c1 == b'_' || c1.is_ascii_alphabetic()) && self.peek(2) != Some(b'\'') {
                self.bump(); // '
                while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric()) {
                    self.bump();
                }
                self.push(TokKind::Lifetime, line, col);
                return;
            }
        }
        // Char literal.
        self.bump(); // '
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    self.bump();
                    if self.i < self.b.len() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokKind::Char, line, col);
    }

    fn number(&mut self) {
        // Integer part (also covers hex/oct/bin via the alnum loop).
        while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        // Fraction — only when followed by a digit, so `0..n` stays a range.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                self.bump();
            }
        }
        // Exponent sign: `1e-9` / `1E+9` (the `e` was eaten by the loops).
        if self.peek(0).is_some_and(|c| c == b'+' || c == b'-')
            && self.i > 0
            && (self.b[self.i - 1] | 0x20) == b'e'
        {
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                self.bump();
            }
        }
    }

    /// An identifier, or one of the literal prefixes `r" b" br" rb"` /
    /// `r#"…"#`, or a raw identifier `r#name`.
    fn ident_or_prefixed(&mut self, line: u32, col: u32) {
        let start = self.i;
        while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric()) {
            self.bump();
        }
        let word = &self.b[start..self.i];
        let next = self.peek(0);
        let is_raw_prefix = matches!(word, b"r" | b"br" | b"rb");
        let is_byte_prefix = matches!(word, b"b");
        match next {
            Some(b'"') if is_raw_prefix => {
                let s = self.raw_string(0);
                self.push(TokKind::Str(s), line, col);
            }
            Some(b'"') if is_byte_prefix => {
                let s = self.string();
                self.push(TokKind::Str(s), line, col);
            }
            Some(b'\'') if is_byte_prefix => {
                self.quote(line, col);
                // quote() pushed Char/Lifetime already; keep that token.
            }
            Some(b'#') if is_raw_prefix => {
                // Count hashes; a quote after them is a raw string, an
                // ident-start is a raw identifier (`r#fn`).
                let mut h = 0usize;
                while self.peek(h) == Some(b'#') {
                    h += 1;
                }
                match self.peek(h) {
                    Some(b'"') => {
                        for _ in 0..h {
                            self.bump();
                        }
                        let s = self.raw_string(h);
                        self.push(TokKind::Str(s), line, col);
                    }
                    Some(c) if word == b"r" && (c == b'_' || c.is_ascii_alphabetic()) => {
                        self.bump(); // #
                        let id_start = self.i;
                        while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric()) {
                            self.bump();
                        }
                        let name = String::from_utf8_lossy(&self.b[id_start..self.i]).into_owned();
                        self.push(TokKind::Ident(name), line, col);
                    }
                    _ => {
                        let name = String::from_utf8_lossy(word).into_owned();
                        self.push(TokKind::Ident(name), line, col);
                    }
                }
            }
            _ => {
                let name = String::from_utf8_lossy(word).into_owned();
                self.push(TokKind::Ident(name), line, col);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.iter().filter_map(|t| t.ident().map(str::to_string)).collect()
    }

    #[test]
    fn strings_hide_rule_text() {
        let l = lex(r#"let s = "HashMap::new() and unwrap()"; other();"#);
        assert!(!idents(r#"let s = "HashMap::new()";"#).contains(&"HashMap".to_string()));
        let strs: Vec<&str> = l
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["HashMap::new() and unwrap()"]);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r##"let s = r#"quote " inside, unwrap() too"#; tail()"##;
        let ids = idents(src);
        assert!(ids.contains(&"tail".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn nested_block_comments_skip_everything() {
        let ids = idents("/* outer /* unwrap() */ still comment */ fn f() {}");
        assert_eq!(ids, vec!["fn", "f"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifiers_unescape() {
        assert_eq!(idents("let r#fn = 1;"), vec!["let", "fn"]);
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  bb");
        assert_eq!((l.toks[0].line, l.toks[0].col), (1, 1));
        assert_eq!((l.toks[1].line, l.toks[1].col), (2, 3));
    }

    #[test]
    fn line_comments_collected_with_lines() {
        let l = lex("x(); // knots-allow: D2 -- reason\ny();");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("knots-allow"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..10 { let f = 1.5e-3; }");
        let nums = l.toks.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 3); // 0, 10, 1.5e-3
        assert!(l.toks.iter().any(|t| t.is_punct('.')));
    }
}
