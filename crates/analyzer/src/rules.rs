//! The rule set: what each rule looks for in the token stream.
//!
//! | id | invariant it protects |
//! |----|----------------------|
//! | D1 | no wall-clock (`Instant`/`SystemTime`) in library code |
//! | D2 | no `HashMap`/`HashSet` in decision-path crates (iteration order) |
//! | D3 | no ambient RNG (`thread_rng`/`from_entropy`/`OsRng`) anywhere |
//! | P1 | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in non-test library code |
//! | P2 | no `partial_cmp(..).unwrap()` comparators — `total_cmp` instead |
//! | H1 | no `println!`-family output in library code (use `knots-obs`) |
//! | M1 | metric/span name hygiene: metrics match `knots_[a-z0-9_]+` (counters end `_total`), span/event names are `dot.case` |
//! | C1 | no lock guard live across a fan-out/wait call (`WorkerPool::run`, `run_jobs`, `thread::scope`, condvar wait) |
//! | C2 | workspace lock-acquisition order is cycle-free |
//! | C3 | every `unsafe` / `static mut` / `UnsafeCell` has an adjacent `// SAFETY:` comment |
//! | C4 | no `try_recv`/`recv_timeout`/`try_iter` channel drains in decision crates |
//! | E1 | no tick quantization (div / `div_ceil` by the tick) or wall clock inside event handlers (`on_*`/`handle_*` fns in `sim`/`core`) |
//! | R1 | no `HashMap`/`HashSet`/`Instant` fields in types reachable from the control-plane snapshot (`Snapshot`/`OrchestratorState`) |
//! | S1 | no unordered collections or channel receives (arrival-order joins) inside shard-merge code paths (`*shard*`/`*merge*`/`*rollup*` fns in decision crates) |
//!
//! D–M matching is purely token-shaped: strings, comments and
//! `#[cfg(test)]` regions were already stripped or marked by the
//! lexer/engine, so rule text inside a string literal can never fire.
//! The C rules additionally consult the scope tree built by
//! [`crate::parser`] — see [`crate::conc`] and [`crate::lockgraph`];
//! E1 consults it too, to resolve which `fn` owns a token
//! (see [`crate::events`]).

use crate::diag::{Diagnostic, Severity};
use crate::engine::FileContext;
use crate::lexer::{Tok, TokKind};

/// Crates whose iteration order feeds scheduler decisions (rule D2).
pub const DECISION_CRATES: [&str; 4] = ["sim", "sched", "core", "telemetry"];

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id used in output and pragmas.
    pub id: &'static str,
    /// Default severity (an `analyzer.toml` `[severity]` entry can downgrade).
    pub severity: Severity,
    /// One-line summary shown by `--list-rules`.
    pub summary: &'static str,
    /// Fix hint attached to every diagnostic.
    pub hint: &'static str,
}

/// Every rule the engine knows, in reporting order.
pub const RULES: [Rule; 14] = [
    Rule {
        id: "D1",
        severity: Severity::Deny,
        summary: "no std::time::Instant/SystemTime in library code (wall clock breaks replay)",
        hint: "derive timing from SimTime, or allowlist the file in analyzer.toml \
               if it is genuinely observability-only",
    },
    Rule {
        id: "D2",
        severity: Severity::Deny,
        summary: "no HashMap/HashSet in sim/sched/core/telemetry (iteration order is random \
                  per instance)",
        hint: "use BTreeMap/BTreeSet or drain through a sorted Vec; if the collection is \
               never iterated, suppress with `// knots-allow: D2 -- <reason>`",
    },
    Rule {
        id: "D3",
        severity: Severity::Deny,
        summary: "no thread_rng/from_entropy/OsRng (all randomness must flow from the seeded \
                  experiment config)",
        hint: "plumb a seeded StdRng (SeedableRng::seed_from_u64) from the experiment config",
    },
    Rule {
        id: "P1",
        severity: Severity::Deny,
        summary: "no unwrap/expect/panic!/todo!/unimplemented! in non-test library code",
        hint: "return a Result, restructure with let-else/unwrap_or, or suppress with \
               `// knots-allow: P1 -- <why the invariant holds>`",
    },
    Rule {
        id: "P2",
        severity: Severity::Deny,
        summary: "no partial_cmp(..).unwrap()/expect() comparators (NaN panics mid-run)",
        hint: "use f64::total_cmp, which is total and NaN-safe",
    },
    Rule {
        id: "H1",
        severity: Severity::Deny,
        summary: "no println!/eprintln!/print!/eprint!/dbg! in library code",
        hint: "record through knots-obs (Recorder events or the metrics registry) so output \
               is capturable and bounded",
    },
    Rule {
        id: "M1",
        severity: Severity::Deny,
        summary: "metric/span name hygiene: literal metric names must match `knots_[a-z0-9_]+` \
                  (counters additionally end `_total`), span/event names must be `dot.case`",
        hint: "rename the metric to `knots_<subsystem>_<what>[_total]`, or the span/event \
               name to lowercase dot.case (`probe.round`, `sched.place`)",
    },
    Rule {
        id: "C1",
        severity: Severity::Deny,
        summary: "no Mutex/RwLock guard live across WorkerPool::run/run_jobs/thread::scope/\
                  condvar-wait (workers touching the same lock deadlock)",
        hint: "narrow the guard's scope (inner block or explicit `drop(guard)`) before the \
               fan-out, or copy the data out of the lock first",
    },
    Rule {
        id: "C2",
        severity: Severity::Deny,
        summary: "workspace lock-acquisition order must be cycle-free (two sites nesting the \
                  same locks in opposite orders can deadlock)",
        hint: "pick one canonical acquisition order for the locks in the cycle and restructure \
               the minority site; dump the graph with `--lock-graph --format json`",
    },
    Rule {
        id: "C3",
        severity: Severity::Deny,
        summary: "every `unsafe` block/fn/impl, `static mut`, and `UnsafeCell` use needs an \
                  adjacent `// SAFETY:` comment",
        hint: "write `// SAFETY: <why the invariants hold>` on the same line or the comment \
               run directly above",
    },
    Rule {
        id: "C4",
        severity: Severity::Deny,
        summary: "no std::sync::mpsc try_recv/recv_timeout/try_iter drains in decision crates \
                  (message order becomes scheduler-dependent)",
        hint: "use blocking `recv()` with an explicit shutdown message, or collect into an \
               index-ordered buffer before acting",
    },
    Rule {
        id: "E1",
        severity: Severity::Deny,
        summary: "no tick quantization (division/div_ceil by the tick) or wall clock inside \
                  event handlers (`on_*`/`handle_*` fns in knots-sim/knots-core)",
        hint: "snap due times to the tick grid once, at enqueue (`grid_at_or_after`); handlers \
               must be pure functions of (simulation state, event time)",
    },
    Rule {
        id: "R1",
        severity: Severity::Deny,
        summary: "no HashMap/HashSet/Instant/SystemTime fields in types reachable from the \
                  control-plane snapshot (Snapshot/OrchestratorState) — they cannot be \
                  checkpointed and resumed bit-identically",
        hint: "use BTreeMap/BTreeSet/Vec for collections and SimTime for time; snapshot state \
               must serialize deterministically (see crates/recovery)",
    },
    Rule {
        id: "S1",
        severity: Severity::Deny,
        summary: "no HashMap/HashSet and no channel receives (recv/try_recv/recv_timeout/\
                  try_iter — arrival-order joins) inside shard-merge code paths \
                  (fns named *shard*/*merge*/*rollup* in decision crates)",
        hint: "fold per-shard results in shard order and join parallel lanes by index \
               (pre-sized slots, like knots_sim::pool); use BTree collections if a map is \
               unavoidable",
    },
];

/// Direct references for the scope-aware passes in [`crate::conc`],
/// [`crate::lockgraph`] and [`crate::events`] (no Option plumbing on a
/// compile-time-known id).
pub(crate) const C1: &Rule = &RULES[7];
pub(crate) const C2: &Rule = &RULES[8];
pub(crate) const C3: &Rule = &RULES[9];
pub(crate) const C4: &Rule = &RULES[10];
pub(crate) const E1: &Rule = &RULES[11];
pub(crate) const R1: &Rule = &RULES[12];
pub(crate) const S1: &Rule = &RULES[13];

/// Look up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// True when `id` names a real rule (pragma validation).
pub fn is_known_rule(id: &str) -> bool {
    rule(id).is_some() || id == "*"
}

/// Run every applicable rule over one file's token stream.
///
/// `test_lines` marks lines inside `#[cfg(test)]` / `#[test]` items; rules
/// that only bind library code skip positions on those lines.
pub fn scan(toks: &[Tok], ctx: &FileContext, test_lines: &[(u32, u32)], out: &mut Vec<Diagnostic>) {
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);
    let diag = |r: &'static Rule, t: &Tok, msg: String| Diagnostic {
        rule: r.id,
        severity: r.severity,
        path: ctx.path.clone(),
        line: t.line,
        col: t.col,
        message: msg,
        hint: r.hint,
    };

    let lib = ctx.is_library();
    let decision_crate = lib && DECISION_CRATES.iter().any(|c| ctx.crate_name == *c);

    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        let next_is = |c: char| toks.get(i + 1).is_some_and(|n| n.is_punct(c));
        let prev_is = |c: char| i > 0 && toks[i - 1].is_punct(c);

        // D1 — wall clock in library code.
        if lib && matches!(name, "Instant" | "SystemTime") {
            out.push(diag(
                &RULES[0],
                t,
                format!(
                    "`{name}` reads the wall clock; simulation state must be a pure \
                         function of the seed"
                ),
            ));
        }

        // D2 — hash collections in decision-path crates.
        if decision_crate && matches!(name, "HashMap" | "HashSet") {
            out.push(diag(
                &RULES[1],
                t,
                format!(
                    "`{name}` in knots-{}: iteration order is random per instance and can \
                     leak into scheduling decisions",
                    ctx.crate_name
                ),
            ));
        }

        // D3 — ambient entropy, everywhere (tests and benches included:
        // the reproducibility claim covers them too).
        if matches!(name, "thread_rng" | "from_entropy" | "OsRng") {
            out.push(diag(
                &RULES[2],
                t,
                format!(
                    "`{name}` draws ambient entropy; all RNG must be seeded from the \
                         experiment config"
                ),
            ));
        }

        // P1 — panicking calls in non-test library code.
        if lib && !in_test(t.line) {
            let method_call = prev_is('.') && next_is('(');
            let macro_call = next_is('!');
            if (matches!(name, "unwrap" | "expect") && method_call)
                || (matches!(name, "panic" | "todo" | "unimplemented") && macro_call)
            {
                out.push(diag(
                    &RULES[3],
                    t,
                    format!(
                        "`{name}` can abort a long harvest/resize run on a state the \
                             type system already forced you to consider"
                    ),
                ));
            }
        }

        // P2 — partial_cmp(..).unwrap()/expect(), everywhere. Pattern:
        // `partial_cmp` `(` … matching `)` `.` `unwrap|expect` `(`.
        if name == "partial_cmp" && next_is('(') {
            if let Some(close) = matching_paren(toks, i + 1) {
                let trail: Vec<&str> = toks[close + 1..]
                    .iter()
                    .take(2)
                    .map(|t| match &t.kind {
                        TokKind::Ident(s) => s.as_str(),
                        TokKind::Punct('.') => ".",
                        _ => "",
                    })
                    .collect();
                if trail.len() == 2 && trail[0] == "." && matches!(trail[1], "unwrap" | "expect") {
                    out.push(diag(
                        &RULES[4],
                        t,
                        "`partial_cmp(..).unwrap()` comparator panics on NaN input mid-sort"
                            .to_string(),
                    ));
                }
            }
        }

        // H1 — stdout/stderr writes in library code (test regions may print).
        if lib
            && !in_test(t.line)
            && matches!(name, "println" | "eprintln" | "print" | "eprint" | "dbg")
            && next_is('!')
        {
            out.push(diag(
                &RULES[5],
                t,
                format!("`{name}!` writes to the process streams from a library crate"),
            ));
        }

        // M1 — metric/span name hygiene in non-test library code. Series
        // identity is part of the dashboards' contract, so drift (a counter
        // without `_total`, a camelCase span) is caught at the source.
        if lib && !in_test(t.line) {
            // Registry methods taking a literal metric name as first arg.
            let is_counter_method =
                matches!(name, "inc" | "add" | "counter_value" | "counters_named");
            let is_series_method = is_counter_method
                || matches!(
                    name,
                    "set_gauge" | "gauge_value" | "observe" | "observe_with" | "histogram"
                );
            if is_series_method && prev_is('.') && next_is('(') {
                if let Some(TokKind::Str(s)) = toks.get(i + 2).map(|t2| &t2.kind) {
                    if !is_metric_name(s) {
                        out.push(diag(
                            &RULES[6],
                            &toks[i + 2],
                            format!("metric name `{s}` does not match `knots_[a-z0-9_]+`"),
                        ));
                    } else if is_counter_method && !s.ends_with("_total") {
                        out.push(diag(
                            &RULES[6],
                            &toks[i + 2],
                            format!("counter `{s}` must end in `_total`"),
                        ));
                    }
                }
            }
            // Span/event constructors: every depth-1 string argument is a
            // component or span name and must be lowercase dot.case.
            // Deeper strings (field keys inside tuples) are unconstrained.
            let event_new = name == "new"
                && next_is('(')
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].ident() == Some("Event");
            let tracer_record = matches!(name, "record_instant" | "record_complete")
                && prev_is('.')
                && next_is('(');
            if event_new || tracer_record {
                if let Some(close) = matching_paren(toks, i + 1) {
                    let mut depth = 0usize;
                    for t2 in &toks[i + 1..=close] {
                        if t2.is_punct('(') {
                            depth += 1;
                        } else if t2.is_punct(')') {
                            depth -= 1;
                        } else if depth == 1 {
                            if let TokKind::Str(s) = &t2.kind {
                                if !is_span_name(s) {
                                    out.push(diag(
                                        &RULES[6],
                                        t2,
                                        format!("span/event name `{s}` is not lowercase dot.case"),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `knots_` prefix, then lowercase/digit/underscore only.
fn is_metric_name(s: &str) -> bool {
    s.starts_with("knots_")
        && s.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Non-empty `dot.case`: dot-separated segments of `[a-z0-9_]+`.
fn is_span_name(s: &str) -> bool {
    !s.is_empty()
        && s.split('.').all(|seg| {
            !seg.is_empty()
                && seg.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        })
}

/// Index of the `)` matching the `(` at `open`, or `None` when unbalanced.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lib_ctx() -> FileContext {
        FileContext {
            path: "crates/sched/src/x.rs".into(),
            crate_name: "sched".into(),
            kind: crate::engine::FileKind::Library,
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        scan(&lex(src).toks, &lib_ctx(), &[], &mut out);
        out
    }

    #[test]
    fn p2_matches_through_nested_parens() {
        let hits = run("v.sort_by(|a, b| a.partial_cmp(&f(b, c(d))).unwrap());");
        assert!(hits.iter().any(|d| d.rule == "P2"), "{hits:?}");
    }

    #[test]
    fn p2_ignores_handled_partial_cmp() {
        let hits = run("let o = a.partial_cmp(&b).unwrap_or(Ordering::Equal);");
        assert!(!hits.iter().any(|d| d.rule == "P2"), "{hits:?}");
    }

    #[test]
    fn p1_does_not_match_unwrap_or() {
        let hits = run("let x = o.unwrap_or(3); let y = o.unwrap_or_default();");
        assert!(!hits.iter().any(|d| d.rule == "P1"), "{hits:?}");
    }

    #[test]
    fn p1_matches_method_and_macro_forms() {
        let hits = run("fn f() { o.unwrap(); r.expect(\"x\"); panic!(\"no\"); todo!() }");
        assert_eq!(hits.iter().filter(|d| d.rule == "P1").count(), 4);
    }

    #[test]
    fn m1_checks_metric_prefix_and_counter_suffix() {
        let hits = run(r#"m.inc("requests", &[]);"#);
        assert!(hits.iter().any(|d| d.rule == "M1" && d.message.contains("knots_")), "{hits:?}");
        let hits = run(r#"m.inc("knots_requests", &[]);"#);
        assert!(hits.iter().any(|d| d.rule == "M1" && d.message.contains("_total")), "{hits:?}");
        assert!(run(r#"m.inc("knots_requests_total", &[]);"#).is_empty());
        let hits = run(r#"m.set_gauge("knots_PendingPods", &[], 1.0);"#);
        assert!(hits.iter().any(|d| d.rule == "M1"), "{hits:?}");
        // Gauges and histograms need the prefix but not the suffix.
        assert!(run(r#"m.set_gauge("knots_pending_pods", &[], 1.0);"#).is_empty());
        assert!(run(r#"m.observe("knots_probe_latency_us", &[], 9.0);"#).is_empty());
    }

    #[test]
    fn m1_checks_span_and_event_names_at_depth_one_only() {
        let hits = run(r#"r.record(Event::new("orchestrator", "ProbeRound"));"#);
        assert_eq!(hits.iter().filter(|d| d.rule == "M1").count(), 1, "{hits:?}");
        assert!(run(r#"r.record(Event::new("orchestrator", "probe.round"));"#).is_empty());
        // Field keys inside tuples sit at depth 2 and are unconstrained.
        let src = r#"t.record_instant(Track::Pod(id), "sched.round", now, None,
                     &[("Kind", FieldValue::Str("Place"))]);"#;
        assert!(run(src).is_empty(), "{:?}", run(src));
        let hits = run(r#"t.record_complete(Track::Control, "PoolBatch", a, b, None, &[]);"#);
        assert!(hits.iter().any(|d| d.rule == "M1"), "{hits:?}");
    }

    #[test]
    fn m1_skips_non_literal_and_non_library_code() {
        // Variable names cannot be checked — no diagnostic.
        assert!(run("m.inc(name, &[]);").is_empty());
        let src = r#"m.inc("requests", &[]);"#;
        let mut out = Vec::new();
        let ctx = FileContext {
            path: "crates/sim/tests/t.rs".into(),
            crate_name: "sim".into(),
            kind: crate::engine::FileKind::Harness,
        };
        scan(&lex(src).toks, &ctx, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn d2_only_fires_in_decision_crates() {
        let src = "use std::collections::HashMap;";
        let mut out = Vec::new();
        let ctx = FileContext {
            path: "crates/workloads/src/x.rs".into(),
            crate_name: "workloads".into(),
            kind: crate::engine::FileKind::Library,
        };
        scan(&lex(src).toks, &ctx, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
        assert!(run(src).iter().any(|d| d.rule == "D2"));
    }
}
