//! The workspace lock-acquisition-order graph behind rule C2.
//!
//! Every [`LockEdge`](crate::conc::LockEdge) says "site S acquired lock B
//! while lock A was held". Collected across the whole workspace they form
//! a directed graph over lock identities; a cycle in that graph means two
//! code paths nest the same locks in opposite orders, which is the classic
//! ABBA deadlock. The graph is tiny (locks are named by `crate::field`),
//! so the analysis is a plain DFS with an explicit stack — deterministic
//! because nodes and edges are iterated in sorted order.
//!
//! One diagnostic is emitted per distinct cycle, anchored at the site of
//! the cycle's lexicographically smallest edge so re-runs always point at
//! the same line. `--lock-graph` dumps the whole graph as JSON for
//! dashboards and postmortems.

use std::collections::{BTreeMap, BTreeSet};

use crate::conc::LockEdge;
use crate::diag::Diagnostic;
use crate::rules;

/// One witness site for an edge: `(path, line, col)`.
pub type Site = (String, u32, u32);

/// The aggregated graph: adjacency plus every witness site per edge.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// `held → acquired-while-held` adjacency.
    pub adj: BTreeMap<String, BTreeSet<String>>,
    /// Witness sites per `(held, acquired)` edge, sorted.
    pub sites: BTreeMap<(String, String), Vec<Site>>,
}

/// Build the graph from edges (any order; the graph sorts internally).
pub fn build(edges: &[LockEdge]) -> LockGraph {
    let mut g = LockGraph::default();
    for e in edges {
        g.adj.entry(e.held.clone()).or_default().insert(e.acquired.clone());
        g.adj.entry(e.acquired.clone()).or_default();
        let sites = g.sites.entry((e.held.clone(), e.acquired.clone())).or_default();
        let site = (e.path.clone(), e.line, e.col);
        if !sites.contains(&site) {
            sites.push(site);
        }
    }
    for sites in g.sites.values_mut() {
        sites.sort();
    }
    g
}

/// Find every elementary cycle reachable by DFS and emit one C2 diagnostic
/// per distinct cycle (canonicalized by rotating to the smallest node).
pub fn cycles(graph: &LockGraph) -> Vec<Diagnostic> {
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    for start in graph.adj.keys() {
        let mut stack: Vec<String> = vec![start.clone()];
        let mut on_stack: BTreeSet<String> = BTreeSet::new();
        on_stack.insert(start.clone());
        dfs(graph, start, &mut stack, &mut on_stack, &mut seen, &mut out);
    }
    out
}

fn dfs(
    graph: &LockGraph,
    node: &str,
    stack: &mut Vec<String>,
    on_stack: &mut BTreeSet<String>,
    seen: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(nexts) = graph.adj.get(node) else { return };
    for next in nexts {
        if let Some(pos) = stack.iter().position(|n| n == next) {
            // Cycle: stack[pos..] + back-edge to `next`.
            let cycle = canonicalize(&stack[pos..]);
            if seen.insert(cycle.clone()) {
                out.push(cycle_diag(graph, &cycle));
            }
            continue;
        }
        if on_stack.contains(next) {
            continue;
        }
        stack.push(next.clone());
        on_stack.insert(next.clone());
        dfs(graph, &next.clone(), stack, on_stack, seen, out);
        stack.pop();
        // `next` deliberately stays in `on_stack`, which doubles as a
        // per-start visited set. This is not a full elementary-cycle
        // enumeration (Johnson's); the guarantee that matters for a lint
        // holds: a cyclic graph always yields at least one diagnostic,
        // because some start node's DFS walks the cycle into its own
        // stack. Fix, re-run, repeat.
    }
}

/// Rotate a cycle so it starts at its smallest node.
fn canonicalize(nodes: &[String]) -> Vec<String> {
    let min = nodes.iter().enumerate().min_by_key(|(_, n)| *n).map(|(i, _)| i).unwrap_or(0);
    let mut out = Vec::with_capacity(nodes.len());
    out.extend_from_slice(&nodes[min..]);
    out.extend_from_slice(&nodes[..min]);
    out
}

/// One C2 diagnostic for a canonical cycle, anchored at the first witness
/// site of its lexicographically smallest edge.
fn cycle_diag(graph: &LockGraph, cycle: &[String]) -> Diagnostic {
    let r = rules::C2;
    let mut best: Option<(String, u32, u32)> = None;
    let mut edges: Vec<(String, String)> = Vec::new();
    for i in 0..cycle.len() {
        let a = cycle[i].clone();
        let b = cycle[(i + 1) % cycle.len()].clone();
        edges.push((a, b));
    }
    edges.sort();
    for e in &edges {
        if let Some(sites) = graph.sites.get(e) {
            if let Some(site) = sites.first() {
                if best.as_ref().is_none_or(|b| site < b) {
                    best = Some(site.clone());
                }
            }
        }
    }
    let (path, line, col) = best.unwrap_or(("<unknown>".to_string(), 0, 0));
    let ring: Vec<&str> = cycle.iter().map(String::as_str).chain([cycle[0].as_str()]).collect();
    Diagnostic {
        rule: r.id,
        severity: r.severity,
        path,
        line,
        col,
        message: format!("lock-order cycle: {}", ring.join(" -> ")),
        hint: r.hint,
    }
}

/// Render the graph as stable JSON: sorted nodes, sorted edges, each edge
/// carrying its witness sites.
pub fn to_json(graph: &LockGraph) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("{\n  \"nodes\": [");
    for (i, n) in graph.adj.keys().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\"", esc(n)));
    }
    out.push_str("\n  ],\n  \"edges\": [");
    let mut first = true;
    for ((held, acquired), sites) in &graph.sites {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"held\":\"{}\",\"acquired\":\"{}\",\"sites\":[",
            esc(held),
            esc(acquired)
        ));
        for (j, (path, line, col)) in sites.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"path\":\"{}\",\"line\":{line},\"col\":{col}}}", esc(path)));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(held: &str, acquired: &str, line: u32) -> LockEdge {
        LockEdge {
            held: held.into(),
            acquired: acquired.into(),
            path: "crates/sim/src/x.rs".into(),
            line,
            col: 3,
        }
    }

    #[test]
    fn acyclic_graph_is_clean() {
        let g = build(&[edge("a", "b", 1), edge("b", "c", 2), edge("a", "c", 3)]);
        assert!(cycles(&g).is_empty());
    }

    #[test]
    fn abba_cycle_is_one_diagnostic() {
        let g = build(&[edge("sim::a", "sim::b", 1), edge("sim::b", "sim::a", 9)]);
        let out = cycles(&g);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("sim::a -> sim::b -> sim::a"), "{}", out[0].message);
        // Anchored at the first witness of the smallest edge.
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn self_edge_is_a_cycle() {
        // Re-acquiring a lock you already hold: `a -> a`.
        let g = build(&[edge("sim::a", "sim::a", 4)]);
        let out = cycles(&g);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("sim::a -> sim::a"));
    }

    #[test]
    fn three_cycle_reported_once() {
        let g = build(&[edge("a", "b", 1), edge("b", "c", 2), edge("c", "a", 3)]);
        let out = cycles(&g);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("a -> b -> c -> a"));
    }

    #[test]
    fn json_dump_is_stable_and_complete() {
        let g = build(&[edge("b", "a", 2), edge("a", "b", 1), edge("a", "b", 1)]);
        let j = to_json(&g);
        assert!(j.contains("\"nodes\""));
        assert!(j.contains("\"held\":\"a\",\"acquired\":\"b\""));
        assert_eq!(to_json(&g), j);
        // Duplicate sites deduplicate.
        assert_eq!(j.matches("\"line\":1").count(), 1, "{j}");
    }
}
