//! Diagnostics: what a rule violation looks like and how it is printed.

use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported but never fails the run.
    Warn,
    /// Fails the run (non-zero exit).
    Deny,
}

impl Severity {
    /// Lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One rule violation at one source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D1`, `P2`, `A0`, ...).
    pub rule: &'static str,
    /// Effective severity (after any `analyzer.toml` downgrade).
    pub severity: Severity,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What went wrong.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}:{}: {}\n    hint: {}",
            self.severity.label(),
            self.rule,
            self.path,
            self.line,
            self.col,
            self.message,
            self.hint
        )
    }
}

/// Sort diagnostics into the stable reporting order: path, line, col, rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
            .then(a.rule.cmp(b.rule))
    });
}

/// Escape a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a JSON array (stable field order, one object per
/// line) for CI consumption.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"hint\":\"{}\"}}",
            d.rule,
            d.severity.label(),
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.message),
            json_escape(d.hint),
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Render diagnostics as a minimal SARIF 2.1.0 log (single run, one
/// result per diagnostic, rule metadata inlined) so CI can annotate PRs.
/// Field order is fixed and the input is pre-sorted by [`sort`], so the
/// output is byte-stable for a given diagnostic set.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    use crate::engine::PRAGMA_RULES;
    use crate::rules::RULES;
    let level = |s: Severity| match s {
        Severity::Warn => "warning",
        Severity::Deny => "error",
    };
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"knots-analyzer\",\n          \"informationUri\": \"https://github.com/kube-knots\",\n          \"rules\": [",
    );
    for (i, r) in RULES.iter().chain(PRAGMA_RULES.iter()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\"help\":{{\"text\":\"{}\"}},\"defaultConfiguration\":{{\"level\":\"{}\"}}}}",
            r.id,
            json_escape(r.summary),
            json_escape(r.hint),
            level(r.severity),
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            d.rule,
            level(d.severity),
            json_escape(&d.message),
            json_escape(&d.path),
            d.line,
            d.col,
        ));
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Deny,
            path: path.into(),
            line,
            col: 1,
            message: "m".into(),
            hint: "h",
        }
    }

    #[test]
    fn stable_sort_order() {
        let mut v = vec![d("P1", "b.rs", 1), d("D1", "a.rs", 9), d("D2", "a.rs", 2)];
        sort(&mut v);
        let order: Vec<_> = v.iter().map(|x| (x.path.clone(), x.line)).collect();
        assert_eq!(order, vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]);
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut bad = d("D1", "a.rs", 1);
        bad.message = "say \"hi\"\\n".into();
        let j = to_json(&[bad]);
        assert!(j.contains("\\\"hi\\\""));
        assert!(j.starts_with('['));
        assert!(j.trim_end().ends_with(']'));
        assert_eq!(to_json(&[]), "[\n]\n");
    }

    #[test]
    fn sarif_shape_and_stability() {
        let mut bad = d("D1", "crates/sim/src/x.rs", 3);
        bad.message = "uses \"Instant\"".into();
        let s = to_sarif(&[bad.clone()]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\":\"D1\""));
        assert!(s.contains("\"level\":\"error\""));
        assert!(s.contains("\\\"Instant\\\""));
        assert!(s.contains("\"startLine\":3"));
        // Rule metadata for every rule id, including the pragma meta-rules.
        for id in ["C1", "C2", "C3", "C4", "A0", "A1"] {
            assert!(s.contains(&format!("\"id\":\"{id}\"")), "{id} missing");
        }
        // Byte-stable across renders.
        assert_eq!(s, to_sarif(&[bad]));
        // Empty set still renders a complete, parseable log.
        let empty = to_sarif(&[]);
        assert!(empty.contains("\"results\": [\n      ]"));
    }
}
