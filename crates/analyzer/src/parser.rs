//! A lightweight brace-tree / item parser layered on the lexer.
//!
//! The token rules (D1–M1) are shape-local: they look at a handful of
//! neighboring tokens. The concurrency rules (C1–C4) are *scope*-local:
//! "is this guard still live at that call?" needs to know where blocks
//! open and close and which function a token belongs to. This module
//! builds exactly that much structure — a tree of `{ … }` blocks plus the
//! list of `fn` items with their body blocks — and nothing more. It is not
//! a Rust parser; it never fails, and on unbalanced input it degrades to
//! "everything to EOF is one scope", which keeps the analyzer total on
//! arbitrary byte streams (fuzz contract).
//!
//! Statement boundaries are approximated by `;` tokens at the block's own
//! nesting depth, which is all the guard tracker needs to delimit `let`
//! initializer expressions and `drop(..)` statements.

use crate::lexer::{Tok, TokKind};

/// One `{ … }` block. Indices are token positions in the lexed stream.
#[derive(Debug, Clone)]
pub struct Block {
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the matching `}`, or `toks.len()` when unterminated.
    pub close: usize,
    /// Arena index of the enclosing block, if any.
    pub parent: Option<usize>,
    /// Nesting depth (0 for top-level blocks).
    pub depth: u32,
}

/// One `fn` item: name, position, and body block (when it has one).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name as written.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Arena index of the body block; `None` for bodiless declarations.
    pub body: Option<usize>,
}

/// The scope tree for one file: a block arena plus the `fn` items.
#[derive(Debug, Default)]
pub struct ScopeTree {
    /// All blocks, in source order of their opening brace.
    pub blocks: Vec<Block>,
    /// All `fn` items, in source order.
    pub fns: Vec<FnItem>,
}

impl ScopeTree {
    /// Arena index of the innermost block containing token `idx`, if any.
    pub fn enclosing_block(&self, idx: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (bi, b) in self.blocks.iter().enumerate() {
            if b.open < idx && idx < b.close {
                match best {
                    Some(prev) if self.blocks[prev].depth >= b.depth => {}
                    _ => best = Some(bi),
                }
            }
        }
        best
    }

    /// The `fn` item whose body contains token `idx`, if any. Nested fns
    /// resolve to the innermost one.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        let mut best: Option<(&FnItem, usize)> = None;
        for f in &self.fns {
            let Some(bi) = f.body else { continue };
            let b = &self.blocks[bi];
            if b.open <= idx && idx < b.close {
                let span = b.close - b.open;
                match best {
                    Some((_, prev_span)) if prev_span <= span => {}
                    _ => best = Some((f, span)),
                }
            }
        }
        best.map(|(f, _)| f)
    }
}

/// Build the scope tree for a token stream. Total: unbalanced braces close
/// at EOF, stray closers are ignored.
pub fn parse(toks: &[Tok]) -> ScopeTree {
    let mut tree = ScopeTree::default();
    // Stack of open block arena indices.
    let mut stack: Vec<usize> = Vec::new();
    // A `fn NAME` seen but not yet given a body. Cleared by `;` at the
    // same brace depth (bodiless declaration) or consumed by the next `{`.
    let mut pending_fn: Option<(String, u32, usize)> = None; // (name, line, depth at fn)

    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokKind::Ident(name) if name == "fn" => {
                if let Some(TokKind::Ident(fname)) = toks.get(i + 1).map(|n| &n.kind) {
                    pending_fn = Some((fname.clone(), t.line, stack.len()));
                }
            }
            TokKind::Punct('{') => {
                let parent = stack.last().copied();
                let bi = tree.blocks.len();
                tree.blocks.push(Block {
                    open: i,
                    close: toks.len(),
                    parent,
                    depth: stack.len() as u32,
                });
                // A pending fn at this depth claims the block as its body.
                if let Some((name, line, depth)) = pending_fn.take() {
                    if depth == stack.len() {
                        tree.fns.push(FnItem { name, line, body: Some(bi) });
                    } else {
                        pending_fn = Some((name, line, depth));
                    }
                }
                stack.push(bi);
            }
            TokKind::Punct('}') => {
                if let Some(bi) = stack.pop() {
                    tree.blocks[bi].close = i;
                }
            }
            TokKind::Punct(';') => {
                // A `;` before any `{` at the fn's own depth means a
                // bodiless declaration (trait method, extern).
                if let Some((name, line, depth)) = pending_fn.take() {
                    if depth == stack.len() {
                        tree.fns.push(FnItem { name, line, body: None });
                    } else {
                        pending_fn = Some((name, line, depth));
                    }
                }
            }
            _ => {}
        }
    }
    if let Some((name, line, _)) = pending_fn.take() {
        tree.fns.push(FnItem { name, line, body: None });
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_bodies_and_nesting() {
        let src = "fn outer() {\n  let x = 1;\n  fn inner() { let y = 2; }\n  { let z = 3; }\n}\nfn bodiless();\n";
        let tree = parse(&lex(src).toks);
        let names: Vec<&str> = tree.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "bodiless"]);
        assert!(tree.fns.iter().find(|f| f.name == "bodiless").unwrap().body.is_none());
        // outer's body encloses inner's body.
        let outer = tree.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = tree.fns.iter().find(|f| f.name == "inner").unwrap();
        let (ob, ib) = (&tree.blocks[outer.body.unwrap()], &tree.blocks[inner.body.unwrap()]);
        assert!(ob.open < ib.open && ib.close < ob.close);
        assert_eq!(tree.blocks[inner.body.unwrap()].depth, 1);
    }

    #[test]
    fn enclosing_lookups_resolve_innermost() {
        let src = "fn a() { fn b() { drop(1); } }";
        let lexed = lex(src);
        let tree = parse(&lexed.toks);
        // Find the `drop` token.
        let di = lexed.toks.iter().position(|t| t.ident() == Some("drop")).unwrap();
        assert_eq!(tree.enclosing_fn(di).unwrap().name, "b");
        let bi = tree.enclosing_block(di).unwrap();
        assert_eq!(tree.blocks[bi].depth, 1);
    }

    #[test]
    fn unbalanced_input_is_total() {
        for src in ["fn f() { let x = 1;", "}}}{", "fn", "fn f", "{ fn g(", "fn f() -> T;"] {
            let tree = parse(&lex(src).toks);
            // Nothing to assert beyond "did not panic and closes at EOF".
            for b in &tree.blocks {
                assert!(b.close >= b.open);
            }
        }
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "type F = fn(u32) -> u32; fn real() {}";
        let tree = parse(&lex(src).toks);
        let names: Vec<&str> = tree.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }
}
