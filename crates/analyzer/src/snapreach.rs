//! Rule R1 — snapshot reachability: no `HashMap`/`HashSet`/`Instant`
//! fields in types reachable from the durable control-plane snapshot.
//!
//! `crates/recovery` checkpoints the paused control plane by serializing
//! [`OrchestratorState`] into a [`Snapshot`] envelope and later resumes it
//! bit-identically. That contract dies quietly if a hash collection
//! (iteration order random per process) or a wall-clock `Instant`
//! (meaningless after a restart) sneaks into any type the snapshot
//! transitively embeds — the serializer would either leak per-process
//! order into the payload bytes or capture a value that cannot be
//! restored. D1/D2 already ban these types in *decision-path* crates;
//! R1 closes the remaining gap: crates outside that list (chaos,
//! workloads, obs, …) may use hash collections freely **unless** the type
//! is part of the snapshot closure.
//!
//! The pass is name-based and deliberately over-approximate: each
//! `struct`/`enum` declaration in library code contributes its name plus
//! every capitalized type identifier its body mentions (field types,
//! variant payloads); reachability is a BFS over those name edges from
//! the roots `Snapshot` and `OrchestratorState` (the envelope and its
//! payload type — the payload is carried as serialized JSON, so the edge
//! exists in the format, not in a field type). Same-name types in
//! different crates are merged — a false edge costs at worst a pragma
//! with a written reason, while a missed edge costs a corrupted resume.
//!
//! [`OrchestratorState`]: ../../knots_core/orchestrator/struct.OrchestratorState.html
//! [`Snapshot`]: ../../knots_recovery/snapshot/struct.Snapshot.html

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::engine::FileContext;
use crate::lexer::Tok;
use crate::rules;

/// Type names whose reachability from a root makes every member bad-field
/// diagnosable. Both spellings of the wall clock are included — D1 bans
/// them in library code anyway, but R1's message says *why it corrupts a
/// snapshot*, which is the actionable part.
const BAD_TYPES: [&str; 4] = ["HashMap", "HashSet", "Instant", "SystemTime"];

/// Roots of the snapshot closure: the envelope and its payload type.
const ROOTS: [&str; 2] = ["Snapshot", "OrchestratorState"];

/// One `struct`/`enum` declaration and the type names its body mentions.
#[derive(Debug, Clone)]
pub struct TypeDecl {
    /// Repo-relative path of the declaring file.
    pub path: String,
    /// Declared type name.
    pub name: String,
    /// Line of the `struct`/`enum` keyword (1-based).
    pub line: u32,
    /// Capitalized type identifiers referenced in the body — the
    /// reachability edges (deduplicated, source order).
    pub refs: Vec<String>,
    /// Forbidden type mentions found in the body.
    pub bad: Vec<BadMention>,
}

/// One mention of a forbidden type inside a declaration body.
#[derive(Debug, Clone)]
pub struct BadMention {
    /// Which of [`BAD_TYPES`] was mentioned.
    pub ty: String,
    /// 1-based line of the mention.
    pub line: u32,
    /// 1-based column of the mention.
    pub col: u32,
}

/// Collect every `struct`/`enum` declaration in one library file's token
/// stream, skipping `#[cfg(test)]` regions (test helper types are not
/// snapshot state). Non-library files contribute nothing: integration
/// tests and benches freely declare scratch types whose names may collide
/// with real state types.
pub fn collect(ctx: &FileContext, toks: &[Tok], test_lines: &[(u32, u32)]) -> Vec<TypeDecl> {
    if !ctx.is_library() {
        return Vec::new();
    }
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_decl_kw = toks[i].ident().is_some_and(|n| n == "struct" || n == "enum");
        if !is_decl_kw || in_test(toks[i].line) {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
            i += 1;
            continue;
        };
        let line = toks[i].line;
        let name = name.to_string();

        // Walk past generics and any `where` clause to the body opener.
        // `{`/`(` starts the body, `;` ends a bodiless (unit) struct.
        let mut j = i + 2;
        let mut angle = 0usize;
        let body_open = loop {
            let Some(t) = toks.get(j) else { break None };
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = angle.saturating_sub(1);
            } else if angle == 0 && (t.is_punct('{') || t.is_punct('(')) {
                break Some(j);
            } else if angle == 0 && t.is_punct(';') {
                break None;
            }
            j += 1;
        };
        let Some(open) = body_open else {
            out.push(TypeDecl { path: ctx.path.clone(), name, line, refs: Vec::new(), bad: Vec::new() });
            i = j + 1;
            continue;
        };
        let (oc, cc) = if toks[open].is_punct('{') { ('{', '}') } else { ('(', ')') };
        let close = matching(toks, open, oc, cc).unwrap_or(toks.len() - 1);

        let mut refs: Vec<String> = Vec::new();
        let mut bad = Vec::new();
        let mut k = open + 1;
        while k < close {
            let t = &toks[k];
            // Skip attribute runs (`#[serde(default)]` and friends): their
            // idents are trait/config names, not field types.
            if t.is_punct('#') && toks.get(k + 1).is_some_and(|n| n.is_punct('[')) {
                k = matching(toks, k + 1, '[', ']').map_or(close, |c| c + 1);
                continue;
            }
            if let Some(id) = t.ident() {
                if BAD_TYPES.contains(&id) {
                    bad.push(BadMention { ty: id.to_string(), line: t.line, col: t.col });
                } else if id.starts_with(|c: char| c.is_ascii_uppercase())
                    && !refs.iter().any(|r| r == id)
                {
                    refs.push(id.to_string());
                }
            }
            k += 1;
        }
        out.push(TypeDecl { path: ctx.path.clone(), name, line, refs, bad });
        i = close + 1;
    }
    out
}

/// Judge a set of declarations (one file's for `check_source`, the whole
/// workspace's for `check_root`): BFS the name-reference graph from
/// [`ROOTS`] and report every forbidden mention inside a reachable type.
pub fn judge(decls: &[TypeDecl]) -> Vec<Diagnostic> {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, d) in decls.iter().enumerate() {
        by_name.entry(d.name.as_str()).or_default().push(i);
    }
    let mut reach = vec![false; decls.len()];
    let mut stack: Vec<usize> =
        ROOTS.iter().flat_map(|r| by_name.get(r).into_iter().flatten().copied()).collect();
    while let Some(i) = stack.pop() {
        if reach[i] {
            continue;
        }
        reach[i] = true;
        for r in &decls[i].refs {
            for &n in by_name.get(r.as_str()).into_iter().flatten() {
                if !reach[n] {
                    stack.push(n);
                }
            }
        }
    }
    let mut out = Vec::new();
    for (i, d) in decls.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        for b in &d.bad {
            out.push(Diagnostic {
                rule: rules::R1.id,
                severity: rules::R1.severity,
                path: d.path.clone(),
                line: b.line,
                col: b.col,
                message: format!(
                    "`{}` field in `{}`, which is snapshot-reachable: hash iteration order \
                     (or a wall-clock instant) would leak into the checkpoint payload and \
                     break bit-identical resume",
                    b.ty, d.name
                ),
                hint: rules::R1.hint,
            });
        }
    }
    out
}

/// Index of the token matching the opener at `open`, or `None` when the
/// stream ends unbalanced.
fn matching(toks: &[Tok], open: usize, oc: char, cc: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{classify, test_regions};
    use crate::lexer::lex;

    fn decls(rel: &str, src: &str) -> Vec<TypeDecl> {
        let lexed = lex(src);
        let regions = test_regions(&lexed.toks);
        collect(&classify(rel), &lexed.toks, &regions)
    }

    #[test]
    fn collects_structs_enums_refs_and_bad_mentions() {
        let src = "pub struct Snapshot { pub at: SimTime, pub inner: Inner }\n\
                   pub struct Inner(HashMap<u32, u32>);\n\
                   pub enum Ev { A, B(Instant), C { t: Other } }\n\
                   pub struct Unit;\n";
        let d = decls("crates/chaos/src/x.rs", src);
        let names: Vec<&str> = d.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["Snapshot", "Inner", "Ev", "Unit"]);
        assert_eq!(d[0].refs, vec!["SimTime", "Inner"]);
        assert_eq!(d[1].bad.len(), 1);
        assert_eq!(d[1].bad[0].ty, "HashMap");
        assert_eq!(d[2].bad[0].ty, "Instant");
        assert_eq!(d[2].refs, vec!["A", "B", "C", "Other"]);
        assert!(d[3].refs.is_empty() && d[3].bad.is_empty());
    }

    #[test]
    fn skips_test_regions_attributes_and_non_library_files() {
        let src = "#[derive(Clone)]\npub struct Live { #[serde(default)] pub m: HashMap<u8, u8> }\n\
                   #[cfg(test)]\nmod t { struct Helper { m: HashMap<u8, u8> } }\n";
        let d = decls("crates/chaos/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].name, "Live");
        assert_eq!(d[0].bad.len(), 1);
        assert!(decls("crates/chaos/tests/x.rs", src).is_empty());
    }

    #[test]
    fn reachability_crosses_files_and_spares_unreachable_types() {
        let a = decls(
            "crates/core/src/a.rs",
            "pub struct OrchestratorState { pub chaos: ChaosEngineState }\n",
        );
        let b = decls(
            "crates/chaos/src/b.rs",
            "pub struct ChaosEngineState { pub seen: HashSet<u64> }\n\
             pub struct FreeStanding { pub cache: HashMap<u64, u64> }\n",
        );
        let mut all = a;
        all.extend(b);
        let diags = judge(&all);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "R1");
        assert_eq!(diags[0].path, "crates/chaos/src/b.rs");
        assert!(diags[0].message.contains("ChaosEngineState"), "{diags:?}");
    }

    #[test]
    fn no_roots_means_no_diagnostics() {
        let d = decls("crates/chaos/src/x.rs", "pub struct Lone { pub m: HashMap<u8, u8> }\n");
        assert!(judge(&d).is_empty());
    }
}
