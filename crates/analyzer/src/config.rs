//! `analyzer.toml` — the per-file allowlist and severity overrides.
//!
//! The parser covers exactly the TOML subset the config needs (and the
//! engine validates what it reads), keeping the analyzer dependency-free:
//!
//! ```toml
//! # File-level allowlist entries: `path` is a repo-relative prefix.
//! [[allow]]
//! rule = "D1"                      # a rule id, or "*" for all rules
//! path = "crates/obs/src/span.rs"  # file, or directory prefix ending in /
//! reason = "span timers measure wall-clock by design"
//!
//! # Optional global severity downgrades.
//! [severity]
//! D2 = "warn"
//! ```

use crate::diag::Severity;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id or `"*"`.
    pub rule: String,
    /// Repo-relative path prefix (forward slashes).
    pub path: String,
    /// Mandatory human reason.
    pub reason: String,
}

/// Parsed configuration.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// File-level allowlist.
    pub allow: Vec<AllowEntry>,
    /// `(rule id, severity)` overrides.
    pub severity: Vec<(String, Severity)>,
}

impl Config {
    /// Does an allowlist entry cover `(rule, path)`?
    pub fn allows(&self, rule: &str, path: &str) -> bool {
        self.allow
            .iter()
            .any(|a| (a.rule == "*" || a.rule == rule) && path.starts_with(a.path.as_str()))
    }

    /// Effective severity for a rule.
    pub fn severity_for(&self, rule: &str, default: Severity) -> Severity {
        self.severity.iter().find(|(r, _)| r == rule).map(|(_, s)| *s).unwrap_or(default)
    }
}

/// Parse the config text. Returns `Err` with a line-tagged message on any
/// construct outside the supported subset — a config typo must fail loudly,
/// not silently allow nothing.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    #[derive(PartialEq)]
    enum Section {
        None,
        Allow,
        Severity,
    }
    let mut section = Section::None;
    let mut current: Option<(Option<String>, Option<String>, Option<String>)> = None;

    let mut finish =
        |cur: &mut Option<(Option<String>, Option<String>, Option<String>)>| -> Result<(), String> {
            if let Some((rule, path, reason)) = cur.take() {
                let entry = AllowEntry {
                    rule: rule.ok_or("[[allow] entry missing `rule`")?,
                    path: path.ok_or("[[allow]] entry missing `path`")?,
                    reason: reason.ok_or("[[allow]] entry missing `reason`")?,
                };
                if entry.reason.trim().is_empty() {
                    return Err(format!("[[allow]] {}: empty reason", entry.path));
                }
                if !crate::rules::is_known_rule(&entry.rule) {
                    return Err(format!("[[allow]] unknown rule `{}`", entry.rule));
                }
                cfg.allow.push(entry);
            }
            Ok(())
        };

    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let at = |m: &str| format!("analyzer.toml:{}: {m}", no + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut current)?;
            section = Section::Allow;
            current = Some((None, None, None));
            continue;
        }
        if line == "[severity]" {
            finish(&mut current)?;
            section = Section::Severity;
            continue;
        }
        if line.starts_with('[') {
            return Err(at(&format!("unknown section {line}")));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(at("expected `key = \"value\"`"));
        };
        let key = key.trim();
        let value = value.trim();
        let unquoted = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| at("values must be double-quoted strings"))?;
        match section {
            Section::Allow => {
                let slot = current.as_mut().ok_or_else(|| at("key outside [[allow]]"))?;
                match key {
                    "rule" => slot.0 = Some(unquoted.to_string()),
                    "path" => slot.1 = Some(unquoted.to_string()),
                    "reason" => slot.2 = Some(unquoted.to_string()),
                    _ => return Err(at(&format!("unknown [[allow]] key `{key}`"))),
                }
            }
            Section::Severity => {
                if !crate::rules::is_known_rule(key) {
                    return Err(at(&format!("unknown rule `{key}` in [severity]")));
                }
                let sev = match unquoted {
                    "warn" => Severity::Warn,
                    "deny" => Severity::Deny,
                    other => return Err(at(&format!("unknown severity `{other}`"))),
                };
                cfg.severity.push((key.to_string(), sev));
            }
            Section::None => return Err(at("key before any section")),
        }
    }
    finish(&mut current)?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cfg = parse(
            "# comment\n\n[[allow]]\nrule = \"D1\"\npath = \"crates/obs/\"\nreason = \"spans\"\n\
             \n[[allow]]\nrule = \"*\"\npath = \"shims/\"\nreason = \"vendored\"\n\
             \n[severity]\nD2 = \"warn\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allow.len(), 2);
        assert!(cfg.allows("D1", "crates/obs/src/span.rs"));
        assert!(cfg.allows("P1", "shims/rand/src/lib.rs"));
        assert!(!cfg.allows("D2", "crates/sim/src/cluster.rs"));
        assert_eq!(cfg.severity_for("D2", Severity::Deny), Severity::Warn);
        assert_eq!(cfg.severity_for("D1", Severity::Deny), Severity::Deny);
    }

    #[test]
    fn rejects_missing_reason_and_unknown_rules() {
        assert!(parse("[[allow]]\nrule = \"D1\"\npath = \"x\"\n").is_err());
        assert!(parse("[[allow]]\nrule = \"D1\"\npath = \"x\"\nreason = \" \"\n").is_err());
        assert!(parse("[[allow]]\nrule = \"Z9\"\npath = \"x\"\nreason = \"r\"\n").is_err());
        assert!(parse("[severity]\nZ9 = \"warn\"\n").is_err());
        assert!(parse("stray = \"value\"\n").is_err());
    }
}
