//! `knots-analyzer` CLI.
//!
//! ```text
//! knots-analyzer check [--root <dir>] [--format text|json|sarif] [--self-check]
//! knots-analyzer --workspace          # alias for `check` on the repo root
//! knots-analyzer --lock-graph [--root <dir>] [--format json]
//! knots-analyzer --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 deny-level findings or self-check mismatch,
//! 2 usage/config error.

use std::path::PathBuf;
use std::process::ExitCode;

use knots_analyzer::diag::{to_json, to_sarif, Severity};
use knots_analyzer::engine::PRAGMA_RULES;
use knots_analyzer::rules::RULES;
use knots_analyzer::{engine, lockgraph, selfcheck};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Opts {
    root: PathBuf,
    format: Format,
    self_check: bool,
    list_rules: bool,
    lock_graph: bool,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        format: Format::Text,
        self_check: false,
        list_rules: false,
        lock_graph: false,
    };
    let mut saw_command = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "--workspace" => saw_command = true,
            "--list-rules" => {
                opts.list_rules = true;
                saw_command = true;
            }
            "--lock-graph" => {
                opts.lock_graph = true;
                saw_command = true;
            }
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                Some("text") => opts.format = Format::Text,
                other => {
                    return Err(format!(
                        "--format expects `json`, `sarif` or `text`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--self-check" => opts.self_check = true,
            "--root" => match it.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err("--root expects a directory".into()),
            },
            other => return Err(format!("unknown argument `{other}` (try `check`)")),
        }
    }
    if !saw_command && !opts.self_check {
        return Err("usage: knots-analyzer check [--root <dir>] [--format text|json|sarif] \
                    [--self-check] | --workspace | --lock-graph | --list-rules"
            .into());
    }
    Ok(opts)
}

fn list_rules() {
    println!("{:<4} {:<5} summary", "id", "sev");
    for r in RULES.iter().chain(PRAGMA_RULES.iter()) {
        println!("{:<4} {:<5} {}", r.id, r.severity.label(), r.summary);
    }
}

fn run_self_check() -> bool {
    let mut ok = true;
    for leg in selfcheck::run() {
        let status = if leg.ok() { "ok" } else { "MISMATCH" };
        println!(
            "self-check {:<10} run-a={:016x} run-b={:016x} obs={:016x}  {status}",
            leg.scheduler, leg.digest_a, leg.digest_b, leg.digest_obs
        );
        ok &= leg.ok();
    }
    if ok {
        println!("self-check: all schedulers byte-identical across same-seed re-runs");
    }
    let fmt = selfcheck::format_digests();
    let status = if fmt.ok() { "ok" } else { "MISMATCH" };
    println!(
        "self-check formats    json={:016x}/{:016x} sarif={:016x}/{:016x}  {status}",
        fmt.json_a, fmt.json_b, fmt.sarif_a, fmt.sarif_b
    );
    ok && fmt.ok()
}

/// Dump the workspace lock-acquisition graph. Text format prints edges;
/// `--format json` emits the machine-readable graph.
fn run_lock_graph(opts: &Opts) -> Result<(), String> {
    let analyses = engine::analyze_root(&opts.root)?;
    let mut edges = Vec::new();
    for a in &analyses {
        edges.extend(a.edges.iter().cloned());
    }
    let graph = lockgraph::build(&edges);
    if opts.format == Format::Json {
        print!("{}", lockgraph::to_json(&graph));
    } else {
        for ((held, acquired), sites) in &graph.sites {
            for (path, line, col) in sites {
                println!("{held} -> {acquired}  at {path}:{line}:{col}");
            }
        }
        println!("lock-graph: {} locks, {} edges", graph.adj.len(), graph.sites.len());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }
    if opts.lock_graph {
        return match run_lock_graph(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let diags = match knots_analyzer::check_root(&opts.root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let denies = diags.iter().filter(|d| d.severity == Severity::Deny).count();
    let warns = diags.len() - denies;
    match opts.format {
        Format::Json => print!("{}", to_json(&diags)),
        Format::Sarif => print!("{}", to_sarif(&diags)),
        Format::Text => {
            for d in &diags {
                println!("{d}");
            }
            println!("knots-analyzer: {denies} deny, {warns} warn");
        }
    }

    let mut failed = denies > 0;
    if opts.self_check {
        failed |= !run_self_check();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
