//! `knots-analyzer` CLI.
//!
//! ```text
//! knots-analyzer check [--root <dir>] [--format json] [--self-check]
//! knots-analyzer --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 deny-level findings or self-check mismatch,
//! 2 usage/config error.

use std::path::PathBuf;
use std::process::ExitCode;

use knots_analyzer::diag::{to_json, Severity};
use knots_analyzer::engine::PRAGMA_RULES;
use knots_analyzer::rules::RULES;
use knots_analyzer::selfcheck;

struct Opts {
    root: PathBuf,
    json: bool,
    self_check: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts =
        Opts { root: PathBuf::from("."), json: false, self_check: false, list_rules: false };
    let mut saw_command = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" => saw_command = true,
            "--list-rules" => {
                opts.list_rules = true;
                saw_command = true;
            }
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => {
                    return Err(format!(
                        "--format expects `json` or `text`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--self-check" => opts.self_check = true,
            "--root" => match it.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err("--root expects a directory".into()),
            },
            other => return Err(format!("unknown argument `{other}` (try `check`)")),
        }
    }
    if !saw_command && !opts.self_check {
        return Err(
            "usage: knots-analyzer check [--root <dir>] [--format json] [--self-check]".into()
        );
    }
    Ok(opts)
}

fn list_rules() {
    println!("{:<4} {:<5} summary", "id", "sev");
    for r in RULES.iter().chain(PRAGMA_RULES.iter()) {
        println!("{:<4} {:<5} {}", r.id, r.severity.label(), r.summary);
    }
}

fn run_self_check() -> bool {
    let mut ok = true;
    for leg in selfcheck::run() {
        let status = if leg.ok() { "ok" } else { "MISMATCH" };
        println!(
            "self-check {:<10} run-a={:016x} run-b={:016x} obs={:016x}  {status}",
            leg.scheduler, leg.digest_a, leg.digest_b, leg.digest_obs
        );
        ok &= leg.ok();
    }
    if ok {
        println!("self-check: all schedulers byte-identical across same-seed re-runs");
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }

    let diags = match knots_analyzer::check_root(&opts.root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let denies = diags.iter().filter(|d| d.severity == Severity::Deny).count();
    let warns = diags.len() - denies;
    if opts.json {
        print!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        println!("knots-analyzer: {denies} deny, {warns} warn");
    }

    let mut failed = denies > 0;
    if opts.self_check {
        failed |= !run_self_check();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
