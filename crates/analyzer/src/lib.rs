//! # knots-analyzer — the workspace lint engine
//!
//! Kube-Knots' headline claim is reproducibility: a run is a pure function
//! of `(scheduler, workload, seed)`. That property is easy to assert and
//! easy to erode — one `HashMap` iteration in a tie-break, one
//! `Instant::now()` in a decision path, one `partial_cmp().unwrap()` on a
//! NaN — so this crate enforces it mechanically:
//!
//! * [`lexer`] tokenizes Rust source with enough fidelity that rule text
//!   inside strings, comments and raw strings can never fire;
//! * [`rules`] holds the six invariant rules (D1–D3, P1–P2, H1);
//! * [`engine`] walks the workspace, classifies files, carves out
//!   `#[cfg(test)]` regions, and applies pragma/config suppression;
//! * [`config`] parses `analyzer.toml` (file-level allowlist, severity
//!   overrides);
//! * [`selfcheck`] is the dynamic counterpart: a pinned experiment run
//!   twice with the same seed must produce byte-identical reports.
//!
//! Run it with `cargo run -p knots-analyzer -- check` (or `--format json`
//! for CI) and `cargo run -p knots-analyzer -- check --self-check`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod selfcheck;

pub use diag::{Diagnostic, Severity};
pub use engine::{check_root, check_source, classify, FileContext, FileKind};
pub use selfcheck::report_digest;
