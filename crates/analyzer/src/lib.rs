//! # knots-analyzer — the workspace lint engine
//!
//! Kube-Knots' headline claim is reproducibility: a run is a pure function
//! of `(scheduler, workload, seed)`. That property is easy to assert and
//! easy to erode — one `HashMap` iteration in a tie-break, one
//! `Instant::now()` in a decision path, one `partial_cmp().unwrap()` on a
//! NaN — so this crate enforces it mechanically:
//!
//! * [`lexer`] tokenizes Rust source with enough fidelity that rule text
//!   inside strings, comments and raw strings can never fire;
//! * [`parser`] layers a brace-tree/item scope parser on the token stream
//!   (fn boundaries, block nesting, statement ends) for the scope-aware
//!   rules;
//! * [`rules`] holds the token-shaped rules (D1–D3, P1–P2, H1, M1);
//! * [`conc`] holds the scope-aware concurrency rules: the guard-lifetime
//!   tracker (C1), `unsafe` hygiene (C3), channel-drain determinism (C4),
//!   and the lock-edge recorder feeding [`lockgraph`] (C2);
//! * [`snapreach`] holds the snapshot-reachability rule (R1): no
//!   `HashMap`/`HashSet`/`Instant` fields in types the durable
//!   control-plane snapshot transitively embeds;
//! * [`engine`] walks the workspace, classifies files, carves out
//!   `#[cfg(test)]` regions, and applies pragma/config suppression;
//! * [`config`] parses `analyzer.toml` (file-level allowlist, severity
//!   overrides);
//! * [`selfcheck`] is the dynamic counterpart: a pinned experiment run
//!   twice with the same seed must produce byte-identical reports, and
//!   both output formats must render byte-identically across renders.
//!
//! Run it with `cargo run -p knots-analyzer -- --workspace` (or
//! `check --format json|sarif` for CI), `--lock-graph` for the C2 graph,
//! and `check --self-check` for the dynamic harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conc;
pub mod config;
pub mod diag;
pub mod engine;
pub mod events;
pub mod lexer;
pub mod lockgraph;
pub mod parser;
pub mod rules;
pub mod selfcheck;
pub mod shardmerge;
pub mod snapreach;

pub use diag::{Diagnostic, Severity};
pub use engine::{check_root, check_source, classify, FileContext, FileKind};
pub use selfcheck::report_digest;
