//! The engine: file discovery, file classification, `#[cfg(test)]` region
//! detection, pragma handling, and the per-file check pipeline that ties
//! lexer → rules → suppression → severity together.
//!
//! Suppression has exactly two mechanisms, both requiring a written reason:
//!
//! * per-site pragma — a line comment of the form
//!   `knots-allow: <rule>[, <rule>]* -- <reason>` (after the `//`), which
//!   covers its own line and the line immediately below it;
//! * per-file `analyzer.toml` entry — see [`crate::config`].
//!
//! Pragmas are themselves linted: a pragma with no ` -- reason` or an
//! unknown rule id is `A0` (deny), and a pragma that suppressed nothing is
//! `A1` (warn), so stale allowances cannot accumulate silently.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::diag::{sort, Diagnostic, Severity};
use crate::lexer::{lex, LineComment, Tok, TokKind};
use crate::rules::{self, Rule};

/// Meta-rules about the suppression machinery itself.
pub const PRAGMA_RULES: [Rule; 2] = [
    Rule {
        id: "A0",
        severity: Severity::Deny,
        summary: "malformed knots-allow pragma (missing ` -- reason` or unknown rule id)",
        hint: "write `// knots-allow: <rule>[, <rule>] -- <reason>`; the reason is mandatory",
    },
    Rule {
        id: "A1",
        severity: Severity::Warn,
        summary: "knots-allow pragma that suppressed nothing",
        hint: "delete the stale pragma (it covers its own line and the next line only)",
    },
];

/// What role a file plays in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under some crate's `src/` — the strictest tier.
    Library,
    /// Binary entry point (`src/main.rs`, `src/bin/*`): P1/H1 do not bind.
    Binary,
    /// Integration tests, examples, benches, and the `bench` harness crate.
    Harness,
}

/// Where a file sits: its path, owning crate, and role.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Crate directory name (`sched`, `sim`, ...; `kube-knots` for the root
    /// package; empty when unknown).
    pub crate_name: String,
    /// Role of the file.
    pub kind: FileKind,
}

impl FileContext {
    /// True for library code, where every rule binds.
    pub fn is_library(&self) -> bool {
        self.kind == FileKind::Library
    }
}

/// Classify a repo-relative path.
pub fn classify(rel: &str) -> FileContext {
    let parts: Vec<&str> = rel.split('/').collect();
    let ctx = |crate_name: &str, kind| FileContext {
        path: rel.to_string(),
        crate_name: crate_name.to_string(),
        kind,
    };
    match parts.as_slice() {
        ["crates", name, rest @ ..] | ["shims", name, rest @ ..] => match rest {
            // The bench crate is a figure-generation harness end to end:
            // its "library" is plotting glue driven by the bins.
            _ if *name == "bench" => ctx(name, FileKind::Harness),
            ["src", "main.rs"] => ctx(name, FileKind::Binary),
            ["src", "bin", ..] => ctx(name, FileKind::Binary),
            ["src", ..] => ctx(name, FileKind::Library),
            ["tests", ..] | ["benches", ..] | ["examples", ..] => ctx(name, FileKind::Harness),
            _ => ctx(name, FileKind::Harness), // build.rs and friends
        },
        ["src", "main.rs"] | ["src", "bin", ..] => ctx("kube-knots", FileKind::Binary),
        ["src", ..] => ctx("kube-knots", FileKind::Library),
        _ => ctx("", FileKind::Harness), // root tests/, examples/, stray files
    }
}

/// Find every `.rs` file under `root`, repo-relative, sorted — the walk
/// order is part of the deterministic output contract. Skips `target` and
/// dot-directories.
pub fn discover(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(dir) = stack.pop() {
        let abs = root.join(&dir);
        let entries = fs::read_dir(&abs).map_err(|e| format!("read_dir {}: {e}", abs.display()))?;
        let mut names: Vec<String> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", abs.display()))?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort();
        for name in names {
            let child_abs = abs.join(&name);
            let child_rel =
                if dir.as_os_str().is_empty() { PathBuf::from(&name) } else { dir.join(&name) };
            if child_abs.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(child_rel);
            } else if name.ends_with(".rs") {
                out.push(child_rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Line ranges `(start, end)` inside `#[cfg(test)]` / `#[test]` items.
///
/// An attribute is test-gating only when its tokens are exactly
/// `cfg ( test )` or `test` — `cfg(not(test))` and `cfg(all(test, ..))`
/// deliberately do not match (the former is live code, the latter is rare
/// enough that a pragma is the right tool).
pub fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let attr_start = toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['));
        if !attr_start {
            i += 1;
            continue;
        }
        let Some(close) = matching(toks, i + 1, '[', ']') else { break };
        if attr_is_test(&toks[i + 2..close]) {
            let start_line = toks[i].line;
            // Step over any further attributes on the same item.
            let mut j = close + 1;
            while j < toks.len()
                && toks[j].is_punct('#')
                && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
            {
                match matching(toks, j + 1, '[', ']') {
                    Some(c) => j = c + 1,
                    None => break,
                }
            }
            // The item body is the first `{ .. }` block; a `;` first means
            // a bodiless item and the region ends there.
            let mut end_line = u32::MAX; // unterminated: gate to EOF
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    if let Some(cb) = matching(toks, j, '{', '}') {
                        end_line = toks[cb].line;
                    }
                    break;
                }
                if toks[j].is_punct(';') {
                    end_line = toks[j].line;
                    break;
                }
                j += 1;
            }
            out.push((start_line, end_line));
        }
        i = close + 1;
    }
    out
}

/// True when the attribute token slice is exactly `cfg ( test )` or `test`.
fn attr_is_test(inner: &[Tok]) -> bool {
    let shape: Vec<&TokKind> = inner.iter().map(|t| &t.kind).collect();
    match shape.as_slice() {
        [TokKind::Ident(a)] => a == "test",
        [TokKind::Ident(a), TokKind::Punct('('), TokKind::Ident(b), TokKind::Punct(')')] => {
            a == "cfg" && b == "test"
        }
        _ => false,
    }
}

/// Index of the token matching the opener at `open`, or `None`.
fn matching(toks: &[Tok], open: usize, oc: char, cc: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// One parsed suppression pragma.
#[derive(Debug)]
struct Pragma {
    rules: Vec<String>,
    line: u32,
    /// Malformed pragmas never suppress (they already produced an A0).
    well_formed: bool,
}

/// Per-file analysis output, before suppression. [`check_root`] aggregates
/// the lock edges workspace-wide (rule C2 is a whole-program property),
/// then routes every diagnostic back through its file's pragma/config
/// suppression via [`finish_file`].
#[derive(Debug)]
pub struct FileAnalysis {
    /// Repo-relative path.
    pub rel: String,
    /// Raw diagnostics from every per-file rule (D/P/H/M + C1/C3/C4 + E1).
    raw: Vec<Diagnostic>,
    /// Lock-acquisition edges for the workspace graph.
    pub edges: Vec<crate::conc::LockEdge>,
    /// Type declarations for the snapshot-reachability graph (rule R1 is a
    /// whole-program property like C2: reachability crosses crates).
    pub types: Vec<crate::snapreach::TypeDecl>,
    pragmas: Vec<Pragma>,
    pragma_diags: Vec<Diagnostic>,
}

/// Extract pragmas from the file's line comments. Malformed pragmas are
/// reported as `A0` diagnostics immediately.
fn parse_pragmas(comments: &[LineComment], path: &str) -> (Vec<Pragma>, Vec<Diagnostic>) {
    let mut pragmas = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        // Strip `//`, doc-comment markers, and leading space; only a comment
        // that *begins* with the marker is a pragma, so prose that merely
        // mentions `knots-allow` (in backticks, say) is left alone.
        let body = c.text.trim_start_matches('/').trim_start_matches(['!', '/']).trim_start();
        if !body.starts_with("knots-allow") {
            continue;
        }
        let a0 = |msg: String| Diagnostic {
            rule: PRAGMA_RULES[0].id,
            severity: PRAGMA_RULES[0].severity,
            path: path.to_string(),
            line: c.line,
            col: 1,
            message: msg,
            hint: PRAGMA_RULES[0].hint,
        };
        let Some(rest) = body.strip_prefix("knots-allow:") else {
            diags.push(a0("`knots-allow` pragma missing the `:` after the keyword".into()));
            pragmas.push(Pragma { rules: Vec::new(), line: c.line, well_formed: false });
            continue;
        };
        let Some((rule_part, reason)) = rest.split_once("--") else {
            diags.push(a0("pragma has no ` -- <reason>`; every suppression must say why".into()));
            pragmas.push(Pragma { rules: Vec::new(), line: c.line, well_formed: false });
            continue;
        };
        let rules_list: Vec<String> =
            rule_part.split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
        let unknown: Vec<&String> =
            rules_list.iter().filter(|r| !rules::is_known_rule(r)).collect();
        if rules_list.is_empty() || !unknown.is_empty() || reason.trim().is_empty() {
            let msg = if reason.trim().is_empty() {
                "pragma has an empty reason; every suppression must say why".to_string()
            } else if rules_list.is_empty() {
                "pragma names no rules".to_string()
            } else {
                format!(
                    "pragma names unknown rule(s): {}",
                    unknown.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
                )
            };
            diags.push(a0(msg));
            pragmas.push(Pragma { rules: Vec::new(), line: c.line, well_formed: false });
            continue;
        }
        pragmas.push(Pragma { rules: rules_list, line: c.line, well_formed: true });
    }
    (pragmas, diags)
}

/// Phase one: lex, classify, and run every per-file rule (token rules plus
/// the scope-aware C1/C3/C4 and E1), collecting lock edges for the
/// workspace graph. No suppression happens here.
pub fn analyze_source(rel: &str, src: &str) -> FileAnalysis {
    let lexed = lex(src);
    let ctx = classify(rel);
    let regions = test_regions(&lexed.toks);
    let mut raw = Vec::new();
    rules::scan(&lexed.toks, &ctx, &regions, &mut raw);
    let tree = crate::parser::parse(&lexed.toks);
    let edges = crate::conc::scan(&lexed.toks, &tree, &lexed.comments, &ctx, &regions, &mut raw);
    crate::events::scan(&lexed.toks, &tree, &ctx, &regions, &mut raw);
    crate::shardmerge::scan(&lexed.toks, &tree, &ctx, &regions, &mut raw);
    let types = crate::snapreach::collect(&ctx, &lexed.toks, &regions);
    let (pragmas, pragma_diags) = parse_pragmas(&lexed.comments, rel);
    FileAnalysis { rel: rel.to_string(), raw, edges, types, pragmas, pragma_diags }
}

/// Phase two: apply pragma suppression (tracking usage per rule id so a
/// half-stale `P1,C1` pragma still draws an A1 for the dead half), config
/// allowlisting, A1 staleness, and severity overrides. `extra` carries
/// workspace-level diagnostics (C2 cycles) anchored in this file.
pub fn finish_file(a: FileAnalysis, extra: Vec<Diagnostic>, cfg: &Config) -> Vec<Diagnostic> {
    let FileAnalysis { rel, mut raw, pragmas, pragma_diags, .. } = a;
    raw.extend(extra);
    let mut used: Vec<Vec<bool>> = pragmas.iter().map(|p| vec![false; p.rules.len()]).collect();
    let mut kept: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for (pi, p) in pragmas.iter().enumerate() {
            let covers_line = p.line == d.line || p.line + 1 == d.line;
            if !(p.well_formed && covers_line) {
                continue;
            }
            for (ri, r) in p.rules.iter().enumerate() {
                if r == "*" || r == d.rule {
                    used[pi][ri] = true;
                    suppressed = true;
                }
            }
        }
        if suppressed || cfg.allows(d.rule, &rel) {
            continue;
        }
        kept.push(d);
    }
    let mut meta = pragma_diags;
    for (pi, p) in pragmas.iter().enumerate() {
        if !p.well_formed {
            continue;
        }
        let stale: Vec<&str> = p
            .rules
            .iter()
            .enumerate()
            .filter(|(ri, _)| !used[pi][*ri])
            .map(|(_, r)| r.as_str())
            .collect();
        if stale.is_empty() {
            continue;
        }
        let message = if stale.len() == p.rules.len() {
            format!("pragma for {} suppressed nothing", p.rules.join(", "))
        } else {
            format!("pragma rule(s) {} suppressed nothing (drop the stale ids)", stale.join(", "))
        };
        meta.push(Diagnostic {
            rule: PRAGMA_RULES[1].id,
            severity: PRAGMA_RULES[1].severity,
            path: rel.clone(),
            line: p.line,
            col: 1,
            message,
            hint: PRAGMA_RULES[1].hint,
        });
    }
    kept.extend(meta.into_iter().filter(|d| !cfg.allows(d.rule, &rel)));
    for d in &mut kept {
        d.severity = cfg.severity_for(d.rule, d.severity);
    }
    sort(&mut kept);
    kept
}

/// Check one file's source text against every rule, applying pragma and
/// config suppression and severity overrides. The whole-program rules C2
/// and R1 are judged over this file's own edges/declarations (the
/// workspace run in [`check_root`] judges the global graphs instead).
/// Diagnostics come back in the stable reporting order.
pub fn check_source(rel: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let a = analyze_source(rel, src);
    let graph = crate::lockgraph::build(&a.edges);
    let mut extra = crate::lockgraph::cycles(&graph);
    extra.extend(crate::snapreach::judge(&a.types));
    finish_file(a, extra, cfg)
}

/// Load `root/analyzer.toml` when present.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let cfg_path = root.join("analyzer.toml");
    if cfg_path.is_file() {
        let text = fs::read_to_string(&cfg_path)
            .map_err(|e| format!("read {}: {e}", cfg_path.display()))?;
        crate::config::parse(&text)
    } else {
        Ok(Config::default())
    }
}

/// Phase one over the whole workspace: every file analyzed, no suppression.
pub fn analyze_root(root: &Path) -> Result<Vec<FileAnalysis>, String> {
    let mut out = Vec::new();
    for rel in discover(root)? {
        let abs = root.join(&rel);
        let src = fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        out.push(analyze_source(&rel, &src));
    }
    Ok(out)
}

/// Check the whole workspace under `root`, honoring `root/analyzer.toml`
/// when present. The whole-program graphs — lock order (C2) and snapshot
/// reachability (R1) — are aggregated across every file; each diagnostic
/// is anchored at one site and flows through that file's suppression
/// machinery. Diagnostics come back in the stable reporting order.
pub fn check_root(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let cfg = load_config(root)?;
    let analyses = analyze_root(root)?;
    let mut all_edges = Vec::new();
    let mut all_types = Vec::new();
    for a in &analyses {
        all_edges.extend(a.edges.iter().cloned());
        all_types.extend(a.types.iter().cloned());
    }
    let graph = crate::lockgraph::build(&all_edges);
    let mut ws = crate::lockgraph::cycles(&graph);
    ws.extend(crate::snapreach::judge(&all_types));
    let mut diags = Vec::new();
    for a in analyses {
        let (mine, rest): (Vec<_>, Vec<_>) = ws.into_iter().partition(|d| d.path == a.rel);
        ws = rest;
        diags.extend(finish_file(a, mine, &cfg));
    }
    // Diagnostics anchored at no discovered file (cannot happen in
    // practice, but "every finding is reported" must not depend on it).
    diags.extend(ws);
    sort(&mut diags);
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_tiers() {
        assert!(classify("crates/sched/src/tiresias.rs").is_library());
        assert_eq!(classify("crates/sched/src/tiresias.rs").crate_name, "sched");
        assert_eq!(classify("crates/analyzer/src/main.rs").kind, FileKind::Binary);
        assert_eq!(classify("crates/bench/src/figures/f.rs").kind, FileKind::Harness);
        assert_eq!(classify("crates/sim/tests/t.rs").kind, FileKind::Harness);
        assert_eq!(classify("src/lib.rs").kind, FileKind::Library);
        assert_eq!(classify("src/lib.rs").crate_name, "kube-knots");
        assert_eq!(classify("tests/end_to_end.rs").kind, FileKind::Harness);
        assert_eq!(classify("examples/quickstart.rs").kind, FileKind::Harness);
        assert!(classify("shims/rand/src/lib.rs").is_library());
    }

    #[test]
    fn test_regions_cover_mods_and_fns() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\nfn live2() {}\n";
        let regions = test_regions(&lex(src).toks);
        assert_eq!(regions, vec![(2, 5)]);
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn live() {}\n#[cfg(all(test, feature = \"x\"))]\nfn also_live() {}\n";
        assert!(test_regions(&lex(src).toks).is_empty());
    }

    #[test]
    fn stacked_attributes_still_gate() {
        let src = "#[test]\n#[ignore]\nfn t() {\n  x.unwrap();\n}\n";
        let regions = test_regions(&lex(src).toks);
        assert_eq!(regions, vec![(1, 5)]);
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let cfg = Config::default();
        let src = "// knots-allow: P1 -- invariant: queue is non-empty here\n\
                   fn f(q: Vec<u32>) { q.last().unwrap(); }\n";
        let out = check_source("crates/sched/src/x.rs", src, &cfg);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn pragma_without_reason_is_a0() {
        let cfg = Config::default();
        let src = "// knots-allow: P1\nfn f(q: Vec<u32>) { q.last().unwrap(); }\n";
        let out = check_source("crates/sched/src/x.rs", src, &cfg);
        assert!(out.iter().any(|d| d.rule == "A0"), "{out:?}");
        // Malformed pragmas must not suppress.
        assert!(out.iter().any(|d| d.rule == "P1"), "{out:?}");
    }

    #[test]
    fn unused_pragma_is_a1_warn() {
        let cfg = Config::default();
        let src = "// knots-allow: D1 -- stale\nfn f() {}\n";
        let out = check_source("crates/sched/src/x.rs", src, &cfg);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "A1");
        assert_eq!(out[0].severity, Severity::Warn);
    }

    #[test]
    fn prose_mentioning_the_marker_is_not_a_pragma() {
        let cfg = Config::default();
        let src = "//! Suppress with `// knots-allow: D2 -- reason` pragmas.\nfn f() {}\n";
        let out = check_source("crates/sched/src/x.rs", src, &cfg);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn cross_file_lock_cycle_is_detected() {
        // Each file is acyclic alone; only the workspace-level aggregation
        // (mirroring `check_root`) sees the ABBA cycle between them.
        let fwd = "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n  let ga = a.lock();\n  let gb = b.lock();\n}\n";
        let rev = "fn g(a: &Mutex<u32>, b: &Mutex<u32>) {\n  let gb = b.lock();\n  let ga = a.lock();\n}\n";
        let x = analyze_source("crates/sched/src/x.rs", fwd);
        let y = analyze_source("crates/sched/src/y.rs", rev);
        assert!(check_source("crates/sched/src/x.rs", fwd, &Config::default()).is_empty());
        let mut edges = x.edges.clone();
        edges.extend(y.edges.clone());
        let graph = crate::lockgraph::build(&edges);
        let mut c2 = crate::lockgraph::cycles(&graph);
        assert_eq!(c2.len(), 1, "{c2:?}");
        let cfg = Config::default();
        let mut diags = Vec::new();
        for a in [x, y] {
            let (mine, rest): (Vec<_>, Vec<_>) = c2.into_iter().partition(|d| d.path == a.rel);
            c2 = rest;
            diags.extend(finish_file(a, mine, &cfg));
        }
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "C2");
        assert!(diags[0].message.contains("sched::a -> sched::b -> sched::a"), "{diags:?}");
    }

    #[test]
    fn config_allowlist_suppresses_by_prefix() {
        let cfg = crate::config::parse(
            "[[allow]]\nrule = \"*\"\npath = \"shims/\"\nreason = \"vendored shims\"\n",
        )
        .unwrap();
        let src = "fn f(q: Vec<u32>) { q.last().unwrap(); }\n";
        assert!(check_source("shims/rand/src/lib.rs", src, &cfg).is_empty());
        assert!(!check_source("crates/sched/src/x.rs", src, &cfg).is_empty());
    }
}
