//! Fixture-based rule tests: every rule fires on its seeded fixture with
//! the exact position, and the tricky constructs (rule text inside string
//! literals, raw strings, block comments, `#[cfg(test)]` modules) stay
//! silent.
//!
//! Fixtures are checked *as if* they lived in a decision-path library
//! crate, so every rule binds; their real on-disk location
//! (`crates/analyzer/tests/fixtures/`) is allowlisted in `analyzer.toml`
//! so `check_root` on the workspace stays clean.

use knots_analyzer::config::Config;
use knots_analyzer::diag::{Diagnostic, Severity};
use knots_analyzer::engine::check_source;

/// Run a fixture under a pretend decision-crate library path.
fn check(src: &str) -> Vec<Diagnostic> {
    check_source("crates/sched/src/fixture.rs", src, &Config::default())
}

fn positions(diags: &[Diagnostic], rule: &str) -> Vec<(u32, u32)> {
    diags.iter().filter(|d| d.rule == rule).map(|d| (d.line, d.col)).collect()
}

#[test]
fn d1_fires_on_both_wall_clock_types() {
    let out = check(include_str!("fixtures/d1_wall_clock.rs"));
    assert_eq!(positions(&out, "D1"), vec![(2, 16), (5, 14), (6, 28)]);
    assert!(out.iter().all(|d| d.severity == Severity::Deny));
    assert_eq!(out.len(), 3, "{out:?}");
}

#[test]
fn d2_fires_on_hash_collections() {
    let out = check(include_str!("fixtures/d2_hash_collections.rs"));
    // use-line (two idents) + both field types.
    assert_eq!(positions(&out, "D2"), vec![(2, 24), (2, 33), (5, 11), (6, 11)]);
    assert_eq!(out.len(), 4, "{out:?}");
}

#[test]
fn d3_fires_on_entropy_sources() {
    let out = check(include_str!("fixtures/d3_ambient_entropy.rs"));
    assert_eq!(positions(&out, "D3"), vec![(3, 23), (4, 25)]);
    assert_eq!(out.len(), 2, "{out:?}");
}

#[test]
fn p1_fires_on_panicking_calls_only() {
    let out = check(include_str!("fixtures/p1_panics.rs"));
    // unwrap, expect, panic!, todo! — and nothing from the `_or` family.
    assert_eq!(positions(&out, "P1"), vec![(3, 17), (4, 17), (6, 9), (8, 5)]);
    assert_eq!(out.len(), 4, "{out:?}");
}

#[test]
fn p2_fires_through_nested_parens_only_when_unhandled() {
    let out = check(include_str!("fixtures/p2_partial_cmp.rs"));
    assert_eq!(positions(&out, "P2"), vec![(3, 24), (4, 30)]);
    // The sibling P1s on the trailing unwrap()/expect() also fire — the
    // comparator is library code like any other.
    assert_eq!(positions(&out, "P1").len(), 2);
    assert_eq!(out.len(), 4, "{out:?}");
}

#[test]
fn h1_fires_on_print_macros() {
    let out = check(include_str!("fixtures/h1_prints.rs"));
    assert_eq!(positions(&out, "H1"), vec![(3, 5), (4, 5), (5, 5)]);
    assert_eq!(out.len(), 3, "{out:?}");
}

#[test]
fn m1_fires_on_bad_metric_and_span_names() {
    let out = check(include_str!("fixtures/m1_names.rs"));
    // Missing prefix, counter without _total, camelCase gauge, unprefixed
    // histogram, camelCase event name, camelCase span name — and nothing
    // on the conforming lines or the depth-2 field key.
    assert_eq!(positions(&out, "M1"), vec![(4, 11), (5, 11), (6, 17), (7, 15), (8, 41), (9, 38)]);
    assert!(out.iter().any(|d| d.rule == "M1" && d.message.contains("_total")));
    assert_eq!(out.len(), 6, "{out:?}");
}

#[test]
fn r1_fires_on_snapshot_reachable_bad_fields_only() {
    let out = check(include_str!("fixtures/r1_snapshot_reach.rs"));
    // HashSet in OrchestratorState, HashMap + Instant in ClusterShard
    // (reachable via the cluster field), Instant in the SideEvent enum
    // payload — and nothing in NotReachable, which no root references.
    assert_eq!(positions(&out, "R1"), vec![(13, 15), (17, 16), (18, 18), (23, 11)]);
    // The same mentions also draw the decision-crate D1/D2 rules; R1 adds
    // the snapshot-specific story (and covers non-decision crates).
    assert_eq!(positions(&out, "D2").len(), 5);
    assert_eq!(positions(&out, "D1").len(), 3);
    assert_eq!(out.len(), 12, "{out:?}");
}

#[test]
fn r1_workspace_closure_reaches_the_real_state_types() {
    use knots_analyzer::snapreach::{judge, BadMention, TypeDecl};
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analyses = knots_analyzer::engine::analyze_root(&root).unwrap();
    let mut types: Vec<TypeDecl> =
        analyses.iter().flat_map(|a| a.types.iter().cloned()).collect();
    for name in ["Snapshot", "OrchestratorState", "ClusterState", "TsdbState", "ChaosEngineState"]
    {
        assert!(types.iter().any(|t| t.name == name), "no `{name}` declaration found");
    }
    // The real closure must be clean, and must *stay* live: a forbidden
    // field planted on a type deep in the closure (the chaos engine state,
    // two hops from the root) has to surface.
    assert!(judge(&types).is_empty(), "workspace snapshot closure has R1 findings");
    types.push(TypeDecl {
        path: "crates/chaos/src/canary.rs".into(),
        name: "ChaosEngineState".into(),
        line: 1,
        refs: Vec::new(),
        bad: vec![BadMention { ty: "HashMap".into(), line: 1, col: 1 }],
    });
    let diags = judge(&types);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].path, "crates/chaos/src/canary.rs");
}

#[test]
fn tricky_constructs_stay_silent_except_cfg_not_test() {
    let out = check(include_str!("fixtures/tricky.rs"));
    // The only legitimate hit: the unwrap inside #[cfg(not(test))], which
    // is live code. Everything in strings/raw strings/comments/#[cfg(test)]
    // must stay silent.
    assert_eq!(positions(&out, "P1"), vec![(33, 7)]);
    assert_eq!(out.len(), 1, "{out:?}");
}

#[test]
fn c1_fires_on_guards_across_fanout_and_wait() {
    let out = check(include_str!("fixtures/c1_guard_across_fanout.rs"));
    // run_jobs, pool.run, thread::scope, condvar wait with a foreign guard
    // live — and nothing from the dropped/scoped/own-guard/suppressed fns.
    assert_eq!(positions(&out, "C1"), vec![(6, 5), (11, 10), (16, 18), (22, 18)]);
    assert!(out.iter().all(|d| d.severity == Severity::Deny));
    assert_eq!(out.len(), 4, "{out:?}");
}

#[test]
fn c2_fires_once_per_cycle_and_suppresses_at_anchor() {
    let out = check(include_str!("fixtures/c2_lock_order.rs"));
    // One diagnostic for the alpha/beta ABBA cycle, anchored at the first
    // witness of its smallest edge; the gamma1/gamma2 cycle is anchored on
    // the pragma-covered line and suppressed.
    assert_eq!(positions(&out, "C2"), vec![(6, 23)]);
    assert!(out[0].message.contains("alpha") && out[0].message.contains("beta"), "{out:?}");
    assert_eq!(out.len(), 1, "{out:?}");
}

#[test]
fn c3_fires_on_undocumented_unsafe_only() {
    let out = check(include_str!("fixtures/c3_unsafe_hygiene.rs"));
    // Bare unsafe block, bare static mut, UnsafeCell import — the
    // SAFETY-documented and pragma-suppressed uses stay silent.
    assert_eq!(positions(&out, "C3"), vec![(4, 5), (7, 1), (9, 17)]);
    assert_eq!(out.len(), 3, "{out:?}");
}

#[test]
fn c4_fires_on_select_shaped_drains() {
    let out = check(include_str!("fixtures/c4_channel_drain.rs"));
    // try_recv, recv_timeout, try_iter — blocking recv() and the
    // suppressed drain stay silent.
    assert_eq!(positions(&out, "C4"), vec![(5, 26), (11, 16), (15, 17)]);
    assert_eq!(out.len(), 3, "{out:?}");
}

#[test]
fn e1_fires_only_inside_event_handlers_of_event_crates() {
    // E1 binds to crates/sim + crates/core, so this fixture runs under a
    // pretend core path rather than the default sched one.
    let src = include_str!("fixtures/e1_event_handlers.rs");
    let out = check_source("crates/core/src/fixture.rs", src, &Config::default());
    // Wall clock + manual ceil-div in on_heartbeat, div_ceil in
    // handle_arrival — and nothing from the non-handler `enqueue` (the
    // sanctioned snap-at-enqueue site) or the tick-free handle_drain.
    assert_eq!(positions(&out, "E1"), vec![(6, 19), (7, 34), (11, 12)]);
    // The wall-clock reads also draw D1; E1 adds the handler context.
    assert_eq!(positions(&out, "D1"), vec![(2, 16), (6, 19)]);
    assert_eq!(out.len(), 5, "{out:?}");
    // Outside the event crates the handler contract does not bind.
    let relaxed = check_source("crates/sched/src/fixture.rs", src, &Config::default());
    assert!(positions(&relaxed, "E1").is_empty(), "{relaxed:?}");
}

#[test]
fn multi_rule_pragmas_suppress_and_track_staleness_per_id() {
    // Both ids earn their keep: no A1.
    let src = "fn f(m: &Mutex<Vec<u32>>, xs: &[u32]) {\n  let g = m.lock();\n  // knots-allow: P1, C1 -- invariant: g is non-empty and workers are lock-free\n  run_jobs(4, xs, |x| g.last().unwrap());\n}\n";
    let out = check(src);
    assert!(out.is_empty(), "{out:?}");
    // Only P1 suppresses here; the stale C1 id draws an A1 naming it.
    let src = "fn f(v: &[u32]) {\n  // knots-allow: P1, C1 -- the slice is non-empty by construction\n  let x = v.last().unwrap();\n}\n";
    let out = check(src);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "A1");
    assert!(out[0].message.contains("C1") && !out[0].message.contains("P1,"), "{out:?}");
    // Unknown ids in the list are A0 and nothing suppresses.
    let src =
        "fn f(v: &[u32]) {\n  // knots-allow: P1, Z9 -- bogus\n  let x = v.last().unwrap();\n}\n";
    let out = check(src);
    assert!(out.iter().any(|d| d.rule == "A0" && d.message.contains("Z9")), "{out:?}");
    assert!(out.iter().any(|d| d.rule == "P1"), "{out:?}");
}

#[test]
fn pragmas_suppress_and_are_linted() {
    let out = check(include_str!("fixtures/pragmas.rs"));
    // Suppressed: both v.last().unwrap() sites. Reported: the reasonless
    // pragma (A0 deny), the unsuppressed unwrap, the stale pragma (A1 warn).
    assert_eq!(positions(&out, "A0"), vec![(13, 1)]);
    assert_eq!(positions(&out, "P1"), vec![(15, 7)]);
    assert_eq!(positions(&out, "A1"), vec![(19, 1)]);
    assert_eq!(out.len(), 3, "{out:?}");
    assert!(out.iter().any(|d| d.rule == "A1" && d.severity == Severity::Warn));
}

#[test]
fn severity_overrides_apply() {
    let cfg = knots_analyzer::config::parse("[severity]\nH1 = \"warn\"\n").unwrap();
    let out =
        check_source("crates/sched/src/fixture.rs", include_str!("fixtures/h1_prints.rs"), &cfg);
    assert!(out.iter().all(|d| d.rule == "H1" && d.severity == Severity::Warn), "{out:?}");
}

#[test]
fn fixtures_outside_library_paths_mostly_relax() {
    // The same P1 fixture under a binary path: P1/H1 do not bind there.
    let out = check_source(
        "crates/bench/src/bin/tool.rs",
        include_str!("fixtures/p1_panics.rs"),
        &Config::default(),
    );
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn workspace_is_clean() {
    // The repo itself must pass its own analyzer: zero deny, zero warn.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = knots_analyzer::check_root(&root).expect("workspace walk");
    assert!(diags.is_empty(), "workspace not clean:\n{diags:#?}");
}
