//! R1 fixture: forbidden fields inside snapshot-reachable state types.
use std::collections::{HashMap, HashSet};
use std::time::Instant;

pub struct Snapshot {
    pub version: u32,
    pub state: OrchestratorState,
}

pub struct OrchestratorState {
    pub cluster: ClusterShard,
    pub pending: Vec<SideEvent>,
    pub seen: HashSet<u64>,
}

pub struct ClusterShard {
    pub cache: HashMap<String, u64>,
    pub started: Instant,
}

pub enum SideEvent {
    Tick,
    Stamp(Instant),
}

pub struct NotReachable {
    pub scratch: HashMap<u32, u32>,
}
