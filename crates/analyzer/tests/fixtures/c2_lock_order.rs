//! C2 fixture: lock-order cycles across functions in one file.
//! Checked as decision-crate library code; it does not need to compile.

fn forward(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
}

fn backward(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
}

fn suppressed_forward(&self) {
    let g = self.gamma1.lock();
    // knots-allow: C2 -- fixture: a cycle diagnostic can be pragma-suppressed at its anchor
    let h = self.gamma2.lock();
}

fn suppressed_backward(&self) {
    let h = self.gamma2.lock();
    let g = self.gamma1.lock();
}
