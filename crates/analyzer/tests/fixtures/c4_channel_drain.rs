//! C4 fixture: nondeterministic channel drains in decision crates.
//! Checked as decision-crate library code; it does not need to compile.

fn fires_try_recv(rx: &Receiver<u32>) {
    while let Ok(v) = rx.try_recv() {
        use_(v);
    }
}

fn fires_recv_timeout(rx: &Receiver<u32>) {
    let v = rx.recv_timeout(TIMEOUT);
}

fn fires_try_iter(rx: &Receiver<u32>) {
    for v in rx.try_iter() {
        use_(v);
    }
}

fn clean_blocking(rx: &Receiver<u32>) {
    while let Ok(v) = rx.recv() {
        use_(v);
    }
}

fn suppressed(rx: &Receiver<u32>) {
    // knots-allow: C4 -- fixture: demonstrates suppression; order proven irrelevant here
    let v = rx.try_recv();
}
