// Fixture: H1 — process-stream writes from library code.
fn noisy(x: u32) -> u32 {
    println!("placing {x}");
    eprintln!("warning");
    dbg!(x)
}
