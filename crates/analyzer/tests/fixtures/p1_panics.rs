// Fixture: P1 — panicking calls in non-test library code.
fn bad(opt: Option<u32>, res: Result<u32, ()>) -> u32 {
    let a = opt.unwrap();
    let b = res.expect("always ok");
    if a > b {
        panic!("impossible");
    }
    todo!()
}

// The `_or` family must NOT fire.
fn fine(opt: Option<u32>) -> u32 {
    opt.unwrap_or(0) + opt.unwrap_or_default() + opt.unwrap_or_else(|| 1)
}
