// Fixture: E1 — tick re-quantization and wall clocks inside event handlers.
use std::time::Instant;

impl Handlers {
    fn on_heartbeat(&mut self, at: u64) -> u64 {
        let _t0 = Instant::now();
        (at + self.cfg.tick - 1) / self.cfg.tick
    }

    fn handle_arrival(&self, at: u64) -> u64 {
        at.div_ceil(self.cfg.tick)
    }

    fn enqueue(&self, at: u64) -> u64 {
        (at + self.cfg.tick - 1) / self.cfg.tick
    }

    fn handle_drain(&self, span: u64, n: u64) -> u64 {
        span / n
    }
}
