// Fixture: D2 — hash collections in a decision-path crate.
use std::collections::{HashMap, HashSet};

struct State {
    load: HashMap<u32, usize>,
    seen: HashSet<u32>,
}
