// Fixture: D1 — wall-clock types in library code.
use std::time::Instant;

fn measure() -> f64 {
    let t0 = Instant::now();
    let _wall = std::time::SystemTime::now();
    t0.elapsed().as_secs_f64()
}
