// Fixture: D3 — ambient entropy sources.
fn roll() -> u64 {
    let mut r = rand::thread_rng();
    let mut s = StdRng::from_entropy();
    r.gen_range(0..s.gen_range(0..6))
}
