//! S1 fixture: unordered joins inside shard-merge code paths.
//! Checked as decision-crate library code; it does not need to compile.

fn fires_hash_in_merge(shards: &[Vec<u32>]) -> Vec<u32> {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut out = Vec::new();
    for run in shards {
        for v in run {
            if seen.insert(*v) {
                out.push(*v);
            }
        }
    }
    out
}

fn fires_recv_join_in_shard_step(rx: &Receiver<(usize, u32)>) -> Vec<u32> {
    let mut out = Vec::new();
    while let Ok((_, v)) = rx.recv() {
        out.push(v);
    }
    out
}

fn fires_map_in_rollup(parts: &[Part]) -> HashMap<u32, f64> {
    parts.iter().map(|p| (p.id, p.sum)).collect()
}

fn clean_by_index_merge(shards: &[Vec<u32>]) -> Vec<u32> {
    let mut cursors = vec![0usize; shards.len()];
    let mut out = Vec::new();
    while let Some(best) = pick_min(shards, &cursors) {
        out.push(shards[best][cursors[best]]);
        cursors[best] += 1;
    }
    out
}

fn clean_outside_merge_paths(rx: &Receiver<u32>) {
    // Not a merge-path name: S1 stays silent (C4/D2 own these elsewhere).
    while let Ok(v) = rx.recv() {
        use_(v);
    }
}

fn suppressed_merge(shards: &[Vec<u32>]) {
    // knots-allow: S1 -- fixture: demonstrates suppression; set is never iterated
    let seen: HashSet<u32> = HashSet::new();
}
