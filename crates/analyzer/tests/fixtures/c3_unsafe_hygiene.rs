//! C3 fixture: `unsafe` / `static mut` / `UnsafeCell` need `// SAFETY:`.

fn fires_unsafe() {
    unsafe { poke(); }
}

static mut BARE: u32 = 0;

use core::cell::UnsafeCell;

fn documented() {
    // SAFETY: the callee only reads the pinned buffer
    unsafe { poke(); }
}

// SAFETY: written once before any worker thread starts
// (enforced by the constructor ordering)
static mut DOCUMENTED: u32 = 0;

fn same_line() {
    let x = unsafe { read() }; // SAFETY: bounds checked by the caller
}

// knots-allow: C3 -- fixture: demonstrates suppressing an undocumented unsafe
fn suppressed() { unsafe { poke(); } }
