//! C1 fixture: lock guards held across fan-out / wait boundaries.
//! Checked as decision-crate library code; it does not need to compile.

fn fires_run_jobs(m: &Mutex<u32>, xs: &[u32]) {
    let g = m.lock();
    run_jobs(4, xs, |x| x);
}

fn fires_pool_run(r: &RwLock<u32>, pool: &WorkerPool) {
    let g = r.read();
    pool.run(jobs, worker);
}

fn fires_thread_scope(m: &RwLock<u32>) {
    let held = m.write();
    std::thread::scope(|s| s.spawn(work));
}

fn fires_condvar_other_guard(a: &Mutex<u32>, b: &Mutex<u32>, cv: &Condvar) {
    let ga = a.lock();
    let gb = b.lock();
    let gb2 = cv.wait(gb);
}

fn clean_dropped(m: &Mutex<u32>, xs: &[u32]) {
    let g = m.lock();
    drop(g);
    run_jobs(4, xs, |x| x);
}

fn clean_scoped(m: &Mutex<u32>, xs: &[u32]) {
    {
        let g = m.lock();
    }
    run_jobs(4, xs, |x| x);
}

fn clean_wait_own_guard(m: &Mutex<u32>, cv: &Condvar) {
    let g = m.lock();
    let g2 = cv.wait(g);
}

fn suppressed(m: &Mutex<u32>, xs: &[u32]) {
    let g = m.lock();
    // knots-allow: C1 -- fixture: demonstrates suppression; workers never touch this lock
    run_jobs(4, xs, |x| x);
}
