// Fixture: constructs that must NOT trip the lexer-backed rules.

// Rule text inside ordinary strings.
fn strings() -> &'static str {
    "call HashMap::new() then unwrap() and println!(now Instant::now())"
}

// Rule text inside raw strings (with quotes and hashes).
fn raw_strings() -> &'static str {
    r#"thread_rng() says "panic!" but it is just text"#
}

/* Block comments hide everything,
   even nested: /* x.unwrap(); Instant::now() */ still a comment. */
fn after_comment() -> u32 {
    0
}

// Test-gated items may panic and print.
#[cfg(test)]
mod tests {
    #[test]
    fn asserts_hard() {
        let v: Option<u32> = None;
        v.unwrap();
        println!("test output is fine");
    }
}

// cfg(not(test)) is LIVE code: this unwrap must fire.
#[cfg(not(test))]
fn live_despite_cfg(o: Option<u32>) -> u32 {
    o.unwrap()
}
