// Fixture: suppression pragma behavior.

fn suppressed_next_line(v: Vec<u32>) -> u32 {
    // knots-allow: P1 -- invariant: caller checked emptiness
    *v.last().unwrap()
}

fn suppressed_same_line(v: Vec<u32>) -> u32 {
    *v.last().unwrap() // knots-allow: P1 -- same-line form also works
}

// A reasonless pragma is A0 and suppresses nothing.
// knots-allow: P1
fn not_suppressed(o: Option<u32>) -> u32 {
    o.unwrap()
}

// A pragma that matches nothing is A1.
// knots-allow: D1 -- stale reason
fn no_violation_here() -> u32 {
    7
}
