// Fixture: P2 — NaN-panicking comparators.
fn sorts(v: &mut Vec<f64>, pairs: &mut Vec<(f64, u32)>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    pairs.sort_by(|a, b| a.0.partial_cmp(&helper(b.0, (b.1, a.1))).expect("finite"));
}

// A handled partial_cmp must NOT fire.
fn fine(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

fn helper(x: f64, _: (u32, u32)) -> f64 {
    x
}
