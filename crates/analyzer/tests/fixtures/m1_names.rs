// M1: literal metric names need the knots_ prefix (counters also _total);
// span/event names are lowercase dot.case. Depth-2 strings are field keys.
fn f(m: &Registry, r: &Recorder, t: &Tracer) {
    m.inc("requests_total", &[]);
    m.add("knots_ticks", &[], 3);
    m.set_gauge("knots_PendingPods", &[], 1.0);
    m.observe("latency_us", &[], 9.0);
    r.record(Event::new("orchestrator", "ProbeRound"));
    t.record_instant(Track::Control, "sched.Round", 1, None, &[("Kind", v)]);
    m.inc("knots_good_total", &[]);
    t.record_complete(Track::Control, "pool.batch", 0, 1, None, &[]);
}
