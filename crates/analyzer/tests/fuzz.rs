//! Fuzz-shaped totality tests: the lexer, scope parser, and full engine
//! pipeline must never panic and always terminate on arbitrary byte
//! streams. The analyzer runs over every file in the repo on every CI
//! round — a panic on weird-but-valid (or plain invalid) source would take
//! the whole gate down.

use knots_analyzer::config::Config;
use knots_analyzer::engine::check_source;
use knots_analyzer::lexer::lex;
use knots_analyzer::parser::parse;
use proptest::prelude::*;

/// Run the whole pipeline the way `check_root` would.
fn full_pipeline(src: &str) {
    let lexed = lex(src);
    let tree = parse(&lexed.toks);
    for b in &tree.blocks {
        assert!(b.open < b.close || b.close == lexed.toks.len());
    }
    // Both a decision-crate library path (all rules bind) and a harness
    // path (classification differs) must be total.
    let cfg = Config::default();
    let _ = check_source("crates/sim/src/fuzz.rs", src, &cfg);
    let _ = check_source("crates/bench/src/bin/fuzz.rs", src, &cfg);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        // Arbitrary bytes through lossy UTF-8: covers invalid sequences,
        // control characters, and random punctuation soup.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        full_pipeline(&src);
    }

    #[test]
    fn rust_shaped_token_soup_never_panics(
        picks in proptest::collection::vec(0usize..24, 0..96),
    ) {
        // Random sentences over the analyzer's own trigger vocabulary —
        // far denser in rule-relevant shapes than raw bytes.
        const WORDS: [&str; 24] = [
            "fn", "let", "mut", "unsafe", "static", "drop", "{", "}", "(", ")", ";", "=",
            ".", "lock", "unwrap", "run_jobs", "wait", "r#\"", "\"#", "//", "/*", "*/",
            "knots-allow:", "r##\"x\"##",
        ];
        let mut src = String::new();
        for p in picks {
            src.push_str(WORDS[p]);
            src.push(' ');
        }
        full_pipeline(&src);
    }
}

#[test]
fn unterminated_and_nested_raw_strings_are_total() {
    // Hand-picked nasties: unterminated raw strings, mismatched hash
    // counts, raw strings containing quote-hash runs, unclosed comments,
    // unbalanced braces around guard-shaped code.
    let cases = [
        "r\"unterminated",
        "r#\"unterminated",
        "r##\"still open\"#",
        "r##\"nested \"# quote\"##",
        "let s = r#\"let g = m.lock(); run_jobs(\"#;",
        "/* unclosed block /* nested",
        "fn f() { let g = m.lock();",
        "}}}}{{{{",
        "fn f() { let g = m.lock(); drop(",
        "// knots-allow: P1 --",
        "// knots-allow:",
        "b\"bytes\" b'x' 'c' '\\'' r#x",
        "\u{0}\u{1}\u{7f}fn f(){}",
    ];
    for src in cases {
        full_pipeline(src);
    }
}
