//! The write-ahead event log.
//!
//! The control loop is a deterministic function of its paused state, so
//! durability does not require logging effects — logging *which calendar
//! events were applied* is enough. The WAL accumulates the
//! [`AppliedEvent`]s drained from the orchestrator's journal since the
//! last checkpoint; a checkpoint truncates it (the snapshot subsumes the
//! prefix). On recovery the suffix is not *executed* from the log — the
//! resumed orchestrator re-drives the simulation to the crash boundary —
//! the log instead acts as a **divergence fence**: the re-applied events
//! must match the logged suffix record for record, or the resume is
//! rejected as [`RecoveryError::Divergence`] rather than silently forking
//! the timeline.

use knots_core::AppliedEvent;

use crate::RecoveryError;

/// Write-ahead log of applied calendar events since the last checkpoint.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WriteAheadLog {
    records: Vec<AppliedEvent>,
    truncated: u64,
}

impl WriteAheadLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a batch of applied events (a drained orchestrator journal).
    pub fn append(&mut self, batch: &[AppliedEvent]) {
        self.records.extend_from_slice(batch);
    }

    /// Records currently in the log (the suffix since the last checkpoint).
    pub fn records(&self) -> &[AppliedEvent] {
        &self.records
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Checkpoint truncation: the snapshot now subsumes every logged
    /// record, so drop them all (counting them for bookkeeping).
    pub fn truncate(&mut self) {
        self.truncated += self.records.len() as u64;
        self.records.clear();
    }

    /// Total records dropped by checkpoints over the log's lifetime.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// The divergence fence: compare the events a resumed orchestrator
    /// re-applied against the logged suffix. Any mismatch — wrong event,
    /// wrong instant, too few or too many — rejects the resume.
    pub fn verify_replay(&self, replayed: &[AppliedEvent]) -> Result<(), RecoveryError> {
        let n = self.records.len().max(replayed.len());
        for i in 0..n {
            let logged = self.records.get(i).copied();
            let replay = replayed.get(i).copied();
            if logged != replay {
                return Err(RecoveryError::Divergence { index: i, logged, replayed: replay });
            }
        }
        Ok(())
    }

    /// Serialize the log (what a durable store would write alongside the
    /// latest snapshot).
    pub fn encode(&self) -> String {
        // knots-allow: P1 -- records are Copy structs of ints and unit-ish enums; their Serialize impl cannot fail
        serde_json::to_string(self).expect("WAL always serializes")
    }

    /// Parse a log previously produced by [`WriteAheadLog::encode`].
    pub fn decode(text: &str) -> Result<Self, RecoveryError> {
        serde_json::from_str(text).map_err(|e| RecoveryError::Malformed(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_core::CoreEvent;
    use knots_sim::time::SimTime;

    fn ev(us: u64, kind: CoreEvent) -> AppliedEvent {
        AppliedEvent { at: SimTime(us), kind }
    }

    #[test]
    fn append_truncate_and_roundtrip() {
        let mut wal = WriteAheadLog::new();
        wal.append(&[ev(1, CoreEvent::Arrival), ev(2, CoreEvent::Heartbeat)]);
        assert_eq!(wal.len(), 2);
        let back = WriteAheadLog::decode(&wal.encode()).unwrap();
        assert_eq!(back, wal);
        wal.truncate();
        assert!(wal.is_empty());
        assert_eq!(wal.truncated(), 2);
    }

    #[test]
    fn fence_rejects_any_mismatch() {
        let mut wal = WriteAheadLog::new();
        wal.append(&[ev(1, CoreEvent::Arrival), ev(2, CoreEvent::Heartbeat)]);
        // Exact match passes.
        wal.verify_replay(&[ev(1, CoreEvent::Arrival), ev(2, CoreEvent::Heartbeat)]).unwrap();
        // Wrong kind at index 1.
        let err = wal
            .verify_replay(&[ev(1, CoreEvent::Arrival), ev(2, CoreEvent::Chaos)])
            .unwrap_err();
        assert!(matches!(err, RecoveryError::Divergence { index: 1, .. }));
        // Short replay.
        let err = wal.verify_replay(&[ev(1, CoreEvent::Arrival)]).unwrap_err();
        assert!(matches!(err, RecoveryError::Divergence { index: 1, replayed: None, .. }));
        // Long replay.
        let err = wal
            .verify_replay(&[
                ev(1, CoreEvent::Arrival),
                ev(2, CoreEvent::Heartbeat),
                ev(3, CoreEvent::Chaos),
            ])
            .unwrap_err();
        assert!(matches!(err, RecoveryError::Divergence { index: 2, logged: None, .. }));
    }
}
