//! Versioned, integrity-checked snapshots of the paused control plane.
//!
//! A [`Snapshot`] is an *envelope*: the complete dynamic state of a paused
//! event-queue run ([`knots_core::OrchestratorState`]) serialized to a JSON
//! payload, stamped with a format version and an FNV-1a digest over the
//! payload bytes. The envelope is what a durable store would persist; the
//! digest turns silent bit-rot into a typed [`RecoveryError::DigestMismatch`]
//! instead of a bogus resume.
//!
//! Capture validates **finiteness up front**: the serde shim writes
//! non-finite floats as JSON `null` and reads `null` back as `NaN`, so a
//! `NaN` smuggled into a snapshot would round-trip as silent corruption.
//! [`Snapshot::from_state`] walks the value tree and rejects any non-finite
//! float with the offending path ([`RecoveryError::NonFinite`]) before the
//! state ever reaches disk shape.

use knots_core::{KubeKnots, OrchestratorState};
use knots_sim::time::SimTime;

use crate::RecoveryError;

/// Current snapshot format version. Bump on any change to
/// [`OrchestratorState`]'s shape; decode rejects other versions.
/// History: 1 = original shape; 2 = sharded cluster core (the state
/// records the shard count so a resume under a different partitioning
/// fails loudly).
pub const SNAPSHOT_VERSION: u32 = 2;

/// FNV-1a 64-bit over a byte slice — the integrity digest of the payload.
/// Hand-rolled (15 lines) rather than depending on the analyzer's hasher:
/// the recovery crate must stay loadable without dev tooling.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A versioned, digest-protected snapshot of the paused control plane.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_VERSION`] at capture).
    pub version: u32,
    /// FNV-1a 64 over the payload bytes.
    pub digest: u64,
    /// Simulation instant the state was captured at (the cluster clock).
    pub at: SimTime,
    /// The JSON-serialized [`OrchestratorState`].
    pub payload: String,
}

impl Snapshot {
    /// Capture a paused orchestrator (begun via [`KubeKnots::begin`] or
    /// resumed). Fails with [`RecoveryError::NotPaused`] on a run driven
    /// through `run_schedule`, which never parks its loop state.
    pub fn capture(k: &KubeKnots) -> Result<Self, RecoveryError> {
        let state = k.pause_state().ok_or(RecoveryError::NotPaused)?;
        Self::from_state(&state, k.cluster().now())
    }

    /// Build the envelope around an already-captured state: validate
    /// finiteness, serialize, digest.
    pub fn from_state(state: &OrchestratorState, at: SimTime) -> Result<Self, RecoveryError> {
        let value = serde::Serialize::to_value(state);
        check_finite(&value, "state")?;
        let payload = serde_json::to_string(&value)
            .map_err(|e| RecoveryError::Malformed(e.to_string()))?;
        let digest = fnv1a(payload.as_bytes());
        Ok(Snapshot { version: SNAPSHOT_VERSION, digest, at, payload })
    }

    /// Verify the envelope (version, digest) and decode the state. Every
    /// failure mode is a typed [`RecoveryError`]; corrupted input never
    /// panics.
    pub fn state(&self) -> Result<OrchestratorState, RecoveryError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(RecoveryError::VersionMismatch {
                found: self.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let found = fnv1a(self.payload.as_bytes());
        if found != self.digest {
            return Err(RecoveryError::DigestMismatch { expected: self.digest, found });
        }
        let value: serde::Value = serde_json::from_str(&self.payload)
            .map_err(|e| RecoveryError::Malformed(e.to_string()))?;
        serde::Deserialize::from_value(&value).map_err(|e| RecoveryError::Malformed(e.to_string()))
    }

    /// Serialize the whole envelope (what a durable store would write).
    pub fn encode(&self) -> String {
        // knots-allow: P1 -- the envelope is four plain fields (ints and a string); its Serialize impl cannot fail
        serde_json::to_string(self).expect("snapshot envelope always serializes")
    }

    /// Parse an envelope previously produced by [`Snapshot::encode`]. Does
    /// *not* verify the digest — that happens in [`Snapshot::state`].
    pub fn decode(text: &str) -> Result<Self, RecoveryError> {
        serde_json::from_str(text).map_err(|e| RecoveryError::Malformed(e.to_string()))
    }
}

/// Reject non-finite floats anywhere in the value tree, reporting the path
/// (e.g. `state.cluster.nodes[3].energy_joules`).
fn check_finite(v: &serde::Value, path: &str) -> Result<(), RecoveryError> {
    match v {
        serde::Value::F64(x) if !x.is_finite() => {
            Err(RecoveryError::NonFinite { path: path.to_string() })
        }
        serde::Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                check_finite(item, &format!("{path}[{i}]"))?;
            }
            Ok(())
        }
        serde::Value::Object(fields) => {
            for (name, field) in fields {
                check_finite(field, &format!("{path}.{name}"))?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn finiteness_walk_reports_the_offending_path() {
        let v = serde::Value::Object(vec![(
            "nodes".into(),
            serde::Value::Array(vec![
                serde::Value::F64(1.0),
                serde::Value::F64(f64::NAN),
            ]),
        )]);
        let err = check_finite(&v, "state").unwrap_err();
        match err {
            RecoveryError::NonFinite { path } => assert_eq!(path, "state.nodes[1]"),
            other => panic!("wrong error: {other:?}"),
        }
    }
}
