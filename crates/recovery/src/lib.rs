//! # knots-recovery — the durable control plane
//!
//! Kube-Knots' head node is a single point of failure: if the controller
//! dies, every learned scheduler statistic, telemetry ring and in-flight
//! queue dies with it. This crate makes the control plane *durable* and —
//! because the whole reproduction is a deterministic discrete-event
//! system — makes recovery **bit-identical**: a run that crashes and
//! resumes produces the same report digest, the same TSDB sample bits and
//! the same energy total as the run that never crashed.
//!
//! Three pieces (DESIGN.md §15):
//!
//! * [`Snapshot`]: a versioned envelope around the complete dynamic state
//!   of a paused run ([`knots_core::OrchestratorState`]) with an FNV-1a
//!   integrity digest and capture-time finiteness validation;
//! * [`WriteAheadLog`]: the applied-event log since the last checkpoint,
//!   truncated at every checkpoint and used on resume as a *divergence
//!   fence* — replayed events must match the log record for record;
//! * [`run_with_recovery`]: the supervisor harness — periodic grid-aligned
//!   checkpoints, controller kills at the fault plan's scheduled
//!   [`knots_chaos::FaultKind::ControllerCrash`] instants, restore +
//!   fenced replay, and recovery statistics in the run report
//!   ([`knots_core::RecoveryStats`], excluded from the report digest).
//!
//! Every failure mode — bit-rot, version skew, malformed payloads,
//! replay divergence — is a typed [`RecoveryError`]; corrupted input
//! never panics the supervisor.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod snapshot;
pub mod wal;

pub use harness::{planned_crashes, run_with_recovery, RecoveryConfig};
pub use snapshot::{fnv1a, Snapshot, SNAPSHOT_VERSION};
pub use wal::WriteAheadLog;

use knots_core::AppliedEvent;

/// Everything that can go wrong between a capture and a verified resume.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// Snapshot capture was attempted on a run that is not paused (driven
    /// via `run_schedule` instead of `begin`/`drive`).
    NotPaused,
    /// A non-finite float was found in the state at capture. The serde
    /// layer round-trips non-finite floats through JSON `null` (read back
    /// as `NaN`), so letting one into a snapshot would be silent
    /// corruption; the path names the offending field.
    NonFinite {
        /// Dotted path to the non-finite value, e.g. `state.cluster.nodes[3]`.
        path: String,
    },
    /// The snapshot was produced by a different format version.
    VersionMismatch {
        /// Version found in the envelope.
        found: u32,
        /// Version this build understands ([`SNAPSHOT_VERSION`]).
        expected: u32,
    },
    /// The payload bytes do not hash to the envelope's digest: bit-rot,
    /// truncation, or tampering.
    DigestMismatch {
        /// Digest recorded in the envelope.
        expected: u64,
        /// Digest of the payload as found.
        found: u64,
    },
    /// The payload (or an encoded envelope/WAL) failed to parse or had
    /// the wrong shape for the target state type.
    Malformed(
        /// Human-readable parse/shape error.
        String,
    ),
    /// The divergence fence tripped: a resumed run re-applied a different
    /// event sequence than the write-ahead log recorded.
    Divergence {
        /// Index of the first mismatching record.
        index: usize,
        /// What the WAL logged at that index (`None`: replay ran long).
        logged: Option<AppliedEvent>,
        /// What the replay applied at that index (`None`: replay ran short).
        replayed: Option<AppliedEvent>,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NotPaused => {
                write!(f, "snapshot capture requires a paused run (use begin/drive)")
            }
            RecoveryError::NonFinite { path } => {
                write!(f, "non-finite float at {path}: would corrupt silently through JSON null")
            }
            RecoveryError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} (this build understands {expected})")
            }
            RecoveryError::DigestMismatch { expected, found } => write!(
                f,
                "snapshot payload digest {found:#018x} does not match envelope {expected:#018x}"
            ),
            RecoveryError::Malformed(msg) => write!(f, "malformed recovery data: {msg}"),
            RecoveryError::Divergence { index, logged, replayed } => write!(
                f,
                "replay diverged from the write-ahead log at record {index}: \
                 logged {logged:?}, replayed {replayed:?}"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}
