//! The crash-recovery harness: drive a run with periodic checkpoints,
//! kill the controller at the fault plan's scheduled crash instants, and
//! resume from the latest snapshot + WAL — with a divergence fence
//! guaranteeing the recovered timeline is the uninterrupted one.
//!
//! The harness plays the role of an external supervisor (a kubelet
//! restarting the Kube-Knots head-node pod, in the paper's deployment):
//! the simulated controller itself never sees its own death. A
//! [`knots_chaos::FaultKind::ControllerCrash`] event is a *counted no-op*
//! inside the chaos engine, so an uninterrupted run and a crash-recovery
//! run consume the identical fault plan — which is exactly what makes the
//! bit-identity acceptance check meaningful.

use knots_chaos::{ChaosEngine, FaultPlan};
use knots_core::config::{LoopMode, OrchestratorConfig};
use knots_core::metrics::{RecoveryStats, RunReport};
use knots_core::orchestrator::KubeKnots;
use knots_obs::Obs;
use knots_sched::Scheduler;
use knots_sim::cluster::ClusterConfig;
use knots_sim::time::{SimDuration, SimTime};
use knots_workloads::loadgen::ScheduledPod;

use crate::{RecoveryError, Snapshot, WriteAheadLog};

/// Checkpoint policy for [`run_with_recovery`].
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Periodic checkpoint cadence in simulated time. The run also takes
    /// a base checkpoint at t=0, so recovery is always possible.
    pub checkpoint_every: SimDuration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { checkpoint_every: SimDuration::from_secs(10) }
    }
}

/// Which kind of stop the drive loop is heading for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopKind {
    Checkpoint,
    Crash,
}

/// Run `schedule` under `plan` with periodic checkpointing, killing and
/// recovering the controller at every scheduled
/// [`knots_chaos::FaultKind::ControllerCrash`] instant.
///
/// `make_scheduler` must build a fresh instance of the *same* policy each
/// call — one for the initial controller and one per restart (learned
/// state is restored from the snapshot, so the policy must match).
///
/// Returns the run's [`RunReport`] with [`RunReport::recovery`] filled:
/// crashes performed, checkpoints taken, WAL records replayed, and the
/// wall-clock recovery latency. Everything the report digest covers is
/// bit-identical to an uninterrupted run of the same inputs — that is the
/// contract `tests/recovery.rs` pins.
pub fn run_with_recovery(
    cluster_cfg: &ClusterConfig,
    make_scheduler: &dyn Fn() -> Box<dyn Scheduler>,
    orch: &OrchestratorConfig,
    plan: &FaultPlan,
    schedule: &[ScheduledPod],
    rc: &RecoveryConfig,
    obs: &Obs,
) -> Result<RunReport, RecoveryError> {
    assert_eq!(
        orch.effective_mode(),
        LoopMode::EventQueue,
        "crash recovery requires the pausable event-queue loop"
    );
    let every = rc.checkpoint_every.max(orch.tick);
    let crashes = plan.controller_crashes();
    let mut crash_iter = crashes.into_iter().peekable();

    let mut k = KubeKnots::new(cluster_cfg.clone(), make_scheduler(), *orch)
        .with_chaos(ChaosEngine::new(plan.clone()));
    k.begin(schedule);
    k.enable_journal();

    // Base checkpoint at t=0: recovery must never depend on reaching the
    // first periodic checkpoint alive.
    let mut latest = Snapshot::capture(&k)?;
    let mut wal = WriteAheadLog::new();
    let mut stats = RecoveryStats { checkpoints: 1, ..RecoveryStats::default() };
    obs.metrics.inc("knots_recovery_checkpoints_total", &[]);
    let mut next_cp = k.cluster().now() + every;

    loop {
        let now = k.cluster().now();
        // Stops must strictly increase: a pause boundary can overshoot a
        // later stop (boundaries live on the event grid), in which case
        // that crash/checkpoint is already behind us.
        while crash_iter.peek().is_some_and(|c| *c <= now) {
            crash_iter.next();
        }
        while next_cp <= now {
            next_cp = next_cp + every;
        }
        // Checkpoint wins a tie: crashing at the instant of a checkpoint
        // recovers from that checkpoint with an empty replay.
        let (stop, kind) = match crash_iter.peek() {
            Some(&c) if c < next_cp => (c, StopKind::Crash),
            _ => (next_cp, StopKind::Checkpoint),
        };

        if k.drive(schedule, Some(stop)) {
            // Drained (or hit the deadline) before the stop.
            wal.append(&k.take_journal());
            break;
        }

        match kind {
            StopKind::Checkpoint => {
                wal.append(&k.take_journal());
                latest = Snapshot::capture(&k)?;
                wal.truncate();
                stats.checkpoints += 1;
                obs.metrics.inc("knots_recovery_checkpoints_total", &[]);
            }
            StopKind::Crash => {
                crash_iter.next();
                wal.append(&k.take_journal());

                // Kill the controller: every in-memory structure is gone.
                drop(k);

                // knots-allow: D1 -- wall-clock recovery latency is an observability stat (RecoveryStats is digest-excluded); it never feeds back into simulation state
                let t0 = std::time::Instant::now();
                let state = latest.state()?;
                let mut revived = KubeKnots::resume(
                    cluster_cfg.clone(),
                    make_scheduler(),
                    *orch,
                    Some(plan.clone()),
                    state,
                )
                .map_err(|e| RecoveryError::Malformed(e.to_string()))?;
                revived.enable_journal();
                // Replay: re-drive the deterministic loop from the
                // snapshot to the crash boundary. The WAL is the fence,
                // not the executor.
                let replay_done = revived.drive(schedule, Some(stop));
                let replayed = revived.take_journal();
                wal.verify_replay(&replayed)?;
                stats.recovery_wall_us += t0.elapsed().as_secs_f64() * 1e6;
                stats.controller_crashes += 1;
                stats.replayed_events += replayed.len() as u64;
                obs.metrics.inc("knots_recovery_crashes_total", &[]);
                obs.metrics.add("knots_recovery_replayed_events_total", &[], replayed.len() as u64);

                k = revived;
                if replay_done {
                    break;
                }
            }
        }
    }

    let mut report = k.report_now(schedule.len());
    report.recovery = stats;
    Ok(report)
}

/// Convenience: the crash instants of `plan` restricted to `(0, horizon)`,
/// exposed for experiment code that wants to report crash density.
pub fn planned_crashes(plan: &FaultPlan, horizon: SimTime) -> Vec<SimTime> {
    plan.controller_crashes().into_iter().filter(|c| *c < horizon).collect()
}
