#![cfg(loom)]
//! Loom model tests for [`knots_sim::pool::WorkerPool`].
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `loom` CI job); the
//! pool then builds on the loom shim's primitives and `loom::model`
//! explores every bounded interleaving of the workers, the submitting
//! thread, and the drop/join shutdown path. These are the dynamic
//! counterparts of analyzer rule C1: they pin down that the pool's
//! guard-across-recv idiom (each worker holds the receiver mutex while
//! parked in `recv`) hands off cleanly — no lost job, no lost shutdown,
//! no deadlock — under every explored schedule.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p knots-sim --test loom`

use knots_sim::pool::WorkerPool;

#[test]
fn pool_run_returns_ordered_results_under_all_schedules() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        // Two jobs on two workers: every send/acquire/park order must
        // still fill the result slots in submission order.
        let out = pool.run(vec![10u32, 20], |x| x + 1);
        assert_eq!(out, vec![11, 21]);
    });
}

#[test]
fn pool_shutdown_joins_every_worker() {
    loom::model(|| {
        // Drop immediately: the closed channel must wake both parked
        // workers (RecvError) whether or not they ever reached `recv`,
        // and the join loop must terminate in every schedule.
        let pool = WorkerPool::new(2);
        drop(pool);
    });
}

#[test]
fn pool_single_worker_drains_the_queue_in_order() {
    loom::model(|| {
        let pool = WorkerPool::new(1);
        // One worker, two queued jobs: the slot-fill protocol must keep
        // input order even when the submitter races the worker.
        let out = pool.run(vec![1u32, 2], |x| x * 10);
        assert_eq!(out, vec![10, 20]);
        let out = pool.run(vec![3u32], |x| x * 10);
        assert_eq!(out, vec![30], "pool stays usable across runs");
    });
}
