//! Property-based tests for the simulator's data structures and node
//! execution model.

use knots_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn time_arithmetic_is_consistent(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let t = SimTime::from_micros(a);
        let d = SimDuration::from_micros(b);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d).saturating_since(t), d);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn duration_seconds_round_trip(secs in 0.0f64..100_000.0) {
        let d = SimDuration::from_secs_f64(secs);
        prop_assert!((d.as_secs_f64() - secs).abs() < 1e-5);
    }

    #[test]
    fn usage_ops_preserve_validity(
        a in (0.0f64..1.0, 0.0f64..16_000.0, 0.0f64..5_000.0, 0.0f64..5_000.0),
        b in (0.0f64..1.0, 0.0f64..16_000.0, 0.0f64..5_000.0, 0.0f64..5_000.0),
    ) {
        let ua = Usage::new(a.0, a.1, a.2, a.3);
        let ub = Usage::new(b.0, b.1, b.2, b.3);
        prop_assert!(ua.is_valid_demand());
        let m = ua.max(ub);
        prop_assert!(m.sm_frac >= ua.sm_frac && m.sm_frac >= ub.sm_frac);
        prop_assert!(m.mem_mb >= ua.mem_mb && m.mem_mb >= ub.mem_mb);
        let s = ua.saturating_add(ub);
        prop_assert!((s.total_bw_mbps() - (ua.total_bw_mbps() + ub.total_bw_mbps())).abs() < 1e-9);
    }

    #[test]
    fn energy_meter_is_additive(powers in proptest::collection::vec(0.0f64..500.0, 1..50)) {
        let dt = SimDuration::from_millis(100);
        let mut whole = EnergyMeter::new();
        let mut split = EnergyMeter::new();
        for &p in &powers {
            whole.add(p, dt);
        }
        for &p in &powers {
            split.add(p, dt / 2);
            split.add(p, dt / 2);
        }
        prop_assert!((whole.joules() - split.joules()).abs() < 1e-9);
    }

    #[test]
    fn gpu_power_is_monotone_in_utilization(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let spec = GpuModel::P100.spec();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(gpu_power_watts(&spec, lo) <= gpu_power_watts(&spec, hi) + 1e-12);
    }

    /// Any number of co-located constant pods: the node's reported memory
    /// never exceeds capacity, SM utilization never exceeds 1, and after
    /// OOM resolution the surviving usage fits.
    #[test]
    fn node_never_reports_over_capacity(
        pods in proptest::collection::vec(
            (0.05f64..1.0, 200.0f64..9_000.0, 0.5f64..5.0), 1..8),
    ) {
        let mut cfg = ClusterConfig::homogeneous(1, GpuModel::P100);
        cfg.overheads.cold_start_pull = SimDuration::ZERO;
        let mut cluster = Cluster::new(cfg);
        for (i, (sm, mem, work)) in pods.iter().enumerate() {
            let id = cluster.submit(
                PodSpec::batch(format!("p{i}"), ResourceProfile::constant(*sm, *mem, *work)),
                SimTime::ZERO,
            );
            cluster.place(id, NodeId(0)).unwrap();
        }
        for _ in 0..50 {
            cluster.step(SimDuration::from_millis(10));
            let s = cluster.node(NodeId(0)).unwrap().last_sample();
            prop_assert!(s.mem_used_mb <= 16_384.0 + 1e-6, "mem {}", s.mem_used_mb);
            prop_assert!(s.sm_util <= 1.0 + 1e-9);
            prop_assert!(s.power_watts <= 250.0 + 1e-9);
        }
        // Conservation: crashed + resident + completed = submitted.
        let resident = cluster.node(NodeId(0)).unwrap().resident_count();
        let completed = cluster.completed_len();
        let waiting = cluster.pending_len();
        let relaunching = pods.len() - resident - completed - waiting;
        prop_assert!(relaunching as i64 >= 0);
    }

    /// Work conservation under contention: total progress of co-located
    /// pods never exceeds wall-clock time (SMs are time-shared, not
    /// multiplied).
    #[test]
    fn sm_time_sharing_conserves_work(
        sms in proptest::collection::vec(0.2f64..1.0, 2..6),
    ) {
        let mut cfg = ClusterConfig::homogeneous(1, GpuModel::P100);
        cfg.overheads.cold_start_pull = SimDuration::ZERO;
        let mut cluster = Cluster::new(cfg);
        let ids: Vec<PodId> = sms
            .iter()
            .enumerate()
            .map(|(i, &sm)| {
                let id = cluster.submit(
                    PodSpec::batch(format!("w{i}"), ResourceProfile::constant(sm, 100.0, 100.0)),
                    SimTime::ZERO,
                );
                cluster.place(id, NodeId(0)).unwrap();
                id
            })
            .collect();
        let steps = 100u64;
        for _ in 0..steps {
            cluster.step(SimDuration::from_millis(10));
        }
        let wall = steps as f64 * 0.010;
        let total_sm = sms.iter().sum::<f64>();
        for (id, &sm) in ids.iter().zip(&sms) {
            let progress = cluster.pod(*id).unwrap().progress();
            let expected = wall * (1.0 / total_sm.max(1.0)).min(1.0);
            prop_assert!(progress <= wall + 1e-9, "faster than wall clock");
            prop_assert!((progress - expected).abs() < 0.011, "sm {sm}: {progress} vs {expected}");
        }
    }

    /// The event-calendar contract: advancing `k` ticks in one
    /// `step_span` call — quiet nodes batched in closed form — leaves the
    /// cluster in exactly the state `k` unit `step` calls produce, down to
    /// the float bits of every sample, pod progress and the energy meter.
    #[test]
    fn span_stepping_is_bit_identical_to_unit_steps(
        pods in proptest::collection::vec(
            (0.05f64..1.0, 200.0f64..6_000.0, 0.05f64..2.0), 0..6),
        nodes in 2usize..5,
        k in 1u64..60,
        auto_sleep_ms in (any::<bool>(), 1u64..1_000u64).prop_map(|(on, ms)| on.then_some(ms)),
        fail_idle in any::<bool>(),
    ) {
        let build = || {
            let mut cfg = ClusterConfig::homogeneous(nodes, GpuModel::P100);
            cfg.overheads.cold_start_pull = SimDuration::from_millis(40);
            cfg.auto_sleep_after = auto_sleep_ms.map(SimDuration::from_millis);
            let mut c = Cluster::new(cfg);
            for (i, (sm, mem, work)) in pods.iter().enumerate() {
                let id = c.submit(
                    PodSpec::batch(format!("p{i}"), ResourceProfile::constant(*sm, *mem, *work)),
                    SimTime::ZERO,
                );
                // Node 0 stays idle (quiet); rejected placements stay
                // pending, identically on both sides.
                let _ = c.place(id, NodeId(1 + i % (nodes - 1)));
            }
            if fail_idle {
                c.fail_node(NodeId(0)).unwrap();
            }
            c
        };
        let dt = SimDuration::from_millis(10);
        let mut naive = build();
        let mut span = build();
        for _ in 0..k {
            naive.step(dt);
        }
        let quiet: Vec<bool> =
            span.nodes().iter().map(|n| n.is_failed() || n.resident_count() == 0).collect();
        let executed = span.step_span(dt, k, &quiet, |_, _| true);
        prop_assert_eq!(executed, k);
        prop_assert_eq!(naive.now(), span.now());
        prop_assert_eq!(
            naive.total_energy_joules().to_bits(),
            span.total_energy_joules().to_bits(),
            "energy"
        );
        prop_assert_eq!(naive.events().len(), span.events().len(), "events");
        prop_assert_eq!(naive.completed_len(), span.completed_len(), "completed");
        prop_assert_eq!(naive.pending_len(), span.pending_len(), "pending");
        for (a, b) in naive.nodes().iter().zip(span.nodes().iter()) {
            let (sa, sb) = (a.last_sample(), b.last_sample());
            prop_assert_eq!(sa.at, sb.at, "sample time on {:?}", a.id());
            prop_assert_eq!(sa.sm_util.to_bits(), sb.sm_util.to_bits(), "sm on {:?}", a.id());
            prop_assert_eq!(
                sa.mem_used_mb.to_bits(),
                sb.mem_used_mb.to_bits(),
                "mem on {:?}",
                a.id()
            );
            prop_assert_eq!(
                sa.power_watts.to_bits(),
                sb.power_watts.to_bits(),
                "power on {:?}",
                a.id()
            );
            prop_assert_eq!(sa.tx_mbps.to_bits(), sb.tx_mbps.to_bits(), "tx on {:?}", a.id());
            prop_assert_eq!(sa.rx_mbps.to_bits(), sb.rx_mbps.to_bits(), "rx on {:?}", a.id());
            prop_assert_eq!(a.resident_count(), b.resident_count(), "residents on {:?}", a.id());
            prop_assert_eq!(a.gpu().is_asleep(), b.gpu().is_asleep(), "pstate on {:?}", a.id());
            for ((ida, pa), (idb, pb)) in a.residents().zip(b.residents()) {
                prop_assert_eq!(ida, idb);
                prop_assert_eq!(pa.progress().to_bits(), pb.progress().to_bits(), "progress");
            }
        }
    }
}
