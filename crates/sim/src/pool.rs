//! Shared worker-thread utilities: a one-shot scoped fan-out for borrowed
//! jobs and a persistent [`WorkerPool`] for owned work.
//!
//! Both live here in `knots-sim` — the workspace's root crate — so the
//! cluster's per-tick node fan-out and the bench harness's figure sweeps
//! reuse the same primitives instead of growing private copies. Results are
//! always returned in submission order no matter which worker finishes
//! first, which keeps every consumer deterministic across thread counts.

// Under `--cfg loom` (the model-checking CI leg) the pool's concurrency
// primitives come from the loom shim, whose `model()` explores every
// bounded interleaving of workers, senders, and the drop/join shutdown
// path. Signatures are std-compatible, so only the imports change.
#[cfg(not(loom))]
use std::sync::mpsc::{channel, Sender};
#[cfg(not(loom))]
use std::sync::{Arc, Mutex};
#[cfg(not(loom))]
use std::thread::{spawn, JoinHandle};

#[cfg(loom)]
use loom::sync::mpsc::{channel, Sender};
#[cfg(loom)]
use loom::sync::{Arc, Mutex};
#[cfg(loom)]
use loom::thread::{spawn, JoinHandle};

use std::sync::PoisonError;

/// Worker count to use when the caller does not specify one: the host's
/// available parallelism, falling back to 1 when it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `jobs` on at most `threads` scoped worker threads and return their
/// results in submission order.
///
/// `threads` is clamped to `1..=jobs.len()`; `threads == 1` degenerates to
/// a plain serial loop on the calling thread (the baseline the perf harness
/// times against). Jobs may borrow from the caller's stack — the threads
/// are scoped — and a panicking job propagates out of the scope.
pub fn run_jobs<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    // Indexed job queue; workers drain it and fill the slot matching each
    // job's original position.
    let queue: Mutex<Vec<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap_or_else(PoisonError::into_inner).pop();
                let Some((i, f)) = job else { break };
                let out = f();
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            // knots-allow: P1 -- every queue entry is popped exactly once, so each slot is filled unless a job panicked (which already propagated)
            s.into_inner().unwrap_or_else(PoisonError::into_inner).expect("job completed")
        })
        .collect()
}

/// A boxed unit of work shipped to a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent bounded worker pool: `threads` parked OS threads pulling
/// boxed jobs off one shared channel.
///
/// Building the pool pays the thread-spawn cost once; every subsequent
/// [`WorkerPool::run`] reuses the same threads. That is what makes
/// per-tick fan-outs affordable — the previous scope-and-spawn-per-step
/// pattern re-created threads thousands of times per simulated run.
/// Dropping the pool closes the channel and joins every worker.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                spawn(move || loop {
                    let job = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                    match job {
                        Ok(job) => job(),
                        // The pool was dropped and the channel closed.
                        Err(_) => break,
                    }
                })
            })
            .collect();
        WorkerPool { tx: Some(tx), workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Map `f` over `inputs` on the pool, returning outputs in input order.
    ///
    /// Inputs are moved into the jobs and outputs shipped back over a
    /// results channel, so no borrows cross the thread boundary and the
    /// pool stays free of `unsafe`. Blocks until every job finished.
    pub fn run<T, R, F>(&self, inputs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let f = Arc::new(f);
        let (rtx, rrx) = channel::<(usize, R)>();
        // knots-allow: P1 -- the sender lives until drop; a closed channel means every worker died, which only a panicking job can cause
        let tx = self.tx.as_ref().expect("pool sender alive until drop");
        for (i, input) in inputs.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let rtx = rtx.clone();
            let job: Job = Box::new(move || {
                let out = f(input);
                // The receiver only disappears if `run` itself panicked.
                let _ = rtx.send((i, out));
            });
            // knots-allow: P1 -- see above: send only fails when all workers are gone
            tx.send(job).expect("worker pool hung up");
        }
        drop(rtx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            // knots-allow: P1 -- re-raising a worker-side panic is the std idiom; there is no recovery
            let (i, out) = rrx.recv().expect("a pool job panicked");
            slots[i] = Some(out);
        }
        // knots-allow: P1 -- each index was sent exactly once, so every slot is filled
        slots.into_iter().map(|s| s.expect("every slot filled")).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every worker with a RecvError.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order() {
        // Stagger job durations so completion order differs from submission
        // order; the result vector must not care.
        let expected: Vec<usize> = (0..16).map(|i| i * i).collect();
        for threads in [1, 2, 4, 32] {
            let jobs: Vec<_> = (0..16usize)
                .map(|i| {
                    move || {
                        std::thread::sleep(std::time::Duration::from_millis(((16 - i) % 5) as u64));
                        i * i
                    }
                })
                .collect();
            assert_eq!(run_jobs(jobs, threads), expected, "threads {threads}");
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let none: Vec<fn() -> i32> = Vec::new();
        assert_eq!(run_jobs(none, 4), Vec::<i32>::new());
        assert_eq!(run_jobs(vec![|| 7], 0), vec![7], "threads clamp to 1");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn pool_keeps_submission_order_across_runs() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        for round in 0..3u64 {
            let inputs: Vec<u64> = (0..32).collect();
            let out = pool.run(inputs, move |i| {
                std::thread::sleep(std::time::Duration::from_millis((32 - i) % 3));
                i * 10 + round
            });
            let expected: Vec<u64> = (0..32).map(|i| i * 10 + round).collect();
            assert_eq!(out, expected, "round {round}");
        }
    }

    #[test]
    fn pool_handles_empty_input_and_single_worker() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(pool.run(vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(vec![5], |x: i32| x * 2), vec![10]);
    }
}
