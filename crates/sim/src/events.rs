//! The cluster event log.
//!
//! Every externally observable lifecycle transition is recorded as an
//! [`Event`]; experiment harnesses derive QoS-violation counts, crash rates,
//! JCT distributions and queueing statistics from this log.

use crate::ids::{NodeId, PodId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Why a pod crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashReason {
    /// The node's pods collectively exceeded GPU memory capacity and this pod
    /// was chosen as the victim (§IV-C: "capacity violations ... lead to
    /// container crashing and relaunching").
    MemoryCapacityViolation,
    /// The node the pod was running on failed (injected whole-node fault);
    /// every resident is crashed and requeued for relaunch elsewhere.
    NodeFailure,
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Pod submitted to the pending queue.
    Submitted,
    /// Pod bound to a node.
    Placed {
        /// Target node.
        node: NodeId,
        /// Whether a cold-start image pull was required.
        cold_start: bool,
    },
    /// Pod began executing.
    Started {
        /// Node the pod runs on.
        node: NodeId,
    },
    /// Pod finished all work.
    Completed {
        /// Node the pod ran on.
        node: NodeId,
    },
    /// Pod crashed and will relaunch.
    Crashed {
        /// Node the pod crashed on.
        node: NodeId,
        /// Cause of the crash.
        reason: CrashReason,
    },
    /// Crashed pod re-entered the pending queue.
    Requeued,
    /// Pod was preempted (suspend-and-resume schedulers).
    Preempted {
        /// Node the pod was suspended on.
        node: NodeId,
    },
    /// Suspended pod resumed execution.
    Resumed {
        /// Node the pod resumed on.
        node: NodeId,
    },
    /// Pod was migrated between nodes.
    Migrated {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
    /// Pod's memory provision changed (harvest or grow-back).
    Resized {
        /// Provision before, MB.
        from_mb: f64,
        /// Provision after, MB.
        to_mb: f64,
    },
    /// Node entered deep sleep.
    NodeSlept {
        /// The node.
        node: NodeId,
    },
    /// Node woke from deep sleep.
    NodeWoken {
        /// The node.
        node: NodeId,
    },
    /// Node failed (whole-machine fault): residents crash, the node stops
    /// sampling and refuses placements until recovery.
    NodeFailed {
        /// The node.
        node: NodeId,
    },
    /// Failed node came back: empty, image cache cold, accepting placements.
    NodeRecovered {
        /// The node.
        node: NodeId,
    },
    /// The node's GPU lost (or regained) memory capacity.
    GpuDegraded {
        /// The node.
        node: NodeId,
        /// Effective capacity after the change, MB.
        capacity_mb: f64,
    },
    /// Pod hit the crash-loop cap and was abandoned (CrashLoopBackOff
    /// semantics: after too many relaunches the pod goes terminal-failed).
    GaveUp {
        /// Node of the final crash.
        node: NodeId,
        /// Total crash count at abandonment.
        crashes: u32,
    },
}

/// A timestamped event concerning one pod (or node, with `pod = None`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// When it happened.
    pub at: SimTime,
    /// The pod concerned, if any.
    pub pod: Option<PodId>,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Event about a pod.
    pub fn pod(at: SimTime, pod: PodId, kind: EventKind) -> Self {
        Event { at, pod: Some(pod), kind }
    }

    /// Event about a node only.
    pub fn node(at: SimTime, kind: EventKind) -> Self {
        Event { at, pod: None, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let e = Event::pod(SimTime::from_secs(1), PodId(3), EventKind::Submitted);
        assert_eq!(e.pod, Some(PodId(3)));
        let n = Event::node(SimTime::ZERO, EventKind::NodeSlept { node: NodeId(1) });
        assert_eq!(n.pod, None);
        assert!(matches!(n.kind, EventKind::NodeSlept { node: NodeId(1) }));
    }
}
