//! GPU hardware models and instantaneous resource-usage vectors.
//!
//! The paper's testbed is homogeneous (ten P100 worker nodes, Table II), but
//! the Knots design figure shows a heterogeneous pool (P100/V100/K80/M40), so
//! the simulator supports all four device models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// GPU device generations supported by the simulator.
///
/// Memory capacities and TDPs follow the vendor datasheets; the exact values
/// matter only in that schedulers see realistic capacity/bandwidth ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// Nvidia Tesla P100 (Pascal) — the paper's worker GPU (16 GB, Table II).
    P100,
    /// Nvidia Tesla V100 (Volta).
    V100,
    /// Nvidia Tesla K80 (Kepler, one logical GK210 die).
    K80,
    /// Nvidia Tesla M40 (Maxwell).
    M40,
}

impl GpuModel {
    /// The static specification for this device model.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuModel::P100 => GpuSpec {
                model: self,
                mem_mb: 16_384.0,
                sm_count: 56,
                pcie_mbps: 12_000.0,
                tdp_watts: 250.0,
                idle_watts: 40.0,
                sleep_watts: 9.0,
                compute_scale: 1.0,
            },
            GpuModel::V100 => GpuSpec {
                model: self,
                mem_mb: 16_384.0,
                sm_count: 80,
                pcie_mbps: 12_000.0,
                tdp_watts: 300.0,
                idle_watts: 28.0,
                sleep_watts: 10.0,
                compute_scale: 1.45,
            },
            GpuModel::K80 => GpuSpec {
                model: self,
                mem_mb: 12_288.0,
                sm_count: 13,
                pcie_mbps: 8_000.0,
                tdp_watts: 150.0,
                idle_watts: 20.0,
                sleep_watts: 8.0,
                compute_scale: 0.35,
            },
            GpuModel::M40 => GpuSpec {
                model: self,
                mem_mb: 12_288.0,
                sm_count: 24,
                pcie_mbps: 8_000.0,
                tdp_watts: 250.0,
                idle_watts: 22.0,
                sleep_watts: 9.0,
                compute_scale: 0.55,
            },
        }
    }
}

impl fmt::Display for GpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GpuModel::P100 => "P100",
            GpuModel::V100 => "V100",
            GpuModel::K80 => "K80",
            GpuModel::M40 => "M40",
        };
        f.write_str(s)
    }
}

/// Static hardware specification of one GPU device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Device generation.
    pub model: GpuModel,
    /// Device memory capacity in MB (space-shared between co-located pods).
    pub mem_mb: f64,
    /// Number of streaming multiprocessors (informational; compute is modeled
    /// as a single time-shared fraction in `[0, 1]`).
    pub sm_count: u32,
    /// PCIe link bandwidth in MB/s, shared by transmit and receive traffic.
    pub pcie_mbps: f64,
    /// Board power at 100% SM utilization.
    pub tdp_watts: f64,
    /// Board power when idle but in an active p-state.
    pub idle_watts: f64,
    /// Board power in the deep-sleep p-state (paper: `p_state 12`).
    pub sleep_watts: f64,
    /// Relative compute throughput (P100 = 1.0). A pod's work progresses at
    /// `compute_scale ×` the rate it would on a P100, before contention.
    pub compute_scale: f64,
}

/// An instantaneous resource-demand/usage vector for one pod or one device.
///
/// These are the quantities Knots samples every heartbeat (§IV-A): SM
/// utilization, memory, and PCIe transmit/receive bandwidth. Power is derived
/// from SM utilization by the energy model rather than stored here.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Usage {
    /// Fraction of the device's SMs demanded/used, in `[0, 1]`.
    pub sm_frac: f64,
    /// Device memory in MB.
    pub mem_mb: f64,
    /// Host-to-device (receive) bandwidth in MB/s.
    pub rx_mbps: f64,
    /// Device-to-host (transmit) bandwidth in MB/s.
    pub tx_mbps: f64,
}

impl Usage {
    /// A zero usage vector.
    pub const ZERO: Usage = Usage { sm_frac: 0.0, mem_mb: 0.0, rx_mbps: 0.0, tx_mbps: 0.0 };

    /// Create a usage vector.
    pub fn new(sm_frac: f64, mem_mb: f64, rx_mbps: f64, tx_mbps: f64) -> Self {
        Usage { sm_frac, mem_mb, rx_mbps, tx_mbps }
    }

    /// Component-wise sum.
    pub fn saturating_add(self, other: Usage) -> Usage {
        Usage {
            sm_frac: self.sm_frac + other.sm_frac,
            mem_mb: self.mem_mb + other.mem_mb,
            rx_mbps: self.rx_mbps + other.rx_mbps,
            tx_mbps: self.tx_mbps + other.tx_mbps,
        }
    }

    /// Component-wise maximum.
    pub fn max(self, other: Usage) -> Usage {
        Usage {
            sm_frac: self.sm_frac.max(other.sm_frac),
            mem_mb: self.mem_mb.max(other.mem_mb),
            rx_mbps: self.rx_mbps.max(other.rx_mbps),
            tx_mbps: self.tx_mbps.max(other.tx_mbps),
        }
    }

    /// Scale every component by `k`.
    pub fn scale(self, k: f64) -> Usage {
        Usage {
            sm_frac: self.sm_frac * k,
            mem_mb: self.mem_mb * k,
            rx_mbps: self.rx_mbps * k,
            tx_mbps: self.tx_mbps * k,
        }
    }

    /// Combined PCIe bandwidth (rx + tx).
    pub fn total_bw_mbps(self) -> f64 {
        self.rx_mbps + self.tx_mbps
    }

    /// True when all components are finite and non-negative and `sm_frac <= 1`.
    pub fn is_valid_demand(self) -> bool {
        let nonneg = |x: f64| x.is_finite() && x >= 0.0;
        nonneg(self.sm_frac)
            && self.sm_frac <= 1.0 + 1e-9
            && nonneg(self.mem_mb)
            && nonneg(self.rx_mbps)
            && nonneg(self.tx_mbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_matches_table_ii() {
        let spec = GpuModel::P100.spec();
        assert_eq!(spec.mem_mb, 16_384.0); // 16 GB per Table II
        assert_eq!(spec.sm_count, 56);
        assert!(spec.tdp_watts > spec.idle_watts);
        assert!(spec.idle_watts > spec.sleep_watts);
    }

    #[test]
    fn all_models_have_consistent_power_ladder() {
        for m in [GpuModel::P100, GpuModel::V100, GpuModel::K80, GpuModel::M40] {
            let s = m.spec();
            assert!(s.tdp_watts > s.idle_watts && s.idle_watts > s.sleep_watts, "{m}");
            assert!(s.mem_mb > 0.0 && s.pcie_mbps > 0.0);
        }
    }

    #[test]
    fn usage_arithmetic() {
        let a = Usage::new(0.3, 100.0, 10.0, 5.0);
        let b = Usage::new(0.5, 200.0, 0.0, 5.0);
        let sum = a.saturating_add(b);
        assert!((sum.sm_frac - 0.8).abs() < 1e-12);
        assert!((sum.mem_mb - 300.0).abs() < 1e-12);
        assert!((sum.total_bw_mbps() - 20.0).abs() < 1e-12);
        let m = a.max(b);
        assert!((m.sm_frac - 0.5).abs() < 1e-12);
        assert!((m.rx_mbps - 10.0).abs() < 1e-12);
        let s = a.scale(2.0);
        assert!((s.mem_mb - 200.0).abs() < 1e-12);
    }

    #[test]
    fn demand_validity() {
        assert!(Usage::new(1.0, 0.0, 0.0, 0.0).is_valid_demand());
        assert!(!Usage::new(1.5, 0.0, 0.0, 0.0).is_valid_demand());
        assert!(!Usage::new(0.5, -1.0, 0.0, 0.0).is_valid_demand());
        assert!(!Usage::new(f64::NAN, 0.0, 0.0, 0.0).is_valid_demand());
    }

    #[test]
    fn model_display() {
        assert_eq!(GpuModel::P100.to_string(), "P100");
        assert_eq!(GpuModel::V100.to_string(), "V100");
    }
}
