//! Cluster-level configuration, including the paper's testbed constants
//! (Tables II & III) and the trace-driven DNN simulation setup (§V-C).

use crate::resources::GpuModel;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Number of GPU worker nodes in the paper's physical testbed (§V-A).
pub const TESTBED_WORKER_NODES: usize = 10;

/// Worker GPU in the paper's testbed (Table II).
pub const TESTBED_GPU: GpuModel = GpuModel::P100;

/// Nodes in the trace-driven DNN simulation (§V-C): 32 nodes × 8 GPUs.
/// Since the simulator schedules at single-GPU granularity (see DESIGN.md),
/// this flattens to 256 single-GPU nodes.
pub const DNN_SIM_GPUS: usize = 256;

/// The paper's QoS deadline for latency-critical queries (§VI-B, "typically
/// set around 150 milliseconds").
pub const QOS_DEADLINE: SimDuration = SimDuration(150_000);

/// Defaults for timing overheads (documented in DESIGN.md):
/// cold-start image pulls take a few seconds (§V-B), container relaunch
/// latency is "in the order of few seconds" (§IV-C), job migration incurs
/// "latency up to few seconds" (§VI-E).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overheads {
    /// Cold-start image pull duration.
    pub cold_start_pull: SimDuration,
    /// Delay between an OOM crash and re-entering the pending queue.
    pub relaunch_delay: SimDuration,
    /// Deep-sleep wake-up latency.
    pub wake_delay: SimDuration,
    /// Suspend cost paid when a pod is resumed after preemption
    /// (suspend-and-resume schedulers such as Gandiva/Tiresias).
    pub resume_overhead: SimDuration,
    /// Migration cost (checkpoint + transfer + restore).
    pub migration_delay: SimDuration,
}

impl Default for Overheads {
    fn default() -> Self {
        Overheads {
            cold_start_pull: SimDuration::from_secs(2),
            relaunch_delay: SimDuration::from_secs(4),
            wake_delay: SimDuration::from_millis(500),
            resume_overhead: SimDuration::from_millis(250),
            migration_delay: SimDuration::from_secs(3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(TESTBED_WORKER_NODES, 10);
        assert_eq!(DNN_SIM_GPUS, 32 * 8);
        assert_eq!(QOS_DEADLINE, SimDuration::from_millis(150));
    }

    #[test]
    fn default_overheads_are_seconds_scale() {
        let o = Overheads::default();
        assert!(o.cold_start_pull >= SimDuration::from_secs(1));
        assert!(o.relaunch_delay >= SimDuration::from_secs(1));
        assert!(o.migration_delay >= o.resume_overhead);
    }
}
