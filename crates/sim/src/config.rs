//! Cluster-level configuration, including the paper's testbed constants
//! (Tables II & III) and the trace-driven DNN simulation setup (§V-C).

use crate::resources::GpuModel;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Number of GPU worker nodes in the paper's physical testbed (§V-A).
pub const TESTBED_WORKER_NODES: usize = 10;

/// Worker GPU in the paper's testbed (Table II).
pub const TESTBED_GPU: GpuModel = GpuModel::P100;

/// Nodes in the trace-driven DNN simulation (§V-C): 32 nodes × 8 GPUs.
/// Since the simulator schedules at single-GPU granularity (see DESIGN.md),
/// this flattens to 256 single-GPU nodes.
pub const DNN_SIM_GPUS: usize = 256;

/// The paper's QoS deadline for latency-critical queries (§VI-B, "typically
/// set around 150 milliseconds").
pub const QOS_DEADLINE: SimDuration = SimDuration(150_000);

/// Defaults for timing overheads (documented in DESIGN.md):
/// cold-start image pulls take a few seconds (§V-B), container relaunch
/// latency is "in the order of few seconds" (§IV-C), job migration incurs
/// "latency up to few seconds" (§VI-E).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overheads {
    /// Cold-start image pull duration.
    pub cold_start_pull: SimDuration,
    /// Base delay between a crash and re-entering the pending queue.
    pub relaunch_delay: SimDuration,
    /// Multiplier applied to [`Overheads::relaunch_delay`] per *prior* crash
    /// of the same pod (Kubernetes `CrashLoopBackOff` semantics). `1.0`
    /// (default) reproduces the historical fixed delay bit-for-bit.
    pub relaunch_backoff: f64,
    /// Upper bound on the backed-off relaunch delay.
    pub relaunch_delay_max: SimDuration,
    /// After this many crashes a pod is abandoned (terminal `Failed` state)
    /// instead of relaunched. `0` (default) disables the cap.
    pub crash_loop_cap: u32,
    /// Deep-sleep wake-up latency.
    pub wake_delay: SimDuration,
    /// Suspend cost paid when a pod is resumed after preemption
    /// (suspend-and-resume schedulers such as Gandiva/Tiresias).
    pub resume_overhead: SimDuration,
    /// Migration cost (checkpoint + transfer + restore).
    pub migration_delay: SimDuration,
}

impl Default for Overheads {
    fn default() -> Self {
        Overheads {
            cold_start_pull: SimDuration::from_secs(2),
            relaunch_delay: SimDuration::from_secs(4),
            relaunch_backoff: 1.0,
            relaunch_delay_max: SimDuration::from_secs(300),
            crash_loop_cap: 0,
            migration_delay: SimDuration::from_secs(3),
            resume_overhead: SimDuration::from_millis(250),
            wake_delay: SimDuration::from_millis(500),
        }
    }
}

impl Overheads {
    /// Relaunch delay for a pod that has already crashed `prior_crashes`
    /// times: `relaunch_delay * backoff^prior_crashes`, capped at
    /// [`Overheads::relaunch_delay_max`].
    ///
    /// With the default `relaunch_backoff == 1.0` this returns
    /// `relaunch_delay` unchanged — no float round-trip — so historical
    /// digests are preserved exactly.
    pub fn relaunch_delay_for(&self, prior_crashes: u32) -> SimDuration {
        if self.relaunch_backoff == 1.0 || prior_crashes == 0 {
            return self.relaunch_delay;
        }
        let factor = self.relaunch_backoff.powi(prior_crashes.min(i32::MAX as u32) as i32);
        let us = (self.relaunch_delay.as_micros() as f64 * factor).round();
        let capped = if us.is_finite() { us as u64 } else { u64::MAX };
        SimDuration::from_micros(capped.min(self.relaunch_delay_max.as_micros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(TESTBED_WORKER_NODES, 10);
        assert_eq!(DNN_SIM_GPUS, 32 * 8);
        assert_eq!(QOS_DEADLINE, SimDuration::from_millis(150));
    }

    #[test]
    fn default_overheads_are_seconds_scale() {
        let o = Overheads::default();
        assert!(o.cold_start_pull >= SimDuration::from_secs(1));
        assert!(o.relaunch_delay >= SimDuration::from_secs(1));
        assert!(o.migration_delay >= o.resume_overhead);
    }

    #[test]
    fn default_backoff_is_the_historical_fixed_delay() {
        let o = Overheads::default();
        for crashes in 0..16 {
            assert_eq!(o.relaunch_delay_for(crashes), o.relaunch_delay);
        }
        assert_eq!(o.crash_loop_cap, 0);
    }

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let o = Overheads {
            relaunch_backoff: 2.0,
            relaunch_delay_max: SimDuration::from_secs(20),
            ..Overheads::default()
        };
        assert_eq!(o.relaunch_delay_for(0), SimDuration::from_secs(4));
        assert_eq!(o.relaunch_delay_for(1), SimDuration::from_secs(8));
        assert_eq!(o.relaunch_delay_for(2), SimDuration::from_secs(16));
        // 32 s exceeds the 20 s cap.
        assert_eq!(o.relaunch_delay_for(3), SimDuration::from_secs(20));
        // Huge exponents saturate at the cap instead of overflowing.
        assert_eq!(o.relaunch_delay_for(4000), SimDuration::from_secs(20));
    }
}
