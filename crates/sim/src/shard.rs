//! Shard layout: the contiguous partition of node ids that every sharded
//! layer (cluster stepping, TSDB partitions, aggregator rollup, scheduler
//! candidate merge) agrees on.
//!
//! A layout is a pure function of `(nodes, shards)`: node `i` belongs to
//! shard `i / ceil(nodes / shards)`. Contiguity is the load-bearing
//! property — concatenating per-shard results in shard order reproduces
//! global node order exactly, which is why every sharded fan-out in the
//! workspace can join its results by index and stay bit-identical to the
//! single-shard path regardless of shard count or thread count.

use std::ops::Range;

/// Contiguous partition of `nodes` node ids into `shards` ranges.
///
/// The requested shard count is clamped to `[1, max(nodes, 1)]` so every
/// shard is non-empty (an empty cluster degenerates to one empty shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLayout {
    nodes: usize,
    shards: usize,
    /// Nodes per shard (the last shard may be smaller).
    chunk: usize,
}

impl ShardLayout {
    /// Build a layout over `nodes` node ids split into `shards` contiguous
    /// ranges. `shards == 0` and `shards > nodes` clamp into range.
    pub fn new(nodes: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, nodes.max(1));
        let chunk = nodes.div_ceil(shards).max(1);
        // Clamping by chunk keeps every shard non-empty even when the
        // requested count does not divide the node count evenly
        // (e.g. 10 nodes / 4 shards -> chunk 3 -> 4 ranges of 3/3/3/1).
        let shards = nodes.div_ceil(chunk).max(1);
        ShardLayout { nodes, shards, chunk }
    }

    /// Total node count covered by the layout.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Effective shard count after clamping.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Nodes per full shard.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Shard owning node id `i`. Ids past the end map to the last shard so
    /// routing never panics on stale ids.
    pub fn shard_of(&self, i: usize) -> usize {
        (i / self.chunk).min(self.shards - 1)
    }

    /// Node-id range owned by shard `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        let start = (s * self.chunk).min(self.nodes);
        let end = ((s + 1) * self.chunk).min(self.nodes);
        start..end
    }

    /// All shard ranges in shard order; concatenated they cover `0..nodes`
    /// exactly once, in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.shards).map(|s| self.range(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_in_order() {
        for nodes in [0usize, 1, 2, 7, 10, 64, 100, 1024] {
            for shards in [1usize, 2, 3, 4, 8, 16, 2000] {
                let l = ShardLayout::new(nodes, shards);
                let flat: Vec<usize> = l.ranges().flatten().collect();
                let expect: Vec<usize> = (0..nodes).collect();
                assert_eq!(flat, expect, "nodes={nodes} shards={shards}");
                for i in 0..nodes {
                    let s = l.shard_of(i);
                    assert!(l.range(s).contains(&i), "node {i} not in its shard {s}");
                }
            }
        }
    }

    #[test]
    fn clamps_to_non_empty_shards() {
        let l = ShardLayout::new(4, 8);
        assert_eq!(l.shards(), 4);
        let l = ShardLayout::new(0, 8);
        assert_eq!(l.shards(), 1);
        assert_eq!(l.range(0), 0..0);
        let l = ShardLayout::new(10, 4);
        assert_eq!(l.chunk(), 3);
        assert_eq!(l.shards(), 4);
        assert_eq!(l.range(3), 9..10);
    }

    #[test]
    fn out_of_range_ids_route_to_last_shard() {
        let l = ShardLayout::new(8, 4);
        assert_eq!(l.shard_of(7), 3);
        assert_eq!(l.shard_of(99), 3);
    }
}
