//! Power and energy-efficiency models (paper §II-A, Fig. 1).
//!
//! The paper's motivating observation is that GPUs are close to linearly
//! power-proportional: board power rises linearly with SM utilization, so
//! performance-per-watt keeps improving all the way to 100% utilization.
//! CPUs instead peak at 60–80% utilization and *lose* efficiency beyond that
//! (hyper-threading effects), so a GPU-cluster scheduler should pack far more
//! aggressively than a CPU scheduler (Observation 1).

use crate::resources::GpuSpec;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Board power at a given granted SM utilization, for an awake device.
///
/// Linear interpolation between idle and TDP — the "highly linear energy
/// efficiency with respect to utilization" behaviour the paper leverages.
pub fn gpu_power_watts(spec: &GpuSpec, sm_util: f64) -> f64 {
    let u = sm_util.clamp(0.0, 1.0);
    spec.idle_watts + (spec.tdp_watts - spec.idle_watts) * u
}

/// GPU energy efficiency (throughput per watt) normalized to the efficiency
/// at 100% utilization, as plotted in Fig. 1.
///
/// With linear power and linear throughput this is
/// `u · tdp / (idle + (tdp − idle)·u)` — monotonically increasing, equal to
/// 1.0 at `u = 1`. Maximum efficiency is only reached fully utilized.
pub fn gpu_energy_efficiency(spec: &GpuSpec, sm_util: f64) -> f64 {
    let u = sm_util.clamp(0.0, 1.0);
    if u == 0.0 {
        return 0.0;
    }
    u * spec.tdp_watts / gpu_power_watts(spec, u)
}

/// CPU generations plotted in Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpuGeneration {
    /// Intel Sandy Bridge — newer, more energy proportional; efficiency peaks
    /// around 60–70% core utilization at ~1.3× the efficiency at 100%.
    SandyBridge,
    /// Intel Westmere — older, flatter curve peaking mildly around 70–80%.
    Westmere,
}

/// CPU energy efficiency normalized to the efficiency at 100% utilization.
///
/// Modeled as a saturating throughput-per-watt curve multiplied by a
/// hyper-threading droop beyond the peak zone:
/// `EE(u) ∝ (u / (u + k)) · (1 − d · max(0, u − u₀)²)`, normalized so that
/// `EE(1) = 1`. Constants are fitted to the qualitative shape of Fig. 1.
pub fn cpu_energy_efficiency(gen: CpuGeneration, util: f64) -> f64 {
    let u = util.clamp(0.0, 1.0);
    if u == 0.0 {
        return 0.0;
    }
    let (k, u0, d) = match gen {
        CpuGeneration::SandyBridge => (0.08, 0.55, 1.4),
        CpuGeneration::Westmere => (0.35, 0.60, 0.9),
    };
    let f = |x: f64| (x / (x + k)) * (1.0 - d * (x - u0).max(0.0).powi(2));
    f(u) / f(1.0)
}

/// Integrates power over simulated time into joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    joules: f64,
}

impl EnergyMeter {
    /// A meter reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate `power_watts` drawn for `dt`.
    pub fn add(&mut self, power_watts: f64, dt: SimDuration) {
        debug_assert!(power_watts >= 0.0);
        self.joules += power_watts * dt.as_secs_f64();
    }

    /// Total energy in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total energy in watt-hours.
    pub fn watt_hours(&self) -> f64 {
        self.joules / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::GpuModel;

    #[test]
    fn gpu_power_is_linear_between_idle_and_tdp() {
        let spec = GpuModel::P100.spec();
        assert!((gpu_power_watts(&spec, 0.0) - spec.idle_watts).abs() < 1e-9);
        assert!((gpu_power_watts(&spec, 1.0) - spec.tdp_watts).abs() < 1e-9);
        let half = gpu_power_watts(&spec, 0.5);
        assert!((half - (spec.idle_watts + spec.tdp_watts) / 2.0).abs() < 1e-9);
        // Clamping.
        assert!((gpu_power_watts(&spec, 2.0) - spec.tdp_watts).abs() < 1e-9);
    }

    #[test]
    fn gpu_efficiency_monotonic_and_peaks_at_full_util() {
        let spec = GpuModel::P100.spec();
        let mut prev = 0.0;
        for i in 1..=10 {
            let ee = gpu_energy_efficiency(&spec, i as f64 / 10.0);
            assert!(ee > prev, "GPU EE must rise monotonically");
            prev = ee;
        }
        assert!((gpu_energy_efficiency(&spec, 1.0) - 1.0).abs() < 1e-9);
        assert_eq!(gpu_energy_efficiency(&spec, 0.0), 0.0);
    }

    #[test]
    fn cpu_efficiency_peaks_in_the_60_80_zone() {
        for gen in [CpuGeneration::SandyBridge, CpuGeneration::Westmere] {
            let utils: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
            let (peak_u, peak_ee) = utils
                .iter()
                .map(|&u| (u, cpu_energy_efficiency(gen, u)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert!((0.55..=0.85).contains(&peak_u), "{gen:?} peak at {peak_u}");
            assert!(peak_ee > 1.0, "{gen:?} peak EE {peak_ee} should exceed EE(100%)");
            assert!((cpu_energy_efficiency(gen, 1.0) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sandybridge_is_more_energy_proportional_than_westmere() {
        // At moderate utilization, the newer part should be relatively more
        // efficient (Fig. 1).
        for u in [0.2, 0.4, 0.6] {
            assert!(
                cpu_energy_efficiency(CpuGeneration::SandyBridge, u)
                    > cpu_energy_efficiency(CpuGeneration::Westmere, u)
            );
        }
    }

    #[test]
    fn gpu_beats_cpu_pattern_near_full_load() {
        // The GPU keeps gaining efficiency where CPUs droop: the GPU EE
        // at 100% (=1.0) exceeds its EE at 70%, while the CPU EE at 100%
        // is *below* its EE at 70%.
        let spec = GpuModel::P100.spec();
        assert!(gpu_energy_efficiency(&spec, 1.0) > gpu_energy_efficiency(&spec, 0.7));
        assert!(
            cpu_energy_efficiency(CpuGeneration::SandyBridge, 1.0)
                < cpu_energy_efficiency(CpuGeneration::SandyBridge, 0.7)
        );
    }

    #[test]
    fn energy_meter_integrates() {
        let mut m = EnergyMeter::new();
        m.add(100.0, SimDuration::from_secs(36));
        assert!((m.joules() - 3600.0).abs() < 1e-9);
        assert!((m.watt_hours() - 1.0).abs() < 1e-9);
    }
}
