//! The GPU device attached to a worker node.

use crate::resources::{GpuModel, GpuSpec};
use serde::{Deserialize, Serialize};

/// Device power state.
///
/// Real Nvidia devices expose p-states P0..P12; the scheduler-visible
/// distinction in the paper is only "active" vs "deep sleep (`p_state 12`)"
/// (§VI-C), plus the transient wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PState {
    /// Active: draws `idle_watts` when unused, up to `tdp_watts` when busy.
    Active,
    /// Deep sleep: draws `sleep_watts`; cannot host pods until woken.
    DeepSleep,
}

/// One GPU device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuDevice {
    spec: GpuSpec,
    pstate: PState,
    /// Fraction of memory capacity lost to an injected hardware fault
    /// (0.0 = healthy). See `Cluster::degrade_node`.
    degraded_frac: f64,
}

impl GpuDevice {
    /// A new, awake device of the given model.
    pub fn new(model: GpuModel) -> Self {
        GpuDevice { spec: model.spec(), pstate: PState::Active, degraded_frac: 0.0 }
    }

    /// Hardware specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Effective memory capacity in MB: the spec capacity less any injected
    /// degradation. Bit-identical to `spec.mem_mb` while healthy.
    pub fn capacity_mb(&self) -> f64 {
        if self.degraded_frac == 0.0 {
            self.spec.mem_mb
        } else {
            self.spec.mem_mb * (1.0 - self.degraded_frac)
        }
    }

    /// Fraction of memory capacity currently lost to degradation.
    pub fn degraded_frac(&self) -> f64 {
        self.degraded_frac
    }

    /// Current power state.
    pub fn pstate(&self) -> PState {
        self.pstate
    }

    /// Whether the device is in deep sleep.
    pub fn is_asleep(&self) -> bool {
        self.pstate == PState::DeepSleep
    }

    pub(crate) fn set_pstate(&mut self, p: PState) {
        self.pstate = p;
    }

    pub(crate) fn set_degraded_frac(&mut self, frac: f64) {
        debug_assert!((0.0..1.0).contains(&frac) || frac == 0.0);
        self.degraded_frac = frac;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_starts_awake() {
        let g = GpuDevice::new(GpuModel::P100);
        assert_eq!(g.pstate(), PState::Active);
        assert!(!g.is_asleep());
        assert_eq!(g.spec().mem_mb, 16_384.0);
    }

    #[test]
    fn degradation_scales_capacity() {
        let mut g = GpuDevice::new(GpuModel::P100);
        assert_eq!(g.capacity_mb(), 16_384.0);
        g.set_degraded_frac(0.25);
        assert_eq!(g.capacity_mb(), 16_384.0 * 0.75);
        g.set_degraded_frac(0.0);
        // Healthy path must be the raw spec value, not a multiply.
        assert_eq!(g.capacity_mb().to_bits(), 16_384.0f64.to_bits());
    }

    #[test]
    fn pstate_transitions() {
        let mut g = GpuDevice::new(GpuModel::V100);
        g.set_pstate(PState::DeepSleep);
        assert!(g.is_asleep());
        g.set_pstate(PState::Active);
        assert!(!g.is_asleep());
    }
}
