//! Phase-structured resource profiles.
//!
//! Section II-C of the paper characterizes GPU applications as sequences of
//! deterministic *phases*: a PCIe input burst is typically followed a few
//! milliseconds later by compute- and memory-intensive phases, and the whole
//! allocated capacity is used for only ~6% of the runtime. CBP and PP exploit
//! exactly this structure, so profiles are first-class simulator objects.
//!
//! A [`ResourceProfile`] is a piecewise-constant function from *work*
//! (seconds of execution at full, uncontended speed) to a resource demand
//! [`Usage`]. When a pod is slowed down by SM time-sharing or PCIe
//! contention, it takes longer than `total_work` seconds of wall-clock time
//! to finish the same profile — which is how co-location interference shows
//! up in job completion times.

use crate::resources::Usage;
use serde::{Deserialize, Serialize};

/// One phase of an application's execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Length of the phase in *work-seconds* (wall-clock seconds at full speed).
    pub work_secs: f64,
    /// Resource demand while the phase executes.
    pub demand: Usage,
}

impl Phase {
    /// Create a phase.
    ///
    /// # Panics
    /// Panics when `work_secs` is not strictly positive or the demand vector
    /// is invalid (negative, NaN, or `sm_frac > 1`).
    pub fn new(work_secs: f64, demand: Usage) -> Self {
        assert!(
            work_secs.is_finite() && work_secs > 0.0,
            "phase work must be positive: {work_secs}"
        );
        assert!(demand.is_valid_demand(), "invalid phase demand: {demand:?}");
        Phase { work_secs, demand }
    }
}

/// A piecewise-constant map from executed work to resource demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    phases: Vec<Phase>,
    /// Cumulative work boundaries; `cumulative[i]` is the end of phase `i`.
    cumulative: Vec<f64>,
}

impl ResourceProfile {
    /// Build a profile from an ordered list of phases.
    ///
    /// # Panics
    /// Panics on an empty phase list.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "profile needs at least one phase");
        let mut cumulative = Vec::with_capacity(phases.len());
        let mut acc = 0.0;
        for p in &phases {
            acc += p.work_secs;
            cumulative.push(acc);
        }
        ResourceProfile { phases, cumulative }
    }

    /// A single-phase profile with constant demand — useful for tests and
    /// simple workloads.
    pub fn constant(sm_frac: f64, mem_mb: f64, work_secs: f64) -> Self {
        ResourceProfile::new(vec![Phase::new(work_secs, Usage::new(sm_frac, mem_mb, 0.0, 0.0))])
    }

    /// Total work in seconds-at-full-speed. This is the job's *solo* runtime.
    pub fn total_work(&self) -> f64 {
        self.cumulative.last().copied().unwrap_or(0.0)
    }

    /// The phases of this profile.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Demand at a given amount of executed work. Work beyond the end clamps
    /// to the final phase (the pod is about to complete anyway).
    pub fn demand_at(&self, work: f64) -> Usage {
        debug_assert!(work.is_finite() && work >= 0.0);
        // Binary search over the cumulative boundaries. Profiles have at most
        // a few dozen phases, but demand_at is called every tick per pod.
        let idx = match self.cumulative.binary_search_by(|b| b.total_cmp(&work)) {
            // Exactly on a boundary: the boundary ends its phase, so the
            // demand comes from the *next* phase (if any).
            Ok(i) => (i + 1).min(self.phases.len() - 1),
            Err(i) => i.min(self.phases.len() - 1),
        };
        self.phases[idx].demand
    }

    /// The first phase boundary strictly beyond `work`, excluding the
    /// profile's end (completion is tracked through remaining work, not a
    /// demand change). `None` once `work` is inside the final phase —
    /// demand can no longer change. Feeds the event calendar's node hint.
    pub fn next_boundary_after(&self, work: f64) -> Option<f64> {
        let inner = &self.cumulative[..self.cumulative.len() - 1];
        // Strict `>` mirrors demand_at: a pod sitting exactly on a boundary
        // already draws the next phase's demand.
        inner.iter().copied().find(|b| *b > work)
    }

    /// Component-wise peak demand over the whole profile. This is what a
    /// "provision for the worst case" scheduler (Res-Ag) reserves.
    pub fn peak_demand(&self) -> Usage {
        self.phases.iter().fold(Usage::ZERO, |acc, p| acc.max(p.demand))
    }

    /// Work-weighted mean memory demand in MB.
    pub fn mean_mem_mb(&self) -> f64 {
        let total = self.total_work();
        self.phases.iter().map(|p| p.demand.mem_mb * p.work_secs).sum::<f64>() / total
    }

    /// Work-weighted memory percentile (`q` in `[0, 1]`), i.e. the smallest
    /// memory level such that phases covering at least a `q` fraction of the
    /// work demand no more than that level. CBP resizes containers to the
    /// 80th percentile of this distribution (§IV-C).
    pub fn mem_percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0,1]: {q}");
        let mut levels: Vec<(f64, f64)> =
            self.phases.iter().map(|p| (p.demand.mem_mb, p.work_secs)).collect();
        levels.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total = self.total_work();
        let target = q * total;
        let mut acc = 0.0;
        for (mem, w) in &levels {
            acc += w;
            if acc >= target - 1e-12 {
                return *mem;
            }
        }
        levels.last().map(|(m, _)| *m).unwrap_or(0.0)
    }

    /// Fraction of total work during which memory demand is within `tol` of
    /// the peak. The paper observes applications use their whole allocation
    /// for only ~6% of execution time.
    pub fn peak_mem_fraction(&self, tol: f64) -> f64 {
        let peak = self.peak_demand().mem_mb;
        if peak == 0.0 {
            return 0.0;
        }
        let at_peak: f64 = self
            .phases
            .iter()
            .filter(|p| p.demand.mem_mb >= peak * (1.0 - tol))
            .map(|p| p.work_secs)
            .sum();
        at_peak / self.total_work()
    }

    /// Sample the profile's demand at `n` equally-spaced work points —
    /// useful for building synthetic telemetry traces.
    pub fn sample(&self, n: usize) -> Vec<Usage> {
        assert!(n > 0);
        let total = self.total_work();
        (0..n).map(|i| self.demand_at(total * (i as f64 + 0.5) / n as f64)).collect()
    }
}

/// Incremental builder for multi-phase profiles.
///
/// ```
/// use knots_sim::profile::ProfileBuilder;
/// let p = ProfileBuilder::new()
///     .transfer(0.050, 4_000.0, 512.0)   // 50 ms input burst at 4 GB/s
///     .compute(2.0, 0.9, 2_048.0)        // 2 s compute at 90% SM
///     .writeback(0.020, 2_000.0, 2_048.0)
///     .build();
/// assert!(p.total_work() > 2.0);
/// ```
#[derive(Debug, Default)]
pub struct ProfileBuilder {
    phases: Vec<Phase>,
}

impl ProfileBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an arbitrary phase.
    pub fn phase(mut self, work_secs: f64, demand: Usage) -> Self {
        self.phases.push(Phase::new(work_secs, demand));
        self
    }

    /// Append a host-to-device transfer phase: high rx bandwidth, low SM.
    pub fn transfer(self, work_secs: f64, rx_mbps: f64, mem_mb: f64) -> Self {
        self.phase(work_secs, Usage::new(0.05, mem_mb, rx_mbps, 0.0))
    }

    /// Append a compute phase at the given SM fraction and memory footprint.
    pub fn compute(self, work_secs: f64, sm_frac: f64, mem_mb: f64) -> Self {
        self.phase(work_secs, Usage::new(sm_frac, mem_mb, 0.0, 0.0))
    }

    /// Append a device-to-host writeback phase.
    pub fn writeback(self, work_secs: f64, tx_mbps: f64, mem_mb: f64) -> Self {
        self.phase(work_secs, Usage::new(0.05, mem_mb, 0.0, tx_mbps))
    }

    /// Append an idle/setup phase (negligible demand, some resident memory).
    pub fn idle(self, work_secs: f64, mem_mb: f64) -> Self {
        self.phase(work_secs, Usage::new(0.01, mem_mb, 0.0, 0.0))
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics when no phase was added.
    pub fn build(self) -> ResourceProfile {
        ResourceProfile::new(self.phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_phase() -> ResourceProfile {
        ProfileBuilder::new()
            .transfer(1.0, 1000.0, 100.0)
            .compute(2.0, 0.8, 500.0)
            .writeback(1.0, 800.0, 200.0)
            .build()
    }

    #[test]
    fn total_work_sums_phases() {
        assert!((three_phase().total_work() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn demand_lookup_hits_each_phase() {
        let p = three_phase();
        assert!((p.demand_at(0.5).rx_mbps - 1000.0).abs() < 1e-9);
        assert!((p.demand_at(2.0).sm_frac - 0.8).abs() < 1e-9);
        assert!((p.demand_at(3.5).tx_mbps - 800.0).abs() < 1e-9);
        // Past the end: clamps to the final phase.
        assert!((p.demand_at(100.0).tx_mbps - 800.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_belongs_to_next_phase() {
        let p = three_phase();
        // work = 1.0 is the end of the transfer phase; demand should come
        // from the compute phase.
        assert!((p.demand_at(1.0).sm_frac - 0.8).abs() < 1e-9);
    }

    #[test]
    fn peak_demand_is_componentwise() {
        let peak = three_phase().peak_demand();
        assert!((peak.sm_frac - 0.8).abs() < 1e-9);
        assert!((peak.mem_mb - 500.0).abs() < 1e-9);
        assert!((peak.rx_mbps - 1000.0).abs() < 1e-9);
        assert!((peak.tx_mbps - 800.0).abs() < 1e-9);
    }

    #[test]
    fn mem_percentile_orders_by_level() {
        let p = three_phase(); // mem levels: 100 (1s), 500 (2s), 200 (1s)
        assert!((p.mem_percentile(0.25) - 100.0).abs() < 1e-9);
        assert!((p.mem_percentile(0.5) - 200.0).abs() < 1e-9);
        assert!((p.mem_percentile(1.0) - 500.0).abs() < 1e-9);
        // 80th percentile lands inside the 500 MB compute phase.
        assert!((p.mem_percentile(0.8) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn mean_mem_is_work_weighted() {
        let p = three_phase();
        let expect = (100.0 * 1.0 + 500.0 * 2.0 + 200.0 * 1.0) / 4.0;
        assert!((p.mean_mem_mb() - expect).abs() < 1e-9);
    }

    #[test]
    fn peak_fraction_matches_phase_share() {
        let p = three_phase();
        assert!((p.peak_mem_fraction(0.0) - 0.5).abs() < 1e-9); // 2s of 4s at 500MB
    }

    #[test]
    fn constant_profile() {
        let p = ResourceProfile::constant(0.4, 1024.0, 10.0);
        assert!((p.total_work() - 10.0).abs() < 1e-12);
        assert!((p.demand_at(5.0).mem_mb - 1024.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_covers_profile() {
        let s = three_phase().sample(8);
        assert_eq!(s.len(), 8);
        assert!(s.iter().any(|u| u.rx_mbps > 0.0));
        assert!(s.iter().any(|u| u.sm_frac > 0.5));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_profile_panics() {
        let _ = ResourceProfile::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_phase_panics() {
        let _ = Phase::new(0.0, Usage::ZERO);
    }
}
