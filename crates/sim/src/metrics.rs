//! The five GPU metrics Knots samples (§IV-A).
//!
//! Real Knots reads these via pyNVML; the simulator's nodes synthesize the
//! exact same vector every tick, and `knots-telemetry` stores them.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One sample of a node's GPU state — the quantities listed in §IV-A:
/// (i) SM utilization, (ii) memory utilization, (iii) power consumption,
/// (iv) transfer (tx) bandwidth and (v) receive (rx) bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GpuSample {
    /// Sample timestamp.
    pub at: SimTime,
    /// SM utilization in `[0, 1]` (granted, post-contention).
    pub sm_util: f64,
    /// Device memory in use, MB.
    pub mem_used_mb: f64,
    /// Board power draw, watts.
    pub power_watts: f64,
    /// Device-to-host bandwidth in use, MB/s.
    pub tx_mbps: f64,
    /// Host-to-device bandwidth in use, MB/s.
    pub rx_mbps: f64,
}

impl GpuSample {
    /// Memory utilization as a fraction of `capacity_mb`.
    pub fn mem_util(&self, capacity_mb: f64) -> f64 {
        if capacity_mb <= 0.0 {
            0.0
        } else {
            self.mem_used_mb / capacity_mb
        }
    }

    /// The metric value selected by `metric`.
    pub fn get(&self, metric: Metric) -> f64 {
        match metric {
            Metric::SmUtil => self.sm_util,
            Metric::MemUsedMb => self.mem_used_mb,
            Metric::PowerWatts => self.power_watts,
            Metric::TxMbps => self.tx_mbps,
            Metric::RxMbps => self.rx_mbps,
        }
    }
}

/// Names of the five sampled metrics, for generic queries over samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// SM (compute) utilization.
    SmUtil,
    /// Memory used in MB.
    MemUsedMb,
    /// Power in watts.
    PowerWatts,
    /// Transmit bandwidth MB/s.
    TxMbps,
    /// Receive bandwidth MB/s.
    RxMbps,
}

impl Metric {
    /// All five metrics in presentation order.
    pub const ALL: [Metric; 5] =
        [Metric::SmUtil, Metric::MemUsedMb, Metric::PowerWatts, Metric::TxMbps, Metric::RxMbps];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::SmUtil => "sm_util",
            Metric::MemUsedMb => "mem_used_mb",
            Metric::PowerWatts => "power_w",
            Metric::TxMbps => "tx_mbps",
            Metric::RxMbps => "rx_mbps",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_access() {
        let s = GpuSample {
            at: SimTime::ZERO,
            sm_util: 0.5,
            mem_used_mb: 8192.0,
            power_watts: 130.0,
            tx_mbps: 10.0,
            rx_mbps: 20.0,
        };
        assert_eq!(s.get(Metric::SmUtil), 0.5);
        assert_eq!(s.get(Metric::MemUsedMb), 8192.0);
        assert_eq!(s.get(Metric::PowerWatts), 130.0);
        assert_eq!(s.get(Metric::TxMbps), 10.0);
        assert_eq!(s.get(Metric::RxMbps), 20.0);
        assert!((s.mem_util(16384.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.mem_util(0.0), 0.0);
    }

    #[test]
    fn five_metrics_exactly() {
        assert_eq!(Metric::ALL.len(), 5);
        let labels: Vec<_> = Metric::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["sm_util", "mem_used_mb", "power_w", "tx_mbps", "rx_mbps"]);
    }
}
