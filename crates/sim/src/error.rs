//! Simulator error types.

use crate::ids::{NodeId, PodId};
use std::fmt;

/// Result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;

/// Errors surfaced by cluster operations.
///
/// Note the deliberate asymmetry with real failure modes: a *placement* that
/// will later blow the memory capacity is **not** an error — utilization-
/// agnostic schedulers are allowed to make it, and the resulting OOM crash is
/// part of the modeled behaviour (§IV-B). Errors are reserved for requests
/// that are nonsensical even to an agnostic scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The referenced pod does not exist.
    UnknownPod(PodId),
    /// The referenced node does not exist.
    UnknownNode(NodeId),
    /// The pod is not in a state that allows the requested transition
    /// (e.g. placing a pod that is already running).
    InvalidState {
        /// Offending pod.
        pod: PodId,
        /// What was attempted.
        op: &'static str,
        /// Human-readable description of the actual state.
        state: String,
    },
    /// The pod's memory provision alone exceeds the device's total capacity;
    /// no scheduler could ever run it on this node.
    ExceedsDevice {
        /// Offending pod.
        pod: PodId,
        /// Target node.
        node: NodeId,
        /// Requested provision in MB.
        limit_mb: f64,
        /// Device capacity in MB.
        capacity_mb: f64,
    },
    /// The target node is in deep sleep; it must be woken before placement.
    NodeAsleep(NodeId),
    /// The target node has failed and is not accepting work until recovery.
    NodeFailed(NodeId),
    /// A resize request was invalid (negative or non-finite).
    InvalidResize {
        /// Offending pod.
        pod: PodId,
        /// Requested provision in MB.
        limit_mb: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownPod(p) => write!(f, "unknown pod {p}"),
            SimError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SimError::InvalidState { pod, op, state } => {
                write!(f, "cannot {op} {pod}: pod is {state}")
            }
            SimError::ExceedsDevice { pod, node, limit_mb, capacity_mb } => write!(
                f,
                "{pod} provision {limit_mb:.0} MB exceeds {node} capacity {capacity_mb:.0} MB"
            ),
            SimError::NodeAsleep(n) => write!(f, "{n} is in deep sleep"),
            SimError::NodeFailed(n) => write!(f, "{n} has failed"),
            SimError::InvalidResize { pod, limit_mb } => {
                write!(f, "invalid resize of {pod} to {limit_mb} MB")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = SimError::ExceedsDevice {
            pod: PodId(1),
            node: NodeId(2),
            limit_mb: 20000.0,
            capacity_mb: 16384.0,
        };
        let s = e.to_string();
        assert!(s.contains("pod-1") && s.contains("node-2") && s.contains("16384"));
        assert!(SimError::NodeAsleep(NodeId(0)).to_string().contains("deep sleep"));
    }
}
