//! The simulated cluster: nodes, pending queue, event loop, and the action
//! surface schedulers drive (place / resize / preempt / resume / migrate /
//! sleep / wake).
//!
//! Placement deliberately performs only *sanity* validation (node exists and
//! is awake, provision fits the bare device). Whether a placement is *wise*
//! is the scheduler's job — utilization-agnostic schedulers are allowed to
//! create the memory-capacity violations the paper describes, and the
//! resulting crash/relaunch cycles are part of the modeled behaviour.

use crate::config::Overheads;
use crate::error::{SimError, SimResult};
use crate::events::{CrashReason, Event, EventKind};
use crate::gpu::PState;
use crate::ids::{ImageId, NodeId, PodId};
use crate::metrics::GpuSample;
use crate::node::{Node, StepOutcome};
use crate::pod::{Pod, PodSpec};
use crate::pool::{default_threads, WorkerPool};
use crate::resources::GpuModel;
use crate::shard::ShardLayout;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// GPU model per node; the vector length is the node count.
    pub node_models: Vec<GpuModel>,
    /// Timing overheads.
    pub overheads: Overheads,
    /// Automatically put a node to deep sleep after this much idle time.
    /// `None` disables auto-sleep (nodes stay at idle power).
    pub auto_sleep_after: Option<SimDuration>,
    /// Node count at or above which `step` uses a parallel fan-out.
    pub parallel_threshold: usize,
    /// Worker threads for the parallel fan-out. `None` resolves to the
    /// host's available parallelism once at construction; a resolved count
    /// of 1 disables the fan-out entirely (single-core hosts pay thread
    /// coordination without any gain).
    pub workers: Option<usize>,
    /// Container images pre-pulled on every node at cluster creation
    /// (production registries mirror hot images; pre-warmed services skip
    /// the cold start).
    pub prewarm_images: Vec<ImageId>,
    /// Shard count for the sharded fan-out. `None` (and `Some(1)`) keep the
    /// cluster single-shard; higher counts partition the nodes into
    /// contiguous [`ShardLayout`] ranges, each stepped as its own worker
    /// lane. Digests are bit-identical across shard counts — sharding only
    /// changes *where* node work runs, never the fold order.
    pub shards: Option<usize>,
}

impl ClusterConfig {
    /// A homogeneous cluster of `n` nodes with the given GPU.
    pub fn homogeneous(n: usize, model: GpuModel) -> Self {
        ClusterConfig {
            node_models: vec![model; n],
            overheads: Overheads::default(),
            auto_sleep_after: None,
            parallel_threshold: 64,
            workers: None,
            prewarm_images: Vec::new(),
            shards: None,
        }
    }

    /// The paper's physical testbed: ten P100 worker nodes (§V-A). Empty
    /// GPUs drop to the deep-sleep p-state automatically, so consolidation
    /// translates directly into energy savings.
    pub fn paper_testbed() -> Self {
        Self::homogeneous(crate::config::TESTBED_WORKER_NODES, GpuModel::P100)
    }

    /// The trace-driven DNN simulation setup (§V-C): 256 GPUs.
    pub fn dnn_sim() -> Self {
        Self::homogeneous(crate::config::DNN_SIM_GPUS, GpuModel::P100)
    }

    /// A heterogeneous pool in the spirit of the Knots design figure
    /// (Fig. 5 shows P100, M40, V100 and K80 workers behind one head node):
    /// cycles through the four device models.
    pub fn heterogeneous(n: usize) -> Self {
        let models = [GpuModel::P100, GpuModel::M40, GpuModel::V100, GpuModel::K80];
        ClusterConfig {
            node_models: (0..n).map(|i| models[i % models.len()]).collect(),
            overheads: Overheads::default(),
            auto_sleep_after: None,
            parallel_threshold: 64,
            workers: None,
            prewarm_images: Vec::new(),
            shards: None,
        }
    }

    /// Builder-style override of the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Builder-style override of the auto-sleep policy.
    pub fn with_auto_sleep(mut self, after: Option<SimDuration>) -> Self {
        self.auto_sleep_after = after;
        self
    }

    /// Builder-style override of the overheads.
    pub fn with_overheads(mut self, o: Overheads) -> Self {
        self.overheads = o;
        self
    }
}

/// Where a pod currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Pending,
    OnNode(NodeId),
    Suspended,
    Relaunching,
    Completed,
    Failed,
}

/// The simulated GPU cluster.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<Node>,
    now: SimTime,
    next_pod: u64,
    /// FIFO of pending pod ids (schedulers may serve it out of order; the
    /// queue order is what FCFS policies follow).
    queue: VecDeque<PodId>,
    pending: BTreeMap<PodId, Pod>,
    suspended: BTreeMap<PodId, Pod>,
    /// Crashed pods waiting out their relaunch backoff, min-ordered by due
    /// time. The `u64` is a monotonic insertion sequence: same-tick expiries
    /// requeue in crash order (§IV-C queue-tail semantics) and distinct due
    /// times never collide on the key.
    relaunching: BTreeMap<(SimTime, u64), (PodId, Pod)>,
    relaunch_seq: u64,
    completed: BTreeMap<PodId, Pod>,
    /// Pods abandoned by the crash-loop cap (terminal, never relaunched).
    failed: BTreeMap<PodId, Pod>,
    location: BTreeMap<PodId, Loc>,
    events: Vec<Event>,
    /// Earliest instant the auto-sleep pass could transition a node, or
    /// `None` when cluster state changed and it must rescan. Lets quiet
    /// ticks skip the all-nodes idle scan.
    sleep_scan_due: Option<SimTime>,
    /// Worker count for the parallel fan-out, resolved once at build time.
    workers: usize,
    /// Shard layout, resolved once at build time from `cfg.shards`.
    layout: ShardLayout,
    /// Persistent worker pool, built lazily on the first parallel step so
    /// serial clusters never spawn threads.
    pool: Option<WorkerPool>,
}

impl Cluster {
    /// Build a cluster with every node awake and idle.
    pub fn new(cfg: ClusterConfig) -> Self {
        let nodes: Vec<Node> = cfg
            .node_models
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut n = Node::new(NodeId(i), *m);
                n.prewarm(&cfg.prewarm_images);
                n
            })
            .collect();
        let workers = cfg.workers.unwrap_or_else(default_threads).max(1);
        let layout = ShardLayout::new(nodes.len(), cfg.shards.unwrap_or(1));
        Cluster {
            cfg,
            nodes,
            now: SimTime::ZERO,
            next_pod: 0,
            queue: VecDeque::new(),
            pending: BTreeMap::new(),
            suspended: BTreeMap::new(),
            relaunching: BTreeMap::new(),
            relaunch_seq: 0,
            completed: BTreeMap::new(),
            failed: BTreeMap::new(),
            location: BTreeMap::new(),
            events: Vec::new(),
            sleep_scan_due: None,
            workers,
            layout,
            pool: None,
        }
    }

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Effective shard count (≥ 1), resolved at construction.
    pub fn shards(&self) -> usize {
        self.layout.shards()
    }

    /// Resolved worker-thread count (≥ 1) for parallel fan-outs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The contiguous shard layout over this cluster's node ids.
    pub fn shard_layout(&self) -> ShardLayout {
        self.layout
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// One node.
    pub fn node(&self, id: NodeId) -> SimResult<&Node> {
        self.nodes.get(id.0).ok_or(SimError::UnknownNode(id))
    }

    /// Pending pod ids in queue order.
    pub fn pending_queue(&self) -> impl Iterator<Item = PodId> + '_ {
        self.queue.iter().copied()
    }

    /// Number of pending pods.
    pub fn pending_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of crashed pods waiting out their relaunch backoff.
    pub fn relaunching_len(&self) -> usize {
        self.relaunching.len()
    }

    /// Look up any pod, wherever it lives.
    pub fn pod(&self, id: PodId) -> Option<&Pod> {
        match self.location.get(&id)? {
            Loc::Pending => self.pending.get(&id),
            Loc::OnNode(n) => self.nodes[n.0].resident(id),
            Loc::Suspended => self.suspended.get(&id),
            Loc::Relaunching => {
                self.relaunching.values().find(|(pid, _)| *pid == id).map(|(_, p)| p)
            }
            Loc::Completed => self.completed.get(&id),
            Loc::Failed => self.failed.get(&id),
        }
    }

    /// Ids of suspended pods.
    pub fn suspended_pods(&self) -> impl Iterator<Item = PodId> + '_ {
        self.suspended.keys().copied()
    }

    /// All completed pods.
    pub fn completed_pods(&self) -> impl Iterator<Item = (PodId, &Pod)> {
        self.completed.iter().map(|(id, p)| (*id, p))
    }

    /// Number of completed pods.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// Pods abandoned by the crash-loop cap, in id order.
    pub fn failed_pods(&self) -> impl Iterator<Item = (PodId, &Pod)> {
        self.failed.iter().map(|(id, p)| (*id, p))
    }

    /// Number of crash-loop-abandoned pods.
    pub fn failed_len(&self) -> usize {
        self.failed.len()
    }

    /// The full event log.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Latest metric sample of every node, in node order.
    pub fn samples(&self) -> Vec<GpuSample> {
        self.nodes.iter().map(|n| n.last_sample()).collect()
    }

    /// Total GPU energy drawn so far, joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.nodes.iter().map(|n| n.energy().joules()).sum()
    }

    /// True when no pod remains anywhere but the terminal maps
    /// (`completed`, and `failed` for crash-loop-abandoned pods).
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty()
            && self.suspended.is_empty()
            && self.relaunching.is_empty()
            && self.nodes.iter().all(|n| n.resident_count() == 0)
    }

    // ------------------------------------------------------------------
    // Scheduler-facing actions.
    // ------------------------------------------------------------------

    /// Submit a pod to the pending queue. `arrival` is recorded for latency
    /// accounting and is normally the current simulation time.
    pub fn submit(&mut self, spec: PodSpec, arrival: SimTime) -> PodId {
        let id = PodId(self.next_pod);
        self.next_pod += 1;
        let pod = Pod::new(spec, arrival);
        self.pending.insert(id, pod);
        self.queue.push_back(id);
        self.location.insert(id, Loc::Pending);
        self.events.push(Event::pod(self.now.max(arrival), id, EventKind::Submitted));
        id
    }

    /// The `location` index disagrees with the state map it points into.
    /// Surfacing this as an error keeps a long run alive and lets the
    /// orchestrator report it through the skipped-action channel instead of
    /// aborting mid-experiment.
    fn desync(pod: PodId, op: &'static str) -> SimError {
        SimError::InvalidState { pod, op, state: "location index desynced".into() }
    }

    /// Bind a pending pod to a node.
    pub fn place(&mut self, id: PodId, node: NodeId) -> SimResult<()> {
        let loc = *self.location.get(&id).ok_or(SimError::UnknownPod(id))?;
        if loc != Loc::Pending {
            return Err(SimError::InvalidState { pod: id, op: "place", state: format!("{loc:?}") });
        }
        let n = self.nodes.get(node.0).ok_or(SimError::UnknownNode(node))?;
        if n.is_failed() {
            return Err(SimError::NodeFailed(node));
        }
        if !n.is_available() {
            return Err(SimError::NodeAsleep(node));
        }
        let pod = self.pending.get(&id).ok_or(Self::desync(id, "place"))?;
        let cap = n.gpu().capacity_mb();
        if pod.limit_mb() > cap {
            return Err(SimError::ExceedsDevice {
                pod: id,
                node,
                limit_mb: pod.limit_mb(),
                capacity_mb: cap,
            });
        }
        let pod = self.pending.remove(&id).ok_or(Self::desync(id, "place"))?;
        self.queue.retain(|q| *q != id);
        let cold = self.nodes[node.0].admit(id, pod, self.now, self.cfg.overheads.cold_start_pull);
        self.location.insert(id, Loc::OnNode(node));
        self.events.push(Event::pod(self.now, id, EventKind::Placed { node, cold_start: cold }));
        if !cold {
            self.events.push(Event::pod(self.now, id, EventKind::Started { node }));
        }
        Ok(())
    }

    /// Change a pod's memory provision (harvest or grow-back). Valid for
    /// pending and resident pods.
    pub fn resize(&mut self, id: PodId, new_limit_mb: f64) -> SimResult<()> {
        if !new_limit_mb.is_finite() || new_limit_mb < 0.0 {
            return Err(SimError::InvalidResize { pod: id, limit_mb: new_limit_mb });
        }
        let loc = *self.location.get(&id).ok_or(SimError::UnknownPod(id))?;
        let pod: &mut Pod = match loc {
            Loc::Pending => self.pending.get_mut(&id).ok_or(Self::desync(id, "resize"))?,
            Loc::OnNode(n) => self.nodes[n.0].resident_mut(id).ok_or(Self::desync(id, "resize"))?,
            _ => {
                return Err(SimError::InvalidState {
                    pod: id,
                    op: "resize",
                    state: format!("{loc:?}"),
                })
            }
        };
        let from = pod.limit_mb();
        pod.set_limit_mb(new_limit_mb);
        self.events.push(Event::pod(
            self.now,
            id,
            EventKind::Resized { from_mb: from, to_mb: new_limit_mb },
        ));
        Ok(())
    }

    /// Toggle a pending pod's framework `allow_growth` knob — the API the
    /// paper argues must be exposed to the cluster scheduler (Observation 5)
    /// so TF stops earmarking the whole device. Only valid before placement:
    /// a running framework has already committed to its memory strategy.
    pub fn configure_growth(&mut self, id: PodId, allow: bool) -> SimResult<()> {
        let loc = *self.location.get(&id).ok_or(SimError::UnknownPod(id))?;
        if loc != Loc::Pending {
            return Err(SimError::InvalidState {
                pod: id,
                op: "configure growth",
                state: format!("{loc:?}"),
            });
        }
        self.pending
            .get_mut(&id)
            .ok_or(Self::desync(id, "configure growth"))?
            .set_allow_growth(allow);
        Ok(())
    }

    /// Suspend a running pod, releasing its GPU memory but keeping progress.
    pub fn preempt(&mut self, id: PodId) -> SimResult<()> {
        let loc = *self.location.get(&id).ok_or(SimError::UnknownPod(id))?;
        let Loc::OnNode(node) = loc else {
            return Err(SimError::InvalidState {
                pod: id,
                op: "preempt",
                state: format!("{loc:?}"),
            });
        };
        let mut pod = self.nodes[node.0].evict(id).ok_or(Self::desync(id, "preempt"))?;
        // The node may now be idle; the auto-sleep cache must rescan.
        self.sleep_scan_due = None;
        pod.suspend();
        pod.set_node(None);
        self.suspended.insert(id, pod);
        self.location.insert(id, Loc::Suspended);
        self.events.push(Event::pod(self.now, id, EventKind::Preempted { node }));
        Ok(())
    }

    /// Resume a suspended pod on a node, paying the resume overhead.
    pub fn resume(&mut self, id: PodId, node: NodeId) -> SimResult<()> {
        let loc = *self.location.get(&id).ok_or(SimError::UnknownPod(id))?;
        if loc != Loc::Suspended {
            return Err(SimError::InvalidState {
                pod: id,
                op: "resume",
                state: format!("{loc:?}"),
            });
        }
        let n = self.nodes.get(node.0).ok_or(SimError::UnknownNode(node))?;
        if n.is_failed() {
            return Err(SimError::NodeFailed(node));
        }
        if !n.is_available() {
            return Err(SimError::NodeAsleep(node));
        }
        let pod = self.suspended.remove(&id).ok_or(Self::desync(id, "resume"))?;
        self.nodes[node.0].reattach(id, pod, self.now, self.cfg.overheads.resume_overhead);
        self.location.insert(id, Loc::OnNode(node));
        self.events.push(Event::pod(self.now, id, EventKind::Resumed { node }));
        Ok(())
    }

    /// Migrate a running pod to another node (suspend + move + resume with
    /// the migration penalty). Progress is retained (checkpointed).
    pub fn migrate(&mut self, id: PodId, to: NodeId) -> SimResult<()> {
        let loc = *self.location.get(&id).ok_or(SimError::UnknownPod(id))?;
        let Loc::OnNode(from) = loc else {
            return Err(SimError::InvalidState {
                pod: id,
                op: "migrate",
                state: format!("{loc:?}"),
            });
        };
        if from == to {
            return Ok(());
        }
        let n = self.nodes.get(to.0).ok_or(SimError::UnknownNode(to))?;
        if n.is_failed() {
            return Err(SimError::NodeFailed(to));
        }
        if !n.is_available() {
            return Err(SimError::NodeAsleep(to));
        }
        let mut pod = self.nodes[from.0].evict(id).ok_or(Self::desync(id, "migrate"))?;
        // The source node may now be idle; the auto-sleep cache must rescan.
        self.sleep_scan_due = None;
        pod.suspend();
        pod.record_migration();
        self.nodes[to.0].reattach(id, pod, self.now, self.cfg.overheads.migration_delay);
        self.location.insert(id, Loc::OnNode(to));
        self.events.push(Event::pod(self.now, id, EventKind::Migrated { from, to }));
        Ok(())
    }

    /// Put an idle node into deep sleep. Fails when pods are resident.
    pub fn sleep_node(&mut self, id: NodeId) -> SimResult<()> {
        let n = self.nodes.get_mut(id.0).ok_or(SimError::UnknownNode(id))?;
        if n.resident_count() > 0 {
            return Err(SimError::InvalidState {
                pod: PodId(u64::MAX),
                op: "sleep node",
                state: format!("{} resident pods", n.resident_count()),
            });
        }
        if !n.gpu().is_asleep() {
            n.set_pstate(PState::DeepSleep);
            self.events.push(Event::node(self.now, EventKind::NodeSlept { node: id }));
        }
        Ok(())
    }

    /// Wake a sleeping node; it becomes placeable immediately but pays the
    /// wake latency before pods actually execute.
    pub fn wake_node(&mut self, id: NodeId) -> SimResult<()> {
        let wake = self.cfg.overheads.wake_delay;
        let now = self.now;
        let n = self.nodes.get_mut(id.0).ok_or(SimError::UnknownNode(id))?;
        if n.gpu().is_asleep() {
            n.begin_wake(now + wake);
            // A fresh empty-awake candidate appears; rescan for auto-sleep.
            self.sleep_scan_due = None;
            self.events.push(Event::node(now, EventKind::NodeWoken { node: id }));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fault injection (driven by the chaos layer; see crates/chaos).
    // ------------------------------------------------------------------

    /// Fail a node outright: every resident pod crashes with
    /// [`CrashReason::NodeFailure`] and re-enters the relaunch pipeline
    /// (subject to backoff and the crash-loop cap), the node stops executing
    /// and reporting, and placement on it is rejected until
    /// [`Cluster::recover_node`]. Idempotent: failing an already-failed node
    /// is a no-op that returns an empty victim list.
    pub fn fail_node(&mut self, id: NodeId) -> SimResult<Vec<PodId>> {
        let n = self.nodes.get_mut(id.0).ok_or(SimError::UnknownNode(id))?;
        if n.is_failed() {
            return Ok(Vec::new());
        }
        let victims = n.fail();
        // The node just lost its residents; the auto-sleep cache must rescan.
        self.sleep_scan_due = None;
        self.events.push(Event::node(self.now, EventKind::NodeFailed { node: id }));
        let mut ids = Vec::with_capacity(victims.len());
        for (pid, pod) in victims {
            ids.push(pid);
            self.crash_pod(pid, pod, id, CrashReason::NodeFailure);
        }
        Ok(ids)
    }

    /// Bring a failed node back into service, awake and empty; pods it lost
    /// come back through the normal relaunch queue. No-op on healthy nodes.
    pub fn recover_node(&mut self, id: NodeId) -> SimResult<()> {
        let now = self.now;
        let n = self.nodes.get_mut(id.0).ok_or(SimError::UnknownNode(id))?;
        if n.is_failed() {
            n.recover(now);
            // A fresh empty-awake candidate appears; rescan for auto-sleep.
            self.sleep_scan_due = None;
            self.events.push(Event::node(now, EventKind::NodeRecovered { node: id }));
        }
        Ok(())
    }

    /// Set the fraction of a node's GPU memory lost to an injected hardware
    /// fault; `0.0` restores full capacity. Non-finite fractions are treated
    /// as `0.0` and finite ones are clamped into `[0.0, 0.99]` so the device
    /// never reaches zero capacity.
    pub fn degrade_node(&mut self, id: NodeId, frac: f64) -> SimResult<()> {
        let frac = if frac.is_finite() { frac.clamp(0.0, 0.99) } else { 0.0 };
        let now = self.now;
        let n = self.nodes.get_mut(id.0).ok_or(SimError::UnknownNode(id))?;
        n.set_degraded_frac(frac);
        let capacity_mb = n.gpu().capacity_mb();
        self.events.push(Event::node(now, EventKind::GpuDegraded { node: id, capacity_mb }));
        Ok(())
    }

    /// Common crash handling: schedule a relaunch with the backoff schedule,
    /// or abandon the pod as terminally `Failed` once the crash-loop cap is
    /// reached (Kubernetes gives up on crash-looping containers too — ours
    /// is a hard cap rather than an ever-growing backoff).
    fn crash_pod(&mut self, id: PodId, mut pod: Pod, node: NodeId, reason: CrashReason) {
        let delay = self.cfg.overheads.relaunch_delay_for(pod.crashes());
        let relaunch_at = self.now + delay;
        pod.crash(relaunch_at);
        pod.set_node(None);
        self.events.push(Event::pod(self.now, id, EventKind::Crashed { node, reason }));
        let cap = self.cfg.overheads.crash_loop_cap;
        if cap > 0 && pod.crashes() >= cap {
            let crashes = pod.crashes();
            pod.fail(self.now);
            self.events.push(Event::pod(self.now, id, EventKind::GaveUp { node, crashes }));
            self.failed.insert(id, pod);
            self.location.insert(id, Loc::Failed);
        } else {
            self.relaunching.insert((relaunch_at, self.relaunch_seq), (id, pod));
            self.relaunch_seq += 1;
            self.location.insert(id, Loc::Relaunching);
        }
    }

    // ------------------------------------------------------------------
    // Time.
    // ------------------------------------------------------------------

    /// Advance the cluster by `dt`.
    pub fn step(&mut self, dt: SimDuration) {
        self.tick_once(dt, None);
    }

    /// One tick of size `dt`. `quiet` optionally marks nodes (by index)
    /// whose stepping is deferred to a closed-form replay at span end —
    /// see [`Cluster::step_span`]; `None` steps everything.
    fn tick_once(&mut self, dt: SimDuration, quiet: Option<&[bool]>) {
        assert!(!dt.is_zero(), "step needs a positive dt");
        let now = self.now;
        self.now = now + dt;

        // 1. Step the nodes. Above the parallel threshold (and with more
        //    than one resolved worker) fan out on the persistent pool;
        //    a multi-shard layout engages the pool regardless of the
        //    threshold so every shard steps as its own lane. Outcomes are
        //    folded in node order either way, so results are deterministic
        //    and identical across all paths and shard counts.
        if quiet.is_none()
            && self.workers > 1
            && (self.nodes.len() >= self.cfg.parallel_threshold || self.layout.shards() > 1)
        {
            self.step_nodes_pooled(now, dt);
        } else {
            for i in 0..self.nodes.len() {
                if quiet.is_some_and(|q| q.get(i).copied().unwrap_or(false)) {
                    continue;
                }
                let out = self.nodes[i].step(now, dt);
                self.fold_outcome(NodeId(i), out);
            }
        }

        // 2. Relaunches whose delay expired re-enter the queue tail.
        self.requeue_due_relaunches();

        // 3. Auto-sleep long-idle nodes.
        self.auto_sleep_pass();
    }

    /// Fan node stepping out over the persistent worker pool. With a
    /// multi-shard layout each chunk is exactly one shard's contiguous
    /// node range — its own pool lane; single-shard clusters split into
    /// per-worker chunks as before. Chunks are *moved* to the pool (no
    /// borrows cross threads) and reassembled in index order, then all
    /// outcomes fold in node order — bit-identical to the serial path and
    /// invariant across shard counts.
    fn step_nodes_pooled(&mut self, now: SimTime, dt: SimDuration) {
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::new(self.workers));
        }
        let Some(pool) = self.pool.as_ref() else { return };
        let chunk = if self.layout.shards() > 1 {
            self.layout.chunk()
        } else {
            self.nodes.len().div_ceil(self.workers).max(1)
        };
        let mut chunks: Vec<Vec<Node>> = Vec::with_capacity(self.workers.max(self.layout.shards()));
        let mut rest = std::mem::take(&mut self.nodes);
        while rest.len() > chunk {
            let tail = rest.split_off(chunk);
            chunks.push(rest);
            rest = tail;
        }
        chunks.push(rest);
        let results = pool.run(chunks, move |mut nodes: Vec<Node>| {
            let outs: Vec<StepOutcome> = nodes.iter_mut().map(|n| n.step(now, dt)).collect();
            (nodes, outs)
        });
        let mut outcomes = Vec::with_capacity(self.cfg.node_models.len());
        for (nodes, outs) in results {
            self.nodes.extend(nodes);
            outcomes.extend(outs);
        }
        for (i, out) in outcomes.into_iter().enumerate() {
            self.fold_outcome(NodeId(i), out);
        }
    }

    /// Fold one node's tick outcome into cluster state. Called in node
    /// order whether stepping ran serial or pooled.
    fn fold_outcome(&mut self, node: NodeId, out: StepOutcome) {
        if !out.completed.is_empty() || !out.crashed.is_empty() {
            // The node may just have gone empty; any cached auto-sleep
            // deadline could now be too late.
            self.sleep_scan_due = None;
        }
        for id in out.started {
            self.events.push(Event::pod(self.now, id, EventKind::Started { node }));
        }
        for (id, pod) in out.completed {
            self.events.push(Event::pod(self.now, id, EventKind::Completed { node }));
            self.completed.insert(id, pod);
            self.location.insert(id, Loc::Completed);
        }
        for (id, pod, reason) in out.crashed {
            self.crash_pod(id, pod, node, reason);
        }
    }

    /// Relaunches whose delay expired re-enter the queue tail (§IV-C:
    /// relaunched tasks "cannot be prioritized over tasks ... already
    /// ahead on the queue"). Entries pop from the min-ordered map, and the
    /// due batch re-sorts by insertion sequence so same-tick expiries
    /// requeue in their original crash order — exactly what the old
    /// linear scan produced, without its O(n²) `remove(i)` loop.
    fn requeue_due_relaunches(&mut self) {
        match self.relaunching.first_key_value() {
            Some((&(at, _), _)) if at <= self.now => {}
            _ => return,
        }
        let mut due: Vec<(u64, PodId, Pod)> = Vec::new();
        loop {
            match self.relaunching.first_key_value() {
                Some((&(at, _), _)) if at <= self.now => {}
                _ => break,
            }
            let Some(((_, seq), (id, mut pod))) = self.relaunching.pop_first() else { break };
            pod.reenqueue();
            due.push((seq, id, pod));
        }
        due.sort_by_key(|(seq, _, _)| *seq);
        for (_, id, pod) in due {
            self.events.push(Event::pod(self.now, id, EventKind::Requeued));
            self.pending.insert(id, pod);
            self.queue.push_back(id);
            self.location.insert(id, Loc::Pending);
        }
    }

    /// Auto-sleep long-idle nodes. The full scan only runs when the cached
    /// deadline has been reached (or invalidated by a state change); quiet
    /// ticks in between cost one comparison. Transitions fire on exactly
    /// the same ticks, in the same node order, as the old per-step scan.
    fn auto_sleep_pass(&mut self) {
        let Some(idle) = self.cfg.auto_sleep_after else { return };
        if self.sleep_scan_due.is_some_and(|due| self.now < due) {
            return;
        }
        let mut next_due = SimTime(u64::MAX);
        for i in 0..self.nodes.len() {
            let n = &self.nodes[i];
            if n.gpu().is_asleep() || n.resident_count() > 0 {
                // Residents can only leave through events that invalidate
                // the cache, and sleepers only wake through `wake_node`;
                // neither bounds the next scan.
                continue;
            }
            let due = n.last_busy() + idle;
            if self.now >= due {
                let id = n.id();
                self.nodes[i].set_pstate(PState::DeepSleep);
                self.events.push(Event::node(self.now, EventKind::NodeSlept { node: id }));
            } else {
                next_due = next_due.min(due);
            }
        }
        self.sleep_scan_due = Some(next_due);
    }

    /// Earliest future instant at which this layer can act on its own:
    /// a relaunch backoff expiring, the cached auto-sleep deadline, or a
    /// node-level event (wake/pull finishing, a running pod hitting a
    /// completion or profile phase boundary). `None` when nothing is
    /// pending. Purely an event-calendar *hint*: spans sub-step active
    /// nodes at tick granularity regardless, so a conservative bound costs
    /// speed, never correctness.
    pub fn next_due(&self, dt: SimDuration) -> Option<SimTime> {
        let mut due: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            due = Some(match due {
                Some(d) if d <= t => d,
                _ => t,
            });
        };
        if let Some((&(at, _), _)) = self.relaunching.first_key_value() {
            consider(at);
        }
        if self.cfg.auto_sleep_after.is_some() {
            // A dirty cache means "scan on the very next tick".
            consider(self.sleep_scan_due.unwrap_or(self.now));
        }
        for n in &self.nodes {
            if let Some(t) = n.next_due(self.now, dt) {
                consider(t);
            }
        }
        due
    }

    /// Advance the cluster `k` ticks of size `dt` in one call.
    ///
    /// Behaviour is bit-identical to calling [`Cluster::step`] `k` times:
    /// every node that can make progress still sub-steps at tick
    /// granularity, and relaunch/auto-sleep processing runs every tick.
    /// The only batching is for *quiet* nodes — failed, asleep or empty
    /// ones whose per-tick work reduces to a constant sample and a fixed
    /// power draw; `quiet[i]` marks them and their side effects are
    /// replayed in closed form after the loop. Pass an empty slice to
    /// disable batching (e.g. while fault injection can flip node state
    /// mid-span).
    ///
    /// After each executed tick, `on_tick(&cluster, activity)` runs with
    /// `activity` true when that tick changed pod state (completions,
    /// crashes, requeues — anything that appends events); returning
    /// `false` stops the span early, which the orchestrator uses to halt
    /// on the exact tick the cluster drains. Returns the number of ticks
    /// executed.
    pub fn step_span(
        &mut self,
        dt: SimDuration,
        k: u64,
        quiet: &[bool],
        mut on_tick: impl FnMut(&Cluster, bool) -> bool,
    ) -> u64 {
        let batching = !quiet.is_empty();
        assert!(!batching || quiet.len() == self.nodes.len(), "quiet mask length mismatch");
        let start = self.now;
        let mut executed = 0;
        while executed < k {
            let events_before = self.events.len();
            self.tick_once(dt, if batching { Some(quiet) } else { None });
            executed += 1;
            let activity = self.events.len() > events_before;
            if !on_tick(self, activity) {
                break;
            }
        }
        if batching && executed > 0 {
            for (i, &q) in quiet.iter().enumerate() {
                if q {
                    self.nodes[i].finish_quiet_span(start, dt, executed);
                }
            }
        }
        executed
    }

    /// Run until `deadline`, stepping by `dt`, invoking `hook` before every
    /// step (for arrivals/scheduling). Convenience for tests and examples.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        dt: SimDuration,
        mut hook: impl FnMut(&mut Cluster),
    ) {
        while self.now < deadline {
            hook(self);
            self.step(dt);
        }
    }

    // ------------------------------------------------------------------
    // Snapshot / restore (durable control plane; see crates/recovery).
    // ------------------------------------------------------------------

    /// Clone every dynamic field into a serializable [`ClusterState`].
    /// Read-only: taking a snapshot must never perturb the simulation.
    pub fn snapshot_state(&self) -> ClusterState {
        let kv = |m: &BTreeMap<PodId, Pod>| m.iter().map(|(k, v)| (*k, v.clone())).collect();
        ClusterState {
            now: self.now,
            next_pod: self.next_pod,
            queue: self.queue.iter().copied().collect(),
            pending: kv(&self.pending),
            suspended: kv(&self.suspended),
            relaunching: self
                .relaunching
                .iter()
                .map(|(&(at, seq), (id, p))| (at, seq, *id, p.clone()))
                .collect(),
            relaunch_seq: self.relaunch_seq,
            completed: kv(&self.completed),
            failed: kv(&self.failed),
            events: self.events.clone(),
            sleep_scan_due: self.sleep_scan_due,
            nodes: self.nodes.clone(),
        }
    }

    /// Rebuild a cluster from a snapshot plus the same configuration it was
    /// originally built with (config is a static input and does not travel
    /// through snapshots). The `location` index is reconstructed from the
    /// state maps; the worker pool is left unspawned and re-materializes
    /// lazily on the first parallel step, exactly as after [`Cluster::new`].
    pub fn from_state(cfg: ClusterConfig, state: ClusterState) -> Self {
        let mut location = BTreeMap::new();
        for id in state.pending.iter().map(|(id, _)| *id) {
            location.insert(id, Loc::Pending);
        }
        for id in state.suspended.iter().map(|(id, _)| *id) {
            location.insert(id, Loc::Suspended);
        }
        for id in state.relaunching.iter().map(|(_, _, id, _)| *id) {
            location.insert(id, Loc::Relaunching);
        }
        for id in state.completed.iter().map(|(id, _)| *id) {
            location.insert(id, Loc::Completed);
        }
        for id in state.failed.iter().map(|(id, _)| *id) {
            location.insert(id, Loc::Failed);
        }
        for node in &state.nodes {
            for (id, _) in node.residents() {
                location.insert(id, Loc::OnNode(node.id()));
            }
        }
        let workers = cfg.workers.unwrap_or_else(default_threads).max(1);
        let layout = ShardLayout::new(state.nodes.len(), cfg.shards.unwrap_or(1));
        Cluster {
            cfg,
            nodes: state.nodes,
            now: state.now,
            next_pod: state.next_pod,
            queue: state.queue.into_iter().collect(),
            pending: state.pending.into_iter().collect(),
            suspended: state.suspended.into_iter().collect(),
            relaunching: state
                .relaunching
                .into_iter()
                .map(|(at, seq, id, p)| ((at, seq), (id, p)))
                .collect(),
            relaunch_seq: state.relaunch_seq,
            completed: state.completed.into_iter().collect(),
            failed: state.failed.into_iter().collect(),
            location,
            events: state.events,
            sleep_scan_due: state.sleep_scan_due,
            workers,
            layout,
            pool: None,
        }
    }
}

/// Serializable image of a [`Cluster`]'s dynamic state.
///
/// Configuration is deliberately absent: a restore re-provisions the same
/// `ClusterConfig` and only evolving state travels through the snapshot.
/// Map- and deque-shaped fields are flattened to sorted vectors (the serde
/// shim round-trips Vec/tuple/Option shapes but not keyed maps or
/// `VecDeque`), and the `location` index is not stored at all — it is
/// rebuilt from the maps it mirrors.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ClusterState {
    /// Simulation clock at capture.
    pub now: SimTime,
    /// Next pod id to allocate.
    pub next_pod: u64,
    /// Pending queue, front first.
    pub queue: Vec<PodId>,
    /// Pending pods in id order.
    pub pending: Vec<(PodId, Pod)>,
    /// Suspended pods in id order.
    pub suspended: Vec<(PodId, Pod)>,
    /// Relaunch backlog as `(due, seq, id, pod)`, key order.
    pub relaunching: Vec<(SimTime, u64, PodId, Pod)>,
    /// Monotonic relaunch insertion sequence.
    pub relaunch_seq: u64,
    /// Completed pods in id order.
    pub completed: Vec<(PodId, Pod)>,
    /// Crash-loop-abandoned pods in id order.
    pub failed: Vec<(PodId, Pod)>,
    /// Full event log (report accounting and GC/trace cursors index it).
    pub events: Vec<Event>,
    /// Cached auto-sleep scan deadline.
    pub sleep_scan_due: Option<SimTime>,
    /// Every node, including residents, energy meters and image caches.
    pub nodes: Vec<Node>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CrashReason;
    use crate::profile::ResourceProfile;

    fn spec(sm: f64, mem: f64, work: f64) -> PodSpec {
        PodSpec::batch("t", ResourceProfile::constant(sm, mem, work))
    }

    fn quiet_cfg(n: usize) -> ClusterConfig {
        let mut c = ClusterConfig::homogeneous(n, GpuModel::P100);
        c.overheads.cold_start_pull = SimDuration::ZERO;
        c
    }

    #[test]
    fn submit_place_run_complete() {
        let mut c = Cluster::new(quiet_cfg(2));
        let id = c.submit(spec(0.5, 1000.0, 0.5), SimTime::ZERO);
        assert_eq!(c.pending_len(), 1);
        c.place(id, NodeId(1)).unwrap();
        assert_eq!(c.pending_len(), 0);
        for _ in 0..60 {
            c.step(SimDuration::from_millis(10));
        }
        assert!(c.pod(id).unwrap().state().is_completed());
        assert!(c.is_drained());
        assert_eq!(c.completed_len(), 1);
        let kinds: Vec<_> = c.events().iter().map(|e| e.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, EventKind::Submitted)));
        assert!(kinds.iter().any(|k| matches!(k, EventKind::Placed { .. })));
        assert!(kinds.iter().any(|k| matches!(k, EventKind::Completed { .. })));
    }

    #[test]
    fn cold_start_emits_started_later() {
        let mut cfg = quiet_cfg(1);
        cfg.overheads.cold_start_pull = SimDuration::from_secs(1);
        let mut c = Cluster::new(cfg);
        let id = c.submit(spec(0.5, 100.0, 0.1), SimTime::ZERO);
        c.place(id, NodeId(0)).unwrap();
        // No Started event yet.
        assert!(!c.events().iter().any(|e| matches!(e.kind, EventKind::Started { .. })));
        for _ in 0..12 {
            c.step(SimDuration::from_millis(100));
        }
        assert!(c.events().iter().any(|e| matches!(e.kind, EventKind::Started { .. })));
    }

    #[test]
    fn place_rejects_bad_targets() {
        let mut c = Cluster::new(quiet_cfg(1));
        let id = c.submit(spec(0.5, 100.0, 1.0), SimTime::ZERO);
        assert!(matches!(c.place(id, NodeId(9)), Err(SimError::UnknownNode(_))));
        let big = c.submit(spec(0.5, 100.0, 1.0).with_request_mb(20_000.0), SimTime::ZERO);
        assert!(matches!(c.place(big, NodeId(0)), Err(SimError::ExceedsDevice { .. })));
        c.place(id, NodeId(0)).unwrap();
        assert!(matches!(c.place(id, NodeId(0)), Err(SimError::InvalidState { .. })));
    }

    #[test]
    fn crash_relaunch_requeues_at_tail() {
        let mut cfg = quiet_cfg(1);
        cfg.overheads.relaunch_delay = SimDuration::from_millis(50);
        let mut c = Cluster::new(cfg);
        let a = c.submit(spec(0.2, 10_000.0, 5.0), SimTime::ZERO);
        let b = c.submit(spec(0.2, 10_000.0, 5.0), SimTime::ZERO);
        c.place(a, NodeId(0)).unwrap();
        c.place(b, NodeId(0)).unwrap();
        c.step(SimDuration::from_millis(10));
        let crashed: Vec<_> = c
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Crashed { reason: CrashReason::MemoryCapacityViolation, .. }
                )
            })
            .collect();
        assert_eq!(crashed.len(), 1);
        // After the relaunch delay the pod is pending again.
        for _ in 0..6 {
            c.step(SimDuration::from_millis(10));
        }
        assert_eq!(c.pending_len(), 1);
        let requeued = c.pending_queue().next().unwrap();
        assert_eq!(c.pod(requeued).unwrap().crashes(), 1);
    }

    #[test]
    fn resize_pending_and_resident() {
        let mut c = Cluster::new(quiet_cfg(1));
        let id = c.submit(spec(0.2, 1000.0, 5.0).with_request_mb(8000.0), SimTime::ZERO);
        c.resize(id, 2000.0).unwrap();
        assert_eq!(c.pod(id).unwrap().limit_mb(), 2000.0);
        c.place(id, NodeId(0)).unwrap();
        c.resize(id, 1500.0).unwrap();
        assert_eq!(c.pod(id).unwrap().limit_mb(), 1500.0);
        assert!(matches!(c.resize(id, f64::NAN), Err(SimError::InvalidResize { .. })));
        assert_eq!(
            c.events().iter().filter(|e| matches!(e.kind, EventKind::Resized { .. })).count(),
            2
        );
    }

    #[test]
    fn preempt_and_resume() {
        let mut cfg = quiet_cfg(2);
        cfg.overheads.resume_overhead = SimDuration::from_millis(100);
        let mut c = Cluster::new(cfg);
        let id = c.submit(spec(0.5, 1000.0, 1.0), SimTime::ZERO);
        c.place(id, NodeId(0)).unwrap();
        for _ in 0..20 {
            c.step(SimDuration::from_millis(10));
        }
        let progress_before = c.pod(id).unwrap().progress();
        assert!(progress_before > 0.0);
        c.preempt(id).unwrap();
        assert_eq!(c.node(NodeId(0)).unwrap().resident_count(), 0);
        assert!(c.suspended_pods().any(|p| p == id));
        c.resume(id, NodeId(1)).unwrap();
        // During the resume overhead no progress happens.
        c.step(SimDuration::from_millis(50));
        assert!((c.pod(id).unwrap().progress() - progress_before).abs() < 1e-9);
        for _ in 0..120 {
            c.step(SimDuration::from_millis(10));
        }
        assert!(c.pod(id).unwrap().state().is_completed());
        assert_eq!(c.pod(id).unwrap().preemptions(), 1);
    }

    #[test]
    fn migrate_retains_progress_and_counts() {
        let mut c = Cluster::new(quiet_cfg(2));
        let id = c.submit(spec(0.5, 1000.0, 2.0), SimTime::ZERO);
        c.place(id, NodeId(0)).unwrap();
        for _ in 0..50 {
            c.step(SimDuration::from_millis(10));
        }
        let before = c.pod(id).unwrap().progress();
        c.migrate(id, NodeId(1)).unwrap();
        assert_eq!(c.pod(id).unwrap().node(), Some(NodeId(1)));
        assert!((c.pod(id).unwrap().progress() - before).abs() < 1e-9);
        assert_eq!(c.pod(id).unwrap().migrations(), 1);
        // Self-migration is a no-op.
        c.migrate(id, NodeId(1)).unwrap();
        assert_eq!(c.pod(id).unwrap().migrations(), 1);
    }

    #[test]
    fn sleep_wake_cycle() {
        let mut c = Cluster::new(quiet_cfg(2));
        c.sleep_node(NodeId(1)).unwrap();
        assert!(c.node(NodeId(1)).unwrap().gpu().is_asleep());
        let id = c.submit(spec(0.5, 100.0, 1.0), SimTime::ZERO);
        assert!(matches!(c.place(id, NodeId(1)), Err(SimError::NodeAsleep(_))));
        c.wake_node(NodeId(1)).unwrap();
        c.place(id, NodeId(1)).unwrap();
        // Can't sleep a node with residents.
        assert!(c.sleep_node(NodeId(1)).is_err());
    }

    #[test]
    fn auto_sleep_after_idle() {
        let mut cfg = quiet_cfg(2);
        cfg.auto_sleep_after = Some(SimDuration::from_millis(100));
        let mut c = Cluster::new(cfg);
        for _ in 0..3 {
            c.step(SimDuration::from_millis(50));
        }
        assert!(c.node(NodeId(0)).unwrap().gpu().is_asleep());
        assert!(c.node(NodeId(1)).unwrap().gpu().is_asleep());
        assert!(
            c.events().iter().filter(|e| matches!(e.kind, EventKind::NodeSlept { .. })).count()
                >= 2
        );
    }

    #[test]
    fn empty_nodes_draw_deep_sleep_power() {
        // Hardware-automatic p-states: a node with no resident context
        // draws sleep power without any explicit action, so consolidating
        // pods onto fewer nodes saves energy by itself.
        let mut busy = Cluster::new(quiet_cfg(1));
        let id = busy.submit(spec(0.0, 100.0, 3600.0), SimTime::ZERO);
        busy.place(id, NodeId(0)).unwrap();
        let mut empty = Cluster::new(quiet_cfg(1));
        for _ in 0..100 {
            busy.step(SimDuration::from_millis(100));
            empty.step(SimDuration::from_millis(100));
        }
        // Busy node draws >= idle power (25 W); empty node ~9 W.
        assert!(empty.total_energy_joules() < busy.total_energy_joules() * 0.5);
        let sleep_w = GpuModel::P100.spec().sleep_watts;
        let expected = sleep_w * 10.0; // 10 s
        assert!((empty.total_energy_joules() - expected).abs() < 1e-6);
    }

    #[test]
    fn parallel_and_serial_stepping_agree() {
        let build = |threshold: usize| {
            let mut cfg = quiet_cfg(80);
            cfg.parallel_threshold = threshold;
            // Force two workers so the pooled path engages even on a
            // single-core host (where the resolved default is 1 -> serial).
            cfg.workers = Some(2);
            let mut c = Cluster::new(cfg);
            for i in 0..80 {
                let id = c.submit(spec(0.3 + (i % 5) as f64 / 10.0, 500.0, 0.8), SimTime::ZERO);
                c.place(id, NodeId(i % 80)).unwrap();
            }
            for _ in 0..100 {
                c.step(SimDuration::from_millis(10));
            }
            (c.completed_len(), c.total_energy_joules(), c.samples())
        };
        let serial = build(usize::MAX);
        let parallel = build(1);
        assert_eq!(serial.0, parallel.0);
        assert!((serial.1 - parallel.1).abs() < 1e-6);
        for (a, b) in serial.2.iter().zip(parallel.2.iter()) {
            assert!((a.sm_util - b.sm_util).abs() < 1e-12);
            assert!((a.mem_used_mb - b.mem_used_mb).abs() < 1e-9);
        }
    }

    #[test]
    fn sharded_stepping_is_bit_identical_across_shard_counts() {
        let build = |shards: usize| {
            let mut cfg = quiet_cfg(40);
            cfg.shards = Some(shards);
            // Two workers force the pooled path on single-core hosts; the
            // node count sits below the parallel threshold so only the
            // multi-shard legs engage the pool — exactly the asymmetry the
            // invariance claim has to survive.
            cfg.workers = Some(2);
            let mut c = Cluster::new(cfg);
            assert_eq!(c.shards(), shards.max(1));
            for i in 0..40 {
                let id = c.submit(spec(0.3 + (i % 5) as f64 / 10.0, 500.0, 0.8), SimTime::ZERO);
                c.place(id, NodeId(i % 40)).unwrap();
            }
            for _ in 0..100 {
                c.step(SimDuration::from_millis(10));
            }
            (c.completed_len(), c.total_energy_joules().to_bits(), c.samples())
        };
        let base = build(1);
        for shards in [2usize, 4, 8] {
            let leg = build(shards);
            assert_eq!(base.0, leg.0, "{shards} shards");
            assert_eq!(base.1, leg.1, "{shards} shards");
            for (a, b) in base.2.iter().zip(leg.2.iter()) {
                assert_eq!(a.sm_util.to_bits(), b.sm_util.to_bits(), "{shards} shards");
                assert_eq!(a.mem_used_mb.to_bits(), b.mem_used_mb.to_bits(), "{shards} shards");
            }
        }
    }

    #[test]
    fn configure_growth_only_while_pending() {
        let mut c = Cluster::new(quiet_cfg(1));
        let id = c.submit(spec(0.3, 500.0, 1.0).with_greedy_memory(true), SimTime::ZERO);
        c.configure_growth(id, true).unwrap();
        assert!(c.pod(id).unwrap().spec().allow_growth);
        c.place(id, NodeId(0)).unwrap();
        assert!(c.configure_growth(id, false).is_err());
        // The earmark was suppressed: measured usage tracks the profile.
        c.step(SimDuration::from_millis(10));
        assert!((c.node(NodeId(0)).unwrap().last_sample().mem_used_mb - 500.0).abs() < 1.0);
    }

    #[test]
    fn node_failure_crashes_residents_and_blocks_placement() {
        let mut cfg = quiet_cfg(2);
        cfg.overheads.relaunch_delay = SimDuration::from_millis(50);
        let mut c = Cluster::new(cfg);
        let a = c.submit(spec(0.5, 1000.0, 10.0), SimTime::ZERO);
        c.place(a, NodeId(0)).unwrap();
        c.step(SimDuration::from_millis(10));
        let victims = c.fail_node(NodeId(0)).unwrap();
        assert_eq!(victims, vec![a]);
        assert!(c.node(NodeId(0)).unwrap().is_failed());
        assert!(c.events().iter().any(|e| matches!(e.kind, EventKind::NodeFailed { .. })));
        assert!(c.events().iter().any(|e| matches!(
            e.kind,
            EventKind::Crashed { reason: CrashReason::NodeFailure, .. }
        )));
        // The dead node reports a zero sample and rejects placement.
        c.step(SimDuration::from_millis(10));
        assert_eq!(c.node(NodeId(0)).unwrap().last_sample().power_watts, 0.0);
        for _ in 0..6 {
            c.step(SimDuration::from_millis(10));
        }
        assert_eq!(c.pending_len(), 1);
        assert_eq!(c.pod(a).unwrap().crashes(), 1);
        assert!(matches!(c.place(a, NodeId(0)), Err(SimError::NodeFailed(_))));
        // Re-failing is a no-op; recovery makes the node placeable again.
        assert!(c.fail_node(NodeId(0)).unwrap().is_empty());
        c.recover_node(NodeId(0)).unwrap();
        assert!(c.events().iter().any(|e| matches!(e.kind, EventKind::NodeRecovered { .. })));
        c.place(a, NodeId(0)).unwrap();
    }

    #[test]
    fn relaunch_backoff_doubles_between_crashes() {
        let mut cfg = quiet_cfg(2);
        cfg.overheads.relaunch_delay = SimDuration::from_millis(40);
        cfg.overheads.relaunch_backoff = 2.0;
        let mut c = Cluster::new(cfg);
        let id = c.submit(spec(0.5, 1000.0, 100.0), SimTime::ZERO);

        c.place(id, NodeId(0)).unwrap();
        c.fail_node(NodeId(0)).unwrap();
        let crash1 = c.now();
        while c.pending_len() == 0 {
            c.step(SimDuration::from_millis(10));
        }
        assert_eq!(c.now().saturating_since(crash1), SimDuration::from_millis(40));

        c.place(id, NodeId(1)).unwrap();
        c.fail_node(NodeId(1)).unwrap();
        let crash2 = c.now();
        while c.pending_len() == 0 {
            c.step(SimDuration::from_millis(10));
        }
        assert_eq!(c.now().saturating_since(crash2), SimDuration::from_millis(80));
    }

    #[test]
    fn crash_loop_cap_abandons_pod() {
        let mut cfg = quiet_cfg(1);
        cfg.overheads.relaunch_delay = SimDuration::from_millis(20);
        cfg.overheads.crash_loop_cap = 3;
        let mut c = Cluster::new(cfg);
        // Two pods whose combined footprint overflows the device: every
        // co-residency produces a capacity-violation crash.
        let a = c.submit(spec(0.2, 10_000.0, 50.0), SimTime::ZERO);
        let b = c.submit(spec(0.2, 10_000.0, 50.0), SimTime::ZERO);
        while c.failed_len() == 0 && c.now() < SimTime::from_secs(10) {
            let pending: Vec<_> = c.pending_queue().collect();
            for id in pending {
                let _ = c.place(id, NodeId(0));
            }
            c.step(SimDuration::from_millis(10));
        }
        assert_eq!(c.failed_len(), 1);
        let (victim, p) = c.failed_pods().next().unwrap();
        assert!(victim == a || victim == b);
        assert!(p.state().is_failed());
        assert_eq!(p.crashes(), 3);
        assert!(p.node().is_none());
        assert!(c.events().iter().any(|e| matches!(e.kind, EventKind::GaveUp { crashes: 3, .. })));
        // The abandoned pod is terminal: never requeued, lookup still works.
        assert!(c.pod(victim).unwrap().state().is_failed());
        assert!(c.pending_queue().all(|q| q != victim));
    }

    #[test]
    fn degrade_emits_event_and_tightens_capacity() {
        let mut c = Cluster::new(quiet_cfg(1));
        c.degrade_node(NodeId(0), 0.5).unwrap();
        assert!(c.events().iter().any(
            |e| matches!(e.kind, EventKind::GpuDegraded { capacity_mb, .. } if capacity_mb == 8192.0)
        ));
        let id = c.submit(spec(0.2, 100.0, 1.0).with_request_mb(10_000.0), SimTime::ZERO);
        assert!(matches!(c.place(id, NodeId(0)), Err(SimError::ExceedsDevice { .. })));
        // Restoring health re-admits the pod.
        c.degrade_node(NodeId(0), 0.0).unwrap();
        c.place(id, NodeId(0)).unwrap();
    }

    #[test]
    fn run_until_invokes_hook() {
        let mut c = Cluster::new(quiet_cfg(1));
        let mut calls = 0;
        c.run_until(SimTime::from_millis(100), SimDuration::from_millis(10), |_| calls += 1);
        assert_eq!(calls, 10);
        assert_eq!(c.now(), SimTime::from_millis(100));
    }
}
