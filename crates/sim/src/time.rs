//! Simulated time.
//!
//! The simulator uses a fixed-point clock with **microsecond** resolution so
//! that the paper's finest heartbeat interval (0.1 ms, Fig. 10b) is exactly
//! representable. Wall-clock quantities in the paper range from ~10 ms
//! inference queries to 12-hour traces; a `u64` microsecond counter covers
//! ~584 000 years, so overflow is not a practical concern.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from fractional seconds (rounded to the nearest microsecond).
    ///
    /// # Panics
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// True when this is the zero duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Integer number of `tick`-sized steps fully contained in this duration.
    pub fn ticks(self, tick: SimDuration) -> u64 {
        assert!(tick.0 > 0, "tick must be non-zero");
        self.0 / tick.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        // knots-allow: P1 -- time-arithmetic underflow is a simulator bug; wrapping silently would corrupt every downstream metric
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime subtraction underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        // knots-allow: P1 -- time-arithmetic underflow is a simulator bug; wrapping silently would corrupt every downstream metric
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration subtraction underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        // knots-allow: P1 -- time-arithmetic underflow is a simulator bug; wrapping silently would corrupt every downstream metric
        self.0 = self.0.checked_sub(rhs.0).expect("SimDuration subtraction underflow");
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2), SimTime(2_000_000));
        assert_eq!(SimTime::from_millis(3), SimTime(3_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration(1_000_000));
        assert_eq!(SimDuration::from_secs_f64(0.0001), SimDuration(100));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t, SimTime(1_500_000));
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs(2) / 4, SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_millis(6));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn tick_count() {
        let d = SimDuration::from_millis(105);
        assert_eq!(d.ticks(SimDuration::from_millis(10)), 10);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2us");
    }

    #[test]
    fn as_accessors() {
        let d = SimDuration::from_millis(1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-12);
        assert_eq!(d.as_micros(), 1_500_000);
        assert!(!d.is_zero());
        assert!(SimDuration::ZERO.is_zero());
    }
}
