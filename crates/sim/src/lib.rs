//! # knots-sim — a discrete-time GPU datacenter simulator
//!
//! This crate is the hardware substrate for the Kube-Knots reproduction.
//! The paper evaluates on a ten-node Nvidia P100 cluster (plus a 256-GPU
//! trace-driven simulation); neither GPUs nor Kubernetes are available here,
//! so this crate simulates the pieces the schedulers actually interact with:
//!
//! * **GPU devices** with space-shared memory, time-shared compute (SMs) and
//!   a PCIe link with finite bandwidth ([`gpu`], [`resources`]).
//! * **Pods/containers** whose resource consumption follows a phase-structured
//!   [`profile::ResourceProfile`] (PCIe burst, then compute/memory ramp — the
//!   shape characterized in Fig. 3 of the paper), with the full lifecycle:
//!   pending, image pull (cold start), running, completed, crashed (OOM),
//!   relaunched, preempted, migrated ([`pod`]).
//! * **Nodes** that advance resident pods every tick, apply contention
//!   slowdowns, detect memory-capacity violations, and emit the same five
//!   metrics pyNVML reports: SM utilization, memory used, power, and PCIe
//!   transmit/receive bandwidth ([`node`], [`metrics`]).
//! * A **cluster** event loop with a pending queue, event log, node
//!   sleep/wake (p-states) and hooks for placement, resizing, preemption and
//!   migration — the action surface a scheduler drives ([`cluster`]).
//! * An **energy model** with the linear GPU power-vs-utilization behaviour
//!   and the non-linear CPU curves from Fig. 1 ([`power`]).
//!
//! Determinism: the simulator itself is fully deterministic; all randomness
//! lives in workload generation (`knots-workloads`), which takes explicit
//! seeds.
//!
//! ```
//! use knots_sim::prelude::*;
//!
//! // Build a 2-node P100 cluster, submit one batch pod, run to completion.
//! let mut cluster = Cluster::new(ClusterConfig::homogeneous(2, GpuModel::P100));
//! let profile = ResourceProfile::constant(0.5, 2048.0, 1_000.0);
//! let spec = PodSpec::batch("demo", profile).with_request_mb(4096.0);
//! let pod = cluster.submit(spec, SimTime::ZERO);
//! cluster.place(pod, NodeId(0)).unwrap();
//! while !cluster.pod(pod).unwrap().state().is_terminal() {
//!     cluster.step(SimDuration::from_millis(10));
//! }
//! assert!(cluster.pod(pod).unwrap().state().is_completed());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod config;
pub mod error;
pub mod events;
pub mod gpu;
pub mod ids;
pub mod metrics;
pub mod node;
pub mod pod;
pub mod pool;
pub mod power;
pub mod profile;
pub mod resources;
pub mod shard;
pub mod time;

/// Convenient glob-import of the most commonly used simulator types.
pub mod prelude {
    pub use crate::cluster::{Cluster, ClusterConfig};
    pub use crate::error::{SimError, SimResult};
    pub use crate::events::{CrashReason, Event, EventKind};
    pub use crate::gpu::{GpuDevice, PState};
    pub use crate::ids::{ImageId, NodeId, PodId};
    pub use crate::metrics::GpuSample;
    pub use crate::node::Node;
    pub use crate::pod::{Pod, PodSpec, PodState, QosClass};
    pub use crate::power::{cpu_energy_efficiency, gpu_power_watts, CpuGeneration, EnergyMeter};
    pub use crate::profile::{Phase, ResourceProfile};
    pub use crate::resources::{GpuModel, GpuSpec, Usage};
    pub use crate::shard::ShardLayout;
    pub use crate::time::{SimDuration, SimTime};
}
