//! Strongly-typed identifiers for simulator entities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a pod (container) for its whole lifetime, across relaunches,
/// preemptions and migrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PodId(pub u64);

/// Identifies a worker node. In the ten-node cluster experiments these are
/// `NodeId(0)..NodeId(9)`; the head node is not part of the simulated set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifies a container image. Pulling an image a node has never seen
/// incurs a cold-start delay; subsequent pods reusing the image start
/// immediately (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ImageId(pub u32);

impl fmt::Display for PodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pod-{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "image-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(PodId(1) < PodId(2));
        assert!(NodeId(0) < NodeId(9));
        assert_eq!(format!("{}", PodId(7)), "pod-7");
        assert_eq!(format!("{}", NodeId(3)), "node-3");
        assert_eq!(format!("{}", ImageId(2)), "image-2");
    }
}
