//! Pods (containers) and their lifecycle.
//!
//! The paper uses Google's *pod* and *container* interchangeably (§I,
//! footnote 1); so do we. A pod carries a [`ResourceProfile`] describing how
//! its demand evolves as it executes, a user-stated memory *request* (which,
//! per the Alibaba analysis in §II-B, routinely overstates real usage), and a
//! current *provision* (`limit_mb`) that Kube-Knots may shrink ("harvest")
//! or grow at runtime.

use crate::ids::{ImageId, NodeId};
use crate::profile::ResourceProfile;
use crate::resources::Usage;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Scheduling class of a pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QosClass {
    /// A user-facing query with an end-to-end latency deadline. The paper
    /// uses the canonical 150 ms "tail at scale" threshold (§VI-B).
    LatencyCritical {
        /// End-to-end deadline measured from arrival to completion.
        deadline: SimDuration,
    },
    /// A throughput-oriented batch job (HPC kernel, DNN training, ...).
    Batch,
}

impl QosClass {
    /// The default latency-critical class with the paper's 150 ms deadline.
    pub fn latency_critical() -> Self {
        QosClass::LatencyCritical { deadline: SimDuration::from_millis(150) }
    }

    /// True for latency-critical pods.
    pub fn is_latency_critical(self) -> bool {
        matches!(self, QosClass::LatencyCritical { .. })
    }
}

/// Immutable description of a pod handed to the orchestrator at submission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PodSpec {
    /// Human-readable name (e.g. `"lud"`, `"face-inference"`).
    pub name: String,
    /// Container image; first use on a node pays a cold-start pull.
    pub image: ImageId,
    /// Scheduling class.
    pub qos: QosClass,
    /// Demand as a function of executed work.
    pub profile: ResourceProfile,
    /// User-stated GPU memory request in MB. Schedulers that are agnostic of
    /// real utilization (Uniform, Res-Ag) provision exactly this much.
    pub request_mb: f64,
    /// When true the pod's framework earmarks essentially the whole free GPU
    /// memory at startup regardless of need — TensorFlow's default behaviour
    /// (§II-C2, Fig. 4). Knots-aware schedulers disable this via
    /// `allow_growth`.
    pub greedy_memory: bool,
    /// Framework knob equivalent to TF's `allow_growth`: when set, the pod
    /// consumes only its profile's demand. Kube-Knots sets this when placing
    /// pods (§V-B); GPU-agnostic baselines leave the default.
    pub allow_growth: bool,
    /// Fraction of progress retained across a crash. HPC kernels restart
    /// from scratch (0.0, the default); DL training jobs checkpoint and
    /// lose only the work since the last checkpoint (e.g. 0.9).
    pub checkpoint_fraction: f64,
}

impl PodSpec {
    /// Create a batch pod with a request equal to its peak demand (the
    /// "provision for the worst case" default the paper criticizes).
    pub fn batch(name: impl Into<String>, profile: ResourceProfile) -> Self {
        let peak = profile.peak_demand().mem_mb;
        PodSpec {
            name: name.into(),
            image: ImageId(0),
            qos: QosClass::Batch,
            request_mb: peak,
            profile,
            greedy_memory: false,
            allow_growth: false,
            checkpoint_fraction: 0.0,
        }
    }

    /// Create a latency-critical pod (150 ms deadline) with a peak-demand request.
    pub fn latency_critical(name: impl Into<String>, profile: ResourceProfile) -> Self {
        let peak = profile.peak_demand().mem_mb;
        PodSpec {
            name: name.into(),
            image: ImageId(0),
            qos: QosClass::latency_critical(),
            request_mb: peak,
            profile,
            greedy_memory: false,
            allow_growth: false,
            checkpoint_fraction: 0.0,
        }
    }

    /// Mark the pod as checkpointing (DL training): a crash keeps this
    /// fraction of progress.
    pub fn with_checkpointing(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        self.checkpoint_fraction = fraction;
        self
    }

    /// Override the memory request.
    pub fn with_request_mb(mut self, mb: f64) -> Self {
        self.request_mb = mb;
        self
    }

    /// Override the image.
    pub fn with_image(mut self, image: ImageId) -> Self {
        self.image = image;
        self
    }

    /// Mark the pod as framework-greedy (TF default memory earmarking).
    pub fn with_greedy_memory(mut self, greedy: bool) -> Self {
        self.greedy_memory = greedy;
        self
    }

    /// Set the `allow_growth` knob.
    pub fn with_allow_growth(mut self, allow: bool) -> Self {
        self.allow_growth = allow;
        self
    }

    /// Override the QoS class.
    pub fn with_qos(mut self, qos: QosClass) -> Self {
        self.qos = qos;
        self
    }
}

/// Lifecycle state of a pod.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PodState {
    /// Waiting in the cluster-wide pending queue.
    Pending,
    /// Bound to a node, waiting for the container image pull to finish.
    Pulling {
        /// When the pull completes and execution starts.
        until: SimTime,
    },
    /// Executing on its node's GPU.
    Running,
    /// Preempted (suspend-and-resume schedulers); progress is retained, GPU
    /// memory is released, and resuming pays an overhead.
    Suspended,
    /// Crashed (memory capacity violation) and waiting out the relaunch
    /// latency before re-entering the pending queue (§IV-C).
    Relaunching {
        /// When the pod re-enters the pending queue.
        until: SimTime,
    },
    /// Finished all its work.
    Completed {
        /// Completion instant.
        at: SimTime,
    },
    /// Abandoned after hitting the crash-loop cap (CrashLoopBackOff): the
    /// pod will never be relaunched.
    Failed {
        /// Abandonment instant.
        at: SimTime,
    },
}

impl PodState {
    /// True for `Completed`.
    pub fn is_completed(self) -> bool {
        matches!(self, PodState::Completed { .. })
    }

    /// True for `Failed` (crash-loop abandonment).
    pub fn is_failed(self) -> bool {
        matches!(self, PodState::Failed { .. })
    }

    /// True when the pod will never run again.
    pub fn is_terminal(self) -> bool {
        self.is_completed() || self.is_failed()
    }

    /// True while the pod occupies GPU memory on a node (pulling counts: the
    /// provision is reserved as soon as the pod is bound).
    pub fn holds_gpu(self) -> bool {
        matches!(self, PodState::Pulling { .. } | PodState::Running)
    }
}

/// A pod's full runtime record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pod {
    spec: PodSpec,
    state: PodState,
    node: Option<NodeId>,
    /// Current memory provision in MB (starts at `request_mb`; resized by
    /// harvesting schedulers).
    limit_mb: f64,
    /// Executed work in seconds-at-full-speed.
    progress: f64,
    /// Cumulative GPU service received, in seconds weighted by granted SM
    /// share — the "attained service" used by Tiresias' LAS policy.
    attained_service: f64,
    arrival: SimTime,
    first_placed: Option<SimTime>,
    started: Option<SimTime>,
    completed: Option<SimTime>,
    crashes: u32,
    preemptions: u32,
    migrations: u32,
    /// Memory earmarked at start by a greedy framework (TF default): the pod
    /// holds this much regardless of need, and crashes if its real demand
    /// ever exceeds it. `None` for well-behaved (`allow_growth`) pods.
    earmark_mb: Option<f64>,
    /// Usage measured by the node on the most recent tick.
    last_usage: Usage,
    /// Usage measured on the tick before that (for growth detection).
    prev_usage: Usage,
}

impl Pod {
    /// Create a pod in the pending state.
    pub fn new(spec: PodSpec, arrival: SimTime) -> Self {
        let limit = spec.request_mb;
        Pod {
            spec,
            state: PodState::Pending,
            node: None,
            limit_mb: limit,
            progress: 0.0,
            attained_service: 0.0,
            arrival,
            first_placed: None,
            started: None,
            completed: None,
            crashes: 0,
            preemptions: 0,
            migrations: 0,
            earmark_mb: None,
            last_usage: Usage::ZERO,
            prev_usage: Usage::ZERO,
        }
    }

    /// The immutable spec.
    pub fn spec(&self) -> &PodSpec {
        &self.spec
    }

    /// Current lifecycle state.
    pub fn state(&self) -> PodState {
        self.state
    }

    /// The node this pod is currently bound to, if any.
    pub fn node(&self) -> Option<NodeId> {
        self.node
    }

    /// Current memory provision in MB.
    pub fn limit_mb(&self) -> f64 {
        self.limit_mb
    }

    /// Executed work, in seconds-at-full-speed.
    pub fn progress(&self) -> f64 {
        self.progress
    }

    /// Remaining work at full speed.
    pub fn remaining_work(&self) -> f64 {
        (self.spec.profile.total_work() - self.progress).max(0.0)
    }

    /// Attained GPU service in SM-share-weighted seconds (for LAS).
    pub fn attained_service(&self) -> f64 {
        self.attained_service
    }

    /// Submission time.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// First time the pod was bound to a node, if ever.
    pub fn first_placed(&self) -> Option<SimTime> {
        self.first_placed
    }

    /// Time execution first started, if ever.
    pub fn started(&self) -> Option<SimTime> {
        self.started
    }

    /// Completion time, if completed.
    pub fn completed(&self) -> Option<SimTime> {
        self.completed
    }

    /// Number of crashes suffered (capacity violations and node failures).
    pub fn crashes(&self) -> u32 {
        self.crashes
    }

    /// Number of preemptions suffered.
    pub fn preemptions(&self) -> u32 {
        self.preemptions
    }

    /// Number of migrations performed.
    pub fn migrations(&self) -> u32 {
        self.migrations
    }

    /// End-to-end latency (completion − arrival), if completed.
    pub fn turnaround(&self) -> Option<SimDuration> {
        self.completed.map(|c| c.saturating_since(self.arrival))
    }

    /// Whether a completed latency-critical pod met its deadline. `None` for
    /// batch pods or pods that have not completed.
    pub fn met_deadline(&self) -> Option<bool> {
        match (self.spec.qos, self.turnaround()) {
            (QosClass::LatencyCritical { deadline }, Some(t)) => Some(t <= deadline),
            _ => None,
        }
    }

    /// The pod's demand vector at its current progress.
    pub fn current_demand(&self) -> Usage {
        self.spec.profile.demand_at(self.progress)
    }

    /// The cumulative-work boundary at which this pod's demand next
    /// changes, or `None` in its final phase. Event-calendar hint.
    pub fn next_phase_boundary(&self) -> Option<f64> {
        self.spec.profile.next_boundary_after(self.progress)
    }

    /// Memory earmarked by a greedy framework at startup, if any.
    pub fn earmark_mb(&self) -> Option<f64> {
        self.earmark_mb
    }

    /// Usage measured on the most recent simulation tick.
    pub fn last_usage(&self) -> Usage {
        self.last_usage
    }

    /// Whether the pod's measured memory grew on the most recent tick.
    pub fn memory_grew(&self) -> bool {
        self.last_usage.mem_mb > self.prev_usage.mem_mb + 1e-9
    }

    // ------------------------------------------------------------------
    // State transitions. These are crate-internal: the `Cluster` is the only
    // entity allowed to drive the lifecycle.
    // ------------------------------------------------------------------

    pub(crate) fn bind(&mut self, node: NodeId, now: SimTime, pull_until: Option<SimTime>) {
        debug_assert!(matches!(self.state, PodState::Pending));
        self.node = Some(node);
        if self.first_placed.is_none() {
            self.first_placed = Some(now);
        }
        match pull_until {
            Some(until) if until > now => self.state = PodState::Pulling { until },
            _ => {
                self.state = PodState::Running;
                if self.started.is_none() {
                    self.started = Some(now);
                }
            }
        }
    }

    pub(crate) fn finish_pull(&mut self, now: SimTime) {
        debug_assert!(matches!(self.state, PodState::Pulling { .. }));
        self.state = PodState::Running;
        if self.started.is_none() {
            self.started = Some(now);
        }
    }

    pub(crate) fn advance(&mut self, work_done: f64, service: f64) {
        debug_assert!(matches!(self.state, PodState::Running));
        self.progress += work_done;
        self.attained_service += service;
    }

    pub(crate) fn complete(&mut self, now: SimTime) {
        self.state = PodState::Completed { at: now };
        self.completed = Some(now);
        self.node = None;
    }

    pub(crate) fn crash(&mut self, relaunch_at: SimTime) {
        self.crashes += 1;
        // A crashed container restarts from scratch unless the application
        // checkpoints (DL training does): it then resumes from the last
        // checkpoint.
        self.progress *= self.spec.checkpoint_fraction;
        self.state = PodState::Relaunching { until: relaunch_at };
        self.node = None;
    }

    pub(crate) fn reenqueue(&mut self) {
        debug_assert!(matches!(self.state, PodState::Relaunching { .. }));
        self.state = PodState::Pending;
    }

    /// Abandon the pod after its final crash (crash-loop cap reached).
    pub(crate) fn fail(&mut self, now: SimTime) {
        self.state = PodState::Failed { at: now };
        self.node = None;
    }

    pub(crate) fn suspend(&mut self) {
        debug_assert!(matches!(self.state, PodState::Running | PodState::Pulling { .. }));
        self.preemptions += 1;
        self.state = PodState::Suspended;
    }

    pub(crate) fn resume(&mut self, now: SimTime, resume_until: Option<SimTime>) {
        debug_assert!(matches!(self.state, PodState::Suspended));
        match resume_until {
            Some(until) if until > now => self.state = PodState::Pulling { until },
            _ => self.state = PodState::Running,
        }
    }

    pub(crate) fn record_migration(&mut self) {
        self.migrations += 1;
    }

    pub(crate) fn set_node(&mut self, node: Option<NodeId>) {
        self.node = node;
    }

    pub(crate) fn set_limit_mb(&mut self, mb: f64) {
        debug_assert!(mb.is_finite() && mb >= 0.0);
        self.limit_mb = mb;
    }

    pub(crate) fn set_earmark_mb(&mut self, mb: Option<f64>) {
        self.earmark_mb = mb;
    }

    pub(crate) fn set_allow_growth(&mut self, allow: bool) {
        self.spec.allow_growth = allow;
    }

    pub(crate) fn record_usage(&mut self, usage: Usage) {
        self.prev_usage = self.last_usage;
        self.last_usage = usage;
    }

    pub(crate) fn clear_runtime_memory(&mut self) {
        self.earmark_mb = None;
        self.last_usage = Usage::ZERO;
        self.prev_usage = Usage::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ResourceProfile;

    fn spec() -> PodSpec {
        PodSpec::batch("t", ResourceProfile::constant(0.5, 1000.0, 4.0))
    }

    #[test]
    fn new_pod_is_pending_with_request_limit() {
        let p = Pod::new(spec().with_request_mb(2000.0), SimTime::ZERO);
        assert_eq!(p.state(), PodState::Pending);
        assert_eq!(p.limit_mb(), 2000.0);
        assert_eq!(p.node(), None);
    }

    #[test]
    fn batch_spec_requests_peak() {
        let s = spec();
        assert_eq!(s.request_mb, 1000.0);
        assert!(!s.qos.is_latency_critical());
    }

    #[test]
    fn bind_with_pull_then_run() {
        let mut p = Pod::new(spec(), SimTime::ZERO);
        let now = SimTime::from_secs(1);
        p.bind(NodeId(3), now, Some(SimTime::from_secs(3)));
        assert!(matches!(p.state(), PodState::Pulling { .. }));
        assert!(p.state().holds_gpu());
        assert_eq!(p.node(), Some(NodeId(3)));
        assert_eq!(p.first_placed(), Some(now));
        assert_eq!(p.started(), None);
        p.finish_pull(SimTime::from_secs(3));
        assert_eq!(p.state(), PodState::Running);
        assert_eq!(p.started(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn bind_without_pull_starts_immediately() {
        let mut p = Pod::new(spec(), SimTime::ZERO);
        p.bind(NodeId(0), SimTime::from_millis(5), None);
        assert_eq!(p.state(), PodState::Running);
        assert_eq!(p.started(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn progress_and_completion() {
        let mut p = Pod::new(spec(), SimTime::ZERO);
        p.bind(NodeId(0), SimTime::ZERO, None);
        p.advance(2.0, 1.0);
        assert!((p.remaining_work() - 2.0).abs() < 1e-12);
        assert!((p.attained_service() - 1.0).abs() < 1e-12);
        p.complete(SimTime::from_secs(5));
        assert!(p.state().is_completed());
        assert_eq!(p.turnaround(), Some(SimDuration::from_secs(5)));
        assert_eq!(p.node(), None);
    }

    #[test]
    fn crash_resets_progress_and_counts() {
        let mut p = Pod::new(spec(), SimTime::ZERO);
        p.bind(NodeId(0), SimTime::ZERO, None);
        p.advance(3.0, 3.0);
        p.crash(SimTime::from_secs(2));
        assert_eq!(p.crashes(), 1);
        assert_eq!(p.progress(), 0.0);
        assert!(matches!(p.state(), PodState::Relaunching { .. }));
        p.reenqueue();
        assert_eq!(p.state(), PodState::Pending);
    }

    #[test]
    fn deadline_check() {
        let lc = PodSpec::latency_critical("q", ResourceProfile::constant(0.2, 100.0, 0.05));
        let mut p = Pod::new(lc, SimTime::ZERO);
        p.bind(NodeId(0), SimTime::ZERO, None);
        p.complete(SimTime::from_millis(100));
        assert_eq!(p.met_deadline(), Some(true));

        let lc = PodSpec::latency_critical("q2", ResourceProfile::constant(0.2, 100.0, 0.05));
        let mut p = Pod::new(lc, SimTime::ZERO);
        p.bind(NodeId(0), SimTime::ZERO, None);
        p.complete(SimTime::from_millis(200));
        assert_eq!(p.met_deadline(), Some(false));
    }

    #[test]
    fn batch_pods_have_no_deadline_verdict() {
        let mut p = Pod::new(spec(), SimTime::ZERO);
        p.bind(NodeId(0), SimTime::ZERO, None);
        p.complete(SimTime::from_secs(1));
        assert_eq!(p.met_deadline(), None);
    }

    // Satellite invariant for the checkpoint-fraction path: across any
    // number of crash/relaunch cycles a pod never *gains* progress from a
    // crash and never ends up owing more work than it was submitted with.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 128,
            ..proptest::prelude::ProptestConfig::default()
        })]

        #[test]
        fn checkpointing_never_gains_progress_across_crashes(
            // Percent, so both endpoints (no checkpointing / full
            // checkpointing) are exercised.
            fraction_pct in 0u32..=100,
            total_work in 1.0f64..500.0,
            cycles in proptest::collection::vec(0.0f64..50.0, 1..16),
        ) {
            let fraction = f64::from(fraction_pct) / 100.0;
            let spec = PodSpec::batch(
                "ckpt",
                ResourceProfile::constant(0.5, 1000.0, total_work),
            )
            .with_checkpointing(fraction);
            let mut p = Pod::new(spec, SimTime::ZERO);
            let mut now = SimTime::ZERO;
            for (i, advance_by) in cycles.iter().enumerate() {
                p.bind(NodeId(0), now, None);
                // A node never advances a pod past its remaining work.
                p.advance(advance_by.min(p.remaining_work()), *advance_by);
                let before = p.progress();
                now += SimDuration::from_secs(1);
                p.crash(now + SimDuration::from_secs(4));
                let after = p.progress();
                proptest::prop_assert!(
                    after <= before + 1e-12,
                    "crash must not add progress: {before} -> {after}"
                );
                proptest::prop_assert!(after >= 0.0);
                proptest::prop_assert!(
                    p.remaining_work() <= total_work + 1e-12,
                    "remaining work {} exceeds original {total_work}",
                    p.remaining_work()
                );
                proptest::prop_assert_eq!(p.crashes(), (i + 1) as u32);
                p.reenqueue();
            }
        }
    }

    #[test]
    fn fail_is_terminal() {
        let mut p = Pod::new(spec(), SimTime::ZERO);
        p.bind(NodeId(0), SimTime::ZERO, None);
        p.crash(SimTime::from_secs(2));
        p.fail(SimTime::from_secs(2));
        assert!(p.state().is_failed());
        assert!(p.state().is_terminal());
        assert!(!p.state().holds_gpu());
        assert_eq!(p.node(), None);
    }

    #[test]
    fn suspend_resume_cycle() {
        let mut p = Pod::new(spec(), SimTime::ZERO);
        p.bind(NodeId(0), SimTime::ZERO, None);
        p.advance(1.0, 1.0);
        p.suspend();
        assert_eq!(p.preemptions(), 1);
        assert_eq!(p.state(), PodState::Suspended);
        assert!((p.progress() - 1.0).abs() < 1e-12, "suspend keeps progress");
        p.resume(SimTime::from_secs(1), None);
        assert_eq!(p.state(), PodState::Running);
    }
}
