//! Worker nodes: per-tick execution, contention, OOM detection, sampling.
//!
//! A node owns its resident pods while they are bound to it, which makes
//! per-node stepping embarrassingly parallel (the cluster steps nodes on a
//! scoped-thread fan-out when there are many of them).
//!
//! ## Execution model
//!
//! * **Compute (time-shared)**: every running pod demands an SM fraction
//!   from its profile. When total demand exceeds 1.0, all pods slow down by
//!   the same factor `1 / total` — proportional-share time slicing. Granted
//!   SM utilization never exceeds 1.0.
//! * **PCIe (shared link)**: total tx+rx demand beyond the link bandwidth
//!   slows everyone down the same way. A pod's effective speed is the
//!   minimum of its compute and transfer slowdowns.
//! * **Memory (space-shared)**: usage follows the profile. A *greedy* pod
//!   (TF default, §II-C2) earmarks 99% of the memory that is free when it
//!   starts and holds it for its lifetime; it crashes if its real demand ever
//!   exceeds the earmark. If the sum of usage exceeds device capacity, a
//!   victim pod crashes with a [`CrashReason::MemoryCapacityViolation`]:
//!   preferentially the pod most over its provision, else the most recently
//!   placed grower.

use crate::events::CrashReason;
use crate::gpu::{GpuDevice, PState};
use crate::ids::{ImageId, NodeId, PodId};
use crate::metrics::GpuSample;
use crate::pod::{Pod, PodState};
use crate::power::{gpu_power_watts, EnergyMeter};
use crate::resources::{GpuModel, Usage};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Fraction of free device memory a greedy framework earmarks at startup
/// (Fig. 4 reports TF consuming 99% of device memory).
pub const GREEDY_EARMARK_FRAC: f64 = 0.99;

/// What a node reports after one tick.
#[derive(Debug, Default)]
pub struct StepOutcome {
    /// Pods that finished all their work this tick.
    pub completed: Vec<(PodId, Pod)>,
    /// Pods that crashed this tick, with the reason.
    pub crashed: Vec<(PodId, Pod, CrashReason)>,
    /// Pods whose image pull finished and began executing this tick.
    pub started: Vec<PodId>,
}

/// A worker node with one GPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    gpu: GpuDevice,
    residents: Vec<(PodId, Pod)>,
    image_cache: BTreeSet<ImageId>,
    last_sample: GpuSample,
    energy: EnergyMeter,
    /// Set while waking from deep sleep.
    waking_until: Option<SimTime>,
    /// Last instant the node had at least one resident pod.
    last_busy: SimTime,
    /// Whole-machine failure flag (injected fault): the node runs nothing,
    /// reports nothing and refuses placements until recovery.
    failed: bool,
}

impl Node {
    /// A new awake node.
    pub fn new(id: NodeId, model: GpuModel) -> Self {
        Node {
            id,
            gpu: GpuDevice::new(model),
            residents: Vec::new(),
            image_cache: BTreeSet::new(),
            last_sample: GpuSample::default(),
            energy: EnergyMeter::new(),
            waking_until: None,
            last_busy: SimTime::ZERO,
            failed: false,
        }
    }

    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The GPU device.
    pub fn gpu(&self) -> &GpuDevice {
        &self.gpu
    }

    /// Number of resident pods (the "queue length" signal of §IV-B).
    pub fn resident_count(&self) -> usize {
        self.residents.len()
    }

    /// Iterate over resident pods.
    pub fn residents(&self) -> impl Iterator<Item = (PodId, &Pod)> {
        self.residents.iter().map(|(id, p)| (*id, p))
    }

    /// Look up a resident pod.
    pub fn resident(&self, id: PodId) -> Option<&Pod> {
        self.residents.iter().find(|(pid, _)| *pid == id).map(|(_, p)| p)
    }

    /// Sum of resident provisions (`limit_mb`) — the "free memory" a
    /// request-based scheduler believes in.
    pub fn provisioned_mb(&self) -> f64 {
        self.residents.iter().map(|(_, p)| p.limit_mb()).sum()
    }

    /// Free memory according to provisions.
    pub fn free_provision_mb(&self) -> f64 {
        (self.gpu.capacity_mb() - self.provisioned_mb()).max(0.0)
    }

    /// Free memory according to the last *measured* usage — what Knots'
    /// real-time metrics expose and GPU-agnostic schedulers cannot see.
    pub fn free_measured_mb(&self) -> f64 {
        (self.gpu.capacity_mb() - self.last_sample.mem_used_mb).max(0.0)
    }

    /// The most recent metrics sample.
    pub fn last_sample(&self) -> GpuSample {
        self.last_sample
    }

    /// Cumulative energy drawn by this node's GPU.
    pub fn energy(&self) -> EnergyMeter {
        self.energy
    }

    /// Pre-pull images into the node's cache (no cold start for them).
    pub(crate) fn prewarm(&mut self, images: &[ImageId]) {
        self.image_cache.extend(images.iter().copied());
    }

    /// Whether the image is already cached (no cold start).
    pub fn has_image(&self, image: ImageId) -> bool {
        self.image_cache.contains(&image)
    }

    /// Whether the node can accept placements right now.
    pub fn is_available(&self) -> bool {
        !self.gpu.is_asleep() && !self.failed
    }

    /// Whether the node is down with an injected whole-machine fault.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Last time the node hosted any pod.
    pub fn last_busy(&self) -> SimTime {
        self.last_busy
    }

    // ------------------------------------------------------------------
    // Cluster-driven mutations.
    // ------------------------------------------------------------------

    /// Admit a pod. Returns whether a cold-start pull is needed. The caller
    /// (`Cluster::place`) has already validated the placement.
    pub(crate) fn admit(
        &mut self,
        id: PodId,
        mut pod: Pod,
        now: SimTime,
        pull: SimDuration,
    ) -> bool {
        let cold = !self.image_cache.contains(&pod.spec().image);
        self.image_cache.insert(pod.spec().image);
        let pull_until = if cold { Some(now + pull) } else { None };
        pod.bind(self.id, now, pull_until);
        // Greedy frameworks earmark almost all *currently free* memory the
        // moment the container starts (§II-C2). "Currently free" accounts
        // for earmarks of pods admitted earlier in the same tick, which the
        // last metrics sample cannot see yet.
        if pod.spec().greedy_memory && !pod.spec().allow_growth {
            let free = self.estimated_free_mb();
            pod.set_earmark_mb(Some(free * GREEDY_EARMARK_FRAC));
        }
        self.residents.push((id, pod));
        self.last_busy = now;
        cold
    }

    /// Best current estimate of free device memory: capacity minus each
    /// resident's earmark or last measured usage, whichever is larger.
    fn estimated_free_mb(&self) -> f64 {
        let used: f64 = self
            .residents
            .iter()
            .map(|(_, p)| p.earmark_mb().unwrap_or(0.0).max(p.last_usage().mem_mb))
            .sum();
        (self.gpu.capacity_mb() - used).max(0.0)
    }

    /// Re-attach a suspended pod (resume or migration), paying `delay`
    /// before execution restarts.
    pub(crate) fn reattach(&mut self, id: PodId, mut pod: Pod, now: SimTime, delay: SimDuration) {
        debug_assert!(matches!(pod.state(), PodState::Suspended));
        self.image_cache.insert(pod.spec().image);
        let until = if delay.is_zero() { None } else { Some(now + delay) };
        pod.resume(now, until);
        pod.set_node(Some(self.id));
        if pod.spec().greedy_memory && !pod.spec().allow_growth {
            let free = self.estimated_free_mb();
            pod.set_earmark_mb(Some(free * GREEDY_EARMARK_FRAC));
        }
        self.residents.push((id, pod));
        self.last_busy = now;
    }

    /// Remove a resident pod (for preemption/migration/external eviction).
    pub(crate) fn evict(&mut self, id: PodId) -> Option<Pod> {
        let idx = self.residents.iter().position(|(pid, _)| *pid == id)?;
        let (_, mut pod) = self.residents.remove(idx);
        pod.clear_runtime_memory();
        Some(pod)
    }

    /// Mutable access for resize operations.
    pub(crate) fn resident_mut(&mut self, id: PodId) -> Option<&mut Pod> {
        self.residents.iter_mut().find(|(pid, _)| *pid == id).map(|(_, p)| p)
    }

    pub(crate) fn set_pstate(&mut self, p: PState) {
        self.gpu.set_pstate(p);
    }

    /// Take the node down (whole-machine fault), returning every resident
    /// pod. Runtime memory is cleared and the image cache is lost — the
    /// replacement machine boots cold.
    pub(crate) fn fail(&mut self) -> Vec<(PodId, Pod)> {
        self.failed = true;
        self.waking_until = None;
        self.image_cache.clear();
        self.last_sample = GpuSample::default();
        let mut victims = std::mem::take(&mut self.residents);
        for (_, pod) in victims.iter_mut() {
            pod.clear_runtime_memory();
        }
        victims
    }

    /// Bring a failed node back into service, empty and cold.
    pub(crate) fn recover(&mut self, now: SimTime) {
        self.failed = false;
        self.gpu.set_pstate(PState::Active);
        // Reset the idle clock so auto-sleep does not immediately re-park
        // the machine before the scheduler can use it.
        self.last_busy = now;
    }

    /// Apply a GPU memory-capacity degradation (0.0 restores full health).
    pub(crate) fn set_degraded_frac(&mut self, frac: f64) {
        self.gpu.set_degraded_frac(frac);
    }

    pub(crate) fn begin_wake(&mut self, until: SimTime) {
        self.gpu.set_pstate(PState::Active);
        self.waking_until = Some(until);
        // Reset the idle clock: a node woken on purpose must not be put
        // straight back to sleep by the auto-sleep timer before it has a
        // chance to receive work.
        self.last_busy = until;
    }

    /// True while the node is still paying its wake-up latency.
    pub fn is_waking(&self, now: SimTime) -> bool {
        matches!(self.waking_until, Some(u) if u > now)
    }

    /// Earliest future instant this node can change state on its own: a
    /// wake or image pull finishing, or a running pod reaching a
    /// completion / profile phase boundary. `None` for failed, asleep and
    /// idle nodes (nothing is in flight). This is an event-calendar
    /// *hint*: active nodes still sub-step at tick granularity inside a
    /// span, so an estimate that is too early only shortens spans — the
    /// completion bound therefore keeps a one-tick safety margin and
    /// assumes the current contention level persists.
    pub fn next_due(&self, now: SimTime, dt: SimDuration) -> Option<SimTime> {
        if self.failed || self.gpu.is_asleep() {
            return None;
        }
        let mut due: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            due = Some(match due {
                Some(d) if d <= t => d,
                _ => t,
            });
        };
        if let Some(u) = self.waking_until {
            if u > now {
                consider(u);
            }
        }
        if self.residents.is_empty() {
            return due;
        }
        // Replicate the contention math of `step` Phase 2 to estimate how
        // many whole ticks fit before the nearest boundary.
        let spec = self.gpu.spec();
        let dt_secs = dt.as_secs_f64();
        let mut total_sm = 0.0;
        let mut total_bw = 0.0;
        for (_, pod) in &self.residents {
            if matches!(pod.state(), PodState::Running) {
                let d = pod.current_demand();
                total_sm += d.sm_frac;
                total_bw += d.total_bw_mbps();
            }
        }
        let sm_speed = if total_sm > 1.0 { 1.0 / total_sm } else { 1.0 };
        let bw_speed = if total_bw > spec.pcie_mbps { spec.pcie_mbps / total_bw } else { 1.0 };
        let speed = sm_speed.min(bw_speed);
        let per_tick = dt_secs * speed * spec.compute_scale;
        for (_, pod) in &self.residents {
            match pod.state() {
                PodState::Pulling { until } => consider(until.max(now)),
                PodState::Running => {
                    let mut dist = pod.remaining_work();
                    if let Some(b) = pod.next_phase_boundary() {
                        dist = dist.min((b - pod.progress()).max(0.0));
                    }
                    if per_tick <= 0.0 || !per_tick.is_finite() {
                        // Degenerate demand; re-evaluate next tick.
                        consider(now);
                        continue;
                    }
                    let ticks = (dist / per_tick).floor();
                    let ticks =
                        if ticks.is_finite() && ticks >= 2.0 { (ticks as u64) - 1 } else { 1 };
                    consider(now + dt * ticks);
                }
                _ => {}
            }
        }
        due
    }

    /// Replay `ticks` quiet ticks in closed form for a node that spent a
    /// whole span failed or without residents: one constant sample moved
    /// to the span end, and the per-tick energy accruals replicated
    /// one-by-one so float rounding matches the naive path bit for bit.
    pub(crate) fn finish_quiet_span(&mut self, start: SimTime, dt: SimDuration, ticks: u64) {
        debug_assert!(self.residents.is_empty());
        let end = start + dt * ticks;
        if self.failed {
            self.last_sample = GpuSample {
                at: end,
                sm_util: 0.0,
                mem_used_mb: 0.0,
                power_watts: 0.0,
                tx_mbps: 0.0,
                rx_mbps: 0.0,
            };
            return;
        }
        let spec = *self.gpu.spec();
        // An empty node draws sleep power whether asleep or merely idle,
        // so one closed form covers both p-states — and a mid-span
        // auto-sleep transition changes neither samples nor energy.
        self.last_sample = GpuSample {
            at: end,
            sm_util: 0.0,
            mem_used_mb: 0.0,
            power_watts: spec.sleep_watts,
            tx_mbps: 0.0,
            rx_mbps: 0.0,
        };
        for _ in 0..ticks {
            self.energy.add(spec.sleep_watts, dt);
        }
        if !self.gpu.is_asleep() && ticks > 0 {
            if let Some(u) = self.waking_until {
                // The per-tick path clears the flag on the first tick whose
                // pre-advance time has reached it.
                if u.0 <= end.0 - dt.0 {
                    self.waking_until = None;
                }
            }
        }
    }

    /// Advance the node by one tick.
    pub(crate) fn step(&mut self, now: SimTime, dt: SimDuration) -> StepOutcome {
        let mut out = StepOutcome::default();
        let spec = *self.gpu.spec();

        if self.failed {
            // A dead machine reports nothing and draws nothing from the GPU
            // power budget; residents were already crashed off at failure.
            self.last_sample = GpuSample {
                at: now + dt,
                sm_util: 0.0,
                mem_used_mb: 0.0,
                power_watts: 0.0,
                tx_mbps: 0.0,
                rx_mbps: 0.0,
            };
            return out;
        }
        if self.gpu.is_asleep() {
            self.last_sample = GpuSample {
                at: now + dt,
                sm_util: 0.0,
                mem_used_mb: 0.0,
                power_watts: spec.sleep_watts,
                tx_mbps: 0.0,
                rx_mbps: 0.0,
            };
            self.energy.add(spec.sleep_watts, dt);
            return out;
        }
        if let Some(u) = self.waking_until {
            if u <= now {
                self.waking_until = None;
            }
        }

        // Phase 1: image pulls completing this tick.
        for (id, pod) in self.residents.iter_mut() {
            if let PodState::Pulling { until } = pod.state() {
                if until <= now {
                    pod.finish_pull(now);
                    out.started.push(*id);
                }
            }
        }

        // Phase 2: contention-adjusted progress for running pods.
        let dt_secs = dt.as_secs_f64();
        let mut total_sm = 0.0;
        let mut total_bw = 0.0;
        for (_, pod) in &self.residents {
            if matches!(pod.state(), PodState::Running) {
                let d = pod.current_demand();
                total_sm += d.sm_frac;
                total_bw += d.total_bw_mbps();
            }
        }
        let sm_speed = if total_sm > 1.0 { 1.0 / total_sm } else { 1.0 };
        let bw_speed = if total_bw > spec.pcie_mbps { spec.pcie_mbps / total_bw } else { 1.0 };
        let speed = sm_speed.min(bw_speed);

        let mut granted_sm = 0.0;
        let mut granted_tx = 0.0;
        let mut granted_rx = 0.0;
        for (_, pod) in self.residents.iter_mut() {
            if !matches!(pod.state(), PodState::Running) {
                // Bound-but-pulling pods hold provisioned memory but no
                // compute; their measured usage is a small startup residue.
                pod.record_usage(Usage::ZERO);
                continue;
            }
            let d = pod.current_demand();
            // Heterogeneity: work progresses at the device's relative
            // throughput (profiles are calibrated to a P100).
            let work = (dt_secs * speed * spec.compute_scale).min(pod.remaining_work());
            let share = d.sm_frac * speed;
            pod.advance(work, share * dt_secs);
            granted_sm += share;
            granted_tx += d.tx_mbps * speed;
            granted_rx += d.rx_mbps * speed;

            // Measured memory: the profile's demand, or the framework
            // earmark if that is larger.
            let mem = match pod.earmark_mb() {
                Some(e) => e.max(d.mem_mb.min(e)), // earmark is both floor and intended ceiling
                None => d.mem_mb,
            };
            pod.record_usage(Usage::new(share, mem, d.rx_mbps * speed, d.tx_mbps * speed));
        }

        // Phase 3: crash detection.
        self.detect_crashes(&mut out);

        // Phase 4: completions.
        let mut i = 0;
        while i < self.residents.len() {
            let done = {
                let (_, pod) = &self.residents[i];
                matches!(pod.state(), PodState::Running) && pod.remaining_work() <= 1e-12
            };
            if done {
                let (id, mut pod) = self.residents.remove(i);
                pod.clear_runtime_memory();
                pod.complete(now + dt);
                out.completed.push((id, pod));
            } else {
                i += 1;
            }
        }

        // Phase 5: sample + energy. A GPU with no resident context drops
        // to the deep-sleep p-state automatically (real Nvidia devices
        // downclock to `p_state 12` when idle, §VI-C) — consolidation thus
        // translates directly into power savings without explicit p-state
        // management.
        // Fold from +0.0 (`Iterator::sum` starts at -0.0, whose sign would
        // leak into an empty node's sample and break bit-parity with the
        // asleep path and the quiet-span closed form; adding +0.0 first
        // changes no non-empty sum's bits).
        let mem_used: f64 =
            self.residents.iter().map(|(_, p)| p.last_usage().mem_mb).fold(0.0, |a, b| a + b);
        let sm_util = granted_sm.min(1.0);
        let power = if self.residents.is_empty() {
            spec.sleep_watts
        } else {
            gpu_power_watts(&spec, sm_util)
        };
        self.last_sample = GpuSample {
            at: now + dt,
            sm_util,
            mem_used_mb: mem_used.min(self.gpu.capacity_mb()),
            power_watts: power,
            tx_mbps: granted_tx,
            rx_mbps: granted_rx,
        };
        self.energy.add(self.last_sample.power_watts, dt);
        if !self.residents.is_empty() {
            self.last_busy = now + dt;
        }
        out
    }

    /// Find and evict OOM victims until total usage fits in device memory.
    fn detect_crashes(&mut self, out: &mut StepOutcome) {
        let capacity = self.gpu.capacity_mb();

        // (a) A greedy pod whose real demand outgrew its startup earmark
        // crashes on its own (framework OOM), independent of node pressure.
        let mut i = 0;
        while i < self.residents.len() {
            let blown = {
                let (_, pod) = &self.residents[i];
                match (pod.state(), pod.earmark_mb()) {
                    (PodState::Running, Some(e)) => pod.current_demand().mem_mb > e + 1e-9,
                    _ => false,
                }
            };
            if blown {
                let (id, mut pod) = self.residents.remove(i);
                pod.clear_runtime_memory();
                out.crashed.push((id, pod, CrashReason::MemoryCapacityViolation));
            } else {
                i += 1;
            }
        }

        // (b) Aggregate capacity violations: evict victims until usage fits.
        loop {
            let total: f64 = self.residents.iter().map(|(_, p)| p.last_usage().mem_mb).sum();
            if total <= capacity + 1e-9 {
                break;
            }
            // Victim preference: largest overage above its own provision;
            // ties and no-overage fall back to the most recently placed pod
            // that grew this tick, then simply the most recently placed.
            let victim = self
                .residents
                .iter()
                .enumerate()
                .filter(|(_, (_, p))| p.state().holds_gpu())
                .max_by(|(ai, (_, a)), (bi, (_, b))| {
                    let oa = a.last_usage().mem_mb - a.limit_mb();
                    let ob = b.last_usage().mem_mb - b.limit_mb();
                    oa.total_cmp(&ob).then(a.memory_grew().cmp(&b.memory_grew())).then(ai.cmp(bi))
                })
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let (id, mut pod) = self.residents.remove(i);
                    pod.clear_runtime_memory();
                    out.crashed.push((id, pod, CrashReason::MemoryCapacityViolation));
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::PodSpec;
    use crate::profile::{ProfileBuilder, ResourceProfile};

    fn batch_pod(sm: f64, mem: f64, work: f64) -> Pod {
        Pod::new(PodSpec::batch("b", ResourceProfile::constant(sm, mem, work)), SimTime::ZERO)
    }

    fn tick(node: &mut Node, now: &mut SimTime, dt_ms: u64) -> StepOutcome {
        let dt = SimDuration::from_millis(dt_ms);
        let out = node.step(*now, dt);
        *now += dt;
        out
    }

    #[test]
    fn solo_pod_runs_at_full_speed() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        n.admit(PodId(1), batch_pod(0.5, 1000.0, 1.0), SimTime::ZERO, SimDuration::ZERO);
        let mut now = SimTime::ZERO;
        let mut completed = 0;
        for _ in 0..110 {
            completed += tick(&mut n, &mut now, 10).completed.len();
        }
        assert_eq!(completed, 1);
        // 1 s of work at full speed completes at the 100th tick.
        assert!(now <= SimTime::from_millis(1100));
    }

    #[test]
    fn contention_slows_both_pods() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        // Two pods each demanding 80% SM: total 1.6 -> speed 0.625.
        n.admit(PodId(1), batch_pod(0.8, 1000.0, 1.0), SimTime::ZERO, SimDuration::ZERO);
        n.admit(PodId(2), batch_pod(0.8, 1000.0, 1.0), SimTime::ZERO, SimDuration::ZERO);
        let mut now = SimTime::ZERO;
        let out = tick(&mut n, &mut now, 100);
        assert!(out.completed.is_empty() && out.crashed.is_empty());
        let p = n.resident(PodId(1)).unwrap();
        assert!((p.progress() - 0.0625).abs() < 1e-9, "progress {}", p.progress());
        // Utilization is saturated at 1.0.
        assert!((n.last_sample().sm_util - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pcie_contention_limits_speed() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        let prof = ProfileBuilder::new().transfer(1.0, 10_000.0, 100.0).build();
        n.admit(
            PodId(1),
            Pod::new(PodSpec::batch("a", prof.clone()), SimTime::ZERO),
            SimTime::ZERO,
            SimDuration::ZERO,
        );
        n.admit(
            PodId(2),
            Pod::new(PodSpec::batch("b", prof), SimTime::ZERO),
            SimTime::ZERO,
            SimDuration::ZERO,
        );
        let mut now = SimTime::ZERO;
        tick(&mut n, &mut now, 100);
        // Total demand 20 GB/s on a 12 GB/s link -> speed 0.6.
        let p = n.resident(PodId(1)).unwrap();
        assert!((p.progress() - 0.06).abs() < 1e-9, "progress {}", p.progress());
    }

    #[test]
    fn capacity_violation_crashes_a_victim() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        // Two pods using 10 GB each on a 16 GB device -> second one crashes.
        n.admit(PodId(1), batch_pod(0.2, 10_000.0, 5.0), SimTime::ZERO, SimDuration::ZERO);
        n.admit(PodId(2), batch_pod(0.2, 10_000.0, 5.0), SimTime::ZERO, SimDuration::ZERO);
        let mut now = SimTime::ZERO;
        let out = tick(&mut n, &mut now, 10);
        assert_eq!(out.crashed.len(), 1);
        assert_eq!(n.resident_count(), 1);
        assert!(n.last_sample().mem_used_mb <= 16_384.0);
    }

    #[test]
    fn victim_is_pod_most_over_its_provision() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        // Pod 1 provisioned honestly (10 GB limit, 10 GB use); pod 2 lied
        // (1 GB limit, 8 GB use). Pod 2 must be the victim.
        let honest = Pod::new(
            PodSpec::batch("h", ResourceProfile::constant(0.1, 10_000.0, 5.0)),
            SimTime::ZERO,
        );
        let liar = Pod::new(
            PodSpec::batch("l", ResourceProfile::constant(0.1, 8_000.0, 5.0))
                .with_request_mb(1_000.0),
            SimTime::ZERO,
        );
        n.admit(PodId(1), honest, SimTime::ZERO, SimDuration::ZERO);
        n.admit(PodId(2), liar, SimTime::ZERO, SimDuration::ZERO);
        let mut now = SimTime::ZERO;
        let out = tick(&mut n, &mut now, 10);
        assert_eq!(out.crashed.len(), 1);
        assert_eq!(out.crashed[0].0, PodId(2));
    }

    #[test]
    fn greedy_pod_earmarks_free_memory() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        let tf = Pod::new(
            PodSpec::batch("tf", ResourceProfile::constant(0.3, 500.0, 5.0))
                .with_greedy_memory(true),
            SimTime::ZERO,
        );
        n.admit(PodId(1), tf, SimTime::ZERO, SimDuration::ZERO);
        let mut now = SimTime::ZERO;
        tick(&mut n, &mut now, 10);
        // The pod needs 500 MB but holds ~99% of the device.
        let used = n.last_sample().mem_used_mb;
        assert!(used > 16_000.0, "greedy earmark should hog the device, used {used}");
    }

    #[test]
    fn greedy_pod_with_allow_growth_behaves() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        let tf = Pod::new(
            PodSpec::batch("tf", ResourceProfile::constant(0.3, 500.0, 5.0))
                .with_greedy_memory(true)
                .with_allow_growth(true),
            SimTime::ZERO,
        );
        n.admit(PodId(1), tf, SimTime::ZERO, SimDuration::ZERO);
        let mut now = SimTime::ZERO;
        tick(&mut n, &mut now, 10);
        assert!((n.last_sample().mem_used_mb - 500.0).abs() < 1.0);
    }

    #[test]
    fn greedy_pod_crashes_when_demand_outgrows_earmark() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        // Fill the node so the greedy pod can only earmark ~2 GB, then let
        // its profile demand 4 GB in a later phase.
        n.admit(PodId(1), batch_pod(0.1, 14_000.0, 60.0), SimTime::ZERO, SimDuration::ZERO);
        let mut now = SimTime::ZERO;
        tick(&mut n, &mut now, 10); // establish measured usage
        let grower =
            ProfileBuilder::new().compute(0.05, 0.2, 1_000.0).compute(1.0, 0.2, 4_000.0).build();
        let tf = Pod::new(PodSpec::batch("tf", grower).with_greedy_memory(true), SimTime::ZERO);
        n.admit(PodId(2), tf, now, SimDuration::ZERO);
        let mut crashed = vec![];
        for _ in 0..30 {
            crashed.extend(tick(&mut n, &mut now, 10).crashed);
        }
        assert!(crashed.iter().any(|(id, _, _)| *id == PodId(2)), "greedy pod should OOM");
    }

    #[test]
    fn cold_start_delays_execution() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        let pull = SimDuration::from_secs(2);
        let cold = n.admit(PodId(1), batch_pod(0.5, 100.0, 5.0), SimTime::ZERO, pull);
        assert!(cold);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            tick(&mut n, &mut now, 100);
        }
        // After 1 s, still pulling: no progress.
        assert_eq!(n.resident(PodId(1)).unwrap().progress(), 0.0);
        for _ in 0..15 {
            tick(&mut n, &mut now, 100);
        }
        assert!(n.resident(PodId(1)).unwrap().progress() > 0.0);
        // A second pod with the same image sees a warm cache.
        let warm = n.admit(PodId(2), batch_pod(0.1, 100.0, 0.5), now, pull);
        assert!(!warm);
    }

    #[test]
    fn sleeping_node_draws_sleep_power_and_runs_nothing() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        n.set_pstate(PState::DeepSleep);
        assert!(!n.is_available());
        let mut now = SimTime::ZERO;
        tick(&mut n, &mut now, 1000);
        assert!((n.last_sample().power_watts - 9.0).abs() < 1e-9);
        assert!((n.energy().joules() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn provision_accounting() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        n.admit(
            PodId(1),
            Pod::new(
                PodSpec::batch("a", ResourceProfile::constant(0.1, 100.0, 5.0))
                    .with_request_mb(4_096.0),
                SimTime::ZERO,
            ),
            SimTime::ZERO,
            SimDuration::ZERO,
        );
        assert_eq!(n.provisioned_mb(), 4_096.0);
        assert_eq!(n.free_provision_mb(), 16_384.0 - 4_096.0);
        // Measured free differs from provisioned free.
        let mut now = SimTime::ZERO;
        tick(&mut n, &mut now, 10);
        assert!(n.free_measured_mb() > n.free_provision_mb());
    }

    #[test]
    fn faster_devices_finish_sooner() {
        // The same 1 s-of-work pod on a V100 (1.45x) vs a K80 (0.35x).
        let run = |model: GpuModel| {
            let mut n = Node::new(NodeId(0), model);
            n.admit(PodId(1), batch_pod(0.5, 500.0, 1.0), SimTime::ZERO, SimDuration::ZERO);
            let mut now = SimTime::ZERO;
            let mut ticks = 0u64;
            while n.resident_count() > 0 {
                tick(&mut n, &mut now, 10);
                ticks += 1;
                assert!(ticks < 100_000, "runaway");
            }
            ticks
        };
        let v100 = run(GpuModel::V100);
        let p100 = run(GpuModel::P100);
        let k80 = run(GpuModel::K80);
        assert!(v100 < p100 && p100 < k80, "v100 {v100} p100 {p100} k80 {k80}");
        // Ratios match the compute scales within tick quantization.
        assert!((k80 as f64 / p100 as f64 - 1.0 / 0.35).abs() < 0.2);
    }

    #[test]
    fn failed_node_runs_nothing_and_reports_nothing() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        n.admit(PodId(1), batch_pod(0.5, 100.0, 5.0), SimTime::ZERO, SimDuration::ZERO);
        let victims = n.fail();
        assert_eq!(victims.len(), 1);
        assert!(n.is_failed());
        assert!(!n.is_available());
        assert!(!n.has_image(victims[0].1.spec().image), "image cache lost on failure");
        let mut now = SimTime::ZERO;
        tick(&mut n, &mut now, 1000);
        assert_eq!(n.last_sample().power_watts, 0.0);
        assert_eq!(n.energy().joules(), 0.0);
        n.recover(now);
        assert!(n.is_available());
        assert_eq!(n.resident_count(), 0);
    }

    #[test]
    fn degraded_capacity_triggers_violation_earlier() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        // 10 GB of usage fits a healthy 16 GB device...
        n.admit(PodId(1), batch_pod(0.2, 10_000.0, 5.0), SimTime::ZERO, SimDuration::ZERO);
        let mut now = SimTime::ZERO;
        assert!(tick(&mut n, &mut now, 10).crashed.is_empty());
        // ... but not one that lost half its memory.
        n.set_degraded_frac(0.5);
        let out = tick(&mut n, &mut now, 10);
        assert_eq!(out.crashed.len(), 1);
        assert!(n.free_measured_mb() <= 16_384.0 * 0.5);
    }

    #[test]
    fn eviction_returns_pod() {
        let mut n = Node::new(NodeId(0), GpuModel::P100);
        n.admit(PodId(1), batch_pod(0.5, 100.0, 5.0), SimTime::ZERO, SimDuration::ZERO);
        let p = n.evict(PodId(1));
        assert!(p.is_some());
        assert_eq!(n.resident_count(), 0);
        assert!(n.evict(PodId(1)).is_none());
    }
}
