//! Fault plans: what goes wrong, where, and when.

use knots_sim::ids::NodeId;
use knots_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How a corrupted probe reading mangles the sample it reports.
///
/// The first two model outright sensor failure (pyNVML returning garbage);
/// the TSDB rejects such samples at the door and the series goes stale. The
/// spike is nastier: a finite, plausible-looking wrong value that *is*
/// stored — downstream consumers can only survive it statistically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CorruptionMode {
    /// SM utilization reads as NaN.
    Nan,
    /// Memory usage reads as +Inf.
    Inf,
    /// Every utilization reading is multiplied by `factor`.
    Spike { factor: f64 },
}

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The whole node dies: resident pods crash, telemetry stops, placement
    /// is refused. With `recover_after` set the node rejoins that much
    /// later, empty and cold; `None` means it never comes back.
    NodeFail { node: NodeId, recover_after: Option<SimDuration> },
    /// The node's GPU loses `frac` of its memory capacity (ECC retirement,
    /// thermal throttling of the memory controller). `duration: None` makes
    /// the degradation permanent.
    GpuDegrade { node: NodeId, frac: f64, duration: Option<SimDuration> },
    /// The node's telemetry probe reports nothing for `duration`: its series
    /// in the TSDB simply stops advancing.
    ProbeDropout { node: NodeId, duration: SimDuration },
    /// The node's probe reports *wrong* values for `duration`.
    SampleCorruption { node: NodeId, duration: SimDuration, mode: CorruptionMode },
    /// The head-node aggregator's next heartbeat slips by `delay` — the
    /// scheduler keeps deciding on an aging snapshot in the meantime.
    HeartbeatDelay { delay: SimDuration },
}

/// A fault scheduled at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete scripted fault schedule for one run.
///
/// Construction sorts events by time (stably, so same-instant events keep
/// their authored order); the engine replays them in that order regardless
/// of the simulation tick size.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, ordered by [`FaultEvent::at`].
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The no-fault plan. Running with it is bit-identical to not running
    /// chaos at all — the pinned self-check digests depend on this.
    pub fn empty() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Build a plan from events in any order; they are sorted by time.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_events_sorts_stably() {
        let e1 = FaultEvent {
            at: SimTime::from_secs(5),
            kind: FaultKind::NodeFail { node: NodeId(1), recover_after: None },
        };
        let e2 = FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::HeartbeatDelay { delay: SimDuration::from_millis(100) },
        };
        let e3 = FaultEvent {
            at: SimTime::from_secs(5),
            kind: FaultKind::ProbeDropout { node: NodeId(0), duration: SimDuration::from_secs(2) },
        };
        let plan = FaultPlan::from_events(vec![e1, e2, e3]);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.events[0], e2);
        // Same-instant events keep their authored order.
        assert_eq!(plan.events[1], e1);
        assert_eq!(plan.events[2], e3);
        assert!(FaultPlan::empty().is_empty());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                at: SimTime::from_secs(10),
                kind: FaultKind::NodeFail {
                    node: NodeId(3),
                    recover_after: Some(SimDuration::from_secs(30)),
                },
            },
            FaultEvent {
                at: SimTime::from_secs(12),
                kind: FaultKind::GpuDegrade { node: NodeId(1), frac: 0.25, duration: None },
            },
            FaultEvent {
                at: SimTime::from_secs(20),
                kind: FaultKind::SampleCorruption {
                    node: NodeId(0),
                    duration: SimDuration::from_secs(5),
                    mode: CorruptionMode::Spike { factor: 4.0 },
                },
            },
            FaultEvent {
                at: SimTime::from_secs(21),
                kind: FaultKind::SampleCorruption {
                    node: NodeId(2),
                    duration: SimDuration::from_secs(1),
                    mode: CorruptionMode::Nan,
                },
            },
            FaultEvent {
                at: SimTime::from_secs(30),
                kind: FaultKind::HeartbeatDelay { delay: SimDuration::from_millis(250) },
            },
        ]);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
