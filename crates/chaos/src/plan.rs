//! Fault plans: what goes wrong, where, and when.

use knots_sim::ids::NodeId;
use knots_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a corrupted probe reading mangles the sample it reports.
///
/// The first two model outright sensor failure (pyNVML returning garbage);
/// the TSDB rejects such samples at the door and the series goes stale. The
/// spike is nastier: a finite, plausible-looking wrong value that *is*
/// stored — downstream consumers can only survive it statistically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CorruptionMode {
    /// SM utilization reads as NaN.
    Nan,
    /// Memory usage reads as +Inf.
    Inf,
    /// Every utilization reading is multiplied by `factor`.
    Spike { factor: f64 },
}

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The whole node dies: resident pods crash, telemetry stops, placement
    /// is refused. With `recover_after` set the node rejoins that much
    /// later, empty and cold; `None` means it never comes back.
    NodeFail { node: NodeId, recover_after: Option<SimDuration> },
    /// The node's GPU loses `frac` of its memory capacity (ECC retirement,
    /// thermal throttling of the memory controller). `duration: None` makes
    /// the degradation permanent.
    GpuDegrade { node: NodeId, frac: f64, duration: Option<SimDuration> },
    /// The node's telemetry probe reports nothing for `duration`: its series
    /// in the TSDB simply stops advancing.
    ProbeDropout { node: NodeId, duration: SimDuration },
    /// The node's probe reports *wrong* values for `duration`.
    SampleCorruption { node: NodeId, duration: SimDuration, mode: CorruptionMode },
    /// The head-node aggregator's next heartbeat slips by `delay` — the
    /// scheduler keeps deciding on an aging snapshot in the meantime.
    HeartbeatDelay { delay: SimDuration },
    /// The controller process itself dies at this instant. The engine only
    /// counts it — the kill and the restart-from-checkpoint are performed
    /// by the recovery harness (crates/recovery), outside the simulation,
    /// so a crash-and-resume run stays bit-identical to an uninterrupted
    /// one.
    ControllerCrash,
}

/// A fault scheduled at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete scripted fault schedule for one run.
///
/// Construction sorts events by time (stably, so same-instant events keep
/// their authored order); the engine replays them in that order regardless
/// of the simulation tick size.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, ordered by [`FaultEvent::at`].
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The no-fault plan. Running with it is bit-identical to not running
    /// chaos at all — the pinned self-check digests depend on this.
    pub fn empty() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Build a plan from events in any order; they are sorted by time.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The scheduled [`FaultKind::ControllerCrash`] instants, in time order.
    /// The recovery harness drives kill/restart from this list.
    pub fn controller_crashes(&self) -> Vec<SimTime> {
        let mut v: Vec<SimTime> = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::ControllerCrash))
            .map(|e| e.at)
            .collect();
        v.sort();
        v
    }

    /// Check the plan for malformed events before a run instead of letting
    /// them silently generate garbage mid-experiment.
    ///
    /// Rejects non-finite or negative numeric parameters, events scheduled
    /// past `horizon` (faults the run can never reach are almost always a
    /// unit mix-up), and node-failure windows that overlap on the same node
    /// (the second `FailNode` would hit an already-failed node and its
    /// recovery schedule would be ambiguous).
    pub fn validate(&self, horizon: SimDuration) -> Result<(), PlanError> {
        // Last failure window per node: (start, end; None = never recovers).
        let mut windows: BTreeMap<NodeId, (SimTime, Option<SimTime>)> = BTreeMap::new();
        let mut events: Vec<&FaultEvent> = self.events.iter().collect();
        events.sort_by_key(|e| e.at);
        for (index, ev) in events.into_iter().enumerate() {
            if ev.at.as_micros() > horizon.as_micros() {
                return Err(PlanError::OutOfRange {
                    index,
                    what: "event time past run horizon",
                    value: ev.at.as_micros() as f64 / 1e6,
                });
            }
            match ev.kind {
                FaultKind::NodeFail { node, recover_after } => {
                    let end = recover_after.map(|d| ev.at + d);
                    if let Some(&(start, prev_end)) = windows.get(&node) {
                        if prev_end.is_none_or(|e| ev.at < e) {
                            return Err(PlanError::OverlappingNodeFailure {
                                node,
                                first: start,
                                second: ev.at,
                            });
                        }
                    }
                    windows.insert(node, (ev.at, end));
                }
                FaultKind::GpuDegrade { frac, .. } => {
                    if !frac.is_finite() {
                        return Err(PlanError::NonFinite { index, what: "GpuDegrade frac" });
                    }
                    if !(0.0..=1.0).contains(&frac) {
                        return Err(PlanError::OutOfRange {
                            index,
                            what: "GpuDegrade frac outside [0, 1]",
                            value: frac,
                        });
                    }
                }
                FaultKind::SampleCorruption {
                    mode: CorruptionMode::Spike { factor }, ..
                } => {
                    if !factor.is_finite() {
                        return Err(PlanError::NonFinite { index, what: "Spike factor" });
                    }
                    if factor < 0.0 {
                        return Err(PlanError::OutOfRange {
                            index,
                            what: "Spike factor negative",
                            value: factor,
                        });
                    }
                }
                FaultKind::ProbeDropout { .. }
                | FaultKind::SampleCorruption { .. }
                | FaultKind::HeartbeatDelay { .. }
                | FaultKind::ControllerCrash => {}
            }
        }
        Ok(())
    }
}

/// Why a [`FaultPlan`] was rejected by [`FaultPlan::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanError {
    /// A numeric parameter is NaN or infinite.
    NonFinite {
        /// Index of the offending event in time order.
        index: usize,
        /// Which parameter.
        what: &'static str,
    },
    /// A parameter is outside its meaningful range (negative rate, time
    /// past the run horizon, ...).
    OutOfRange {
        /// Index of the offending event in time order.
        index: usize,
        /// Which parameter and why.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Two `NodeFail` windows overlap on the same node.
    OverlappingNodeFailure {
        /// The doubly-failed node.
        node: NodeId,
        /// Start of the earlier failure window.
        first: SimTime,
        /// Start of the later, overlapping failure.
        second: SimTime,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NonFinite { index, what } => {
                write!(f, "fault plan event #{index}: {what} is not finite")
            }
            PlanError::OutOfRange { index, what, value } => {
                write!(f, "fault plan event #{index}: {what} ({value})")
            }
            PlanError::OverlappingNodeFailure { node, first, second } => write!(
                f,
                "fault plan: node {} failure at {:?} overlaps the window opened at {:?}",
                node.0, second, first
            ),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_events_sorts_stably() {
        let e1 = FaultEvent {
            at: SimTime::from_secs(5),
            kind: FaultKind::NodeFail { node: NodeId(1), recover_after: None },
        };
        let e2 = FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::HeartbeatDelay { delay: SimDuration::from_millis(100) },
        };
        let e3 = FaultEvent {
            at: SimTime::from_secs(5),
            kind: FaultKind::ProbeDropout { node: NodeId(0), duration: SimDuration::from_secs(2) },
        };
        let plan = FaultPlan::from_events(vec![e1, e2, e3]);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.events[0], e2);
        // Same-instant events keep their authored order.
        assert_eq!(plan.events[1], e1);
        assert_eq!(plan.events[2], e3);
        assert!(FaultPlan::empty().is_empty());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                at: SimTime::from_secs(10),
                kind: FaultKind::NodeFail {
                    node: NodeId(3),
                    recover_after: Some(SimDuration::from_secs(30)),
                },
            },
            FaultEvent {
                at: SimTime::from_secs(12),
                kind: FaultKind::GpuDegrade { node: NodeId(1), frac: 0.25, duration: None },
            },
            FaultEvent {
                at: SimTime::from_secs(20),
                kind: FaultKind::SampleCorruption {
                    node: NodeId(0),
                    duration: SimDuration::from_secs(5),
                    mode: CorruptionMode::Spike { factor: 4.0 },
                },
            },
            FaultEvent {
                at: SimTime::from_secs(21),
                kind: FaultKind::SampleCorruption {
                    node: NodeId(2),
                    duration: SimDuration::from_secs(1),
                    mode: CorruptionMode::Nan,
                },
            },
            FaultEvent {
                at: SimTime::from_secs(30),
                kind: FaultKind::HeartbeatDelay { delay: SimDuration::from_millis(250) },
            },
        ]);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    fn horizon() -> SimDuration {
        SimDuration::from_secs(120)
    }

    fn fail(at_secs: u64, node: usize, recover_secs: Option<u64>) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_secs(at_secs),
            kind: FaultKind::NodeFail {
                node: NodeId(node),
                recover_after: recover_secs.map(SimDuration::from_secs),
            },
        }
    }

    #[test]
    fn validate_accepts_well_formed_plans() {
        let plan = FaultPlan::from_events(vec![
            fail(10, 0, Some(5)),
            fail(20, 0, Some(5)), // previous window closed at 15 s
            fail(21, 1, None),
            FaultEvent {
                at: SimTime::from_secs(30),
                kind: FaultKind::GpuDegrade { node: NodeId(2), frac: 0.5, duration: None },
            },
            FaultEvent { at: SimTime::from_secs(40), kind: FaultKind::ControllerCrash },
        ]);
        assert_eq!(plan.validate(horizon()), Ok(()));
        assert_eq!(FaultPlan::empty().validate(horizon()), Ok(()));
        assert_eq!(plan.controller_crashes(), vec![SimTime::from_secs(40)]);
    }

    #[test]
    fn validate_rejects_non_finite_and_negative_rates() {
        let nan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::GpuDegrade { node: NodeId(0), frac: f64::NAN, duration: None },
        }]);
        assert!(matches!(nan.validate(horizon()), Err(PlanError::NonFinite { .. })));

        let neg = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::GpuDegrade { node: NodeId(0), frac: -0.25, duration: None },
        }]);
        assert!(matches!(neg.validate(horizon()), Err(PlanError::OutOfRange { .. })));

        let spike = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::SampleCorruption {
                node: NodeId(0),
                duration: SimDuration::from_secs(1),
                mode: CorruptionMode::Spike { factor: f64::INFINITY },
            },
        }]);
        assert!(matches!(spike.validate(horizon()), Err(PlanError::NonFinite { .. })));
    }

    #[test]
    fn validate_rejects_out_of_range_times() {
        let plan = FaultPlan::from_events(vec![fail(500, 0, None)]);
        let err = plan.validate(horizon()).unwrap_err();
        assert!(matches!(err, PlanError::OutOfRange { value, .. } if value == 500.0));
        assert!(err.to_string().contains("horizon"), "{err}");
    }

    #[test]
    fn validate_rejects_overlapping_node_failures() {
        // Window [10, 40) on node 3; second failure at 20 lands inside it.
        let plan = FaultPlan::from_events(vec![fail(10, 3, Some(30)), fail(20, 3, None)]);
        assert_eq!(
            plan.validate(horizon()),
            Err(PlanError::OverlappingNodeFailure {
                node: NodeId(3),
                first: SimTime::from_secs(10),
                second: SimTime::from_secs(20),
            })
        );
        // A never-recovering failure blocks all later failures on the node.
        let plan = FaultPlan::from_events(vec![fail(10, 3, None), fail(100, 3, Some(1))]);
        assert!(matches!(
            plan.validate(horizon()),
            Err(PlanError::OverlappingNodeFailure { .. })
        ));
        // Distinct nodes never conflict.
        let plan = FaultPlan::from_events(vec![fail(10, 3, None), fail(20, 4, None)]);
        assert_eq!(plan.validate(horizon()), Ok(()));
    }
}
