//! Seeded fault-plan generation.
//!
//! A plain LCG (same multiplier/increment family the rest of the workspace
//! uses for deterministic fuzz) drives every choice, so a `(seed, nodes,
//! duration, intensity)` tuple maps to exactly one plan on every platform
//! and thread count. Intensity is expressed as faults per simulated minute,
//! which is what the chaos sweep in `knots-bench` scales.

use crate::plan::{CorruptionMode, FaultEvent, FaultKind, FaultPlan};
use knots_sim::ids::NodeId;
use knots_sim::time::{SimDuration, SimTime};

/// Parameters of a generated plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Seed for the generator; the plan is a pure function of this config.
    pub seed: u64,
    /// Number of nodes faults may target.
    pub nodes: usize,
    /// Length of the run the plan covers.
    pub duration: SimDuration,
    /// Average injected faults per simulated minute (`0.0` yields the empty
    /// plan).
    pub faults_per_minute: f64,
}

struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        // One scramble step so seed 0 does not start the stream at 0.
        let mut l = Lcg(seed ^ 0x9e37_79b9_7f4a_7c15);
        l.next();
        l
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in `[0, 1)`, 53 bits of precision.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; `n == 0` yields 0.
    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            ((self.next() >> 33) as usize) % n
        }
    }

    /// Uniform duration in `[lo, hi)` seconds.
    fn secs_between(&mut self, lo: f64, hi: f64) -> SimDuration {
        SimDuration::from_secs_f64(lo + (hi - lo) * self.f64())
    }
}

/// Generate a fault plan. The kind mix is fixed: 30% node failures (mostly
/// recovering), 20% GPU degradations, 20% probe dropouts, 20% sample
/// corruptions, 10% heartbeat delays.
pub fn generate(cfg: &GenConfig) -> FaultPlan {
    if cfg.nodes == 0 || cfg.faults_per_minute <= 0.0 || cfg.duration.is_zero() {
        return FaultPlan::empty();
    }
    let minutes = cfg.duration.as_secs_f64() / 60.0;
    let count = (cfg.faults_per_minute * minutes).round() as usize;
    let mut rng = Lcg::new(cfg.seed);
    let dur_us = cfg.duration.as_micros();
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        let at = SimTime::from_micros((dur_us as f64 * rng.f64()) as u64);
        let node = NodeId(rng.below(cfg.nodes));
        let roll = rng.f64();
        let kind = if roll < 0.30 {
            let recover_after =
                if rng.f64() < 0.8 { Some(rng.secs_between(5.0, 30.0)) } else { None };
            FaultKind::NodeFail { node, recover_after }
        } else if roll < 0.50 {
            let frac = 0.1 + 0.6 * rng.f64();
            let duration = if rng.f64() < 0.8 { Some(rng.secs_between(10.0, 60.0)) } else { None };
            FaultKind::GpuDegrade { node, frac, duration }
        } else if roll < 0.70 {
            FaultKind::ProbeDropout { node, duration: rng.secs_between(1.0, 10.0) }
        } else if roll < 0.90 {
            let mode = match rng.below(3) {
                0 => CorruptionMode::Nan,
                1 => CorruptionMode::Inf,
                _ => CorruptionMode::Spike { factor: 2.0 + 6.0 * rng.f64() },
            };
            FaultKind::SampleCorruption { node, duration: rng.secs_between(1.0, 10.0), mode }
        } else {
            FaultKind::HeartbeatDelay { delay: rng.secs_between(0.05, 0.5) }
        };
        events.push(FaultEvent { at, kind });
    }
    FaultPlan::from_events(events)
}

/// Generate a schedule of [`FaultKind::ControllerCrash`] events only.
///
/// Kept separate from [`generate`] on purpose: the cluster-fault kind mix
/// is pinned by downstream digests, so controller crashes are drawn from
/// their own seeded stream and merged into a plan by the caller
/// (`FaultPlan::from_events` of the concatenation). Crashes land strictly
/// inside `(0, duration)` — a crash at t=0 would checkpoint nothing and one
/// at the horizon would never fire.
pub fn generate_controller_crashes(
    seed: u64,
    duration: SimDuration,
    crashes_per_minute: f64,
) -> Vec<FaultEvent> {
    if crashes_per_minute <= 0.0 || duration.is_zero() {
        return Vec::new();
    }
    let minutes = duration.as_secs_f64() / 60.0;
    let count = (crashes_per_minute * minutes).round() as usize;
    let mut rng = Lcg::new(seed ^ 0xc4a5_4dd1_0b7a_93e7);
    let dur_us = duration.as_micros();
    let mut events: Vec<FaultEvent> = (0..count)
        .map(|_| {
            let frac = 0.05 + 0.9 * rng.f64();
            FaultEvent {
                at: SimTime::from_micros(((dur_us as f64) * frac) as u64),
                kind: FaultKind::ControllerCrash,
            }
        })
        .collect();
    events.sort_by_key(|e| e.at);
    events.dedup_by_key(|e| e.at);
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64, fpm: f64) -> GenConfig {
        GenConfig { seed, nodes: 10, duration: SimDuration::from_secs(120), faults_per_minute: fpm }
    }

    #[test]
    fn same_seed_same_plan() {
        let a = generate(&cfg(42, 5.0));
        let b = generate(&cfg(42, 5.0));
        assert_eq!(a, b);
        assert_eq!(a.len(), 10); // 5 per minute × 2 minutes
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&cfg(1, 5.0));
        let b = generate(&cfg(2, 5.0));
        assert_ne!(a, b);
    }

    #[test]
    fn zero_intensity_is_the_empty_plan() {
        assert!(generate(&cfg(42, 0.0)).is_empty());
        assert!(generate(&GenConfig { nodes: 0, ..cfg(42, 5.0) }).is_empty());
    }

    #[test]
    fn events_are_in_bounds_and_sorted() {
        let plan = generate(&cfg(7, 30.0));
        assert_eq!(plan.len(), 60);
        let mut last = SimTime::ZERO;
        for e in &plan.events {
            assert!(e.at >= last, "events must be time-sorted");
            assert!(e.at <= SimTime::from_secs(120));
            last = e.at;
            match e.kind {
                FaultKind::NodeFail { node, .. }
                | FaultKind::GpuDegrade { node, .. }
                | FaultKind::ProbeDropout { node, .. }
                | FaultKind::SampleCorruption { node, .. } => assert!(node.0 < 10),
                FaultKind::HeartbeatDelay { .. } | FaultKind::ControllerCrash => {}
            }
            if let FaultKind::GpuDegrade { frac, .. } = e.kind {
                assert!((0.1..=0.7).contains(&frac));
            }
        }
        // The mix includes more than one fault kind at this sample size.
        let fails =
            plan.events.iter().filter(|e| matches!(e.kind, FaultKind::NodeFail { .. })).count();
        assert!(fails > 0 && fails < plan.len());
    }

    #[test]
    fn controller_crashes_are_separate_and_deterministic() {
        let dur = SimDuration::from_secs(120);
        let a = generate_controller_crashes(42, dur, 3.0);
        let b = generate_controller_crashes(42, dur, 3.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        for w in a.windows(2) {
            assert!(w[0].at < w[1].at, "crash times strictly increase");
        }
        for e in &a {
            assert!(matches!(e.kind, FaultKind::ControllerCrash));
            assert!(e.at > SimTime::ZERO && e.at < SimTime::from_secs(120));
        }
        // The cluster-fault stream is untouched by the crash stream: the
        // pinned 20-event generated plan must not change.
        assert!(generate_controller_crashes(42, dur, 0.0).is_empty());
        assert_ne!(generate_controller_crashes(7, dur, 3.0), a);
    }
}
