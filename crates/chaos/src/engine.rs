//! The plan replayer: turns a [`FaultPlan`] into tick-by-tick effects.

use crate::plan::{CorruptionMode, FaultEvent, FaultKind, FaultPlan};
use knots_sim::ids::NodeId;
use knots_sim::metrics::GpuSample;
use knots_sim::time::SimTime;
use std::collections::BTreeMap;

/// A cluster-level action the orchestrator must perform now.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ChaosAction {
    /// Kill the node (resident pods crash with `CrashReason::NodeFailure`).
    FailNode(NodeId),
    /// Bring a previously failed node back.
    RecoverNode(NodeId),
    /// Reduce the node's GPU capacity by `frac`.
    DegradeNode {
        /// Target node.
        node: NodeId,
        /// Fraction of memory capacity lost.
        frac: f64,
    },
    /// Restore the node's GPU to full capacity.
    RestoreNode(NodeId),
    /// Postpone the aggregator's next heartbeat.
    DelayHeartbeat(knots_sim::time::SimDuration),
}

/// Running totals of injected faults, by kind. `corrupted_samples` counts
/// individual mangled probe readings (many per `SampleCorruption` window).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultCounts {
    /// `NodeFail` events fired.
    pub node_failures: u64,
    /// `GpuDegrade` events fired.
    pub degradations: u64,
    /// `ProbeDropout` events fired.
    pub probe_dropouts: u64,
    /// `SampleCorruption` events fired.
    pub corruption_windows: u64,
    /// Individual samples mangled inside those windows.
    pub corrupted_samples: u64,
    /// `HeartbeatDelay` events fired.
    pub heartbeat_delays: u64,
    /// `ControllerCrash` events reached (counted only; the kill itself is
    /// performed by the recovery harness).
    pub controller_crashes: u64,
}

impl FaultCounts {
    /// Total *events* fired (not counting per-sample corruption).
    pub fn total_events(&self) -> u64 {
        self.node_failures
            + self.degradations
            + self.probe_dropouts
            + self.corruption_windows
            + self.heartbeat_delays
            + self.controller_crashes
    }
}

/// Replays a [`FaultPlan`] against simulation time.
///
/// Drive it with [`ChaosEngine::actions_due`] once per tick *before*
/// stepping the cluster, and interpose [`ChaosEngine::probe_dropped`] /
/// [`ChaosEngine::corrupt_sample`] on the telemetry probe. All state lives
/// in sorted structures and every decision is a pure function of the plan
/// and `now`, so replays are bit-identical across runs and thread counts.
#[derive(Debug)]
pub struct ChaosEngine {
    events: Vec<FaultEvent>,
    cursor: usize,
    /// Scheduled follow-ups (recoveries/restorations), in schedule order.
    deferred: Vec<(SimTime, ChaosAction)>,
    /// Active probe-dropout windows: node → end of window (exclusive).
    dropouts: BTreeMap<NodeId, SimTime>,
    /// Active corruption windows: node → (end, mode). A later window on the
    /// same node replaces the earlier one.
    corruptions: BTreeMap<NodeId, (SimTime, CorruptionMode)>,
    counts: FaultCounts,
}

impl ChaosEngine {
    /// Build an engine for one run of the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        // `FaultPlan::from_events` sorts on construction, but a manually
        // assembled or deserialized plan may not be ordered — re-sorting an
        // already-sorted Vec is cheap and makes the invariant local.
        let plan = FaultPlan::from_events(plan.events);
        ChaosEngine {
            events: plan.events,
            cursor: 0,
            deferred: Vec::new(),
            dropouts: BTreeMap::new(),
            corruptions: BTreeMap::new(),
            counts: FaultCounts::default(),
        }
    }

    /// True when the plan schedules nothing at all. The orchestrator uses
    /// this to skip every chaos code path, keeping no-fault runs
    /// bit-identical to runs without a chaos engine.
    pub fn is_inert(&self) -> bool {
        self.events.is_empty()
    }

    /// Totals so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Collect every action due at or before `now`, in deterministic order:
    /// scheduled follow-ups first (they were caused by strictly earlier
    /// events), then newly due plan events in plan order. Also retires
    /// expired dropout/corruption windows.
    pub fn actions_due(&mut self, now: SimTime, out: &mut Vec<ChaosAction>) {
        out.clear();
        let mut i = 0;
        while i < self.deferred.len() {
            if self.deferred[i].0 <= now {
                out.push(self.deferred.remove(i).1);
            } else {
                i += 1;
            }
        }
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            let ev = self.events[self.cursor];
            self.cursor += 1;
            match ev.kind {
                FaultKind::NodeFail { node, recover_after } => {
                    self.counts.node_failures += 1;
                    out.push(ChaosAction::FailNode(node));
                    if let Some(d) = recover_after {
                        // Anchor on the scheduled time, not the (tick-late)
                        // processing time, so outage length is independent
                        // of the simulation tick.
                        self.deferred.push((ev.at + d, ChaosAction::RecoverNode(node)));
                    }
                }
                FaultKind::GpuDegrade { node, frac, duration } => {
                    self.counts.degradations += 1;
                    out.push(ChaosAction::DegradeNode { node, frac });
                    if let Some(d) = duration {
                        self.deferred.push((ev.at + d, ChaosAction::RestoreNode(node)));
                    }
                }
                FaultKind::ProbeDropout { node, duration } => {
                    self.counts.probe_dropouts += 1;
                    let until = ev.at + duration;
                    let e = self.dropouts.entry(node).or_insert(until);
                    if *e < until {
                        *e = until;
                    }
                }
                FaultKind::SampleCorruption { node, duration, mode } => {
                    self.counts.corruption_windows += 1;
                    self.corruptions.insert(node, (ev.at + duration, mode));
                }
                FaultKind::HeartbeatDelay { delay } => {
                    self.counts.heartbeat_delays += 1;
                    out.push(ChaosAction::DelayHeartbeat(delay));
                }
                FaultKind::ControllerCrash => {
                    // Counted, but no cluster action: the crash targets the
                    // controller process, not the cluster. The recovery
                    // harness reads the instants from the plan and performs
                    // kill/restore outside the simulation, so both the
                    // interrupted and the uninterrupted leg consume this
                    // event identically.
                    self.counts.controller_crashes += 1;
                }
            }
        }
        self.dropouts.retain(|_, until| *until > now);
        self.corruptions.retain(|_, (until, _)| *until > now);
    }

    /// Earliest future instant at which a new action can fire: the next
    /// unconsumed plan event (the list is sorted) or the nearest scheduled
    /// follow-up, whichever comes first. Active dropout/corruption windows
    /// don't appear here — probe interposition is a pure function of `now`
    /// and is evaluated on every tick regardless of how the orchestrator
    /// batches them. Feeds the orchestrator's event calendar; `None` means
    /// the plan is exhausted and chaos can never act again.
    pub fn next_due(&self) -> Option<SimTime> {
        let next_event = self.events.get(self.cursor).map(|e| e.at);
        let next_deferred = self.deferred.iter().map(|(t, _)| *t).min();
        match (next_event, next_deferred) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Whether the node's probe is inside a dropout window at `now`.
    pub fn probe_dropped(&self, node: NodeId, now: SimTime) -> bool {
        self.dropouts.get(&node).is_some_and(|until| now < *until)
    }

    /// Export the replay position for a control-plane snapshot (see
    /// crates/recovery). The plan itself is configuration and is re-supplied
    /// to [`ChaosEngine::from_state`] at restore.
    pub fn snapshot_state(&self) -> ChaosEngineState {
        ChaosEngineState {
            cursor: self.cursor as u64,
            deferred: self.deferred.clone(),
            dropouts: self.dropouts.iter().map(|(&n, &t)| (n, t)).collect(),
            corruptions: self.corruptions.iter().map(|(&n, &(t, m))| (n, t, m)).collect(),
            counts: self.counts,
        }
    }

    /// Rebuild an engine mid-replay from the plan plus an exported state.
    pub fn from_state(plan: FaultPlan, state: ChaosEngineState) -> Self {
        let plan = FaultPlan::from_events(plan.events);
        ChaosEngine {
            events: plan.events,
            cursor: state.cursor as usize,
            deferred: state.deferred,
            dropouts: state.dropouts.into_iter().collect(),
            corruptions: state.corruptions.into_iter().map(|(n, t, m)| (n, (t, m))).collect(),
            counts: state.counts,
        }
    }

    /// Apply any active corruption to a probe reading. Returns the sample to
    /// record; counts each mangled reading.
    pub fn corrupt_sample(&mut self, node: NodeId, now: SimTime, mut s: GpuSample) -> GpuSample {
        let Some((until, mode)) = self.corruptions.get(&node) else {
            return s;
        };
        if now >= *until {
            return s;
        }
        self.counts.corrupted_samples += 1;
        match *mode {
            CorruptionMode::Nan => s.sm_util = f64::NAN,
            CorruptionMode::Inf => s.mem_used_mb = f64::INFINITY,
            CorruptionMode::Spike { factor } => {
                s.sm_util *= factor;
                s.mem_used_mb *= factor;
                s.tx_mbps *= factor;
                s.rx_mbps *= factor;
            }
        }
        s
    }
}

/// Serializable replay position of a [`ChaosEngine`] (snapshot interchange;
/// see crates/recovery). Window maps are flattened to sorted vecs because
/// the serde shim deserializes sequences, not `BTreeMap`s.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ChaosEngineState {
    /// Index of the next unconsumed plan event.
    pub cursor: u64,
    /// Pending follow-up actions (recoveries/restorations), schedule order.
    pub deferred: Vec<(SimTime, ChaosAction)>,
    /// Active probe-dropout windows as `(node, end)`, sorted by node.
    pub dropouts: Vec<(NodeId, SimTime)>,
    /// Active corruption windows as `(node, end, mode)`, sorted by node.
    pub corruptions: Vec<(NodeId, SimTime, CorruptionMode)>,
    /// Totals so far.
    pub counts: FaultCounts,
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_sim::time::SimDuration;

    fn drain(engine: &mut ChaosEngine, now: SimTime) -> Vec<ChaosAction> {
        let mut out = Vec::new();
        engine.actions_due(now, &mut out);
        out
    }

    #[test]
    fn empty_plan_is_inert() {
        let mut e = ChaosEngine::new(FaultPlan::empty());
        assert!(e.is_inert());
        assert!(drain(&mut e, SimTime::from_secs(100)).is_empty());
        assert_eq!(e.counts(), FaultCounts::default());
    }

    #[test]
    fn fail_then_scheduled_recovery() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::NodeFail {
                node: NodeId(2),
                recover_after: Some(SimDuration::from_secs(3)),
            },
        }]);
        let mut e = ChaosEngine::new(plan);
        assert!(!e.is_inert());
        assert!(drain(&mut e, SimTime::from_millis(999)).is_empty());
        assert_eq!(drain(&mut e, SimTime::from_secs(1)), vec![ChaosAction::FailNode(NodeId(2))]);
        assert!(drain(&mut e, SimTime::from_secs(3)).is_empty());
        // Recovery anchors on the fault's scheduled time: 1 s + 3 s = 4 s.
        assert_eq!(drain(&mut e, SimTime::from_secs(4)), vec![ChaosAction::RecoverNode(NodeId(2))]);
        assert_eq!(e.counts().node_failures, 1);
    }

    #[test]
    fn degrade_restores_after_duration() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(2),
            kind: FaultKind::GpuDegrade {
                node: NodeId(0),
                frac: 0.5,
                duration: Some(SimDuration::from_secs(10)),
            },
        }]);
        let mut e = ChaosEngine::new(plan);
        assert_eq!(
            drain(&mut e, SimTime::from_secs(2)),
            vec![ChaosAction::DegradeNode { node: NodeId(0), frac: 0.5 }]
        );
        assert_eq!(
            drain(&mut e, SimTime::from_secs(12)),
            vec![ChaosAction::RestoreNode(NodeId(0))]
        );
    }

    #[test]
    fn dropout_window_opens_and_expires() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::ProbeDropout { node: NodeId(1), duration: SimDuration::from_secs(2) },
        }]);
        let mut e = ChaosEngine::new(plan);
        assert!(!e.probe_dropped(NodeId(1), SimTime::from_secs(1)));
        drain(&mut e, SimTime::from_secs(1));
        assert!(e.probe_dropped(NodeId(1), SimTime::from_secs(1)));
        assert!(e.probe_dropped(NodeId(1), SimTime::from_millis(2_999)));
        assert!(!e.probe_dropped(NodeId(1), SimTime::from_secs(3)), "window end is exclusive");
        assert!(!e.probe_dropped(NodeId(0), SimTime::from_secs(2)), "other nodes unaffected");
        // After the window the map entry is retired.
        drain(&mut e, SimTime::from_secs(5));
        assert!(!e.probe_dropped(NodeId(1), SimTime::from_secs(5)));
    }

    #[test]
    fn corruption_modes_mangle_samples() {
        let mk = |mode| {
            FaultPlan::from_events(vec![FaultEvent {
                at: SimTime::ZERO,
                kind: FaultKind::SampleCorruption {
                    node: NodeId(0),
                    duration: SimDuration::from_secs(1),
                    mode,
                },
            }])
        };
        let sample = GpuSample {
            at: SimTime::from_millis(500),
            sm_util: 0.5,
            mem_used_mb: 1000.0,
            power_watts: 100.0,
            tx_mbps: 10.0,
            rx_mbps: 20.0,
        };

        let mut e = ChaosEngine::new(mk(CorruptionMode::Nan));
        drain(&mut e, SimTime::ZERO);
        let s = e.corrupt_sample(NodeId(0), SimTime::from_millis(500), sample);
        assert!(s.sm_util.is_nan());

        let mut e = ChaosEngine::new(mk(CorruptionMode::Inf));
        drain(&mut e, SimTime::ZERO);
        let s = e.corrupt_sample(NodeId(0), SimTime::from_millis(500), sample);
        assert!(s.mem_used_mb.is_infinite());

        let mut e = ChaosEngine::new(mk(CorruptionMode::Spike { factor: 3.0 }));
        drain(&mut e, SimTime::ZERO);
        let s = e.corrupt_sample(NodeId(0), SimTime::from_millis(500), sample);
        assert!((s.mem_used_mb - 3000.0).abs() < 1e-9);
        assert!((s.sm_util - 1.5).abs() < 1e-12);
        // Outside the window and on other nodes the sample passes through.
        let s = e.corrupt_sample(NodeId(0), SimTime::from_secs(2), sample);
        assert_eq!(s, sample);
        let s = e.corrupt_sample(NodeId(1), SimTime::from_millis(500), sample);
        assert_eq!(s, sample);
        assert_eq!(e.counts().corrupted_samples, 1);
    }

    #[test]
    fn heartbeat_delay_is_surfaced_once() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::HeartbeatDelay { delay: SimDuration::from_millis(200) },
        }]);
        let mut e = ChaosEngine::new(plan);
        assert_eq!(
            drain(&mut e, SimTime::from_secs(1)),
            vec![ChaosAction::DelayHeartbeat(SimDuration::from_millis(200))]
        );
        assert!(drain(&mut e, SimTime::from_secs(2)).is_empty());
        assert_eq!(e.counts().heartbeat_delays, 1);
        assert_eq!(e.counts().total_events(), 1);
    }

    #[test]
    fn generated_plan_replays_identically() {
        let cfg = crate::gen::GenConfig {
            seed: 42,
            nodes: 10,
            duration: SimDuration::from_secs(120),
            faults_per_minute: 10.0,
        };
        let run = |cfg: &crate::gen::GenConfig| {
            let mut e = ChaosEngine::new(crate::gen::generate(cfg));
            let mut log = Vec::new();
            let mut out = Vec::new();
            let mut now = SimTime::ZERO;
            while now <= SimTime::from_secs(180) {
                e.actions_due(now, &mut out);
                log.extend(out.iter().copied().map(|a| (now, a)));
                now += SimDuration::from_millis(10);
            }
            (log, e.counts())
        };
        let (log_a, counts_a) = run(&cfg);
        let (log_b, counts_b) = run(&cfg);
        assert_eq!(log_a, log_b);
        assert_eq!(counts_a, counts_b);
        assert_eq!(counts_a.total_events(), 20);
    }
}
