//! Deterministic fault injection for the Kube-Knots control loop.
//!
//! The paper's pitch is harvesting *safely*: QoS survives aggressive
//! co-location because the control loop corrects its mistakes. That claim is
//! only credible if the loop also survives the datacenter's ordinary
//! ugliness — nodes dying, devices degrading, probes going quiet, samples
//! arriving as garbage, heartbeats stalling. This crate scripts exactly that
//! ugliness, reproducibly:
//!
//! * A [`FaultPlan`] is a list of timestamped [`FaultEvent`]s — hand-written,
//!   deserialized from JSON, or generated from a seed (see [`gen`]). The
//!   same seed always yields the same plan; the same plan always yields the
//!   same run.
//! * A [`ChaosEngine`] replays the plan against simulation time: it tells
//!   the orchestrator which cluster-level actions are due each tick
//!   ([`ChaosEngine::actions_due`]) and interposes on the telemetry probe
//!   ([`ChaosEngine::probe_dropped`], [`ChaosEngine::corrupt_sample`]).
//!
//! The crate deliberately knows nothing about schedulers or orchestration
//! policy: it only speaks the simulator's vocabulary (`NodeId`, `SimTime`,
//! `GpuSample`), and the orchestrator does all the plumbing. An **empty plan
//! is exactly a no-op**: the engine reports itself inert and the orchestrator
//! skips every chaos code path, so fault-free runs are bit-identical to runs
//! built without this crate.

pub mod engine;
pub mod gen;
pub mod plan;

pub use engine::{ChaosAction, ChaosEngine, ChaosEngineState, FaultCounts};
pub use gen::{generate_controller_crashes, GenConfig};
pub use plan::{CorruptionMode, FaultEvent, FaultKind, FaultPlan, PlanError};
