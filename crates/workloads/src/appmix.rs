//! The three application mixes of Table I.
//!
//! | Mix | Batch (Rodinia) | LC (Djinn & Tonic) | Load | COV |
//! |-----|-----------------|--------------------|------|-----|
//! | 1 | leukocyte, heartwall, particlefilter, mummergpu | face, key | HIGH | LOW |
//! | 2 | pathfinder, lud, kmeans, streamcluster | chk, ner, pos | MED | MED |
//! | 3 | particlefilter, streamcluster, lud, myocyte | imc, face | LOW | HIGH |

use crate::alibaba::ArrivalProcess;
use crate::djinn::InferenceService;
use crate::rodinia::RodiniaApp;
use serde::{Deserialize, Serialize};

/// Aggregate load class of a mix (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadLevel {
    /// Sustained heavy load.
    High,
    /// Moderate, steady load.
    Med,
    /// Light, sporadic load.
    Low,
}

/// Coefficient-of-variation class of a mix (Table I, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CovClass {
    /// COV well below 1: consistent load, easy to guarantee.
    Low,
    /// Intermediate.
    Med,
    /// COV above 1: heavy-tailed, interference-prone.
    High,
}

/// One of the paper's three application mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppMix {
    /// App-Mix-1: HIGH load, LOW COV.
    Mix1,
    /// App-Mix-2: MED load, MED COV.
    Mix2,
    /// App-Mix-3: LOW load, HIGH COV.
    Mix3,
}

impl AppMix {
    /// All three mixes in paper order.
    pub const ALL: [AppMix; 3] = [AppMix::Mix1, AppMix::Mix2, AppMix::Mix3];

    /// 1-based id, as the paper numbers them.
    pub fn id(self) -> usize {
        match self {
            AppMix::Mix1 => 1,
            AppMix::Mix2 => 2,
            AppMix::Mix3 => 3,
        }
    }

    /// The Rodinia batch applications in this mix (Table I).
    pub fn batch_apps(self) -> &'static [RodiniaApp] {
        match self {
            AppMix::Mix1 => &[
                RodiniaApp::Leukocyte,
                RodiniaApp::Heartwall,
                RodiniaApp::ParticleFilter,
                RodiniaApp::MummerGpu,
            ],
            AppMix::Mix2 => &[
                RodiniaApp::Pathfinder,
                RodiniaApp::Lud,
                RodiniaApp::Kmeans,
                RodiniaApp::StreamCluster,
            ],
            AppMix::Mix3 => &[
                RodiniaApp::ParticleFilter,
                RodiniaApp::StreamCluster,
                RodiniaApp::Lud,
                RodiniaApp::Myocyte,
            ],
        }
    }

    /// The latency-critical inference services in this mix (Table I).
    pub fn lc_services(self) -> &'static [InferenceService] {
        match self {
            AppMix::Mix1 => &[InferenceService::Face, InferenceService::Key],
            AppMix::Mix2 => &[InferenceService::Chk, InferenceService::Ner, InferenceService::Pos],
            AppMix::Mix3 => &[InferenceService::Imc, InferenceService::Face],
        }
    }

    /// Load class (Table I).
    pub fn load(self) -> LoadLevel {
        match self {
            AppMix::Mix1 => LoadLevel::High,
            AppMix::Mix2 => LoadLevel::Med,
            AppMix::Mix3 => LoadLevel::Low,
        }
    }

    /// COV class (Table I).
    pub fn cov(self) -> CovClass {
        match self {
            AppMix::Mix1 => CovClass::Low,
            AppMix::Mix2 => CovClass::Med,
            AppMix::Mix3 => CovClass::High,
        }
    }

    /// Latency-critical query arrival process for a ten-node cluster.
    /// Rates scale the Alibaba inter-arrival pattern to the testbed size;
    /// burstiness realizes the COV class.
    pub fn lc_arrivals(self) -> ArrivalProcess {
        match self {
            AppMix::Mix1 => ArrivalProcess::steady(10.0),
            AppMix::Mix2 => ArrivalProcess::bursty(5.0),
            AppMix::Mix3 => ArrivalProcess::sporadic(1.6),
        }
    }

    /// Batch job arrival process (long-running jobs are the Pareto 20%).
    pub fn batch_arrivals(self) -> ArrivalProcess {
        match self {
            AppMix::Mix1 => ArrivalProcess::steady(0.22),
            AppMix::Mix2 => ArrivalProcess::bursty(0.11),
            AppMix::Mix3 => ArrivalProcess::sporadic(0.04),
        }
    }
}

impl std::fmt::Display for AppMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "App-Mix-{}", self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_composition() {
        assert_eq!(AppMix::Mix1.batch_apps().len(), 4);
        assert_eq!(AppMix::Mix1.lc_services().len(), 2);
        assert_eq!(AppMix::Mix2.lc_services().len(), 3);
        assert!(AppMix::Mix3.batch_apps().contains(&RodiniaApp::Myocyte));
        assert!(AppMix::Mix1.batch_apps().contains(&RodiniaApp::Leukocyte));
        assert!(AppMix::Mix2.batch_apps().contains(&RodiniaApp::Kmeans));
    }

    #[test]
    fn load_and_cov_classes() {
        assert_eq!(AppMix::Mix1.load(), LoadLevel::High);
        assert_eq!(AppMix::Mix1.cov(), CovClass::Low);
        assert_eq!(AppMix::Mix2.load(), LoadLevel::Med);
        assert_eq!(AppMix::Mix2.cov(), CovClass::Med);
        assert_eq!(AppMix::Mix3.load(), LoadLevel::Low);
        assert_eq!(AppMix::Mix3.cov(), CovClass::High);
    }

    #[test]
    fn arrival_rates_rank_by_load() {
        assert!(AppMix::Mix1.lc_arrivals().mean_rate > AppMix::Mix2.lc_arrivals().mean_rate);
        assert!(AppMix::Mix2.lc_arrivals().mean_rate > AppMix::Mix3.lc_arrivals().mean_rate);
        assert!(AppMix::Mix1.batch_arrivals().mean_rate > AppMix::Mix3.batch_arrivals().mean_rate);
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(AppMix::Mix2.to_string(), "App-Mix-2");
        assert_eq!(AppMix::ALL.len(), 3);
    }
}
