//! The §V-C deep-learning workload: 520 DL-training (DLT) tasks + 1400
//! DL-inference (DLI) tasks, scheduled on the 256-GPU simulated cluster
//! against Gandiva- and Tiresias-style baselines (Fig. 12, Table IV).
//!
//! DLT job *durations* follow a Tiresias-like heavy-tailed distribution
//! ("few minutes to few hours depending on the model and training rounds");
//! their *profiles* oscillate with the mini-batch rhythm — a compute-heavy
//! phase followed by a short synchronization/input phase — which is exactly
//! the periodic peak structure PP forecasts ("predicting the peak-
//! utilization (mini-batch training phases) to accommodate DLI tasks",
//! §VI-E). DLI tasks are Djinn & Tonic inference queries.

use crate::alibaba::ArrivalProcess;
use crate::distributions::lognormal;
use crate::djinn::InferenceService;
use knots_sim::ids::ImageId;
use knots_sim::pod::PodSpec;
use knots_sim::profile::{ProfileBuilder, ResourceProfile};
use knots_sim::resources::Usage;
use knots_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload dimensions from §V-C.
pub mod scale {
    /// Number of DL training jobs.
    pub const DLT_JOBS: usize = 520;
    /// Number of DL inference tasks.
    pub const DLI_TASKS: usize = 1400;
    /// Trace window, hours.
    pub const TRACE_HOURS: u64 = 12;
}

/// Configuration for the DNN workload generator.
#[derive(Debug, Clone, Copy)]
pub struct DnnWorkloadConfig {
    /// Number of training jobs (paper: 520).
    pub dlt_jobs: usize,
    /// Number of inference tasks (paper: 1400).
    pub dli_tasks: usize,
    /// Trace duration.
    pub duration: SimDuration,
    /// Uniform time compression applied to DLT training lengths; 1.0 keeps
    /// the paper's minutes-to-hours range, smaller values shrink everything
    /// proportionally so experiments finish quickly. JCT *ratios* between
    /// schedulers are scale-invariant (see DESIGN.md).
    pub time_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DnnWorkloadConfig {
    /// The paper's full-size configuration.
    pub fn paper() -> Self {
        DnnWorkloadConfig {
            dlt_jobs: scale::DLT_JOBS,
            dli_tasks: scale::DLI_TASKS,
            duration: SimDuration::from_secs(scale::TRACE_HOURS * 3600),
            time_scale: 1.0,
            seed: 0xD9,
        }
    }

    /// A laptop-scale variant: same job counts, time compressed 120×
    /// (12 h trace → 6 min of simulated time). JCT *ratios* between
    /// schedulers are preserved under uniform compression.
    pub fn compressed() -> Self {
        let mut c = Self::paper();
        c.time_scale = 1.0 / 120.0;
        c.duration = SimDuration::from_secs(scale::TRACE_HOURS * 30);
        c
    }

    /// An even smaller smoke-test variant for CI: 64 GPUs' worth of work.
    pub fn smoke() -> Self {
        DnnWorkloadConfig {
            dlt_jobs: 60,
            dli_tasks: 160,
            duration: SimDuration::from_secs(240),
            time_scale: 1.0 / 120.0,
            seed: 0xD9,
        }
    }
}

/// A generated DNN task.
#[derive(Debug, Clone)]
pub struct DnnTask {
    /// Arrival time.
    pub at: SimTime,
    /// Pod spec (training jobs are batch QoS; inference is latency-critical).
    pub spec: PodSpec,
    /// True for DLT (training), false for DLI (inference).
    pub is_training: bool,
}

/// Build a DLT job profile: `epochs` mini-batch cycles, each a long
/// compute phase at `sm` plus a short sync/input phase, with memory
/// oscillating between the model footprint and the activation peak.
pub fn dlt_profile(total_secs: f64, model_mem_mb: f64, sm: f64) -> ResourceProfile {
    assert!(total_secs > 0.0 && model_mem_mb > 0.0);
    // Mini-batch period: ~2% of the run, clamped to [2 s, 60 s].
    let period = (total_secs * 0.02).clamp(2.0, 60.0).min(total_secs);
    let cycles = (total_secs / period).max(1.0) as usize;
    let peak_mem = (model_mem_mb * 1.6).min(15_000.0);
    let mut b = ProfileBuilder::new();
    for _ in 0..cycles {
        b = b
            // Input pipeline / allreduce: bandwidth burst, low SM.
            .phase(0.12 * period, Usage::new(0.15, model_mem_mb, 2_500.0, 800.0))
            // Forward+backward: compute-bound at the activation peak.
            .phase(0.70 * period, Usage::new(sm, peak_mem, 0.0, 0.0))
            // Optimizer step / checkpoint tail.
            .phase(0.18 * period, Usage::new(sm * 0.5, model_mem_mb, 0.0, 300.0))
    }
    b.build()
}

/// Generate the full §V-C task list, sorted by arrival.
pub fn generate(cfg: &DnnWorkloadConfig) -> Vec<DnnTask> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.dlt_jobs + cfg.dli_tasks);

    // --- DLT: arrivals spread over the first 2/3 of the trace so that the
    // long tail can complete inside the window.
    let horizon = cfg.duration.as_secs_f64() * (2.0 / 3.0);
    for i in 0..cfg.dlt_jobs {
        let at = SimTime::from_micros((rng.gen_range(0.0..horizon) * 1e6) as u64);
        // Tiresias-like heavy tail. Median ~2.5 h with a tail to a day (at
        // time_scale 1.0): distributed jobs occupy `n` GPUs for `t` hours in
        // the paper's setup; the single-GPU simulator absorbs the gang into
        // an `n·t` duration so the aggregate cluster load (~115% of 256 GPUs at the
        // arrival peak, queueing through the trace's second half)
        let secs =
            lognormal(&mut rng, (14_000.0f64).ln(), 1.2).clamp(600.0, 86_400.0) * cfg.time_scale;
        let model_mem = rng.gen_range(2_000.0..9_000.0);
        let sm = rng.gen_range(0.75..0.95);
        let profile = dlt_profile(secs.max(1.0), model_mem, sm);
        let peak = profile.peak_demand().mem_mb;
        let spec = PodSpec::batch(format!("dlt-{i}"), profile)
            .with_image(ImageId(40))
            .with_request_mb((peak * 1.1).min(15_500.0))
            .with_checkpointing(0.9);
        out.push(DnnTask { at, spec, is_training: true });
    }

    // --- DLI: bursty arrivals across the whole window.
    let rate = cfg.dli_tasks as f64 / cfg.duration.as_secs_f64();
    let mut arrivals = if cfg.dli_tasks > 0 {
        ArrivalProcess::bursty(rate).generate(cfg.duration, &mut rng)
    } else {
        Vec::new()
    };
    arrivals.truncate(cfg.dli_tasks);
    // Top up if the process under-shot.
    while arrivals.len() < cfg.dli_tasks {
        let t = rng.gen_range(0.0..cfg.duration.as_secs_f64());
        arrivals.push(SimTime::from_micros((t * 1e6) as u64));
    }
    for (i, at) in arrivals.into_iter().enumerate() {
        let svc = InferenceService::ALL[rng.gen_range(0..InferenceService::ALL.len())];
        // Batch size 2 with probability 1/3, else 1.
        let batch: u32 = if rng.gen_range(0..3usize) == 2 { 2 } else { 1 };
        // The trace-driven simulation models well-behaved serving systems:
        // no TF greedy earmarking (the Tiresias simulator the paper builds
        // on has no memory-crash dimension either).
        let mut spec = svc.pod_spec(batch, false);
        spec.name = format!("dli{i}-{}", svc.name());
        out.push(DnnTask { at, spec, is_training: false });
    }

    out.sort_by_key(|t| t.at);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts() {
        let cfg =
            DnnWorkloadConfig { dlt_jobs: 50, dli_tasks: 140, ..DnnWorkloadConfig::compressed() };
        let tasks = generate(&cfg);
        assert_eq!(tasks.len(), 190);
        assert_eq!(tasks.iter().filter(|t| t.is_training).count(), 50);
        assert!(tasks.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn dlt_durations_are_heavy_tailed() {
        let cfg = DnnWorkloadConfig { dlt_jobs: 200, dli_tasks: 0, ..DnnWorkloadConfig::paper() };
        let tasks = generate(&cfg);
        let secs: Vec<f64> = tasks.iter().map(|t| t.spec.profile.total_work()).collect();
        let median = knots_forecast::stats::percentile(&secs, 0.5);
        let p95 = knots_forecast::stats::percentile(&secs, 0.95);
        assert!(median > 3_000.0 && median < 25_000.0, "median {median}");
        assert!(p95 / median > 3.0, "tail ratio {}", p95 / median);
    }

    #[test]
    fn dlt_profile_oscillates_for_pp() {
        let p = dlt_profile(300.0, 4000.0, 0.9);
        let mem: Vec<f64> = p.sample(600).iter().map(|u| u.mem_mb).collect();
        let lo = mem.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = mem.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi > lo * 1.4, "mini-batch oscillation: {lo}..{hi}");
        // Periodic peaks discoverable by autocorrelation.
        assert!(knots_forecast::autocorr::dominant_period(&mem, 3, 200).is_some());
    }

    #[test]
    fn time_scale_compresses_everything() {
        let full = DnnWorkloadConfig { dlt_jobs: 40, dli_tasks: 0, ..DnnWorkloadConfig::paper() };
        let mut tiny = full;
        tiny.time_scale = 0.01;
        let w_full: f64 = generate(&full).iter().map(|t| t.spec.profile.total_work()).sum();
        let w_tiny: f64 = generate(&tiny).iter().map(|t| t.spec.profile.total_work()).sum();
        assert!(w_tiny < w_full * 0.05, "{w_tiny} vs {w_full}");
    }

    #[test]
    fn inference_tasks_are_latency_critical_and_short() {
        let cfg =
            DnnWorkloadConfig { dlt_jobs: 0, dli_tasks: 100, ..DnnWorkloadConfig::compressed() };
        let tasks = generate(&cfg);
        assert!(tasks.iter().all(|t| t.spec.qos.is_latency_critical()));
        assert!(tasks.iter().all(|t| t.spec.profile.total_work() < 10.0));
    }

    #[test]
    fn determinism() {
        let cfg =
            DnnWorkloadConfig { dlt_jobs: 30, dli_tasks: 30, ..DnnWorkloadConfig::compressed() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.spec.name, y.spec.name);
        }
    }
}
