//! Small, dependency-free samplers built on `rand::Rng` via inverse-
//! transform and Box-Muller. (The approved crate list contains `rand` but
//! not `rand_distr`; these four distributions are all the generators need.)

use rand::Rng;

/// Exponential variate with the given rate (mean `1/rate`).
///
/// # Panics
/// Panics when `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

/// Pareto variate with scale `xm > 0` and shape `alpha > 0`.
/// Heavy-tailed: used for the 80/20 short/long job split (§III).
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, xm: f64, alpha: f64) -> f64 {
    assert!(xm > 0.0 && alpha > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    xm / u.powf(1.0 / alpha)
}

/// Standard normal via Box-Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal with the given parameters of the underlying normal.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// A value clamped into `[lo, hi]`.
pub fn clamped<R: Rng + ?Sized>(v: f64, lo: f64, hi: f64, _rng: &mut R) -> f64 {
    v.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn exponential_mean_is_one_over_rate() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| pareto(&mut r, 1.0, 1.16)).collect();
        assert!(xs.iter().all(|&x| x >= 1.0));
        // ~80/20: with alpha≈1.16 the top 20% hold most of the mass.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let total: f64 = sorted.iter().sum();
        let top20: f64 = sorted[(0.8 * sorted.len() as f64) as usize..].iter().sum();
        assert!(top20 / total > 0.6, "top-20% share {}", top20 / total);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var.sqrt() - 3.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = rng();
        assert!((0..1000).all(|_| lognormal(&mut r, 0.0, 1.0) > 0.0));
    }

    #[test]
    fn determinism_under_seed() {
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| exponential(&mut r, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| exponential(&mut r, 1.0)).collect()
        };
        assert_eq!(a, b);
    }
}
