//! Rodinia-style batch (HPC) application profiles — the paper's batch
//! workload (§II-C1, Fig. 3).
//!
//! Real Rodinia kernels can't run here (no GPU), so each application is a
//! phase-structured profile reproducing the statistics the schedulers
//! exploit, as characterized in the paper:
//!
//! * a deterministic cycle: PCIe input burst → compute → short memory/SM
//!   peak → tail compute → writeback ("if an application's input PCIe
//!   bandwidth activity is high ... compute and memory follow in the next
//!   few milliseconds");
//! * very skewed utilization: the SM median-to-peak gap is ~90×, bandwidth
//!   ~400×, and the whole allocation is used for only ~6% of runtime;
//! * stable average usage with occasional surges, making the footprint
//!   predictable from correlation markers (Observation 4).

use knots_sim::ids::ImageId;
use knots_sim::pod::PodSpec;
use knots_sim::profile::{ProfileBuilder, ResourceProfile};
use knots_sim::resources::Usage;
use serde::{Deserialize, Serialize};

/// The nine Rodinia applications used across the paper's three app-mixes
/// (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum RodiniaApp {
    Leukocyte,
    Heartwall,
    ParticleFilter,
    MummerGpu,
    Pathfinder,
    Lud,
    Kmeans,
    StreamCluster,
    Myocyte,
}

/// Shape parameters for one application's cycle.
#[derive(Debug, Clone, Copy)]
struct Shape {
    /// Number of compute cycles in one run at scale 1.0.
    cycles: usize,
    /// Seconds per cycle.
    cycle_secs: f64,
    /// Background SM fraction (most of the runtime).
    sm_low: f64,
    /// Main compute SM fraction.
    sm_mid: f64,
    /// Peak SM fraction (short).
    sm_peak: f64,
    /// Resident memory between peaks, MB.
    mem_mid: f64,
    /// Peak memory, MB.
    mem_peak: f64,
    /// Input burst bandwidth, MB/s.
    rx_burst: f64,
    /// Writeback bandwidth, MB/s.
    tx_burst: f64,
}

impl RodiniaApp {
    /// All nine applications.
    pub const ALL: [RodiniaApp; 9] = [
        RodiniaApp::Leukocyte,
        RodiniaApp::Heartwall,
        RodiniaApp::ParticleFilter,
        RodiniaApp::MummerGpu,
        RodiniaApp::Pathfinder,
        RodiniaApp::Lud,
        RodiniaApp::Kmeans,
        RodiniaApp::StreamCluster,
        RodiniaApp::Myocyte,
    ];

    /// Canonical lowercase name (as used in Table I).
    pub fn name(self) -> &'static str {
        match self {
            RodiniaApp::Leukocyte => "leukocyte",
            RodiniaApp::Heartwall => "heartwall",
            RodiniaApp::ParticleFilter => "particlefilter",
            RodiniaApp::MummerGpu => "mummergpu",
            RodiniaApp::Pathfinder => "pathfinder",
            RodiniaApp::Lud => "lud",
            RodiniaApp::Kmeans => "kmeans",
            RodiniaApp::StreamCluster => "streamcluster",
            RodiniaApp::Myocyte => "myocyte",
        }
    }

    /// Stable container-image id (one image per application).
    pub fn image(self) -> ImageId {
        // knots-allow: P1 -- Self::ALL enumerates every variant, so position() always finds self
        ImageId(1 + Self::ALL.iter().position(|a| *a == self).expect("in ALL") as u32)
    }

    fn shape(self) -> Shape {
        match self {
            RodiniaApp::Leukocyte => Shape {
                cycles: 8,
                cycle_secs: 5.0,
                sm_low: 0.05,
                sm_mid: 0.45,
                sm_peak: 0.92,
                mem_mid: 900.0,
                mem_peak: 2_300.0,
                rx_burst: 3_800.0,
                tx_burst: 900.0,
            },
            RodiniaApp::Heartwall => Shape {
                cycles: 7,
                cycle_secs: 5.0,
                sm_low: 0.05,
                sm_mid: 0.40,
                sm_peak: 0.85,
                mem_mid: 750.0,
                mem_peak: 1_900.0,
                rx_burst: 3_000.0,
                tx_burst: 800.0,
            },
            RodiniaApp::ParticleFilter => Shape {
                cycles: 5,
                cycle_secs: 4.0,
                sm_low: 0.04,
                sm_mid: 0.25,
                sm_peak: 0.60,
                mem_mid: 500.0,
                mem_peak: 1_300.0,
                rx_burst: 4_200.0,
                tx_burst: 1_500.0,
            },
            RodiniaApp::MummerGpu => Shape {
                cycles: 5,
                cycle_secs: 5.0,
                sm_low: 0.04,
                sm_mid: 0.30,
                sm_peak: 0.70,
                mem_mid: 1_100.0,
                mem_peak: 2_600.0,
                rx_burst: 4_800.0,
                tx_burst: 2_000.0,
            },
            RodiniaApp::Pathfinder => Shape {
                cycles: 4,
                cycle_secs: 3.5,
                sm_low: 0.04,
                sm_mid: 0.30,
                sm_peak: 0.65,
                mem_mid: 400.0,
                mem_peak: 950.0,
                rx_burst: 2_500.0,
                tx_burst: 600.0,
            },
            RodiniaApp::Lud => Shape {
                cycles: 6,
                cycle_secs: 5.0,
                sm_low: 0.06,
                sm_mid: 0.50,
                sm_peak: 0.95,
                mem_mid: 650.0,
                mem_peak: 1_600.0,
                rx_burst: 2_200.0,
                tx_burst: 700.0,
            },
            RodiniaApp::Kmeans => Shape {
                cycles: 10,
                cycle_secs: 2.5,
                sm_low: 0.05,
                sm_mid: 0.35,
                sm_peak: 0.75,
                mem_mid: 850.0,
                mem_peak: 2_100.0,
                rx_burst: 2_800.0,
                tx_burst: 1_200.0,
            },
            RodiniaApp::StreamCluster => Shape {
                cycles: 6,
                cycle_secs: 5.0,
                sm_low: 0.04,
                sm_mid: 0.28,
                sm_peak: 0.58,
                mem_mid: 700.0,
                mem_peak: 1_700.0,
                rx_burst: 5_200.0,
                tx_burst: 2_400.0,
            },
            RodiniaApp::Myocyte => Shape {
                cycles: 3,
                cycle_secs: 4.0,
                sm_low: 0.02,
                sm_mid: 0.12,
                sm_peak: 0.35,
                mem_mid: 250.0,
                mem_peak: 650.0,
                rx_burst: 1_200.0,
                tx_burst: 300.0,
            },
        }
    }

    /// Solo runtime at the given scale, seconds.
    pub fn solo_secs(self, scale: f64) -> f64 {
        let s = self.shape();
        s.cycles as f64 * s.cycle_secs * scale
    }

    /// Build the application's resource profile.
    ///
    /// `scale` stretches each cycle (scale 1.0 gives runs of ~10–40 s,
    /// a laptop-friendly stand-in for the paper's minutes-to-hours jobs;
    /// see DESIGN.md). Phase fractions within a cycle are fixed: 8% input
    /// burst, 46% quiescent compute, 18% ramp, 6% peak, 14% low tail, 8%
    /// writeback — so the SM *median* falls in the quiescent band, giving
    /// the ~90× median-to-peak spread the paper measures, and the memory
    /// peak covers ~6% of the runtime.
    ///
    /// # Panics
    /// Panics when `scale` is not strictly positive.
    pub fn profile(self, scale: f64) -> ResourceProfile {
        assert!(scale > 0.0, "scale must be positive");
        let s = self.shape();
        let c = s.cycle_secs * scale;
        let mut b = ProfileBuilder::new();
        for i in 0..s.cycles {
            // First cycle starts from a small setup footprint; later cycles
            // keep the resident mid-level memory (allocator behaviour).
            let base_mem = if i == 0 { s.mem_mid * 0.3 } else { s.mem_mid };
            b = b
                .phase(0.08 * c, Usage::new(s.sm_low, base_mem, s.rx_burst, 0.0))
                .phase(0.46 * c, Usage::new(s.sm_low, s.mem_mid, 0.0, 0.0))
                .phase(0.18 * c, Usage::new(s.sm_mid, s.mem_mid, 0.0, 0.0))
                .phase(0.06 * c, Usage::new(s.sm_peak, s.mem_peak, 0.0, 0.0))
                .phase(0.14 * c, Usage::new(s.sm_low, s.mem_mid, 0.0, 0.0))
                .phase(0.08 * c, Usage::new(s.sm_low, s.mem_mid, 0.0, s.tx_burst));
        }
        b.build()
    }

    /// A ready-to-submit batch pod spec. The request is the *peak* demand —
    /// the "provision for the worst case" default the paper criticizes —
    /// optionally inflated by `overstatement` (≥ 0; e.g. 0.3 requests 130%
    /// of peak, reproducing the Alibaba overcommitment).
    pub fn pod_spec(self, scale: f64, overstatement: f64) -> PodSpec {
        let profile = self.profile(scale);
        let peak = profile.peak_demand().mem_mb;
        let request = (peak * (1.0 + overstatement)).min(16_384.0);
        PodSpec::batch(self.name(), profile).with_image(self.image()).with_request_mb(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_forecast::stats::percentile;

    #[test]
    fn nine_apps_with_unique_names_and_images() {
        let names: std::collections::HashSet<_> =
            RodiniaApp::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 9);
        let images: std::collections::HashSet<_> =
            RodiniaApp::ALL.iter().map(|a| a.image()).collect();
        assert_eq!(images.len(), 9);
    }

    #[test]
    fn peak_memory_fraction_is_small() {
        // Paper: the whole allocated capacity is used for only ~6% of the
        // execution time.
        for app in RodiniaApp::ALL {
            let p = app.profile(1.0);
            let frac = p.peak_mem_fraction(0.01);
            assert!(frac > 0.03 && frac < 0.12, "{}: peak fraction {frac}", app.name());
        }
    }

    #[test]
    fn sm_median_to_peak_spread_is_large() {
        for app in RodiniaApp::ALL {
            let p = app.profile(1.0);
            let sm: Vec<f64> = p.sample(1000).iter().map(|u| u.sm_frac).collect();
            let median = percentile(&sm, 0.5);
            let peak = sm.iter().cloned().fold(0.0f64, f64::max);
            assert!(peak / median.max(1e-6) > 10.0, "{}: median {median} peak {peak}", app.name());
        }
    }

    #[test]
    fn bandwidth_is_bursty() {
        let p = RodiniaApp::StreamCluster.profile(1.0);
        let bw: Vec<f64> = p.sample(1000).iter().map(|u| u.total_bw_mbps()).collect();
        let median = percentile(&bw, 0.5);
        let peak = bw.iter().cloned().fold(0.0f64, f64::max);
        assert_eq!(median, 0.0, "bandwidth should be zero most of the time");
        assert!(peak > 1000.0);
    }

    #[test]
    fn p80_is_well_below_peak() {
        // The harvesting opportunity: the 80th-percentile memory footprint
        // CBP provisions for is meaningfully below the peak request.
        for app in RodiniaApp::ALL {
            let p = app.profile(1.0);
            let p80 = p.mem_percentile(0.8);
            let peak = p.peak_demand().mem_mb;
            assert!(p80 < 0.6 * peak, "{}: p80 {p80} peak {peak}", app.name());
        }
    }

    #[test]
    fn scale_stretches_runtime() {
        let a = RodiniaApp::Lud.profile(1.0).total_work();
        let b = RodiniaApp::Lud.profile(2.0).total_work();
        assert!((b - 2.0 * a).abs() < 1e-9);
        assert!((RodiniaApp::Lud.solo_secs(1.0) - a).abs() < 1e-9);
    }

    #[test]
    fn pod_spec_requests_inflated_peak() {
        let spec = RodiniaApp::Kmeans.pod_spec(1.0, 0.3);
        let peak = RodiniaApp::Kmeans.profile(1.0).peak_demand().mem_mb;
        assert!((spec.request_mb - peak * 1.3).abs() < 1e-9);
        assert!(!spec.qos.is_latency_critical());
        assert_eq!(spec.image, RodiniaApp::Kmeans.image());
    }

    #[test]
    fn peaks_are_periodic_for_pp() {
        // PP relies on the peak interval being discoverable via
        // autocorrelation: check the dominant period of the memory series
        // matches the cycle length.
        let p = RodiniaApp::Kmeans.profile(1.0);
        let n = 1000;
        let mem: Vec<f64> = p.sample(n).iter().map(|u| u.mem_mb).collect();
        let samples_per_cycle = n / 10; // kmeans has 10 cycles
        let period = knots_forecast::autocorr::dominant_period(
            &mem,
            samples_per_cycle / 2,
            3 * samples_per_cycle,
        )
        .expect("periodic signal");
        let ratio = period as f64 / samples_per_cycle as f64;
        assert!(
            (ratio - ratio.round()).abs() < 0.15,
            "period {period} vs cycle {samples_per_cycle}"
        );
    }
}
