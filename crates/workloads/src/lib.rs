//! # knots-workloads — datacenter-representative GPU workloads
//!
//! The paper builds its evaluation from four ingredients, all reproduced
//! here as seeded, deterministic generators:
//!
//! * [`alibaba`] — a statistical re-synthesis of the Alibaba 2017 production
//!   trace: bursty task arrivals, the Pareto 80/20 short/long split, chronic
//!   resource overstatement (mean CPU utilization 47%, memory 76% of
//!   request) and the correlation structure of Fig. 2.
//! * [`rodinia`] — nine phase-structured batch-application profiles standing
//!   in for the Rodinia HPC suite (Fig. 3): PCIe bursts that foreshadow
//!   compute/memory peaks, ~90× median-to-peak SM spread, whole-allocation
//!   use for only ~6% of runtime.
//! * [`djinn`] — the Djinn & Tonic DNN-inference services (Fig. 4): small
//!   per-query footprints that grow sub-linearly with batch size, behind a
//!   TensorFlow-style greedy-memory default.
//! * [`dnn`] — the §V-C simulation workload: 520 deep-learning training jobs
//!   (Tiresias-modeled durations, periodic mini-batch peaks) plus 1400
//!   inference tasks.
//!
//! [`appmix`] encodes Table I's three application mixes with their load and
//! coefficient-of-variation classes, and [`loadgen`] turns a mix plus an
//! arrival process into a concrete submission schedule for the simulator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alibaba;
pub mod appmix;
pub mod distributions;
pub mod djinn;
pub mod dnn;
pub mod loadgen;
pub mod rodinia;

pub use appmix::{AppMix, CovClass, LoadLevel};
pub use loadgen::{next_arrival, LoadGenerator, ScheduledPod};
