//! Djinn & Tonic-style DNN inference services — the paper's user-facing
//! queries (§II-C2, Fig. 4).
//!
//! Seven services (the Table I abbreviations: face, imc, key, ner, pos, chk,
//! plus asr for speech) with:
//!
//! * per-query GPU memory that is small at batch size 1 (mostly < 10% of a
//!   16 GB P100) and grows sub-linearly to < 50% at batch 128 — Fig. 4;
//! * service times of ~10–90 ms ("the image recognition DNN-based inference
//!   query takes 90 ms on an average, on Nvidia P100");
//! * a TensorFlow-style `greedy_memory` default that earmarks ~99% of free
//!   device memory unless the scheduler flips `allow_growth` (Observation 5).

use knots_sim::ids::ImageId;
use knots_sim::pod::{PodSpec, QosClass};
use knots_sim::profile::{ProfileBuilder, ResourceProfile};
use serde::{Deserialize, Serialize};

/// The DNN inference services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum InferenceService {
    /// Face recognition.
    Face,
    /// Image classification.
    Imc,
    /// Keyword spotting.
    Key,
    /// Named-entity recognition.
    Ner,
    /// Part-of-speech tagging.
    Pos,
    /// Sentence chunking.
    Chk,
    /// Automatic speech recognition.
    Asr,
}

impl InferenceService {
    /// All services.
    pub const ALL: [InferenceService; 7] = [
        InferenceService::Face,
        InferenceService::Imc,
        InferenceService::Key,
        InferenceService::Ner,
        InferenceService::Pos,
        InferenceService::Chk,
        InferenceService::Asr,
    ];

    /// Table I abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            InferenceService::Face => "face",
            InferenceService::Imc => "imc",
            InferenceService::Key => "key",
            InferenceService::Ner => "ner",
            InferenceService::Pos => "pos",
            InferenceService::Chk => "chk",
            InferenceService::Asr => "asr",
        }
    }

    /// Stable container-image id (distinct from the Rodinia range).
    pub fn image(self) -> ImageId {
        // knots-allow: P1 -- Self::ALL enumerates every variant, so position() always finds self
        ImageId(20 + Self::ALL.iter().position(|s| *s == self).expect("in ALL") as u32)
    }

    /// Solo service latency for a single query, milliseconds.
    pub fn base_latency_ms(self) -> f64 {
        match self {
            InferenceService::Face => 90.0,
            InferenceService::Imc => 60.0,
            InferenceService::Key => 25.0,
            InferenceService::Ner => 12.0,
            InferenceService::Pos => 14.0,
            InferenceService::Chk => 18.0,
            InferenceService::Asr => 70.0,
        }
    }

    /// SM fraction demanded while the query computes.
    pub fn sm_demand(self) -> f64 {
        match self {
            InferenceService::Face => 0.85,
            InferenceService::Imc => 0.80,
            InferenceService::Key => 0.45,
            InferenceService::Ner => 0.30,
            InferenceService::Pos => 0.30,
            InferenceService::Chk => 0.35,
            InferenceService::Asr => 0.75,
        }
    }

    /// Model + activation memory at the given batch size, MB (Fig. 4 curve:
    /// `base + slope · (batch − 1)^0.7`).
    ///
    /// # Panics
    /// Panics for a batch size of zero.
    pub fn mem_mb(self, batch: u32) -> f64 {
        assert!(batch >= 1, "batch size must be >= 1");
        let (base, slope) = match self {
            InferenceService::Face => (1_000.0, 70.0),
            InferenceService::Imc => (1_250.0, 90.0),
            InferenceService::Key => (450.0, 30.0),
            InferenceService::Ner => (300.0, 18.0),
            InferenceService::Pos => (280.0, 16.0),
            InferenceService::Chk => (380.0, 24.0),
            InferenceService::Asr => (1_500.0, 190.0),
        };
        base + slope * ((batch - 1) as f64).powf(0.7)
    }

    /// Solo latency at the given batch size, ms (batching amortizes
    /// heavily on GPUs: `base · batch^0.45`).
    pub fn latency_ms(self, batch: u32) -> f64 {
        self.base_latency_ms() * (batch as f64).powf(0.45)
    }

    /// The query's resource profile at the given batch size: input transfer
    /// (~10% of the latency), compute (~85%), result writeback (~5%).
    pub fn profile(self, batch: u32) -> ResourceProfile {
        let total = self.latency_ms(batch) / 1_000.0;
        let mem = self.mem_mb(batch);
        ProfileBuilder::new()
            .transfer(0.10 * total, 3_000.0, mem * 0.6)
            .compute(0.85 * total, self.sm_demand(), mem)
            .writeback(0.05 * total, 800.0, mem)
            .build()
    }

    /// A ready-to-submit latency-critical pod. `greedy` selects the TF
    /// default memory behaviour (Fig. 4's "TF" bar); Kube-Knots-aware
    /// schedulers later flip `allow_growth` through the framework API.
    pub fn pod_spec(self, batch: u32, greedy: bool) -> PodSpec {
        let profile = self.profile(batch);
        let peak = profile.peak_demand().mem_mb;
        PodSpec {
            name: self.name().to_string(),
            image: self.image(),
            qos: QosClass::latency_critical(),
            profile,
            request_mb: (peak * 1.2).min(16_384.0),
            greedy_memory: greedy,
            allow_growth: false,
            checkpoint_fraction: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P100_MB: f64 = 16_384.0;

    #[test]
    fn seven_distinct_services() {
        let names: std::collections::HashSet<_> =
            InferenceService::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 7);
        let imgs: std::collections::HashSet<_> =
            InferenceService::ALL.iter().map(|s| s.image()).collect();
        assert_eq!(imgs.len(), 7);
    }

    #[test]
    fn single_query_footprint_is_small() {
        // Fig. 4: "For most of the single inference queries, the memory
        // consumption is less than 10%."
        let small = InferenceService::ALL.iter().filter(|s| s.mem_mb(1) < 0.10 * P100_MB).count();
        assert!(small >= 5, "{small} of 7 under 10%");
    }

    #[test]
    fn batch_128_stays_under_half_the_device() {
        // Fig. 4: "the majority of the inferences even with batching consume
        // less than 50% of the device memory."
        for s in InferenceService::ALL {
            assert!(s.mem_mb(128) < 0.5 * P100_MB, "{} at 128: {}", s.name(), s.mem_mb(128));
        }
    }

    #[test]
    fn memory_grows_monotonically_and_sublinearly() {
        for s in InferenceService::ALL {
            let m1 = s.mem_mb(1);
            let m16 = s.mem_mb(16);
            let m128 = s.mem_mb(128);
            assert!(m1 < m16 && m16 < m128);
            assert!(m128 / m1 < 16.0, "{}: growth should be sublinear", s.name());
        }
    }

    #[test]
    fn latencies_are_tens_of_ms() {
        for s in InferenceService::ALL {
            let l = s.base_latency_ms();
            assert!((10.0..=120.0).contains(&l), "{}: {l} ms", s.name());
        }
        assert!((InferenceService::Face.base_latency_ms() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn profile_work_matches_latency() {
        let s = InferenceService::Imc;
        let p = s.profile(4);
        assert!((p.total_work() - s.latency_ms(4) / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn pod_spec_is_latency_critical() {
        let spec = InferenceService::Face.pod_spec(1, true);
        assert!(spec.qos.is_latency_critical());
        assert!(spec.greedy_memory);
        assert!(!spec.allow_growth);
        let spec = InferenceService::Face.pod_spec(1, false);
        assert!(!spec.greedy_memory);
    }
}
