//! The load generator (§II-C: "We design a load generator for Kube-Knots
//! that mimics the real-world datacenter ... modeled after the Alibaba
//! datacenter task inter-arrival times").
//!
//! Turns an [`AppMix`] into a deterministic, seeded submission schedule:
//! latency-critical inference queries and long-running batch jobs arrive
//! according to the mix's Alibaba-style processes, batch requests overstate
//! their peak (with an occasional *under*-stater, the mis-estimation tail
//! that makes utilization-agnostic sharing dangerous), and inference pods
//! default to TensorFlow's greedy memory behaviour.

use crate::appmix::AppMix;
use knots_sim::pod::PodSpec;
use knots_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scheduled submission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduledPod {
    /// Arrival instant.
    pub at: SimTime,
    /// The pod to submit.
    pub spec: PodSpec,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Experiment duration.
    pub duration: SimDuration,
    /// RNG seed (every run with the same seed yields the same schedule).
    pub seed: u64,
    /// Stretches batch-job runtimes (1.0 ≈ 10–40 s jobs).
    pub batch_scale: f64,
    /// Multiplies both arrival rates (load knob for sweeps).
    pub rate_scale: f64,
    /// Whether inference pods use the TF greedy-memory default.
    pub greedy_inference: bool,
    /// Probability that a batch job *under*-requests its peak memory —
    /// the §II-B mis-estimation tail that makes trusting requests unsafe
    /// (Observation 2).
    pub under_request_prob: f64,
    /// Distribution of inference batch sizes (chosen uniformly).
    pub inference_batches: [u32; 4],
}

impl LoadGenConfig {
    /// Defaults matching the paper's testbed experiments.
    pub fn new(duration: SimDuration, seed: u64) -> Self {
        LoadGenConfig {
            duration,
            seed,
            batch_scale: 1.0,
            rate_scale: 1.0,
            greedy_inference: true,
            under_request_prob: 0.15,
            inference_batches: [1, 1, 1, 2],
        }
    }
}

/// The arrival instant of the next unsubmitted pod, given how many have
/// already been consumed from the (sorted) schedule. Feeds the
/// orchestrator's event calendar: between arrivals the workload layer
/// never needs the loop to wake on its account.
pub fn next_arrival(schedule: &[ScheduledPod], next: usize) -> Option<SimTime> {
    schedule.get(next).map(|s| s.at)
}

/// The load generator.
#[derive(Debug)]
pub struct LoadGenerator;

impl LoadGenerator {
    /// Generate the full submission schedule for an app-mix, sorted by
    /// arrival time.
    pub fn generate(mix: AppMix, cfg: &LoadGenConfig) -> Vec<ScheduledPod> {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (mix.id() as u64) << 32);
        let mut out = Vec::new();

        // Latency-critical inference queries.
        let mut lc_proc = mix.lc_arrivals();
        lc_proc.mean_rate *= cfg.rate_scale;
        let services = mix.lc_services();
        for at in lc_proc.generate(cfg.duration, &mut rng) {
            let svc = services[rng.gen_range(0..services.len())];
            let batch = cfg.inference_batches[rng.gen_range(0..cfg.inference_batches.len())];
            out.push(ScheduledPod { at, spec: svc.pod_spec(batch, cfg.greedy_inference) });
        }

        // Batch jobs.
        let mut batch_proc = mix.batch_arrivals();
        batch_proc.mean_rate *= cfg.rate_scale;
        let apps = mix.batch_apps();
        for at in batch_proc.generate(cfg.duration, &mut rng) {
            let app = apps[rng.gen_range(0..apps.len())];
            // Job size jitter: ±40% around the mix's batch scale.
            let scale = cfg.batch_scale * rng.gen_range(0.6..1.4);
            let mut spec = if rng.gen_bool(cfg.under_request_prob) {
                // Mis-estimated request below the real peak.
                let profile = app.profile(scale);
                let peak = profile.peak_demand().mem_mb;
                app.pod_spec(scale, 0.0).with_request_mb(peak * rng.gen_range(0.55..0.90))
            } else {
                // Overstated request: 5%–60% above peak (Fig. 2b behaviour).
                app.pod_spec(scale, rng.gen_range(0.05..0.60))
            };
            spec.name = format!("{}-{}", spec.name, out.len());
            out.push(ScheduledPod { at, spec });
        }

        out.sort_by_key(|s| s.at);
        out
    }

    /// Pareto sanity metric: the fraction of *pods* that are short-lived
    /// (latency-critical). The paper's cut keeps ~80% of jobs short.
    pub fn short_lived_fraction(schedule: &[ScheduledPod]) -> f64 {
        if schedule.is_empty() {
            return 0.0;
        }
        let lc = schedule.iter().filter(|s| s.spec.qos.is_latency_critical()).count();
        lc as f64 / schedule.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(mix: AppMix) -> Vec<ScheduledPod> {
        let cfg = LoadGenConfig::new(SimDuration::from_secs(600), 11);
        LoadGenerator::generate(mix, &cfg)
    }

    #[test]
    fn schedule_is_sorted_and_in_range() {
        let s = schedule(AppMix::Mix1);
        assert!(!s.is_empty());
        assert!(s.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(s.iter().all(|p| p.at < SimTime::from_secs(600)));
    }

    #[test]
    fn pareto_split_keeps_most_pods_short_lived() {
        for mix in AppMix::ALL {
            let s = schedule(mix);
            let frac = LoadGenerator::short_lived_fraction(&s);
            assert!(frac > 0.70, "{mix}: short-lived fraction {frac}");
        }
    }

    #[test]
    fn load_levels_rank_mix_sizes() {
        let n1 = schedule(AppMix::Mix1).len();
        let n2 = schedule(AppMix::Mix2).len();
        let n3 = schedule(AppMix::Mix3).len();
        assert!(n1 > n2 && n2 > n3, "sizes {n1} {n2} {n3}");
    }

    #[test]
    fn batch_jobs_overstate_requests_mostly() {
        let s = schedule(AppMix::Mix2);
        let batch: Vec<_> = s.iter().filter(|p| !p.spec.qos.is_latency_critical()).collect();
        assert!(!batch.is_empty());
        let over = batch
            .iter()
            .filter(|p| p.spec.request_mb >= p.spec.profile.peak_demand().mem_mb)
            .count();
        let frac = over as f64 / batch.len() as f64;
        assert!(frac > 0.8, "overstatement fraction {frac}");
        // ... but not all: the under-request tail exists.
        assert!(frac < 1.0 || batch.len() < 20);
    }

    #[test]
    fn inference_pods_are_greedy_by_default() {
        let s = schedule(AppMix::Mix1);
        assert!(s
            .iter()
            .filter(|p| p.spec.qos.is_latency_critical())
            .all(|p| p.spec.greedy_memory));
        let mut cfg = LoadGenConfig::new(SimDuration::from_secs(60), 5);
        cfg.greedy_inference = false;
        let s = LoadGenerator::generate(AppMix::Mix1, &cfg);
        assert!(s
            .iter()
            .filter(|p| p.spec.qos.is_latency_critical())
            .all(|p| !p.spec.greedy_memory));
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = schedule(AppMix::Mix3);
        let b = schedule(AppMix::Mix3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.spec.name, y.spec.name);
            assert_eq!(x.spec.request_mb, y.spec.request_mb);
        }
    }

    #[test]
    fn rate_scale_scales_volume() {
        let base = LoadGenConfig::new(SimDuration::from_secs(600), 7);
        let mut doubled = base;
        doubled.rate_scale = 2.0;
        let n1 = LoadGenerator::generate(AppMix::Mix2, &base).len();
        let n2 = LoadGenerator::generate(AppMix::Mix2, &doubled).len();
        assert!(n2 as f64 > 1.6 * n1 as f64, "{n1} -> {n2}");
    }
}
