//! Statistical re-synthesis of the Alibaba production CPU trace (§II-B).
//!
//! The original trace (1300 machines, 12 h, 12 951 batch jobs + 11 089
//! latency-critical containers) is not redistributable here, so this module
//! regenerates its *scheduler-relevant statistics*, which is all the paper
//! itself uses:
//!
//! * **arrivals** — a bursty, diurnally-modulated process whose
//!   burstiness is tunable (the app-mix COV classes of Table I);
//! * **overcommitment** (Fig. 2b) — containers request far more than they
//!   use: mean CPU utilization ≈ 47% and memory ≈ 76% of request, with
//!   "half of the scheduled pods consume less than 45% of the provisioned
//!   memory on an average" visible in the CDF;
//! * **correlation structure** (Fig. 2a/2c) — batch tasks' utilization
//!   metrics are strongly mutually correlated (core ↔ memory ↔ load
//!   averages), while latency-critical tasks' metrics show no usable
//!   structure because the tasks are too short-lived.

use crate::distributions::{exponential, normal};
use knots_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Scale of the original trace, for reference and for full-size synthesis.
pub mod trace_scale {
    /// Machines in the Alibaba 2017 trace.
    pub const MACHINES: usize = 1300;
    /// Batch jobs over the 12 h window.
    pub const BATCH_JOBS: usize = 12_951;
    /// Latency-critical containers.
    pub const LC_CONTAINERS: usize = 11_089;
    /// Trace duration in hours.
    pub const HOURS: u64 = 12;
}

// ---------------------------------------------------------------------
// Arrival process
// ---------------------------------------------------------------------

/// A Markov-modulated Poisson arrival process: a calm state and a burst
/// state with different rates. Raising `burst_rate_multiplier` (and the
/// dwell asymmetry) raises the coefficient of variation of inter-arrivals,
/// which is how the Table I COV classes are realized.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ArrivalProcess {
    /// Long-run mean arrival rate, tasks/second.
    pub mean_rate: f64,
    /// Burst-state rate relative to the calm-state rate (≥ 1).
    pub burst_rate_multiplier: f64,
    /// Fraction of time spent in the burst state, `(0, 1)`.
    pub burst_fraction: f64,
    /// Mean dwell time in the burst state, seconds.
    pub burst_dwell_secs: f64,
    /// Apply a slow diurnal modulation (±30% over a 6 h period), as in the
    /// production trace's day/night swing.
    pub diurnal: bool,
}

impl ArrivalProcess {
    /// A smooth (nearly Poisson) process — the LOW-COV class.
    pub fn steady(mean_rate: f64) -> Self {
        ArrivalProcess {
            mean_rate,
            burst_rate_multiplier: 1.0,
            burst_fraction: 0.5,
            burst_dwell_secs: 10.0,
            diurnal: false,
        }
    }

    /// A moderately bursty process — the MED-COV class.
    pub fn bursty(mean_rate: f64) -> Self {
        ArrivalProcess {
            mean_rate,
            burst_rate_multiplier: 4.0,
            burst_fraction: 0.25,
            burst_dwell_secs: 8.0,
            diurnal: false,
        }
    }

    /// A heavy-tailed, sporadic process — the HIGH-COV class.
    pub fn sporadic(mean_rate: f64) -> Self {
        ArrivalProcess {
            mean_rate,
            burst_rate_multiplier: 12.0,
            burst_fraction: 0.10,
            burst_dwell_secs: 5.0,
            diurnal: false,
        }
    }

    /// Generate arrival instants over `[0, duration)`.
    pub fn generate(&self, duration: SimDuration, rng: &mut StdRng) -> Vec<SimTime> {
        assert!(self.mean_rate > 0.0);
        assert!((0.0..1.0).contains(&self.burst_fraction) || self.burst_rate_multiplier == 1.0);
        // Solve calm rate so the long-run mean matches:
        // mean = f·burst_mult·calm + (1−f)·calm
        let calm_rate = self.mean_rate
            / (self.burst_fraction * self.burst_rate_multiplier + (1.0 - self.burst_fraction));
        let burst_rate = calm_rate * self.burst_rate_multiplier;
        let calm_dwell =
            self.burst_dwell_secs * (1.0 - self.burst_fraction) / self.burst_fraction.max(1e-9);

        let mut out = Vec::new();
        let mut t = 0.0f64;
        let end = duration.as_secs_f64();
        let mut in_burst = rng.gen_bool(self.burst_fraction.clamp(0.0, 1.0));
        let mut state_end =
            t + exponential(rng, 1.0 / if in_burst { self.burst_dwell_secs } else { calm_dwell });
        while t < end {
            let mut rate = if in_burst { burst_rate } else { calm_rate };
            if self.diurnal {
                // ±30% swing over a 6 h period.
                let phase = t / (6.0 * 3600.0) * std::f64::consts::TAU;
                rate *= 1.0 + 0.3 * phase.sin();
            }
            t += exponential(rng, rate.max(1e-9));
            while t > state_end {
                in_burst = !in_burst;
                state_end += exponential(
                    rng,
                    1.0 / if in_burst { self.burst_dwell_secs } else { calm_dwell },
                );
            }
            if t < end {
                out.push(SimTime::from_micros((t * 1e6) as u64));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Overcommitment records (Fig. 2b)
// ---------------------------------------------------------------------

/// Per-container utilization-vs-request statistics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ContainerRecord {
    /// Mean CPU utilization as a fraction of request.
    pub avg_cpu: f64,
    /// Peak CPU utilization as a fraction of request.
    pub max_cpu: f64,
    /// Mean memory utilization as a fraction of request.
    pub avg_mem: f64,
    /// Peak memory utilization as a fraction of request.
    pub max_mem: f64,
}

/// Synthesize `n` latency-critical container records with the Fig. 2b
/// moments: mean(avg_cpu) ≈ 0.47, mean(avg_mem) ≈ 0.76, and peaks that
/// almost never exceed the request.
pub fn container_records(n: usize, seed: u64) -> Vec<ContainerRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let avg_cpu = normal(&mut rng, 0.47, 0.18).clamp(0.02, 0.98);
            let avg_mem = normal(&mut rng, 0.76, 0.14).clamp(0.05, 1.0);
            let max_cpu = (avg_cpu + normal(&mut rng, 0.25, 0.10).abs()).clamp(avg_cpu, 1.0);
            let max_mem = (avg_mem + normal(&mut rng, 0.12, 0.06).abs()).clamp(avg_mem, 1.05);
            ContainerRecord { avg_cpu, max_cpu, avg_mem, max_mem }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Metric correlation series (Fig. 2a / 2c)
// ---------------------------------------------------------------------

/// The eight utilization metrics of a latency-critical container (Fig. 2a).
pub const LC_METRICS: [&str; 8] =
    ["cpu_util", "mem_util", "load_1", "load_5", "load_15", "net_in", "net_out", "disk_io"];

/// The six utilization metrics of a batch task (Fig. 2c).
pub const BATCH_METRICS: [&str; 6] =
    ["core_util", "mem_util", "load_1", "load_5", "load_15", "net_util"];

/// Batch-task metric series: a shared latent load drives every metric, so
/// pairwise Spearman correlations are strong (positive between core, memory
/// and the load averages — Observation 3).
pub fn batch_metric_series(len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Latent slowly-varying load in [0, 1].
    let mut latent = Vec::with_capacity(len);
    let mut l = 0.5f64;
    for _ in 0..len {
        l = (l + normal(&mut rng, 0.0, 0.05)).clamp(0.05, 1.0);
        latent.push(l);
    }
    // Load averages are progressively smoothed copies of the latent load.
    let smooth = |xs: &[f64], w: usize| knots_forecast::stats::moving_average(xs, w);
    let core: Vec<f64> =
        latent.iter().map(|&l| (l + normal(&mut rng, 0.0, 0.03)).clamp(0.0, 1.0)).collect();
    let mem: Vec<f64> = latent
        .iter()
        .map(|&l| (0.2 + 0.75 * l + normal(&mut rng, 0.0, 0.03)).clamp(0.0, 1.0))
        .collect();
    let load1 = smooth(&core, 3);
    let load5 = smooth(&core, 15);
    let load15 = smooth(&core, 45);
    let net: Vec<f64> =
        latent.iter().map(|&l| (0.5 * l + normal(&mut rng, 0.0, 0.08)).clamp(0.0, 1.0)).collect();
    vec![core, mem, load1, load5, load15, net]
}

/// Latency-critical metric series: the tasks are seconds-long, so each
/// metric is dominated by independent noise — "no clear correlation
/// indicators to predict utilization since these tasks are short-lived".
pub fn lc_metric_series(len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..LC_METRICS.len()).map(|_| (0..len).map(|_| rng.gen_range(0.0..1.0)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_forecast::spearman::correlation_matrix;
    use knots_forecast::stats::{cov, mean};

    #[test]
    fn arrival_rate_is_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ArrivalProcess::bursty(5.0);
        let arr = p.generate(SimDuration::from_secs(2000), &mut rng);
        let rate = arr.len() as f64 / 2000.0;
        assert!((rate - 5.0).abs() < 0.5, "rate {rate}");
        // Sorted, in-range.
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|t| *t < SimTime::from_secs(2000)));
    }

    #[test]
    fn burstiness_raises_interarrival_cov() {
        let mut r1 = StdRng::seed_from_u64(2);
        let mut r2 = StdRng::seed_from_u64(2);
        let steady = ArrivalProcess::steady(5.0).generate(SimDuration::from_secs(3000), &mut r1);
        let sporadic =
            ArrivalProcess::sporadic(5.0).generate(SimDuration::from_secs(3000), &mut r2);
        let gaps = |v: &[SimTime]| -> Vec<f64> {
            v.windows(2).map(|w| (w[1].0 - w[0].0) as f64).collect()
        };
        let cov_steady = cov(&gaps(&steady));
        let cov_sporadic = cov(&gaps(&sporadic));
        assert!(cov_steady < 1.2, "steady COV {cov_steady}");
        assert!(cov_sporadic > cov_steady + 0.3, "sporadic {cov_sporadic} vs steady {cov_steady}");
    }

    #[test]
    fn overcommitment_moments_match_fig2b() {
        let recs = container_records(8000, 3);
        let avg_cpu = mean(&recs.iter().map(|r| r.avg_cpu).collect::<Vec<_>>());
        let avg_mem = mean(&recs.iter().map(|r| r.avg_mem).collect::<Vec<_>>());
        assert!((avg_cpu - 0.47).abs() < 0.03, "avg cpu {avg_cpu}");
        assert!((avg_mem - 0.76).abs() < 0.03, "avg mem {avg_mem}");
        // Peaks are bounded by the provision (tiny tolerance for mem).
        assert!(recs.iter().all(|r| r.max_cpu <= 1.0 && r.max_mem <= 1.05));
        // "Maximum memory utilization for almost all containers does not
        // exceed 80% of the provisioned memory" — i.e. most stay under.
        let under80 = recs.iter().filter(|r| r.avg_mem <= 0.9).count() as f64 / recs.len() as f64;
        assert!(under80 > 0.7);
    }

    #[test]
    fn batch_metrics_are_strongly_correlated() {
        let series = batch_metric_series(2000, 4);
        let m = correlation_matrix(&series);
        // core vs mem, core vs load_1: strongly positive.
        assert!(m[0][1] > 0.6, "core-mem {}", m[0][1]);
        assert!(m[0][2] > 0.6, "core-load1 {}", m[0][2]);
        assert!(m[2][3] > 0.6, "load1-load5 {}", m[2][3]);
    }

    #[test]
    fn lc_metrics_are_uncorrelated() {
        let series = lc_metric_series(2000, 5);
        let m = correlation_matrix(&series);
        #[allow(clippy::needless_range_loop)]
        for i in 0..series.len() {
            for j in 0..series.len() {
                if i != j {
                    assert!(m[i][j].abs() < 0.15, "lc {i},{j}: {}", m[i][j]);
                }
            }
        }
    }

    #[test]
    fn metric_name_tables() {
        assert_eq!(LC_METRICS.len(), 8);
        assert_eq!(BATCH_METRICS.len(), 6);
        assert_eq!(batch_metric_series(100, 0).len(), BATCH_METRICS.len());
        assert_eq!(lc_metric_series(100, 0).len(), LC_METRICS.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = {
            let mut r = StdRng::seed_from_u64(9);
            ArrivalProcess::bursty(3.0).generate(SimDuration::from_secs(100), &mut r)
        };
        let b = {
            let mut r = StdRng::seed_from_u64(9);
            ArrivalProcess::bursty(3.0).generate(SimDuration::from_secs(100), &mut r)
        };
        assert_eq!(a, b);
    }
}
