//! The span record: one causal unit of work, on a track, in sim time.

use knots_obs::FieldValue;

/// Which timeline a span lives on. Control-loop spans (probe rounds,
/// scheduling rounds, worker-pool batches, chaos injections) share one
/// track; each pod gets its own, keyed by pod id, so a Perfetto view shows
/// one row per pod with the lifecycle stages laid end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// The orchestrator's own timeline.
    Control,
    /// A pod's lifecycle timeline, keyed by pod id.
    Pod(u64),
}

/// One trace span. `dur_us = None` marks an instant event (a point in
/// time: `placed` audit links, `checkpoint`, `migrated`, `gave_up`);
/// `Some(d)` marks a complete span covering `[start_us, start_us + d]`
/// (`queued`, `running`, `relaunch.backoff`, `pool.batch`).
///
/// All timestamps are **simulation time** in microseconds. Span ids are
/// allocated sequentially by the tracer in emission order, which is what
/// makes a trace a pure function of the run seed.
#[derive(Debug, Clone)]
pub struct Span {
    /// Tracer-unique id (1-based, emission order).
    pub id: u64,
    /// Causal parent span, if any.
    pub parent: Option<u64>,
    /// Stage name, `dot.case` (`queued`, `sched.round`, `relaunch.backoff`).
    pub name: &'static str,
    /// Timeline this span belongs to.
    pub track: Track,
    /// Start, sim-time microseconds.
    pub start_us: u64,
    /// Duration in microseconds; `None` for instant events.
    pub dur_us: Option<u64>,
    /// Structured payload, in insertion order.
    pub args: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// End timestamp (equals `start_us` for instants).
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us.unwrap_or(0)
    }
}
