//! Chrome-trace-format (Trace Event Format) exporter.
//!
//! Emits the JSON object form `{"traceEvents": [...]}` that
//! `chrome://tracing` and Perfetto load directly. Complete spans become
//! `ph: "X"` events with `ts`/`dur` in (sim-time) microseconds — which is
//! exactly the unit the format expects — and instants become `ph: "i"`
//! thread-scoped events. The control loop renders as process 1; pods
//! render as process 2 with one thread per pod id, so a loaded trace shows
//! the orchestrator timeline above a lane per pod.
//!
//! Output is built from the serde shim's `Value` tree and serialized with
//! field order fixed by construction, so the bytes are a deterministic
//! function of the span list.

use knots_obs::FieldValue;
use serde::Value;

use crate::span::{Span, Track};

/// Process id for the orchestrator/control track.
const PID_CONTROL: u64 = 1;
/// Process id under which every pod renders as its own thread.
const PID_PODS: u64 = 2;

fn field_to_value(v: &FieldValue) -> Value {
    match v {
        FieldValue::F64(x) => Value::F64(*x),
        FieldValue::I64(x) => Value::I64(*x),
        FieldValue::U64(x) => Value::U64(*x),
        FieldValue::Bool(x) => Value::Bool(*x),
        FieldValue::Str(x) => Value::Str(x.clone()),
    }
}

fn event(span: &Span) -> Value {
    let (pid, tid, cat) = match span.track {
        Track::Control => (PID_CONTROL, 0, "system"),
        Track::Pod(id) => (PID_PODS, id, "lifecycle"),
    };
    let mut entries = vec![
        ("name".to_string(), Value::Str(span.name.to_string())),
        ("cat".to_string(), Value::Str(cat.to_string())),
    ];
    match span.dur_us {
        Some(dur) => {
            entries.push(("ph".to_string(), Value::Str("X".to_string())));
            entries.push(("ts".to_string(), Value::U64(span.start_us)));
            entries.push(("dur".to_string(), Value::U64(dur)));
        }
        None => {
            entries.push(("ph".to_string(), Value::Str("i".to_string())));
            entries.push(("ts".to_string(), Value::U64(span.start_us)));
            entries.push(("s".to_string(), Value::Str("t".to_string())));
        }
    }
    entries.push(("pid".to_string(), Value::U64(pid)));
    entries.push(("tid".to_string(), Value::U64(tid)));
    let mut args = vec![("id".to_string(), Value::U64(span.id))];
    if let Some(parent) = span.parent {
        args.push(("parent".to_string(), Value::U64(parent)));
    }
    for (k, v) in &span.args {
        args.push((k.to_string(), field_to_value(v)));
    }
    entries.push(("args".to_string(), Value::Object(args)));
    Value::Object(entries)
}

fn process_name(pid: u64, name: &str) -> Value {
    Value::Object(vec![
        ("name".to_string(), Value::Str("process_name".to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::U64(pid)),
        (
            "args".to_string(),
            Value::Object(vec![("name".to_string(), Value::Str(name.to_string()))]),
        ),
    ])
}

/// Render `spans` as a Chrome trace JSON string.
pub fn export(spans: &[Span]) -> String {
    let mut events =
        vec![process_name(PID_CONTROL, "control-loop"), process_name(PID_PODS, "pods")];
    events.extend(spans.iter().map(event));
    let root = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    // knots-allow: P1 -- a Value tree always serializes
    serde_json::to_string(&root).expect("chrome trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn export_emits_complete_and_instant_events() {
        let t = Tracer::bounded(8);
        let q = t.record_complete(Track::Pod(3), "queued", 10, 60, None, vec![]).unwrap();
        t.record_instant(
            Track::Pod(3),
            "checkpoint",
            60,
            Some(q),
            vec![("fraction", FieldValue::F64(0.9))],
        );
        t.record_instant(Track::Control, "probe.round", 20, None, vec![]);
        let json = export(&t.spans());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(
            "\"name\":\"queued\",\"cat\":\"lifecycle\",\"ph\":\"X\",\"ts\":10,\"dur\":50"
        ));
        assert!(json.contains("\"name\":\"checkpoint\",\"cat\":\"lifecycle\",\"ph\":\"i\""));
        assert!(json.contains("\"parent\":1"));
        assert!(json.contains("\"name\":\"probe.round\",\"cat\":\"system\""));
        assert!(json.contains("\"process_name\""));
        // Round-trips through the JSON parser (Perfetto-loadable shape).
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        match v {
            serde::Value::Object(entries) => assert_eq!(entries[0].0, "traceEvents"),
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let t = Tracer::bounded(8);
            t.record_complete(Track::Pod(1), "running", 0, 500, None, vec![]);
            t.record_instant(Track::Control, "chaos.inject", 250, None, vec![]);
            export(&t.spans())
        };
        assert_eq!(build(), build());
    }
}
