//! **knots-trace** — causal, sim-time tracing for the Kube-Knots control
//! loop.
//!
//! Every pod gets a per-run trace timeline at arrival; the orchestrator
//! feeds the cluster event log through a [`LifecycleTracker`] that turns
//! lifecycle transitions into stage spans (`queued` → `placed` → `running`
//! → `completed`, with `checkpoint` / `relaunch.backoff` / `gave_up`
//! detours), and emits its own system spans (`agg.heartbeat`,
//! `sched.round`, `probe.round`, `pool.batch`, `chaos.inject`) on a
//! control track.
//!
//! Design rules (see DESIGN.md §12):
//! - **Sim time only.** Every timestamp is `SimTime` microseconds; a trace
//!   is a pure function of the run seed, byte-identical across `--threads`.
//! - **Bounded.** Spans live in a ring buffer like the JSONL recorder;
//!   stage histograms are streamed on emission so the latency breakdown
//!   stays exact even after ring eviction.
//! - **Near-free when off.** A disabled tracer holds no allocation and
//!   every emission site is a single `Option` branch, mirroring
//!   `knots_obs::Recorder`.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod chrome;
pub mod lifecycle;
pub mod span;

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use knots_obs::{FieldValue, Histogram};
use parking_lot::Mutex;

pub use analyze::{breakdown, StageBreakdownRow};
pub use lifecycle::{LifecycleTracker, PodMeta};
pub use span::{Span, Track};

/// Stage-latency histograms span 1 µs .. ~2^39 µs (~6.4 days of sim time),
/// enough head-room for full-length 12 h DNN traces.
const STAGE_HISTOGRAM_BUCKETS: usize = 40;

/// Shared, clonable span sink.
///
/// Mirrors [`knots_obs::Recorder`]: a disabled tracer holds no buffer and
/// every `record_*` call is one `Option` branch; an enabled tracer keeps
/// the most recent `capacity` spans and counts what it evicts. Span ids
/// are sequential in emission order, so a single-threaded control loop
/// produces a deterministic id assignment.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    spans: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
    next_id: u64,
    /// Per-stage duration histograms, fed at emission time so eviction
    /// from the ring never loses latency mass. Complete spans only.
    stages: BTreeMap<&'static str, Histogram>,
}

impl Tracer {
    /// A tracer that silently drops everything.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer retaining at most `capacity` spans (oldest evicted).
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            inner: Some(Arc::new(Inner {
                state: Mutex::new(State {
                    spans: VecDeque::with_capacity(capacity.min(4096)),
                    capacity,
                    dropped: 0,
                    next_id: 1,
                    stages: BTreeMap::new(),
                }),
            })),
        }
    }

    /// Whether spans are being kept. Call sites building expensive args
    /// should check this first.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record a complete span covering `[start_us, end_us]` and stream its
    /// duration into the per-stage histogram. Returns the span id, or
    /// `None` when disabled.
    pub fn record_complete(
        &self,
        track: Track,
        name: &'static str,
        start_us: u64,
        end_us: u64,
        parent: Option<u64>,
        args: Vec<(&'static str, FieldValue)>,
    ) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let mut st = inner.state.lock();
        let dur = end_us.saturating_sub(start_us);
        st.stages
            .entry(name)
            .or_insert_with(|| Histogram::exponential(1.0, 2.0, STAGE_HISTOGRAM_BUCKETS))
            .observe(dur as f64);
        Some(st.push(Span { id: 0, parent, name, track, start_us, dur_us: Some(dur), args }))
    }

    /// Record an instant event at `at_us`. Returns the span id, or `None`
    /// when disabled.
    pub fn record_instant(
        &self,
        track: Track,
        name: &'static str,
        at_us: u64,
        parent: Option<u64>,
        args: Vec<(&'static str, FieldValue)>,
    ) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let mut st = inner.state.lock();
        Some(st.push(Span { id: 0, parent, name, track, start_us: at_us, dur_us: None, args }))
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.state.lock().spans.len())
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spans evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.state.lock().dropped)
    }

    /// Snapshot the retained spans (oldest first).
    pub fn spans(&self) -> Vec<Span> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.state.lock().spans.iter().cloned().collect())
    }

    /// Snapshot the per-stage duration histograms, sorted by stage name.
    /// These cover *every* complete span ever recorded, including ones the
    /// ring has since evicted.
    pub fn stage_histograms(&self) -> Vec<(&'static str, Histogram)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.state.lock().stages.iter().map(|(k, v)| (*k, v.clone())).collect()
        })
    }
}

impl State {
    fn push(&mut self, mut span: Span) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        span.id = id;
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert_eq!(t.record_instant(Track::Control, "probe.round", 5, None, vec![]), None);
        assert!(t.is_empty());
        assert!(t.stage_histograms().is_empty());
    }

    #[test]
    fn ids_are_sequential_and_parents_link() {
        let t = Tracer::bounded(16);
        let a = t.record_complete(Track::Pod(7), "queued", 0, 100, None, vec![]).unwrap();
        let b = t.record_complete(Track::Pod(7), "placed", 100, 150, Some(a), vec![]).unwrap();
        assert_eq!((a, b), (1, 2));
        let spans = t.spans();
        assert_eq!(spans[1].parent, Some(a));
        assert_eq!(spans[1].end_us(), 150);
    }

    #[test]
    fn ring_evicts_but_histograms_keep_everything() {
        let t = Tracer::bounded(2);
        for i in 0..5u64 {
            t.record_complete(Track::Pod(i), "queued", 0, 10, None, vec![]);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let stages = t.stage_histograms();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].0, "queued");
        assert_eq!(stages[0].1.count(), 5);
    }

    #[test]
    fn clones_share_state() {
        let t = Tracer::bounded(8);
        let t2 = t.clone();
        t2.record_instant(Track::Control, "chaos.inject", 1, None, vec![]);
        assert_eq!(t.len(), 1);
    }
}
