//! Folds stage histograms into a per-stage latency breakdown.
//!
//! The interesting question a trace answers is *where a pod's latency came
//! from*: queueing vs. placement vs. execution vs. relaunch backoff. The
//! tracer already streams every complete-span duration into a per-stage
//! [`knots_obs::Histogram`]; this module renders those into the
//! p50/p95/p99 rows the `experiments trace` report prints.

use knots_obs::Histogram;
use serde::{Deserialize, Serialize};

/// One row of the per-stage latency breakdown, all durations in sim-time
/// microseconds. Percentiles are rank-based histogram estimates (see
/// `Histogram::percentile`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageBreakdownRow {
    /// Stage name (`queued`, `placed`, `running`, `relaunch.backoff`, ...).
    pub stage: String,
    /// Number of spans folded in.
    pub count: u64,
    /// Median duration, µs.
    pub p50_us: f64,
    /// 95th-percentile duration, µs.
    pub p95_us: f64,
    /// 99th-percentile duration, µs.
    pub p99_us: f64,
    /// Mean duration, µs.
    pub mean_us: f64,
    /// Largest duration observed, µs.
    pub max_us: f64,
}

/// Fold `(stage, histogram)` pairs into breakdown rows, preserving order
/// (the tracer hands them over sorted by stage name). Empty histograms are
/// skipped.
pub fn breakdown(stages: &[(&'static str, Histogram)]) -> Vec<StageBreakdownRow> {
    stages
        .iter()
        .filter(|(_, h)| h.count() > 0)
        .map(|(name, h)| StageBreakdownRow {
            stage: name.to_string(),
            count: h.count(),
            p50_us: h.percentile(0.50).unwrap_or(0.0),
            p95_us: h.percentile(0.95).unwrap_or(0.0),
            p99_us: h.percentile(0.99).unwrap_or(0.0),
            mean_us: h.mean().unwrap_or(0.0),
            max_us: h.max().unwrap_or(0.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tracer, Track};

    #[test]
    fn breakdown_reports_percentiles_per_stage() {
        let t = Tracer::bounded(64);
        for i in 0..100u64 {
            t.record_complete(Track::Pod(i), "queued", 0, 1_000 + i * 10, None, vec![]);
        }
        t.record_complete(Track::Pod(0), "running", 0, 5_000_000, None, vec![]);
        let rows = breakdown(&t.stage_histograms());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].stage, "queued");
        assert_eq!(rows[0].count, 100);
        assert!(rows[0].p50_us <= rows[0].p99_us);
        assert!(rows[0].p99_us <= rows[0].max_us);
        assert_eq!(rows[1].stage, "running");
        assert_eq!(rows[1].max_us, 5_000_000.0);
    }

    #[test]
    fn rows_round_trip_through_serde() {
        let row = StageBreakdownRow {
            stage: "relaunch.backoff".to_string(),
            count: 3,
            p50_us: 1.5,
            p95_us: 2.0,
            p99_us: 2.0,
            mean_us: 1.25,
            max_us: 2.0,
        };
        let text = serde_json::to_string(&row).unwrap();
        let back: StageBreakdownRow = serde_json::from_str(&text).unwrap();
        assert_eq!(back, row);
    }
}
