//! Turns the cluster event log into causal per-pod stage spans.
//!
//! The simulator already records every externally observable lifecycle
//! transition as a `knots_sim::events::Event`; this tracker folds that
//! stream into *stage intervals* — the time a pod spent `queued`, being
//! `placed` (image pull / reattach), `running`, `suspended`, or sitting in
//! `relaunch.backoff` — and emits each interval as a complete span when
//! the transition that ends it arrives. Instants (`checkpoint`,
//! `migrated`, `completed`, `gave_up`, `resized`) mark the transitions
//! themselves. Within a pod, each span's parent is the previous span, so
//! the whole lifecycle reads as one causal chain.
//!
//! Node-scoped events (`pod = None`) become control-track instants
//! (`node.failed`, `gpu.degraded`, ...).

use std::collections::BTreeMap;

use knots_obs::FieldValue;
use knots_sim::events::{CrashReason, Event, EventKind};

use crate::span::Track;
use crate::Tracer;

/// Per-pod facts the tracker cannot derive from the event stream alone.
#[derive(Debug, Clone, Copy)]
pub struct PodMeta {
    /// Submission time, sim-time µs — anchors the first `queued` span
    /// (the `Submitted` event itself is tick-quantized).
    pub arrival_us: u64,
    /// Fraction of progress preserved on crash; > 0 means the pod
    /// checkpoints, which surfaces as a `checkpoint` instant per crash.
    pub checkpoint_fraction: f64,
}

#[derive(Debug)]
struct OpenStage {
    name: &'static str,
    since_us: u64,
    args: Vec<(&'static str, FieldValue)>,
}

#[derive(Debug, Default)]
struct PodState {
    stage: Option<OpenStage>,
    /// Last span emitted for this pod; the next span's causal parent.
    last: Option<u64>,
}

/// Streaming event-log → span folder. Feed it events in log order (the
/// orchestrator keeps a cursor into `cluster.events()`), then [`flush`]
/// once the run ends to close still-open stages.
///
/// [`flush`]: LifecycleTracker::flush
#[derive(Debug, Default)]
pub struct LifecycleTracker {
    pods: BTreeMap<u64, PodState>,
}

fn crash_reason_label(reason: CrashReason) -> &'static str {
    match reason {
        CrashReason::MemoryCapacityViolation => "memory_capacity",
        CrashReason::NodeFailure => "node_failure",
    }
}

impl LifecycleTracker {
    /// A tracker with no pods in flight.
    pub fn new() -> Self {
        Self::default()
    }

    fn close(state: &mut PodState, pod: u64, end_us: u64, tracer: &Tracer) -> Option<u64> {
        let open = state.stage.take()?;
        let id = tracer.record_complete(
            Track::Pod(pod),
            open.name,
            open.since_us,
            end_us,
            state.last,
            open.args,
        );
        state.last = id;
        id
    }

    fn open(
        state: &mut PodState,
        name: &'static str,
        since_us: u64,
        args: Vec<(&'static str, FieldValue)>,
    ) {
        state.stage = Some(OpenStage { name, since_us, args });
    }

    fn instant(
        state: &mut PodState,
        pod: u64,
        name: &'static str,
        at_us: u64,
        args: Vec<(&'static str, FieldValue)>,
        tracer: &Tracer,
    ) {
        let id = tracer.record_instant(Track::Pod(pod), name, at_us, state.last, args);
        state.last = id;
    }

    /// Fold one event. `meta` resolves per-pod facts (arrival time,
    /// checkpointing) from the cluster; it may return `None` for pods the
    /// cluster no longer knows.
    pub fn on_event(&mut self, e: &Event, meta: Option<PodMeta>, tracer: &Tracer) {
        let at = e.at.as_micros();
        let Some(pod_id) = e.pod else {
            self.on_node_event(e, tracer);
            return;
        };
        let pod = pod_id.0;
        let state = self.pods.entry(pod).or_default();
        match e.kind {
            EventKind::Submitted => {
                let start = meta.map_or(at, |m| m.arrival_us.min(at));
                Self::open(state, "queued", start, vec![]);
            }
            EventKind::Placed { node, cold_start } => {
                Self::close(state, pod, at, tracer);
                Self::open(
                    state,
                    "placed",
                    at,
                    vec![
                        ("node", FieldValue::U64(node.0 as u64)),
                        ("cold_start", FieldValue::Bool(cold_start)),
                    ],
                );
            }
            EventKind::Started { node } => {
                Self::close(state, pod, at, tracer);
                Self::open(state, "running", at, vec![("node", FieldValue::U64(node.0 as u64))]);
            }
            EventKind::Completed { .. } => {
                Self::close(state, pod, at, tracer);
                Self::instant(state, pod, "completed", at, vec![], tracer);
                self.pods.remove(&pod);
            }
            EventKind::Crashed { node, reason } => {
                if let Some(open) = state.stage.as_mut() {
                    open.args.push(("outcome", FieldValue::Str("crashed".to_string())));
                    open.args
                        .push(("reason", FieldValue::Str(crash_reason_label(reason).to_string())));
                }
                Self::close(state, pod, at, tracer);
                if meta.is_some_and(|m| m.checkpoint_fraction > 0.0) {
                    let fraction = meta.map_or(0.0, |m| m.checkpoint_fraction);
                    Self::instant(
                        state,
                        pod,
                        "checkpoint",
                        at,
                        vec![("fraction", FieldValue::F64(fraction))],
                        tracer,
                    );
                }
                Self::open(
                    state,
                    "relaunch.backoff",
                    at,
                    vec![("node", FieldValue::U64(node.0 as u64))],
                );
            }
            EventKind::Requeued => {
                Self::close(state, pod, at, tracer);
                Self::open(state, "queued", at, vec![]);
            }
            EventKind::GaveUp { crashes, .. } => {
                Self::close(state, pod, at, tracer);
                Self::instant(
                    state,
                    pod,
                    "gave_up",
                    at,
                    vec![("crashes", FieldValue::U64(u64::from(crashes)))],
                    tracer,
                );
                self.pods.remove(&pod);
            }
            EventKind::Preempted { node } => {
                if let Some(open) = state.stage.as_mut() {
                    open.args.push(("outcome", FieldValue::Str("preempted".to_string())));
                }
                Self::close(state, pod, at, tracer);
                Self::open(state, "suspended", at, vec![("node", FieldValue::U64(node.0 as u64))]);
            }
            EventKind::Resumed { node } => {
                Self::close(state, pod, at, tracer);
                Self::open(
                    state,
                    "placed",
                    at,
                    vec![
                        ("node", FieldValue::U64(node.0 as u64)),
                        ("cold_start", FieldValue::Bool(false)),
                    ],
                );
            }
            EventKind::Migrated { from, to } => {
                if let Some(open) = state.stage.as_mut() {
                    open.args.push(("outcome", FieldValue::Str("migrated".to_string())));
                }
                Self::close(state, pod, at, tracer);
                Self::instant(
                    state,
                    pod,
                    "migrated",
                    at,
                    vec![
                        ("from", FieldValue::U64(from.0 as u64)),
                        ("to", FieldValue::U64(to.0 as u64)),
                    ],
                    tracer,
                );
                Self::open(
                    state,
                    "placed",
                    at,
                    vec![
                        ("node", FieldValue::U64(to.0 as u64)),
                        ("cold_start", FieldValue::Bool(false)),
                    ],
                );
            }
            EventKind::Resized { from_mb, to_mb } => {
                Self::instant(
                    state,
                    pod,
                    "resized",
                    at,
                    vec![("from_mb", FieldValue::F64(from_mb)), ("to_mb", FieldValue::F64(to_mb))],
                    tracer,
                );
            }
            // Node-scoped kinds never carry a pod id.
            _ => {}
        }
    }

    fn on_node_event(&mut self, e: &Event, tracer: &Tracer) {
        let at = e.at.as_micros();
        let (name, args) = match e.kind {
            EventKind::NodeSlept { node } => {
                ("node.slept", vec![("node", FieldValue::U64(node.0 as u64))])
            }
            EventKind::NodeWoken { node } => {
                ("node.woken", vec![("node", FieldValue::U64(node.0 as u64))])
            }
            EventKind::NodeFailed { node } => {
                ("node.failed", vec![("node", FieldValue::U64(node.0 as u64))])
            }
            EventKind::NodeRecovered { node } => {
                ("node.recovered", vec![("node", FieldValue::U64(node.0 as u64))])
            }
            EventKind::GpuDegraded { node, capacity_mb } => (
                "gpu.degraded",
                vec![
                    ("node", FieldValue::U64(node.0 as u64)),
                    ("capacity_mb", FieldValue::F64(capacity_mb)),
                ],
            ),
            _ => return,
        };
        tracer.record_instant(Track::Control, name, at, None, args);
    }

    /// Close every still-open stage at `end_us`, marking it unfinished.
    /// Pods iterate in id order, so the tail of the trace is deterministic.
    pub fn flush(&mut self, end_us: u64, tracer: &Tracer) {
        for (pod, state) in std::mem::take(&mut self.pods) {
            let mut state = state;
            if let Some(open) = state.stage.as_mut() {
                open.args.push(("unfinished", FieldValue::Bool(true)));
                Self::close(&mut state, pod, end_us, tracer);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_sim::ids::{NodeId, PodId};
    use knots_sim::time::SimTime;

    fn meta(arrival_us: u64, ckpt: f64) -> Option<PodMeta> {
        Some(PodMeta { arrival_us, checkpoint_fraction: ckpt })
    }

    fn ev(at_us: u64, pod: u64, kind: EventKind) -> Event {
        Event::pod(SimTime::from_micros(at_us), PodId(pod), kind)
    }

    #[test]
    fn happy_path_chains_queued_placed_running_completed() {
        let t = Tracer::bounded(64);
        let mut lt = LifecycleTracker::new();
        lt.on_event(&ev(1_000, 7, EventKind::Submitted), meta(500, 0.0), &t);
        lt.on_event(
            &ev(2_000, 7, EventKind::Placed { node: NodeId(3), cold_start: true }),
            meta(500, 0.0),
            &t,
        );
        lt.on_event(&ev(3_000, 7, EventKind::Started { node: NodeId(3) }), meta(500, 0.0), &t);
        lt.on_event(&ev(9_000, 7, EventKind::Completed { node: NodeId(3) }), meta(500, 0.0), &t);
        let spans = t.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["queued", "placed", "running", "completed"]);
        // Queued anchors on the (earlier, exact) arrival, not the tick.
        assert_eq!(spans[0].start_us, 500);
        assert_eq!(spans[0].end_us(), 2_000);
        // Causal chain: each span parents the next.
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[2].parent, Some(spans[1].id));
        assert_eq!(spans[3].parent, Some(spans[2].id));
        assert!(lt.pods.is_empty());
    }

    #[test]
    fn crash_emits_checkpoint_and_backoff_then_requeue_reopens_queued() {
        let t = Tracer::bounded(64);
        let mut lt = LifecycleTracker::new();
        let m = meta(0, 0.9);
        lt.on_event(&ev(0, 1, EventKind::Submitted), m, &t);
        lt.on_event(&ev(10, 1, EventKind::Placed { node: NodeId(0), cold_start: false }), m, &t);
        lt.on_event(&ev(10, 1, EventKind::Started { node: NodeId(0) }), m, &t);
        lt.on_event(
            &ev(
                50,
                1,
                EventKind::Crashed {
                    node: NodeId(0),
                    reason: CrashReason::MemoryCapacityViolation,
                },
            ),
            m,
            &t,
        );
        lt.on_event(&ev(90, 1, EventKind::Requeued), m, &t);
        lt.flush(120, &t);
        let spans = t.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["queued", "placed", "running", "checkpoint", "relaunch.backoff", "queued"]
        );
        // The reopened queue stage was still open at flush time.
        assert!(spans[5].args.iter().any(|(k, _)| *k == "unfinished"));
        let running = &spans[2];
        assert!(running
            .args
            .iter()
            .any(|(k, v)| *k == "outcome" && *v == FieldValue::Str("crashed".to_string())));
        assert_eq!(spans[4].start_us, 50);
        assert_eq!(spans[4].end_us(), 90);
    }

    #[test]
    fn gave_up_terminates_the_chain() {
        let t = Tracer::bounded(64);
        let mut lt = LifecycleTracker::new();
        let m = meta(0, 0.0);
        lt.on_event(&ev(0, 2, EventKind::Submitted), m, &t);
        lt.on_event(&ev(5, 2, EventKind::Placed { node: NodeId(1), cold_start: false }), m, &t);
        lt.on_event(&ev(5, 2, EventKind::Started { node: NodeId(1) }), m, &t);
        lt.on_event(
            &ev(9, 2, EventKind::Crashed { node: NodeId(1), reason: CrashReason::NodeFailure }),
            m,
            &t,
        );
        lt.on_event(&ev(9, 2, EventKind::GaveUp { node: NodeId(1), crashes: 5 }), m, &t);
        let names: Vec<&str> = t.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["queued", "placed", "running", "relaunch.backoff", "gave_up"]);
        assert!(lt.pods.is_empty());
    }

    #[test]
    fn node_events_land_on_the_control_track() {
        let t = Tracer::bounded(8);
        let mut lt = LifecycleTracker::new();
        lt.on_event(
            &Event::node(SimTime::from_micros(7), EventKind::NodeFailed { node: NodeId(4) }),
            None,
            &t,
        );
        let spans = t.spans();
        assert_eq!(spans[0].name, "node.failed");
        assert_eq!(spans[0].track, Track::Control);
    }

    #[test]
    fn flush_closes_open_stages_as_unfinished() {
        let t = Tracer::bounded(8);
        let mut lt = LifecycleTracker::new();
        lt.on_event(&ev(100, 9, EventKind::Submitted), meta(100, 0.0), &t);
        lt.flush(1_000, &t);
        let spans = t.spans();
        assert_eq!(spans[0].name, "queued");
        assert_eq!(spans[0].end_us(), 1_000);
        assert!(spans[0].args.iter().any(|(k, _)| *k == "unfinished"));
        assert!(lt.pods.is_empty());
    }
}
