//! Scale sweep: serial vs sharded-parallel core, 32 → 1,024 nodes.
//!
//! DESIGN.md §16's scale-out claim is two-sided. The *performance* side:
//! partitioning the cluster into shards — each owning a contiguous node
//! range, its TSDB partition and a worker-pool lane — must buy real wall
//! clock at four-digit node counts. The *determinism* side: it must buy it
//! for free — the sharded-parallel leg of every point must reproduce the
//! serial leg's report digest bit for bit, because candidate orders are
//! k-way merges of per-shard sorted runs and all cross-shard joins are
//! by index. This sweep measures both: for each node count it runs the
//! same seeded CBP+PP mix twice — once single-shard on one worker, once
//! sharded across a worker pool — and records wall time, schedule-round
//! tail latency and the digest comparison. The results land in
//! `BENCH_7.json`.

use crate::render::{f, Table};
use knots_analyzer::report_digest;
use knots_core::experiment::{run_mix_with_obs, scheduler_by_name, ExperimentConfig};
use knots_core::metrics::RunReport;
use knots_sim::time::SimDuration;
use knots_workloads::AppMix;
use serde::Serialize;
use std::time::Instant;

/// One node-count point of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// Worker-node count of this point.
    pub nodes: usize,
    /// Shard count of the sharded-parallel leg (the serial leg always
    /// runs one shard on one worker).
    pub shards: usize,
    /// Worker threads of the sharded-parallel leg.
    pub workers: usize,
    /// Serial leg wall time, milliseconds.
    pub serial_wall_ms: f64,
    /// Sharded-parallel leg wall time, milliseconds.
    pub sharded_wall_ms: f64,
    /// `serial_wall_ms / sharded_wall_ms`.
    pub speedup: f64,
    /// Serial schedule-round tail: the sum of the p99s of the `snapshot`,
    /// `decide` and `apply` phases, microseconds (a compositional upper
    /// bound on the round tail, comparable across legs).
    pub serial_round_p99_us: f64,
    /// The same tail bound for the sharded-parallel leg.
    pub sharded_round_p99_us: f64,
    /// Report digest of the serial leg.
    pub digest: u64,
    /// Whether the sharded-parallel digest matched the serial digest.
    pub digest_match: bool,
}

fn round_p99_us(r: &RunReport) -> f64 {
    ["snapshot", "decide", "apply"]
        .iter()
        .map(|phase| {
            r.phase_timings.iter().find(|t| t.phase == *phase).map(|t| t.p99_us).unwrap_or(0.0)
        })
        .sum()
}

fn leg(nodes: usize, shards: usize, workers: usize, secs: u64, seed: u64) -> (RunReport, f64) {
    let cfg = ExperimentConfig {
        nodes,
        duration: SimDuration::from_secs(secs),
        seed,
        shards: Some(shards),
        workers: Some(workers),
        ..Default::default()
    };
    let t0 = Instant::now();
    let report = run_mix_with_obs(
        scheduler_by_name("CBP+PP").expect("known scheduler"),
        AppMix::Mix2,
        &cfg,
        knots_obs::Obs::disabled(),
    );
    (report, t0.elapsed().as_secs_f64() * 1e3)
}

/// Run one node-count point: the serial baseline, then the sharded-parallel
/// leg over the identical seeded workload, then compare digests.
pub fn run_point(nodes: usize, shards: usize, workers: usize, secs: u64, seed: u64) -> ScalePoint {
    let (serial, serial_wall_ms) = leg(nodes, 1, 1, secs, seed);
    let (sharded, sharded_wall_ms) = leg(nodes, shards, workers, secs, seed);
    let digest = report_digest(&serial);
    ScalePoint {
        nodes,
        shards,
        workers,
        serial_wall_ms,
        sharded_wall_ms,
        speedup: serial_wall_ms / sharded_wall_ms.max(1e-9),
        serial_round_p99_us: round_p99_us(&serial),
        sharded_round_p99_us: round_p99_us(&sharded),
        digest,
        digest_match: report_digest(&sharded) == digest,
    }
}

/// Sweep the node axis. Points run in order (the serial 1,024-node leg is
/// the long pole; running it last keeps early feedback flowing).
pub fn run(node_counts: &[usize], shards: usize, workers: usize, secs: u64, seed: u64) -> Vec<ScalePoint> {
    node_counts.iter().map(|&n| run_point(n, shards, workers, secs, seed)).collect()
}

/// `true` when every point's sharded-parallel digest matched its serial
/// baseline — the property the CI smoke job asserts.
pub fn all_match(points: &[ScalePoint]) -> bool {
    points.iter().all(|p| p.digest_match)
}

/// Render the sweep.
pub fn table(points: &[ScalePoint]) -> Table {
    let mut t = Table::new(
        "Scale sweep — serial vs sharded-parallel core (digest-checked)",
        &[
            "nodes",
            "shards",
            "workers",
            "serial ms",
            "sharded ms",
            "speedup",
            "serial rnd p99 us",
            "sharded rnd p99 us",
            "digest match",
        ],
    );
    for p in points {
        t.row(vec![
            p.nodes.to_string(),
            p.shards.to_string(),
            p.workers.to_string(),
            f(p.serial_wall_ms, 0),
            f(p.sharded_wall_ms, 0),
            f(p.speedup, 2),
            f(p.serial_round_p99_us, 0),
            f(p.sharded_round_p99_us, 0),
            if p.digest_match { "yes".into() } else { "NO".into() },
        ]);
    }
    t
}

/// The full `BENCH_7.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleReport {
    /// `true` when `--quick` shrank the sweep.
    pub quick: bool,
    /// Seed the workloads were generated from.
    pub seed: u64,
    /// Simulated seconds per leg.
    pub secs: u64,
    /// `std::thread::available_parallelism()` on the measuring host
    /// (1 when unknown).
    pub available_parallelism: usize,
    /// Effective `--threads`: the worker-lane count the sharded legs ran
    /// on (defaults to `available_parallelism`).
    pub effective_threads: usize,
    /// The sweep points, in node-count order.
    pub points: Vec<ScalePoint>,
}

impl ScaleReport {
    /// Did every point keep its digest across the serial → sharded flip?
    pub fn ok(&self) -> bool {
        all_match(&self.points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_point_is_bit_identical_and_timed() {
        let p = run_point(33, 4, 2, 20, 42);
        assert!(p.digest_match, "sharded leg diverged from serial at 33 nodes");
        assert!(p.serial_wall_ms > 0.0 && p.sharded_wall_ms > 0.0);
        assert!(p.serial_round_p99_us > 0.0, "obs phase timings missing");
        assert!(table(&[p]).render().contains("digest match"));
    }
}
