//! Recovery sweep: crash density vs recovery cost, with bit-identity
//! checked on every leg.
//!
//! DESIGN.md §15's durability claim is quantitative: killing the
//! controller at any rate and resuming from snapshot + WAL must not move
//! a single decision — and recovery must stay cheap (checkpoint restore
//! plus a bounded replay, not a from-scratch rerun). This sweep measures
//! both: for each DNN scheduler and each crash density (controller
//! crashes per simulated minute), the same seeded run is executed twice —
//! once uninterrupted, once under the crash/recover harness — and each
//! row reports the replay length, the wall-clock recovery latency and
//! whether the two report digests agree. The zero-crash legs double as a
//! regression guard: they take the plain code path and must keep the
//! pinned self-check digests.

use crate::parallel::run_jobs;
use crate::render::{f, Table};
use knots_chaos::{gen, FaultPlan};
use knots_core::experiment::{
    run_mix_with_chaos, scheduler_by_name, ExperimentConfig, DNN_SCHEDULERS,
};
use knots_core::metrics::RunReport;
use knots_recovery::{run_with_recovery, RecoveryConfig};
use knots_sim::cluster::ClusterConfig;
use knots_sim::time::SimDuration;
use knots_workloads::loadgen::{LoadGenConfig, LoadGenerator};
use knots_workloads::AppMix;
use serde::Serialize;

/// Checkpoint cadence used by every sweep leg.
pub fn sweep_checkpoint() -> SimDuration {
    SimDuration::from_secs(10)
}

/// One (scheduler, crash density) leg of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryRow {
    /// Scheduler label.
    pub scheduler: String,
    /// Scheduled controller crashes per simulated minute.
    pub crashes_per_minute: f64,
    /// Controller kills actually performed by the harness.
    pub crashes: u64,
    /// Checkpoints taken (includes the base checkpoint at t=0).
    pub checkpoints: u64,
    /// WAL records replayed across all recoveries.
    pub replayed_events: u64,
    /// Mean wall-clock restore+replay latency per crash, microseconds.
    pub mean_recovery_us: f64,
    /// Completed / submitted, percent.
    pub completion_pct: f64,
    /// Report digest of the recovered run.
    pub digest: u64,
    /// Whether the recovered digest matches the uninterrupted run's.
    pub digest_match: bool,
}

/// Run one (scheduler, crash density) leg: uninterrupted baseline, then
/// the crash/recover harness over the identical plan, then compare.
pub fn run_leg(scheduler: &str, cpm: f64, cfg: &ExperimentConfig) -> RecoveryRow {
    let plan =
        FaultPlan::from_events(gen::generate_controller_crashes(cfg.seed, cfg.duration, cpm));

    // Uninterrupted baseline: same plan (controller crashes are counted
    // no-ops inside the engine, so the legs consume identical fault
    // streams).
    let baseline = run_mix_with_chaos(
        scheduler_by_name(scheduler).expect("known scheduler"),
        AppMix::Mix2,
        cfg,
        knots_obs::Obs::disabled(),
        plan.clone(),
    );

    // Recovery leg: mirror run_mix_with_chaos's setup, then drive through
    // the supervisor harness.
    let mut gen_cfg = LoadGenConfig::new(cfg.duration, cfg.seed);
    gen_cfg.rate_scale = cfg.rate_scale;
    gen_cfg.batch_scale = cfg.batch_scale;
    let schedule = LoadGenerator::generate(AppMix::Mix2, &gen_cfg);
    let mut cluster_cfg = ClusterConfig::homogeneous(cfg.nodes, knots_sim::config::TESTBED_GPU);
    cluster_cfg.prewarm_images = AppMix::Mix2.lc_services().iter().map(|s| s.image()).collect();
    let rc = RecoveryConfig { checkpoint_every: sweep_checkpoint() };
    let report = run_with_recovery(
        &cluster_cfg,
        &|| scheduler_by_name(scheduler).expect("known scheduler"),
        &cfg.orch,
        &plan,
        &schedule,
        &rc,
        &knots_obs::Obs::disabled(),
    )
    .expect("recovery harness failed");

    row(scheduler, cpm, &baseline, &report)
}

fn row(scheduler: &str, cpm: f64, baseline: &RunReport, r: &RunReport) -> RecoveryRow {
    let rec = &r.recovery;
    RecoveryRow {
        scheduler: scheduler.to_string(),
        crashes_per_minute: cpm,
        crashes: rec.controller_crashes,
        checkpoints: rec.checkpoints,
        replayed_events: rec.replayed_events,
        mean_recovery_us: if rec.controller_crashes == 0 {
            0.0
        } else {
            rec.recovery_wall_us / rec.controller_crashes as f64
        },
        completion_pct: if r.submitted == 0 {
            0.0
        } else {
            r.completed as f64 * 100.0 / r.submitted as f64
        },
        digest: knots_analyzer::report_digest(r),
        digest_match: knots_analyzer::report_digest(r) == knots_analyzer::report_digest(baseline),
    }
}

/// Sweep every DNN scheduler over every crash density on `threads`
/// workers. Rows come back in submission order (scheduler-major), so the
/// rendered table and its JSON are byte-stable across thread counts.
pub fn run(cfg: &ExperimentConfig, densities: &[f64], threads: usize) -> Vec<RecoveryRow> {
    let jobs: Vec<_> = DNN_SCHEDULERS
        .iter()
        .flat_map(|&s| densities.iter().map(move |&cpm| (s, cpm)))
        .map(|(s, cpm)| {
            let cfg = *cfg;
            move || run_leg(s, cpm, &cfg)
        })
        .collect();
    run_jobs(jobs, threads)
}

/// Render the sweep.
pub fn table(rows: &[RecoveryRow]) -> Table {
    let mut t = Table::new(
        "Recovery sweep — crash density vs recovery cost (digest-checked)",
        &[
            "scheduler",
            "crashes/min",
            "crashes",
            "checkpoints",
            "replayed",
            "mean rec us",
            "completed%",
            "digest match",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scheduler.clone(),
            f(r.crashes_per_minute, 1),
            r.crashes.to_string(),
            r.checkpoints.to_string(),
            r.replayed_events.to_string(),
            f(r.mean_recovery_us, 0),
            f(r.completion_pct, 1),
            if r.digest_match { "yes".into() } else { "NO".into() },
        ]);
    }
    t
}

/// `true` when every leg's recovered digest matched its uninterrupted
/// baseline — the property the CI smoke job asserts.
pub fn all_match(rows: &[RecoveryRow]) -> bool {
    rows.iter().all(|r| r.digest_match)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            nodes: 4,
            duration: SimDuration::from_secs(30),
            ..Default::default()
        }
    }

    #[test]
    fn sweep_runs_and_every_leg_is_bit_identical() {
        let rows = run(&quick(), &[0.0, 4.0], 4);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].scheduler, "Res-Ag");
        assert!(all_match(&rows), "a recovered leg diverged from its baseline");
        assert_eq!(rows[0].crashes, 0, "zero density performs no kills");
        assert!(rows[1].crashes > 0, "4/min over 30 s kills the controller");
        assert!(rows[1].replayed_events > 0, "recovery replays WAL records");
        assert!(table(&rows).render().contains("digest match"));
    }
}
