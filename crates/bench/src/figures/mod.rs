//! One module per paper table/figure (the DESIGN.md experiment index).

pub mod ablations;
pub mod chaos_sweep;
pub mod recovery_sweep;
pub mod scale_sweep;
pub mod fig01_energy_efficiency;
pub mod fig02_alibaba;
pub mod fig03_rodinia;
pub mod fig04_djinn_memory;
pub mod fig06_09_cluster;
pub mod fig10a_qos;
pub mod fig10b_accuracy;
pub mod fig11_power;
pub mod fig12_dnn;
pub mod trace_study;
